// E14 — adaptive reallocation under phase changes (§II's "quickly shifting
// resources ... could improve efficiency" vs §V's "favoring stability").
//
// One application alternates between a memory-bound phase (AI = 0.5) and a
// compute-bound phase (AI = 10) while three memory-bound apps co-run. Four
// strategies on the simulated machine, with a configurable reallocation
// penalty:
//   static-even        — (2,2,2,2), never moves
//   static-phase1-best — optimal for the compute phase, never moves
//   adaptive           — a model-guided controller re-optimizes on each
//                        observed phase change (pays the switch penalty)
//   oracle             — per-phase optimum, switches for free (upper bound)
// The sweep over phase length shows the crossover the paper's stability
// argument predicts: adapt when phases are long, hold still when they churn.
#include "bench_support.hpp"
#include "common/table.hpp"
#include "core/optimizer.hpp"
#include "core/roofline.hpp"
#include "sim/simulator.hpp"
#include "topology/presets.hpp"

namespace {

using namespace numashare;

constexpr double kPenaltyS = 0.02;

/// Phase A: app3 compute-bound (AI 10), app0 memory-bound. Phase B: the two
/// swap roles — so the optimal allocation genuinely moves between phases.
std::vector<model::AppSpec> mix_for_phase(bool phase_a) {
  auto apps = model::mixes::three_mem_one_compute();  // {0.5, 0.5, 0.5, 10}
  if (!phase_a) std::swap(apps[0].ai, apps[3].ai);    // {10, 0.5, 0.5, 0.5}
  return apps;
}

model::Allocation best_for(const topo::Machine& machine, bool phase_a) {
  return model::exhaustive_search(machine, mix_for_phase(phase_a),
                                  model::Objective::kTotalGflops, true, 1)
      .allocation;
}

/// Run the phase-alternating workload under a reallocation strategy.
/// `react` maps the phase to the allocation to use (nullptr = hold).
double run_strategy(double phase_s, double total_s,
                    const model::Allocation& initial,
                    const std::function<model::Allocation(bool)>& react,
                    double penalty_s) {
  const auto machine = topo::paper_model_machine();
  sim::SimulationOptions options;
  options.reallocation_penalty_s = penalty_s;
  sim::Simulation simulation(sim::MachineSim(machine, sim::SimEffects::none()),
                             mix_for_phase(true), initial, options);
  double done = 0.0;
  bool phase_a = true;
  double total_gflop = 0.0;
  while (done < total_s - 1e-9) {
    const double chunk = std::min(phase_s, total_s - done);
    const auto measurement = simulation.run(chunk, 1e-3);
    for (auto g : measurement.app_gflop_total) total_gflop += g;
    done += chunk;
    // Phase flip: the two apps trade roles.
    phase_a = !phase_a;
    const auto mix = mix_for_phase(phase_a);
    simulation.set_app_ai(0, mix[0].ai);
    simulation.set_app_ai(3, mix[3].ai);
    if (react) simulation.set_allocation(react(phase_a));
  }
  return total_gflop / total_s;
}

void reproduce() {
  bench::print_header("E14 / adaptive reallocation",
                      "phase-alternating app (AI 10 <-> 0.5), reallocation penalty 20 ms");
  const auto machine = topo::paper_model_machine();
  const auto even = model::Allocation::uniform_per_node(machine, {2, 2, 2, 2});
  const auto best_a = best_for(machine, true);
  const auto best_b = best_for(machine, false);
  std::printf("  phase-A optimum (app3 compute-bound): %s\n", best_a.to_string().c_str());
  std::printf("  phase-B optimum (app0 compute-bound): %s\n\n", best_b.to_string().c_str());

  const double total_s = 1.6;
  TextTable table({"phase length", "static even", "static phase1-best", "adaptive",
                   "oracle (free switch)"});
  double adaptive_short = 0.0, adaptive_long = 0.0;
  double static_short = 0.0, static_long = 0.0;
  for (double phase_s : {0.01, 0.05, 0.2, 0.8}) {
    const auto react = [&](bool phase_a) { return phase_a ? best_a : best_b; };
    const double s_even = run_strategy(phase_s, total_s, even, nullptr, kPenaltyS);
    const double s_best1 = run_strategy(phase_s, total_s, best_a, nullptr, kPenaltyS);
    const double s_adaptive = run_strategy(phase_s, total_s, best_a, react, kPenaltyS);
    const double s_oracle = run_strategy(phase_s, total_s, best_a, react, 0.0);
    table.add_row({fmt_compact(phase_s * 1e3) + " ms", fmt_fixed(s_even, 1),
                   fmt_fixed(s_best1, 1), fmt_fixed(s_adaptive, 1),
                   fmt_fixed(s_oracle, 1)});
    if (phase_s == 0.01) {
      adaptive_short = s_adaptive;
      static_short = s_best1;
    }
    if (phase_s == 0.8) {
      adaptive_long = s_adaptive;
      static_long = s_best1;
    }
  }
  std::printf("%s", table.render().c_str());

  bench::print_section("claims");
  std::printf("  long phases: adaptive beats any static choice (%+.1f%% vs best static) "
              "— 'quickly shifting resources ... could improve efficiency' %s\n",
              (adaptive_long / static_long - 1.0) * 100.0,
              adaptive_long > static_long ? "[OK]" : "[SHAPE]");
  std::printf("  churning phases: the switch penalty eats the gain (adaptive %+.1f%% vs "
              "static) — 'favoring stability over maximal performance' %s\n",
              (adaptive_short / static_short - 1.0) * 100.0,
              adaptive_short <= static_short * 1.02 ? "[OK]" : "[SHAPE]");
}

void BM_AdaptiveRun(benchmark::State& state) {
  const auto machine = topo::paper_model_machine();
  const auto best_a = best_for(machine, true);
  const auto best_b = best_for(machine, false);
  const auto react = [&](bool phase_a) { return phase_a ? best_a : best_b; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_strategy(0.02, 0.1, best_a, react, kPenaltyS));
  }
}
BENCHMARK(BM_AdaptiveRun)->Unit(benchmark::kMillisecond);

}  // namespace

NUMASHARE_BENCH_MAIN(reproduce)
