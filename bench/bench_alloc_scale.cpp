// E18 — allocation-search scaling: the streaming branch-and-bound engine vs
// the materialize-then-evaluate brute force, swept over machine size and app
// count up to 8 nodes x 64 cores x 8 apps.
//
// The paper's §IV worries that a "sophisticated, CPU-intensive scheduling
// algorithm" would perturb the machine it manages. The constrained search
// space grows combinatorially — compositions of cores-per-node over the apps,
// C(63,7) ≈ 5.5e8 candidates at the largest sweep point — so the reference
// engine stops being runnable long before that: its "before" time is measured
// exactly where feasible (count within kExactLimit) and otherwise estimated
// as mean-legacy-solve-cost x candidate-count (flagged `before_estimated`).
// The streaming engine visits the same candidate order with admissible
// upper-bound pruning, evaluates a tiny fraction, allocates nothing per
// candidate, and must clear a >= 10x gate on the largest configuration while
// peak RSS stays flat (no materialized candidate vector).
//
// Emits machine-readable results to BENCH_model.json (path overridable via
// NS_BENCH_MODEL_OUT) in the same schema family as BENCH_runtime.json, so
// successive PRs carry a measured trajectory. NS_BENCH_QUICK=1 shrinks the
// sweep and repetition counts for CI smoke runs.
#include "bench_support.hpp"

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/optimizer.hpp"
#include "core/roofline.hpp"
#include "topology/machine.hpp"

namespace {

using namespace numashare;
using Clock = std::chrono::steady_clock;

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

bool quick_mode() {
  const char* q = std::getenv("NS_BENCH_QUICK");
  return q != nullptr && q[0] != '\0' && q[0] != '0';
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Config {
  std::uint32_t nodes;
  std::uint32_t cores_per_node;
  std::uint32_t apps;
};

// The sweep, smallest to largest; the last entry is the gate configuration.
constexpr Config kConfigs[] = {
    {2, 8, 2}, {2, 16, 4}, {4, 16, 4}, {4, 32, 4},
    {8, 16, 8}, {8, 32, 8}, {4, 64, 8}, {8, 64, 8},
};
constexpr Config kGateConfig = {8, 64, 8};
constexpr double kRequiredSpeedup = 10.0;

struct Row {
  std::string name;
  Config config;
  std::string unit;
  double value;
};

std::vector<Row> g_rows;

struct Gate {
  double before_us = 0.0;
  double after_us = 0.0;
  double speedup = 0.0;
  bool before_estimated = false;
  bool measured = false;
};

Gate g_gate;
double g_streaming_rss_kb = 0.0;  // peak RSS after the streaming-only phase

void record(const std::string& name, Config config, const std::string& unit, double value) {
  g_rows.push_back({name, config, unit, value});
}

/// Measured per-candidate cost of the reference engine, keyed by
/// (nodes, apps): the per-candidate work depends on the group structure, not
/// the per-node core budget, so an exact measurement at a smaller core count
/// is the best available estimator for the configs where the brute force is
/// no longer runnable.
struct ReferenceCost {
  std::uint32_t nodes;
  std::uint32_t apps;
  double us_per_candidate;
};

std::vector<ReferenceCost> g_reference_costs;

/// The same mix family bench_model_perf sweeps, but with geometrically spaced
/// AIs (0.1 x 2^a) so the sweep always spans memory-bound through
/// compute-bound behaviour, plus NUMA-bad homes and serial fractions.
std::vector<model::AppSpec> make_apps(std::uint32_t count, std::uint32_t nodes) {
  std::vector<model::AppSpec> apps;
  for (std::uint32_t a = 0; a < count; ++a) {
    const double ai = 0.1 * static_cast<double>(1u << a);
    if (a % 3 == 2) {
      apps.push_back(model::AppSpec::numa_bad("bad", ai, a % nodes));
    } else {
      apps.push_back(model::AppSpec::numa_perfect("perfect", ai));
    }
    if (a % 4 == 1) apps.back().serial_fraction = 0.15;
  }
  return apps;
}

double peak_rss_kb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss);  // KiB on Linux
}

template <typename Fn>
double best_of_seconds(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    fn();
    best = std::min(best, seconds_since(start));
  }
  return best;
}

/// Per-config state carried from the streaming phase into the reference
/// phase (the two run separately so the streaming phase's peak RSS can be
/// snapshotted before the brute force materializes anything).
struct ConfigRun {
  Config config;
  std::uint64_t count = 0;
  double legacy_solve_us = 0.0;
  double after_us = 0.0;
  bool skipped = false;
};

bool config_skipped(std::uint64_t count) {
  return (quick_mode() || kSanitized) && count > 5'000'000;
}

topo::Machine make_machine(const Config& config) {
  return topo::Machine::symmetric(config.nodes, config.cores_per_node, 10.0, 32.0, 10.0);
}

/// Phase 1: per-solve cost, the streaming search and the incremental refine.
/// Nothing in this phase materializes candidates, which is exactly the claim
/// the post-phase RSS snapshot pins.
ConfigRun run_streaming(const Config& config) {
  const bool quick = quick_mode();
  const auto machine = make_machine(config);
  const auto apps = make_apps(config.apps, config.nodes);
  ConfigRun run;
  run.config = config;
  run.count = model::count_candidates(machine, config.apps, /*require_full=*/true,
                                      /*min_threads_per_app=*/1);
  if (config_skipped(run.count)) {
    run.skipped = true;
    std::printf("  %ux%ux%-2u  candidates %12llu  skipped (quick/sanitized run)\n", config.nodes,
                config.cores_per_node, config.apps, static_cast<unsigned long long>(run.count));
    return run;
  }

  // Mean per-candidate model cost, both through the validating wrapper (what
  // the reference engine pays) and through the reusable scratch.
  const auto even = model::Allocation::even(machine, config.apps);
  const int solve_iters = quick ? 200 : 2000;
  const double solve_s = best_of_seconds(1, [&] {
    double sink = 0.0;
    for (int i = 0; i < solve_iters; ++i) sink += model::solve(machine, apps, even).total_gflops;
    benchmark::DoNotOptimize(sink);
  });
  model::SolveScratch scratch;
  const double solve_into_s = best_of_seconds(1, [&] {
    double sink = 0.0;
    for (int i = 0; i < solve_iters; ++i) {
      sink += model::solve_into(machine, apps, even, scratch).total_gflops;
    }
    benchmark::DoNotOptimize(sink);
  });
  run.legacy_solve_us = solve_s / solve_iters * 1e6;
  record("solve", config, "us_per_solve", run.legacy_solve_us);
  record("solve_into", config, "us_per_solve", solve_into_s / solve_iters * 1e6);

  // "After": the streaming branch-and-bound engine.
  model::SearchResult after;
  const int search_reps = quick ? 1 : (run.count > 1'000'000 ? 1 : 3);
  const double after_s = best_of_seconds(search_reps, [&] {
    after = model::exhaustive_search(machine, apps, model::Objective::kTotalGflops,
                                     /*require_full=*/true, /*min_threads_per_app=*/1);
  });
  run.after_us = after_s * 1e6;
  record("search_after", config, "us_per_search", run.after_us);
  record("search_evals", config, "evals", static_cast<double>(after.evaluated));
  record("search_candidates", config, "evals", static_cast<double>(run.count));

  // Steady-state incremental tick: refine from the enacted winner after a
  // modest AI drift on one app.
  auto drifted = apps;
  drifted[0].ai *= 1.2;
  model::RefineOptions refine_options;
  refine_options.min_threads_per_app = 1;
  const double refine_s = best_of_seconds(quick ? 1 : 3, [&] {
    auto refined = model::refine_search(machine, drifted, after.allocation, refine_options);
    benchmark::DoNotOptimize(refined.objective_value);
  });
  record("refine", config, "us_per_search", refine_s * 1e6);

  std::printf("  %ux%ux%-2u  candidates %12llu  after %12.1f us  evals %llu  refine %.1f us\n",
              config.nodes, config.cores_per_node, config.apps,
              static_cast<unsigned long long>(run.count), run.after_us,
              static_cast<unsigned long long>(after.evaluated), refine_s * 1e6);
  return run;
}

/// Phase 2: the brute-force "before" — exact where still runnable, otherwise
/// estimated from a measured per-candidate sibling cost. This phase is the
/// one that materializes candidate vectors (gigabytes at millions of
/// candidates), which is why it runs after the streaming RSS snapshot.
void run_reference(const ConfigRun& run) {
  if (run.skipped) return;
  const bool quick = quick_mode();
  const auto& config = run.config;
  const auto machine = make_machine(config);
  const auto apps = make_apps(config.apps, config.nodes);

  const std::uint64_t exact_limit = quick ? 20'000 : 4'000'000;
  double before_us = 0.0;
  bool estimated = false;
  if (run.count <= exact_limit) {
    const double before_s = best_of_seconds(quick ? 1 : 2, [&] {
      auto reference = model::exhaustive_search_reference(
          machine, apps, model::Objective::kTotalGflops, true, 1);
      benchmark::DoNotOptimize(reference.objective_value);
    });
    before_us = before_s * 1e6;
    g_reference_costs.push_back(
        {config.nodes, config.apps, before_us / static_cast<double>(run.count)});
  } else {
    // Prefer a measured per-candidate reference cost from an exact sibling
    // config (same nodes and apps, smaller core budget); fall back to the
    // bare legacy solve cost, which slightly undercounts the reference
    // engine's per-candidate materialization overhead.
    double us_per_candidate = run.legacy_solve_us;
    for (const auto& cost : g_reference_costs) {
      if (cost.nodes == config.nodes && cost.apps == config.apps) {
        us_per_candidate = cost.us_per_candidate;
      }
    }
    before_us = us_per_candidate * static_cast<double>(run.count);
    estimated = true;
  }
  record("search_before", config, "us_per_search", before_us);
  const double speedup = before_us / run.after_us;
  record("search_speedup", config, "x", speedup);

  if (config.nodes == kGateConfig.nodes && config.cores_per_node == kGateConfig.cores_per_node &&
      config.apps == kGateConfig.apps) {
    g_gate.before_us = before_us;
    g_gate.after_us = run.after_us;
    g_gate.speedup = speedup;
    g_gate.before_estimated = estimated;
    g_gate.measured = true;
  }

  std::printf("  %ux%ux%-2u  before %14.0f us%s  speedup %8.1fx\n", config.nodes,
              config.cores_per_node, config.apps, before_us, estimated ? " (est)" : "      ",
              speedup);
}

void emit_json() {
  const char* env = std::getenv("NS_BENCH_MODEL_OUT");
  const std::string path = env != nullptr && env[0] != '\0' ? env : "BENCH_model.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_alloc_scale: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"numashare-bench-model/1\",\n");
  std::fprintf(f, "  \"bench\": \"bench_alloc_scale\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick_mode() ? "true" : "false");
  std::fprintf(f, "  \"sanitized\": %s,\n", kSanitized ? "true" : "false");
  std::fprintf(f, "  \"host_cpus\": %u,\n", std::thread::hardware_concurrency());
  std::fprintf(f,
               "  \"protocol\": \"best-of-N wall time per engine; 'before' measured "
               "exactly when the candidate count permits, otherwise estimated as "
               "measured per-candidate reference cost (exact sibling config) x "
               "candidate count (before_estimated); peak_rss_kb snapshots getrusage "
               "after the streaming-only phase, before the brute force materializes "
               "any candidate vectors (peak_rss_full_kb covers the whole run)\",\n");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"nodes\": %u, \"cores_per_node\": %u, "
                 "\"apps\": %u, \"unit\": \"%s\", \"value\": %.3f}%s\n",
                 r.name.c_str(), r.config.nodes, r.config.cores_per_node, r.config.apps,
                 r.unit.c_str(), r.value, i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"peak_rss_kb\": %.0f,\n", g_streaming_rss_kb);
  std::fprintf(f, "  \"peak_rss_full_kb\": %.0f,\n", peak_rss_kb());
  std::fprintf(f, "  \"gate\": {\n");
  std::fprintf(f, "    \"nodes\": %u,\n", kGateConfig.nodes);
  std::fprintf(f, "    \"cores_per_node\": %u,\n", kGateConfig.cores_per_node);
  std::fprintf(f, "    \"apps\": %u,\n", kGateConfig.apps);
  std::fprintf(f, "    \"measured\": %s,\n", g_gate.measured ? "true" : "false");
  std::fprintf(f, "    \"before_us\": %.3f,\n", g_gate.before_us);
  std::fprintf(f, "    \"after_us\": %.3f,\n", g_gate.after_us);
  std::fprintf(f, "    \"speedup_x\": %.3f,\n", g_gate.speedup);
  std::fprintf(f, "    \"required_x\": %.1f,\n", kRequiredSpeedup);
  std::fprintf(f, "    \"before_estimated\": %s,\n", g_gate.before_estimated ? "true" : "false");
  std::fprintf(f, "    \"pass\": %s\n",
               g_gate.measured && g_gate.speedup >= kRequiredSpeedup ? "true" : "false");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu results, gate %s)\n", path.c_str(), g_rows.size(),
              g_gate.measured && g_gate.speedup >= kRequiredSpeedup ? "PASS" : "not measured");
}

void reproduce() {
  bench::print_header("E18", "allocation-search scaling (streaming B&B vs brute force)");
  std::printf("  'before' = materialize-then-evaluate reference engine; 'after' = the\n"
              "  streaming branch-and-bound search. Both select the identical winner\n"
              "  (pinned by the search-equiv test suite); this bench records the cost.\n\n");
  bench::print_section("streaming phase (branch-and-bound search + refine)");
  std::vector<ConfigRun> runs;
  for (const auto& config : kConfigs) runs.push_back(run_streaming(config));

  // The RSS claim: visiting half a billion candidates must not grow the
  // process. Snapshotted before the reference phase, whose materialized
  // candidate vectors legitimately reach gigabytes at millions of
  // candidates — that contrast is the point.
  g_streaming_rss_kb = peak_rss_kb();
  record("peak_rss", kGateConfig, "kb", g_streaming_rss_kb);
  std::printf("  streaming-phase peak RSS: %.0f KiB\n", g_streaming_rss_kb);

  bench::print_section("reference phase (brute force, exact or estimated)");
  for (const auto& run : runs) run_reference(run);
  emit_json();
}

void BM_StreamingSearchMidSweep(benchmark::State& state) {
  const auto machine = topo::Machine::symmetric(4, 16, 10.0, 32.0, 10.0);
  const auto apps = make_apps(4, 4);
  for (auto _ : state) {
    auto result =
        model::exhaustive_search(machine, apps, model::Objective::kTotalGflops, true, 1);
    benchmark::DoNotOptimize(result.objective_value);
  }
}
BENCHMARK(BM_StreamingSearchMidSweep)->Unit(benchmark::kMillisecond);

}  // namespace

NUMASHARE_BENCH_MAIN(reproduce)
