// E9 — allocation-search ablation (§III.A design choices): how much NUMA-
// aware search buys over the naive allocations, per objective, plus search
// cost.
#include "bench_support.hpp"
#include "common/table.hpp"
#include "core/optimizer.hpp"
#include "core/paper_scenarios.hpp"
#include "topology/presets.hpp"

namespace {

using namespace numashare;
using model::Allocation;
using model::AppSpec;

struct Mix {
  const char* name;
  topo::Machine machine;
  std::vector<AppSpec> apps;
};

std::vector<Mix> mixes() {
  std::vector<Mix> out;
  out.push_back({"fig2 mix (3 mem + 1 compute)", topo::paper_model_machine(),
                 model::mixes::three_mem_one_compute()});
  out.push_back({"fig3 mix (3 perfect + 1 NUMA-bad)", topo::paper_numabad_machine(),
                 model::mixes::three_perfect_one_bad(0)});
  out.push_back({"skylake mix (Table III rows 1-3)", topo::paper_skylake_machine(),
                 model::mixes::skylake_mem_compute()});
  out.push_back({"skylake NUMA-bad (rows 4-5)", topo::paper_skylake_machine(),
                 model::mixes::skylake_perfect_bad(0)});
  return out;
}

void reproduce() {
  bench::print_header("E9 / allocation search",
                      "even / node-per-app / greedy / exhaustive, per mix "
                      "(min 1 thread per app per node for uniform families)");
  TextTable table({"mix", "even", "node/app", "greedy", "exhaustive", "evals"});
  for (const auto& mix : mixes()) {
    const auto even = Allocation::even(mix.machine, 4);
    const double even_gflops = model::solve(mix.machine, mix.apps, even).total_gflops;

    double best_perm = 0.0;
    for (const auto& perm : model::enumerate_node_permutations(mix.machine)) {
      best_perm =
          std::max(best_perm, model::solve(mix.machine, mix.apps, perm).total_gflops);
    }

    const auto greedy = model::greedy_search(mix.machine, mix.apps, even);
    const auto exhaustive = model::exhaustive_search(
        mix.machine, mix.apps, model::Objective::kTotalGflops, /*require_full=*/true,
        /*min_threads_per_app=*/1);

    table.add_row({mix.name, fmt_fixed(even_gflops, 1), fmt_fixed(best_perm, 1),
                   fmt_fixed(greedy.objective_value, 1),
                   fmt_fixed(exhaustive.objective_value, 1),
                   std::to_string(exhaustive.evaluated)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("  note: greedy is unconstrained (may park apps entirely); exhaustive keeps\n"
              "  every app alive — the paper's implicit setting. The NUMA-bad mixes are\n"
              "  where node-per-app beats even, the paper's §III.A punchline.\n");

  bench::print_section("sub-linear scaling (§II): cores shift away from a poor scaler");
  {
    // Two compute-bound apps on one 8-core node; one has an Amdahl serial
    // fraction. "It might be better to limit the number of threads allocated
    // to this application and assign the CPU cores to another application."
    const auto machine = topo::Machine::symmetric(1, 8, 10.0, 1000.0);
    TextTable amdahl({"serial fraction", "best split (scales/stalls)", "best GFLOPS",
                      "even split GFLOPS"});
    for (double serial : {0.0, 0.1, 0.2, 0.4, 0.8}) {
      const std::vector<AppSpec> apps{
          AppSpec::numa_perfect("scales", 10.0),
          AppSpec::numa_perfect("stalls", 10.0).with_serial_fraction(serial)};
      const auto best = model::exhaustive_search(machine, apps,
                                                 model::Objective::kTotalGflops, true, 1);
      const auto even_split =
          model::solve(machine, apps, Allocation::uniform_per_node(machine, {4, 4}));
      amdahl.add_row({fmt_compact(serial, 2),
                      ns_format("{}/{}", best.allocation.app_total(0),
                                best.allocation.app_total(1)),
                      fmt_fixed(best.objective_value, 1),
                      fmt_fixed(even_split.total_gflops, 1)});
    }
    std::printf("%s", amdahl.render().c_str());
  }

  bench::print_section("objective ablation (fig2 mix)");
  TextTable objectives({"objective", "best alloc", "total GFLOPS", "min app GFLOPS"});
  for (auto objective :
       {model::Objective::kTotalGflops, model::Objective::kMinAppGflops,
        model::Objective::kProportionalFairness}) {
    const auto mix = mixes()[0];
    const auto result = model::exhaustive_search(mix.machine, mix.apps, objective, true, 1);
    double worst = 1e300;
    for (auto g : result.solution.app_gflops) worst = std::min(worst, g);
    objectives.add_row({model::to_string(objective), result.allocation.to_string(),
                        fmt_fixed(result.solution.total_gflops, 1), fmt_fixed(worst, 2)});
  }
  std::printf("%s", objectives.render().c_str());
}

void BM_ExhaustiveSearch(benchmark::State& state) {
  const auto machine = topo::paper_model_machine();
  const auto apps = model::mixes::three_mem_one_compute();
  for (auto _ : state) {
    auto result =
        model::exhaustive_search(machine, apps, model::Objective::kTotalGflops, true, 1);
    benchmark::DoNotOptimize(result.objective_value);
  }
}
BENCHMARK(BM_ExhaustiveSearch)->Unit(benchmark::kMillisecond);

void BM_GreedySearch(benchmark::State& state) {
  const auto machine = topo::paper_model_machine();
  const auto apps = model::mixes::three_mem_one_compute();
  const auto start = model::Allocation::even(machine, 4);
  for (auto _ : state) {
    auto result = model::greedy_search(machine, apps, start);
    benchmark::DoNotOptimize(result.objective_value);
  }
}
BENCHMARK(BM_GreedySearch)->Unit(benchmark::kMillisecond);

void BM_GreedySearchSkylake(benchmark::State& state) {
  const auto machine = topo::paper_skylake_machine();
  const auto apps = model::mixes::skylake_perfect_bad(0);
  const auto start = model::Allocation::even(machine, 4);
  for (auto _ : state) {
    auto result = model::greedy_search(machine, apps, start);
    benchmark::DoNotOptimize(result.objective_value);
  }
}
BENCHMARK(BM_GreedySearchSkylake)->Unit(benchmark::kMillisecond);

}  // namespace

NUMASHARE_BENCH_MAIN(reproduce)
