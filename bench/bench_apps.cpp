// E16 — real component applications co-running under different coordination
// regimes: the paper's composition story measured with actual workloads
// (memory-bound stencil + compute-bound matmul + Monte Carlo) on live
// runtimes rather than synthetic spinners.
//
// Regimes: oversubscribed (no control), fair share, model-guided, and the
// agentless consensus mode. Fixed work per app; wall-clock makespan.
// Absolute times are host-specific; the printed mechanism columns (thread
// sums) are the reproducible part.
#include <chrono>
#include <memory>
#include <thread>

#include "agent/agent.hpp"
#include "agent/consensus_group.hpp"
#include "agent/policies.hpp"
#include "apps/matmul.hpp"
#include "apps/montecarlo.hpp"
#include "apps/stencil.hpp"
#include "bench_support.hpp"
#include "common/table.hpp"
#include "topology/presets.hpp"

namespace {

using namespace numashare;
using namespace std::chrono_literals;

struct CoRunOutcome {
  double seconds = 0.0;
  std::uint32_t thread_sum = 0;  // running threads across apps at steady state
};

enum class Regime { kOversubscribed, kFairShare, kModelGuided, kConsensus };

const char* to_string(Regime regime) {
  switch (regime) {
    case Regime::kOversubscribed: return "oversubscribed";
    case Regime::kFairShare: return "fair share";
    case Regime::kModelGuided: return "model-guided";
    case Regime::kConsensus: return "consensus (agentless)";
  }
  return "?";
}

CoRunOutcome co_run(Regime regime) {
  const auto machine = topo::Machine::symmetric(2, 4, 1.0, 32.0, 10.0);
  rt::Runtime stencil_rt(machine, {.name = "stencil"});
  rt::Runtime matmul_rt(machine, {.name = "matmul"});
  rt::Runtime mc_rt(machine, {.name = "mc"});

  apps::StencilConfig stencil_config;
  stencil_config.rows = 128;
  stencil_config.cols = 128;
  stencil_config.row_blocks = 8;
  apps::Stencil stencil(stencil_rt, stencil_config);

  apps::MatmulConfig matmul_config;
  matmul_config.n = 96;
  matmul_config.tile = 16;
  apps::Matmul matmul(matmul_rt, matmul_config);

  apps::MonteCarloConfig mc_config;
  mc_config.tasks = 48;
  mc_config.samples_per_task = 1u << 13;
  apps::MonteCarlo montecarlo(mc_rt, mc_config);

  agent::Channel chs, chm, chc;
  agent::RuntimeAdapter ads(stencil_rt, chs, stencil.ai_estimate());
  agent::RuntimeAdapter adm(matmul_rt, chm, matmul.ai_estimate());
  agent::RuntimeAdapter adc(mc_rt, chc, montecarlo.ai_estimate());

  std::unique_ptr<agent::Agent> coordinator;
  std::unique_ptr<agent::ConsensusGroup> group;
  switch (regime) {
    case Regime::kOversubscribed:
      break;  // everyone keeps machine-wide pools
    case Regime::kFairShare:
      coordinator = std::make_unique<agent::Agent>(
          machine, std::make_unique<agent::FairSharePolicy>(),
          agent::AgentOptions{.period_us = 1000});
      break;
    case Regime::kModelGuided:
      coordinator = std::make_unique<agent::Agent>(
          machine, std::make_unique<agent::ModelGuidedPolicy>(),
          agent::AgentOptions{.period_us = 1000});
      break;
    case Regime::kConsensus:
      group = std::make_unique<agent::ConsensusGroup>(machine);
      group->join_with_ai(stencil_rt, stencil.ai_estimate());
      group->join_with_ai(matmul_rt, matmul.ai_estimate());
      group->join_with_ai(mc_rt, montecarlo.ai_estimate());
      group->apply();
      break;
  }
  if (coordinator) {
    coordinator->add_app("stencil", chs);
    coordinator->add_app("matmul", chm);
    coordinator->add_app("mc", chc);
    ads.start(500);
    adm.start(500);
    adc.start(500);
    coordinator->start();
    std::this_thread::sleep_for(30ms);  // let the partition land
  }

  const auto start = std::chrono::steady_clock::now();
  std::thread stencil_driver([&] { stencil.run(30); });
  std::thread mc_driver([&] { montecarlo.run(); });
  matmul.run();
  stencil_driver.join();
  mc_driver.join();
  CoRunOutcome outcome;
  outcome.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  outcome.thread_sum = stencil_rt.running_threads() + matmul_rt.running_threads() +
                       mc_rt.running_threads();

  if (coordinator) {
    coordinator->stop();
    ads.stop();
    adm.stop();
    adc.stop();
  }
  return outcome;
}

void reproduce() {
  bench::print_header("E16 / real co-running components",
                      "stencil + matmul + Monte Carlo under four regimes");
  TextTable table({"regime", "makespan ms", "threads running (sum)"});
  for (auto regime : {Regime::kOversubscribed, Regime::kFairShare, Regime::kModelGuided,
                      Regime::kConsensus}) {
    const auto outcome = co_run(regime);
    table.add_row({to_string(regime), fmt_fixed(outcome.seconds * 1e3, 1),
                   std::to_string(outcome.thread_sum)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("  mechanism check: every coordinated regime keeps the thread sum at or\n"
              "  below the 8 cores; oversubscribed runs 3 x 8 = 24 virtual workers.\n"
              "  (Wall-clock deltas are host-dependent; the paper found them marginal,\n"
              "  and on a single-CPU CI host coordination can win big — see E6/E8.)\n");
}

void BM_CoRunModelGuided(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(co_run(Regime::kModelGuided).seconds);
}
BENCHMARK(BM_CoRunModelGuided)->Unit(benchmark::kMillisecond);

void BM_CoRunConsensus(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(co_run(Regime::kConsensus).seconds);
}
BENCHMARK(BM_CoRunConsensus)->Unit(benchmark::kMillisecond);

}  // namespace

NUMASHARE_BENCH_MAIN(reproduce)
