// E7 — §II mechanism claims: thread blocking/unblocking latency for the
// three options, and the no-preemption property's cost shape.
//
//  * option 2 blocks "as soon as it finishes running a task or almost
//    immediately if it is idle";
//  * option 1 unblocking happens "almost immediately".
#include <chrono>
#include <thread>

#include "bench_support.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "runtime/runtime.hpp"
#include "topology/presets.hpp"

namespace {

using namespace numashare;
using namespace std::chrono_literals;

double wait_until_running(rt::Runtime& runtime, std::uint32_t target) {
  const auto start = std::chrono::steady_clock::now();
  while (runtime.running_threads() != target) {
    std::this_thread::sleep_for(20us);
    if (std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count() >
        2.0) {
      break;
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

void reproduce() {
  bench::print_header("E7 / blocking mechanics",
                      "block/unblock latency of the three §II options (idle pool)");
  const auto machine = topo::Machine::symmetric(2, 2, 1.0, 10.0);

  RunningStats block_o1, unblock_o1, block_o2, unblock_o2, block_o3, unblock_o3;
  constexpr int kRounds = 25;
  for (int round = 0; round < kRounds; ++round) {
    {
      rt::Runtime runtime(machine, {.name = "o1"});
      wait_until_running(runtime, 4);
      runtime.set_total_thread_target(1);
      block_o1.add(wait_until_running(runtime, 1));
      runtime.set_total_thread_target(4);
      unblock_o1.add(wait_until_running(runtime, 4));
    }
    {
      rt::Runtime runtime(machine, {.name = "o2"});
      wait_until_running(runtime, 4);
      topo::CpuSet blocked;
      blocked.set(0);
      blocked.set(2);
      runtime.set_blocked_cores(blocked);
      block_o2.add(wait_until_running(runtime, 2));
      runtime.set_blocked_cores(topo::CpuSet::single(0));
      unblock_o2.add(wait_until_running(runtime, 3));
    }
    {
      rt::Runtime runtime(machine, {.name = "o3"});
      wait_until_running(runtime, 4);
      runtime.set_node_thread_targets({1, 0});
      block_o3.add(wait_until_running(runtime, 1));
      runtime.set_node_thread_targets({2, 2});
      unblock_o3.add(wait_until_running(runtime, 4));
    }
  }

  TextTable table({"operation", "mean ms", "p max ms"});
  const auto row = [&](const char* label, const RunningStats& s) {
    table.add_row({label, fmt_fixed(s.mean() * 1e3, 3), fmt_fixed(s.max() * 1e3, 3)});
  };
  row("option 1: block to target (4 -> 1)", block_o1);
  row("option 1: unblock (1 -> 4)", unblock_o1);
  row("option 2: block named cores", block_o2);
  row("option 2: unblock named core", unblock_o2);
  row("option 3: block per-node (4 -> 1)", block_o3);
  row("option 3: unblock per-node (1 -> 4)", unblock_o3);
  std::printf("%s", table.render().c_str());
  std::printf("  paper: unblocking is 'almost immediate'; idle blocking happens within an\n"
              "  idle-park period (%d us default).\n", 500);

  bench::print_section("no-preemption property");
  std::printf("  a worker inside a task is never interrupted; the target is reached at\n"
              "  the next task boundary (see test BlockingOption1.NoPreemptionOfRunningTask).\n");
}

void BM_SpawnExecuteTask(benchmark::State& state) {
  rt::Runtime runtime(topo::Machine::symmetric(1, 2, 1.0, 10.0), {.name = "spawn"});
  for (auto _ : state) {
    runtime.spawn([](rt::TaskContext&) {})->wait();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpawnExecuteTask);

void BM_SpawnThroughputBatch(benchmark::State& state) {
  rt::Runtime runtime(topo::Machine::symmetric(1, 2, 1.0, 10.0), {.name = "batch"});
  const auto batch = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    auto latch = runtime.create_latch(batch);
    for (std::uint32_t i = 0; i < batch; ++i) {
      runtime.spawn([&latch](rt::TaskContext&) { latch->count_down(); });
    }
    latch->wait();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SpawnThroughputBatch)->Arg(64)->Arg(512);

void BM_ControlSwitch(benchmark::State& state) {
  rt::Runtime runtime(topo::Machine::symmetric(2, 2, 1.0, 10.0), {.name = "switch"});
  std::uint32_t target = 1;
  for (auto _ : state) {
    runtime.set_total_thread_target(target);
    target = target == 1 ? 4 : 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ControlSwitch);

}  // namespace

NUMASHARE_BENCH_MAIN(reproduce)
