// E22 — daemon tick-path scaling: attention-bitmap vs full-scan servicing
// over the 1024-slot sharded registry (registry v7, docs/DAEMON.md "Scaling
// the tick path").
//
// The paper's arbiter ticks at a fixed cadence whatever the membership; what
// must NOT grow with capacity is the cost of a tick in which little happens.
// v7 makes the tick proportional to *activity*: clients flag their slot in a
// per-shard attention bitmap (one fetch_or) and the daemon visits only
// flagged slots, with a periodic full sweep as the lost-bit safety net.
//
// Two phases:
//   1. Scan-path gate — 1024-slot registry, 32 admitted-and-heartbeating but
//      otherwise idle clients (the steady state where nothing changes).
//      `full_sweep_every_ticks=0` is the pure bitmap path, `=1` is the pre-v7
//      tick shape (every slot visited every tick). The committed gate
//      requires bitmap >= 8x the full-scan tick throughput; the default
//      cadence (sweep every 16 ticks) is reported alongside.
//   2. Loaded tail — 32/256/1024 active clients each pushing one telemetry
//      sample per tick through its real ShmChannel; per-tick latency
//      histograms (p50/p99/p999/max) quantify what a fully loaded tick costs.
//      The gate bounds p99 at 1024 active clients (kP99LimitNs, documented in
//      docs/DAEMON.md).
//
// Client work (telemetry pushes, heartbeats) happens *outside* the timed
// region: the subject is what the daemon pays, not what the fleet pays. The
// arbitration policy is null — the partition solver has its own benches
// (bench_alloc_scale); this one isolates the membership/ingest/compliance
// tick machinery.
//
// Emits machine-readable results to BENCH_daemon.json (path overridable via
// NS_BENCH_DAEMON_OUT) in the numashare-bench-daemon/1 schema;
// scripts/check_bench_json.py validates it in CI. Both gates are wall-time
// measurements, so the checker replays them only on full (non-quick,
// non-sanitized) documents; quick mode trims repetitions, never the
// membership sizes.
#include "bench_support.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "agent/policy.hpp"
#include "agent/protocol.hpp"
#include "agent/shm_channel.hpp"
#include "daemon/daemon.hpp"
#include "daemon/registry.hpp"
#include "obs/histogram.hpp"
#include "topology/machine.hpp"

namespace {

using namespace numashare;
using Clock = std::chrono::steady_clock;

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

bool quick_mode() {
  const char* q = std::getenv("NS_BENCH_QUICK");
  return q != nullptr && q[0] != '\0' && q[0] != '0';
}

/// Gate: bitmap-scan tick throughput over full-scan tick throughput at 1024
/// slots with 32 active clients.
constexpr double kRequiredSpeedup = 8.0;
/// Gate: p99 tick latency with 1024 active clients, each delivering one
/// telemetry sample per tick. 25 ms is ~10x the p99 measured on the dev box
/// and still 4x under the 100 ms arbitration cadence the daemon app runs at
/// (docs/DAEMON.md "Scaling the tick path").
constexpr double kP99LimitNs = 25e6;

constexpr std::uint32_t kGateActive = 32;

struct Row {
  std::string name;
  std::string scenario;
  std::string unit;
  double value = 0.0;
};

std::vector<Row> g_rows;

struct Gate {
  double bitmap_ticks_per_sec = 0.0;
  double full_scan_ticks_per_sec = 0.0;
  double speedup = 0.0;
  double p99_tick_ns = 0.0;
  bool measured = false;
};
Gate g_gate;

bool gate_pass() {
  return g_gate.measured && g_gate.speedup >= kRequiredSpeedup &&
         g_gate.p99_tick_ns <= kP99LimitNs;
}

void record(const std::string& name, const std::string& scenario, const std::string& unit,
            double value) {
  g_rows.push_back({name, scenario, unit, value});
}

topo::Machine bench_machine() { return topo::Machine::symmetric(2, 4, 1.0, 12.0, 6.0); }

/// Membership and ingest are the subject; arbitration is not. A null policy
/// keeps the partition solver (benched in bench_alloc_scale) out of the
/// numbers.
class NullPolicy final : public agent::Policy {
 public:
  const char* name() const override { return "null"; }
  std::vector<agent::Directive> decide(const topo::Machine&,
                                       const std::vector<agent::AppView>& views) override {
    return std::vector<agent::Directive>(views.size());
  }
};

std::string unique_registry(const char* tag) {
  static int counter = 0;
  return std::string("/ns-bench-daemon-") + tag + "-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter++);
}

/// One simulated client: its registry slot plus a producer-side attachment
/// to the channel the daemon minted for it at admission.
struct SimClient {
  std::uint32_t slot = 0;
  std::unique_ptr<agent::ShmChannel> channel;  ///< null until attach_channels()
  std::uint64_t seq = 0;
  std::uint64_t tasks = 0;
};

/// An in-process daemon over a full-capacity registry plus a fleet of
/// admitted clients driven through the real slot/channel protocol.
struct Fleet {
  nsd::DaemonOptions options;
  std::unique_ptr<nsd::Daemon> daemon;
  std::unique_ptr<nsd::Registry> view;  ///< client-side mapping
  std::vector<SimClient> clients;
  double now = 0.0;

  explicit Fleet(const char* tag, std::uint64_t full_sweep_every_ticks) {
    options.registry_name = unique_registry(tag);
    options.full_sweep_every_ticks = full_sweep_every_ticks;
    options.snapshot_every_ticks = 0;
    options.checkpoint_every_ticks = 0;
    daemon = std::make_unique<nsd::Daemon>(bench_machine(), std::make_unique<NullPolicy>(),
                                           options);
    std::string error;
    if (!daemon->init(&error)) {
      std::fprintf(stderr, "bench_daemon_scale: daemon init failed: %s\n", error.c_str());
      std::exit(1);
    }
    view = nsd::Registry::open(options.registry_name, &error);
    if (view == nullptr) {
      std::fprintf(stderr, "bench_daemon_scale: registry open failed: %s\n", error.c_str());
      std::exit(1);
    }
  }

  void tick() { daemon->tick(now += 1e-4); }

  /// Claim-and-admit until `target` clients are active.
  void grow_to(std::uint32_t target) {
    while (clients.size() < target) {
      const auto claim = view->claim_slot(
          "sim-" + std::to_string(clients.size()), /*advertised_ai=*/0.0, agent::kMaxNodes);
      if (!claim) {
        std::fprintf(stderr, "bench_daemon_scale: claim_slot failed at %zu clients\n",
                     clients.size());
        std::exit(1);
      }
      clients.push_back({claim->index, nullptr, 0, 0});
      // Admit in batches: one tick services every pending attention bit.
      if (clients.size() % 64 == 0 || clients.size() == target) tick();
    }
    tick();  // settle
    if (daemon->client_count() != target) {
      std::fprintf(stderr, "bench_daemon_scale: expected %u active, have %zu\n", target,
                   daemon->client_count());
      std::exit(1);
    }
  }

  /// Producer-side channel attachments for clients that will push telemetry.
  void attach_channels() {
    for (auto& sim : clients) {
      if (sim.channel != nullptr) continue;
      const auto& slot = view->slot(sim.slot);
      std::string error;
      sim.channel = agent::ShmChannel::attach(slot.channel_name, &error);
      if (sim.channel == nullptr) {
        std::fprintf(stderr, "bench_daemon_scale: channel attach failed: %s\n",
                     error.c_str());
        std::exit(1);
      }
    }
  }

  void heartbeat_all() {
    for (const auto& sim : clients) {
      view->slot(sim.slot).heartbeat.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// One fresh telemetry sample per client, timestamped off the fleet clock.
  void push_telemetry_all() {
    for (auto& sim : clients) {
      agent::Telemetry t;
      t.seq = ++sim.seq;
      t.timestamp = now;
      t.tasks_executed = sim.tasks += 100;
      t.tasks_spawned = sim.tasks;
      t.progress = sim.seq;
      t.total_workers = 4;
      t.running_threads = 4;
      t.ai_estimate = 1.0 + static_cast<double>(sim.slot % 7);
      sim.channel->push_telemetry(t);
    }
  }
};

/// Drive `reps` measured ticks; client-side work (heartbeats, optional
/// telemetry) runs between the timed regions. Returns ticks/sec off the
/// summed in-tick time and fills the per-tick latency histogram.
double measured_ticks_per_sec(Fleet& fleet, int reps, bool push_telemetry,
                              obs::LatencyHistogram& hist) {
  const int warmup = std::max(1, reps / 10);
  for (int i = 0; i < warmup; ++i) {
    fleet.heartbeat_all();
    if (push_telemetry) fleet.push_telemetry_all();
    fleet.tick();
  }
  for (int i = 0; i < reps; ++i) {
    fleet.heartbeat_all();
    if (push_telemetry) fleet.push_telemetry_all();
    const auto start = Clock::now();
    fleet.tick();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start).count();
    hist.record(static_cast<std::uint64_t>(ns));
  }
  obs::HistogramSnapshot snap;
  hist.snapshot_into(snap);
  // Median-derived throughput: on a shared container a single multi-ms
  // scheduler preemption landing in the (sub-microsecond) bitmap series
  // would poison a mean-based ratio; the p50 is immune to tail outliers in
  // either series, so the gate measures the scan shape, not the host.
  const double p50 = snap.percentile(50.0);
  return p50 > 0.0 ? 1e9 / p50 : 0.0;
}

void record_tail(const std::string& scenario, const obs::LatencyHistogram& hist) {
  obs::HistogramSnapshot snap;
  hist.snapshot_into(snap);
  record("tick_p50", scenario, "ns", snap.percentile(50.0));
  record("tick_p99", scenario, "ns", snap.percentile(99.0));
  record("tick_p999", scenario, "ns", snap.percentile(99.9));
  record("tick_max", scenario, "ns", static_cast<double>(snap.max_ns));
}

void run_scan_path_gate() {
  const int reps = quick_mode() ? 1000 : 20000;
  struct Mode {
    const char* label;
    std::uint64_t sweep_every;
  };
  // sweep=0: pure bitmap. sweep=1: the pre-v7 tick shape (every slot, every
  // tick). sweep=16: the shipping default (bitmap + periodic safety net).
  const Mode modes[] = {{"bitmap", 0}, {"full_scan", 1}, {"sweep16", 16}};
  double per_mode_tps[3] = {};
  for (std::size_t m = 0; m < 3; ++m) {
    Fleet fleet(modes[m].label, modes[m].sweep_every);
    fleet.grow_to(kGateActive);
    obs::LatencyHistogram hist;
    const double tps = measured_ticks_per_sec(fleet, reps, /*push_telemetry=*/false, hist);
    per_mode_tps[m] = tps;
    const std::string scenario =
        std::string(modes[m].label) + "_1024cap_" + std::to_string(kGateActive) + "active";
    record("ticks_per_sec", scenario, "ticks/s", tps);
    record_tail(scenario, hist);
    obs::HistogramSnapshot snap;
    hist.snapshot_into(snap);
    std::printf("  %-10s %10.0f ticks/s   p50 %7.0f ns  p99 %7.0f ns  max %8.0f ns\n",
                modes[m].label, tps, snap.percentile(50.0), snap.percentile(99.0),
                static_cast<double>(snap.max_ns));
  }
  g_gate.bitmap_ticks_per_sec = per_mode_tps[0];
  g_gate.full_scan_ticks_per_sec = per_mode_tps[1];
  g_gate.speedup = per_mode_tps[1] > 0.0 ? per_mode_tps[0] / per_mode_tps[1] : 0.0;
  record("speedup", "bitmap_vs_full_scan", "x", g_gate.speedup);
  std::printf("  bitmap vs full scan: %.2fx (gate requires >= %.1fx)\n", g_gate.speedup,
              kRequiredSpeedup);
}

void run_loaded_tail() {
  const int reps = quick_mode() ? 50 : 2000;
  Fleet fleet("loaded", /*full_sweep_every_ticks=*/16);
  for (const std::uint32_t active : {32u, 256u, 1024u}) {
    fleet.grow_to(active);
    fleet.attach_channels();
    obs::LatencyHistogram hist;
    const double tps = measured_ticks_per_sec(fleet, reps, /*push_telemetry=*/true, hist);
    const std::string scenario = "active_" + std::to_string(active);
    record("ticks_per_sec", scenario, "ticks/s", tps);
    record_tail(scenario, hist);
    obs::HistogramSnapshot snap;
    hist.snapshot_into(snap);
    std::printf("  %4u active %10.0f ticks/s   p50 %8.0f ns  p99 %8.0f ns  max %9.0f ns\n",
                active, tps, snap.percentile(50.0), snap.percentile(99.0),
                static_cast<double>(snap.max_ns));
    if (active == 1024u) {
      g_gate.p99_tick_ns = snap.percentile(99.0);
      g_gate.measured = true;
    }
  }
  std::printf("  p99 at 1024 active: %.0f ns (gate requires <= %.0f ns)\n", g_gate.p99_tick_ns,
              kP99LimitNs);
}

void emit_json() {
  const char* env = std::getenv("NS_BENCH_DAEMON_OUT");
  const std::string path = env != nullptr && env[0] != '\0' ? env : "BENCH_daemon.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_daemon_scale: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"numashare-bench-daemon/1\",\n");
  std::fprintf(f, "  \"bench\": \"bench_daemon_scale\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick_mode() ? "true" : "false");
  std::fprintf(f, "  \"sanitized\": %s,\n", kSanitized ? "true" : "false");
  std::fprintf(f, "  \"host_cpus\": %u,\n", std::thread::hardware_concurrency());
  std::fprintf(f,
               "  \"protocol\": \"in-process daemon over a 1024-slot registry v7, null "
               "arbitration policy; clients are driven through the real slot/channel "
               "protocol and all client-side work (claims, heartbeats, telemetry pushes) "
               "runs outside the timed region. Phase 1: 32 idle heartbeating clients, "
               "tick throughput with full_sweep_every_ticks 0 (bitmap) / 1 (pre-v7 full "
               "scan) / 16 (default); throughput is median-derived (1e9/p50, outlier- "
               "robust) and the gate is the bitmap/full-scan ratio. Phase 2: "
               "32/256/1024 active clients each pushing one telemetry sample per tick; "
               "per-tick latency histograms, gate on p99 at 1024. Wall-time measurement: "
               "the checker replays gates only on full (non-quick, non-sanitized) "
               "documents\",\n");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"scenario\": \"%s\", \"unit\": \"%s\", "
                 "\"value\": %.3f}%s\n",
                 r.name.c_str(), r.scenario.c_str(), r.unit.c_str(), r.value,
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"gate\": {\n");
  std::fprintf(f, "    \"clients\": %u,\n", nsd::kMaxClients);
  std::fprintf(f, "    \"active\": %u,\n", kGateActive);
  std::fprintf(f, "    \"measured\": %s,\n", g_gate.measured ? "true" : "false");
  std::fprintf(f, "    \"bitmap_ticks_per_sec\": %.1f,\n", g_gate.bitmap_ticks_per_sec);
  std::fprintf(f, "    \"full_scan_ticks_per_sec\": %.1f,\n", g_gate.full_scan_ticks_per_sec);
  std::fprintf(f, "    \"speedup_x\": %.3f,\n", g_gate.speedup);
  std::fprintf(f, "    \"required_x\": %.1f,\n", kRequiredSpeedup);
  std::fprintf(f, "    \"p99_tick_ns\": %.0f,\n", g_gate.p99_tick_ns);
  std::fprintf(f, "    \"p99_limit_ns\": %.0f,\n", kP99LimitNs);
  std::fprintf(f, "    \"pass\": %s\n", gate_pass() ? "true" : "false");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu results, gate %s)\n", path.c_str(), g_rows.size(),
              gate_pass() ? "PASS" : "FAIL");
}

void reproduce() {
  bench::print_header("E22", "daemon tick-path scaling (attention bitmap vs full scan)");
  std::printf("  1024-slot sharded registry; the daemon services only slots flagged in\n"
              "  per-shard attention bitmaps, with a periodic full sweep as the lost-bit\n"
              "  safety net (docs/DAEMON.md 'Scaling the tick path').\n\n");
  bench::print_section("scan path at 1024 slots, 32 idle clients");
  run_scan_path_gate();
  bench::print_section("loaded tick tail (one telemetry sample per client per tick)");
  run_loaded_tail();
  emit_json();
}

void BM_DaemonTickBitmap(benchmark::State& state) {
  Fleet fleet("bm-bitmap", /*full_sweep_every_ticks=*/0);
  fleet.grow_to(kGateActive);
  for (auto _ : state) {
    state.PauseTiming();
    fleet.heartbeat_all();
    state.ResumeTiming();
    fleet.tick();
  }
}

void BM_DaemonTickFullScan(benchmark::State& state) {
  Fleet fleet("bm-full", /*full_sweep_every_ticks=*/1);
  fleet.grow_to(kGateActive);
  for (auto _ : state) {
    state.PauseTiming();
    fleet.heartbeat_all();
    state.ResumeTiming();
    fleet.tick();
  }
}

BENCHMARK(BM_DaemonTickBitmap)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DaemonTickFullScan)->Unit(benchmark::kMicrosecond);

}  // namespace

NUMASHARE_BENCH_MAIN(reproduce)
