// E21 — memory-side control: locality-aware vs locality-blind stealing,
// priced by the SimulatedBackend.
//
// PR 8 gives the runtime a memory side (docs/MEMORY.md): node-affine
// datablock arenas, a steal path that ranks cross-node victims by the
// remote-pull penalty, and reallocation-tick migration. This bench
// quantifies what that is worth, two ways:
//
//  1. Placement quality (the committed gate): a deterministic virtual-time
//     scheduler replays the same drain — pre-queued streaming tasks, one
//     FIFO per home node, thieves helping when local work runs dry — under
//     the two victim policies. Every task's execution is priced by
//     SimulatedBackend::remote_access_penalty (bytes / local bandwidth x
//     penalty(home -> executing)), so the numbers are pure model
//     arithmetic: deterministic, sanitizer-independent, identical in quick
//     runs. The gate requires aware >= 1.3x blind throughput on the
//     bw_skew scenario (a thin 1 GB/s link next to a fat 12 GB/s one: the
//     blind thief's round-robin victim pick drags 32 MB blocks across the
//     thin link; the aware thief's footprint/bandwidth ranking never does).
//
//  2. Steal-path cost (the regression gate): the ranking runs inside
//     find_task, so it must not tax the real steal path. Interleaved A/B
//     rounds on a live 4-worker runtime record the unsampled steal-latency
//     histograms with locality_aware_stealing on and off; the merged aware
//     p99 must stay within 1.05x of blind (plus a 1 us clock/bucket noise
//     floor). Timing, so enforced only on full unsanitized runs.
//
// Emits machine-readable results to BENCH_memory.json (path overridable
// via NS_BENCH_MEMORY_OUT) in the numashare-bench-memory/1 schema;
// scripts/check_bench_json.py validates it in CI.
#include "bench_support.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"
#include "runtime/numa_arena.hpp"
#include "runtime/runtime.hpp"
#include "topology/machine.hpp"

namespace {

using namespace numashare;

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

bool quick_mode() {
  const char* q = std::getenv("NS_BENCH_QUICK");
  return q != nullptr && q[0] != '\0' && q[0] != '0';
}

constexpr double kRequiredAdvantage = 1.3;
constexpr const char* kGateScenario = "bw_skew";
constexpr double kStealP99LimitX = 1.05;
/// Bucket resolution is 3.125% and steal latencies sit in single-digit
/// microseconds: below this absolute slack a p99 delta is clock noise,
/// not a regression.
constexpr double kStealP99FloorNs = 1000.0;

// ---------------------------------------------------------------------------
// Part 1: the virtual-time drain, priced by the SimulatedBackend.

/// One pre-queued streaming task: reads `bytes` resident on `home` once.
struct SimTask {
  std::uint64_t bytes = 0;
  topo::NodeId home = 0;
};

struct Scenario {
  std::string name;
  std::string blurb;
  topo::Machine machine;
  std::vector<SimTask> tasks;
  std::uint64_t poach_threshold = std::uint64_t{4} << 20;
};

/// The gate machine: three single-core 12 GB/s nodes, but the interconnect
/// is skewed — node 0 reaches the idle node 2 over a 1 GB/s link, node 1
/// over a full-width 12 GB/s one. Node 2's core was just granted to the
/// app (a reallocation tick); whether its help is worth anything depends
/// entirely on *whose* blocks it pulls.
topo::Machine skewed_machine() {
  topo::Machine machine;
  machine.add_node(1, 3.0, 12.0);
  machine.add_node(1, 3.0, 12.0);
  machine.add_node(1, 3.0, 12.0);
  machine.set_link_bandwidth(0, 1, 5.0);
  machine.set_link_bandwidth(1, 0, 5.0);
  machine.set_link_bandwidth(0, 2, 1.0);
  machine.set_link_bandwidth(2, 0, 1.0);
  machine.set_link_bandwidth(1, 2, 12.0);
  machine.set_link_bandwidth(2, 1, 12.0);
  return machine;
}

std::vector<Scenario> make_scenarios() {
  constexpr std::uint64_t kBlock = std::uint64_t{32} << 20;
  std::vector<Scenario> scenarios;
  {
    // The gate scenario. Both producers hold 32 MB blocks; node 1 holds
    // more of them. The blind thief's first victim is node 0 — one 32 MB
    // pull across the 1 GB/s link prices at ~19x local and pins the thief
    // for the whole drain. The aware ranking (footprint / link bandwidth,
    // docs/MEMORY.md) sends every pull across the fat link instead. The
    // poach threshold is lifted above the block size so the gate isolates
    // victim *ranking*; the veto has its own unit tests.
    Scenario s{kGateScenario,
               "32 MB blocks behind a 1 GB/s vs a 12 GB/s link to the helper",
               skewed_machine(),
               {},
               std::uint64_t{64} << 20};
    for (int i = 0; i < 6; ++i) s.tasks.push_back({kBlock, 0});
    for (int i = 0; i < 16; ++i) s.tasks.push_back({kBlock, 1});
    scenarios.push_back(std::move(s));
  }
  {
    // The no-win case: symmetric full-width links, data spread evenly.
    // Every victim prices the same, so ranking cannot help — this row
    // documents that aware does not *lose* either. The poach threshold is
    // lifted here as well: with every block over the threshold on a
    // symmetric machine the one-shot veto is pure bounce overhead, a
    // trade-off the locality_steal_test unit suite covers.
    Scenario s{"spread_even",
               "symmetric 12 GB/s links, 8 MB blocks spread over both producers",
               topo::Machine::symmetric(3, 1, 3.0, 12.0, 12.0),
               {},
               std::uint64_t{64} << 20};
    for (int i = 0; i < 8; ++i) s.tasks.push_back({std::uint64_t{8} << 20, 0});
    for (int i = 0; i < 8; ++i) s.tasks.push_back({std::uint64_t{8} << 20, 1});
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

struct SimResult {
  double makespan_s = 0.0;
  double gbps = 0.0;
  std::uint64_t steals = 0;
  std::uint64_t remote_bytes = 0;
};

/// Deterministic list scheduler: earliest-free worker first (ties by
/// index), owners pop their home FIFO from the front, thieves take from
/// the back (the deque discipline). Execution is priced by the simulated
/// backend; an empty-handed round parks the worker for the runtime's idle
/// park timeout. The only difference between the two runs is the victim
/// policy — blind round-robin vs penalty-ranked with the one-shot poach
/// veto — exactly the switch RuntimeOptions::locality_aware_stealing flips.
SimResult simulate(const Scenario& s, bool aware) {
  const rt::SimulatedBackend backend(s.machine);
  const auto& nodes = s.machine.nodes();
  const std::size_t node_count = nodes.size();
  std::vector<std::deque<std::size_t>> queue(node_count);
  std::vector<double> pending_bytes(node_count, 0.0);
  double total_bytes = 0.0;
  for (std::size_t i = 0; i < s.tasks.size(); ++i) {
    queue[s.tasks[i].home].push_back(i);
    pending_bytes[s.tasks[i].home] += static_cast<double>(s.tasks[i].bytes);
    total_bytes += static_cast<double>(s.tasks[i].bytes);
  }
  std::vector<char> bounced(s.tasks.size(), 0);

  struct SimWorker {
    double free_at = 0.0;
    topo::NodeId node = 0;
    std::uint32_t rr = 0;  // blind round-robin cursor
    bool done = false;
  };
  std::vector<SimWorker> workers;
  for (const auto& n : nodes) {
    for (std::size_t c = 0; c < n.cores.size(); ++c) {
      workers.push_back({0.0, n.id, static_cast<std::uint32_t>(n.id + 1), false});
    }
  }

  constexpr double kParkSeconds = 500e-6;  // RuntimeOptions::idle_park_us
  constexpr std::size_t kNone = ~std::size_t{0};
  SimResult result;
  while (true) {
    SimWorker* w = nullptr;
    for (auto& candidate : workers) {
      if (candidate.done) continue;
      if (w == nullptr || candidate.free_at < w->free_at) w = &candidate;
    }
    if (w == nullptr) break;

    std::size_t picked = kNone;
    bool stolen = false;
    if (!queue[w->node].empty()) {
      picked = queue[w->node].front();
      queue[w->node].pop_front();
    } else if (aware) {
      std::vector<std::pair<double, topo::NodeId>> order;
      for (topo::NodeId n = 0; n < node_count; ++n) {
        if (n == w->node || queue[n].empty()) continue;
        const double bw = s.machine.link_bandwidth(n, w->node);
        order.emplace_back(bw > 0.0 ? pending_bytes[n] / bw : pending_bytes[n], n);
      }
      std::stable_sort(order.begin(), order.end(),
                       [](const auto& a, const auto& b) { return a.first < b.first; });
      for (const auto& [penalty, n] : order) {
        const std::size_t candidate = queue[n].back();
        if (s.tasks[candidate].bytes >= s.poach_threshold && !bounced[candidate]) {
          bounced[candidate] = 1;  // one-shot veto: bounce, move to next victim
          continue;
        }
        picked = candidate;
        queue[n].pop_back();
        stolen = true;
        break;
      }
    } else {
      for (std::size_t k = 0; k < node_count; ++k) {
        const auto n = static_cast<topo::NodeId>((w->rr + k) % node_count);
        if (n == w->node || queue[n].empty()) continue;
        picked = queue[n].back();
        queue[n].pop_back();
        w->rr = static_cast<std::uint32_t>(n + 1);
        stolen = true;
        break;
      }
    }

    if (picked == kNone) {
      bool anything_left = false;
      for (const auto& q : queue) anything_left = anything_left || !q.empty();
      if (!anything_left) {
        w->done = true;
        continue;
      }
      w->free_at += kParkSeconds;  // all candidates vetoed: park and retry
      continue;
    }

    const SimTask& task = s.tasks[picked];
    pending_bytes[task.home] -= static_cast<double>(task.bytes);
    const double seconds = static_cast<double>(task.bytes) / 1e9 /
                           nodes[w->node].memory_bandwidth *
                           backend.remote_access_penalty(task.home, w->node);
    if (stolen) {
      ++result.steals;
      if (task.home != w->node) result.remote_bytes += task.bytes;
    }
    w->free_at += seconds;
    result.makespan_s = std::max(result.makespan_s, w->free_at);
  }
  result.gbps = result.makespan_s > 0.0 ? total_bytes / 1e9 / result.makespan_s : 0.0;
  return result;
}

// ---------------------------------------------------------------------------
// Rows + gates + JSON.

struct Row {
  std::string name;
  std::string scenario;
  std::string unit;
  double value = 0.0;
};

std::vector<Row> g_rows;

void record(const std::string& name, const std::string& scenario, const std::string& unit,
            double value) {
  g_rows.push_back({name, scenario, unit, value});
}

struct Gate {
  double blind_gbps = 0.0;
  double aware_gbps = 0.0;
  double advantage = 0.0;
  bool measured = false;
};
Gate g_gate;

struct StealGate {
  double blind_p99_ns = 0.0;
  double aware_p99_ns = 0.0;
  double ratio = 0.0;
  bool measured = false;
  bool enforced = false;
  bool pass = false;
};
StealGate g_steal_gate;

void run_scenario(const Scenario& s) {
  const SimResult blind = simulate(s, /*aware=*/false);
  const SimResult aware = simulate(s, /*aware=*/true);
  const double advantage = blind.gbps > 0.0 ? aware.gbps / blind.gbps : 0.0;
  record("blind", s.name, "gbps", blind.gbps);
  record("aware", s.name, "gbps", aware.gbps);
  record("advantage", s.name, "x", advantage);
  record("blind_makespan", s.name, "ms", blind.makespan_s * 1e3);
  record("aware_makespan", s.name, "ms", aware.makespan_s * 1e3);
  if (s.name == kGateScenario) {
    g_gate.blind_gbps = blind.gbps;
    g_gate.aware_gbps = aware.gbps;
    g_gate.advantage = advantage;
    g_gate.measured = true;
  }
  std::printf("  %-12s %-58s\n", s.name.c_str(), s.blurb.c_str());
  std::printf("    blind %6.2f GB/s (%.1f ms, %llu remote MB)   aware %6.2f GB/s "
              "(%.1f ms, %llu remote MB)   advantage %5.2fx\n",
              blind.gbps, blind.makespan_s * 1e3,
              static_cast<unsigned long long>(blind.remote_bytes >> 20), aware.gbps,
              aware.makespan_s * 1e3,
              static_cast<unsigned long long>(aware.remote_bytes >> 20), advantage);
}

/// Reallocation-tick migration payoff, straight from the backend's price
/// list: a 64 MB block about to be streamed 6 times from the wrong node
/// either pays the remote penalty every pass, or one bounded migration and
/// then local bandwidth (docs/MEMORY.md "Migration on reallocation ticks").
void run_migration_payoff() {
  const auto machine = topo::Machine::symmetric(2, 2, 1.0, 12.0, 2.0);
  const rt::SimulatedBackend backend(machine);
  constexpr std::uint64_t kBytes = std::uint64_t{64} << 20;
  constexpr int kPasses = 6;
  const double local_pass =
      static_cast<double>(kBytes) / 1e9 / machine.node(1).memory_bandwidth;
  const double remote_pass = local_pass * backend.remote_access_penalty(0, 1);
  const double stay = kPasses * remote_pass;
  const double migrate = backend.migrate_seconds(kBytes, 0, 1) + kPasses * local_pass;
  const double payoff = migrate > 0.0 ? stay / migrate : 0.0;
  record("migrate_cost", "repeat6_64mb", "ms",
         backend.migrate_seconds(kBytes, 0, 1) * 1e3);
  record("migrate_payoff", "repeat6_64mb", "x", payoff);
  std::printf("  migrate-then-stream vs stream-remote (64 MB x 6 passes): "
              "%5.2fx payoff (one migration costs %.1f ms)\n",
              payoff, backend.migrate_seconds(kBytes, 0, 1) * 1e3);
}

// ---------------------------------------------------------------------------
// Part 2: the real steal path, aware vs blind, interleaved A/B rounds.

/// One drain on a live runtime: every task streams a 64 KB block resident
/// on node 0, so the other nodes' workers live on the cross-node steal
/// path (reluctance zeroed). Returns the merged unsampled steal-latency
/// distribution.
obs::HistogramSnapshot steal_round(const topo::Machine& machine, bool aware,
                                   int tasks_per_round) {
  rt::RuntimeOptions options;
  options.name = aware ? "steal-aware" : "steal-blind";
  options.locality_aware_stealing = aware;
  options.cross_node_reluctance = 0;
  options.latency_sample_shift = 0;
  rt::Runtime runtime(machine, options);
  constexpr std::size_t kWords = (64 << 10) / sizeof(std::uint64_t);
  auto block = runtime.create_datablock(kWords * sizeof(std::uint64_t), 0);
  auto words = block->as_span<std::uint64_t>();
  for (std::size_t i = 0; i < kWords; ++i) words[i] = i;
  for (int i = 0; i < tasks_per_round; ++i) {
    // A few microseconds of streaming per task keeps the thieves fed
    // without hiding the steal path behind compute.
    runtime.spawn_with_data(
        [words](rt::TaskContext&) {
          std::uint64_t sum = 0;
          for (std::size_t i = 0; i < kWords; ++i) sum += words[i];
          benchmark::DoNotOptimize(sum);
        },
        {rt::Runtime::DataAccess::read(block)});
  }
  runtime.wait_idle();
  return runtime.latency_snapshot().steal;
}

/// Interleaved A/B rounds (order flipped each pair so machine drift hits
/// both policies); returns {blind, aware} merged distributions.
std::pair<obs::HistogramSnapshot, obs::HistogramSnapshot> steal_ab(
    const topo::Machine& machine, int rounds, int tasks_per_round) {
  obs::HistogramSnapshot blind;
  obs::HistogramSnapshot aware;
  for (int r = 0; r < rounds; ++r) {
    if (r % 2 == 0) {
      aware.merge(steal_round(machine, true, tasks_per_round));
      blind.merge(steal_round(machine, false, tasks_per_round));
    } else {
      blind.merge(steal_round(machine, false, tasks_per_round));
      aware.merge(steal_round(machine, true, tasks_per_round));
    }
  }
  return {std::move(blind), std::move(aware)};
}

void print_steal_pair(const char* label, const obs::HistogramSnapshot& blind,
                      const obs::HistogramSnapshot& aware, double ratio) {
  std::printf("  %s\n", label);
  std::printf("    blind  p50 %7.0f ns  p99 %8.0f ns  (%llu steals)\n",
              blind.percentile(50.0), blind.percentile(99.0),
              static_cast<unsigned long long>(blind.count));
  std::printf("    aware  p50 %7.0f ns  p99 %8.0f ns  (%llu steals)\n",
              aware.percentile(50.0), aware.percentile(99.0),
              static_cast<unsigned long long>(aware.count));
  std::printf("    p99 ratio %5.3fx\n", ratio);
}

void record_steal_rows(const std::string& scenario, const obs::HistogramSnapshot& blind,
                       const obs::HistogramSnapshot& aware, double ratio) {
  // A trimmed quick round can legitimately drain before any thief wakes;
  // the checker treats the rows as optional on quick documents.
  if (blind.count == 0 || aware.count == 0) return;
  record("steal_p50_blind", scenario, "ns", blind.percentile(50.0));
  record("steal_p50_aware", scenario, "ns", aware.percentile(50.0));
  record("steal_p99_blind", scenario, "ns", blind.percentile(99.0));
  record("steal_p99_aware", scenario, "ns", aware.percentile(99.0));
  record("steal_samples_blind", scenario, "count", static_cast<double>(blind.count));
  record("steal_samples_aware", scenario, "count", static_cast<double>(aware.count));
  record("steal_p99_ratio", scenario, "x", ratio);
}

void run_steal_timings() {
  const int rounds = quick_mode() ? 2 : 10;
  const int tasks_per_round = quick_mode() ? 1000 : 4000;

  // The gated pair: the 2x2 shape bench_spawn uses. With one candidate
  // victim per thief the ranking short-circuits, so enabling the option
  // must cost nothing here.
  const auto [blind, aware] =
      steal_ab(topo::Machine::symmetric(2, 2, 1.0, 10.0, 5.0), rounds, tasks_per_round);
  const double blind_p99 = blind.percentile(99.0);
  const double aware_p99 = aware.percentile(99.0);
  const double ratio = blind_p99 > 0.0 ? aware_p99 / blind_p99 : 0.0;
  record_steal_rows("steal_2x2", blind, aware, ratio);
  g_steal_gate.blind_p99_ns = blind_p99;
  g_steal_gate.aware_p99_ns = aware_p99;
  g_steal_gate.ratio = ratio;
  g_steal_gate.measured = blind.count > 0 && aware.count > 0;
  g_steal_gate.enforced = !quick_mode() && !kSanitized;
  g_steal_gate.pass = g_steal_gate.measured &&
                      aware_p99 <= blind_p99 * kStealP99LimitX + kStealP99FloorNs;
  char label[96];
  std::snprintf(label, sizeof(label), "gated: 2x2, %d x %d tasks each%s", rounds,
                tasks_per_round,
                g_steal_gate.enforced ? "" : " (not enforced on quick/sanitized runs)");
  print_steal_pair(label, blind, aware, ratio);

  // Documentation pair: four single-core nodes, three candidate victims,
  // so the footprint ranking genuinely ranks. Not gated — at sub-100 ns
  // baselines the ratio is dominated by tens of nanoseconds of ranking
  // arithmetic that any task's execution dwarfs.
  const auto [blind4, aware4] =
      steal_ab(topo::Machine::symmetric(4, 1, 1.0, 10.0, 5.0), rounds, tasks_per_round);
  const double blind4_p99 = blind4.percentile(99.0);
  const double ratio4 = blind4_p99 > 0.0 ? aware4.percentile(99.0) / blind4_p99 : 0.0;
  record_steal_rows("steal_4n", blind4, aware4, ratio4);
  print_steal_pair("documented: 4 nodes, ranking live (ungated)", blind4, aware4,
                   ratio4);
}

void emit_json() {
  const char* env = std::getenv("NS_BENCH_MEMORY_OUT");
  const std::string path = env != nullptr && env[0] != '\0' ? env : "BENCH_memory.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_datablock: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"numashare-bench-memory/1\",\n");
  std::fprintf(f, "  \"bench\": \"bench_datablock\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick_mode() ? "true" : "false");
  std::fprintf(f, "  \"sanitized\": %s,\n", kSanitized ? "true" : "false");
  std::fprintf(f, "  \"host_cpus\": %u,\n", std::thread::hardware_concurrency());
  std::fprintf(f,
               "  \"protocol\": \"placement rows replay the same virtual-time drain "
               "under blind vs penalty-ranked victim policies, priced by "
               "SimulatedBackend::remote_access_penalty — deterministic model "
               "arithmetic, so the advantage gate holds in quick and sanitized runs "
               "too; the steal gate merges interleaved A/B rounds of the real "
               "runtime's unsampled steal-latency histograms and allows a 1 us "
               "absolute noise floor on the p99 ratio, enforced on full unsanitized "
               "runs\",\n");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"scenario\": \"%s\", \"unit\": \"%s\", "
                 "\"value\": %.3f}%s\n",
                 r.name.c_str(), r.scenario.c_str(), r.unit.c_str(), r.value,
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"gate\": {\n");
  std::fprintf(f, "    \"scenario\": \"%s\",\n", kGateScenario);
  std::fprintf(f, "    \"measured\": %s,\n", g_gate.measured ? "true" : "false");
  std::fprintf(f, "    \"blind_gbps\": %.3f,\n", g_gate.blind_gbps);
  std::fprintf(f, "    \"aware_gbps\": %.3f,\n", g_gate.aware_gbps);
  std::fprintf(f, "    \"advantage_x\": %.3f,\n", g_gate.advantage);
  std::fprintf(f, "    \"required_x\": %.1f,\n", kRequiredAdvantage);
  std::fprintf(f, "    \"pass\": %s\n",
               g_gate.measured && g_gate.advantage >= kRequiredAdvantage ? "true"
                                                                        : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"steal_gate\": {\n");
  std::fprintf(f, "    \"measured\": %s,\n", g_steal_gate.measured ? "true" : "false");
  std::fprintf(f, "    \"enforced\": %s,\n", g_steal_gate.enforced ? "true" : "false");
  std::fprintf(f, "    \"blind_p99_ns\": %.0f,\n", g_steal_gate.blind_p99_ns);
  std::fprintf(f, "    \"aware_p99_ns\": %.0f,\n", g_steal_gate.aware_p99_ns);
  std::fprintf(f, "    \"ratio_x\": %.3f,\n", g_steal_gate.ratio);
  std::fprintf(f, "    \"limit_x\": %.2f,\n", kStealP99LimitX);
  std::fprintf(f, "    \"floor_ns\": %.0f,\n", kStealP99FloorNs);
  std::fprintf(f, "    \"pass\": %s\n", g_steal_gate.pass ? "true" : "false");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  const bool gate_ok = g_gate.measured && g_gate.advantage >= kRequiredAdvantage;
  std::printf("\nwrote %s (%zu results, advantage gate %s, steal gate %s)\n",
              path.c_str(), g_rows.size(), gate_ok ? "PASS" : "FAIL",
              g_steal_gate.pass ? "PASS"
                                : (g_steal_gate.enforced ? "FAIL" : "unenforced"));
}

void reproduce() {
  bench::print_header("E21", "memory-side control (locality-aware vs blind stealing)");
  std::printf("  Pre-queued streaming tasks drain through the two victim policies\n"
              "  under identical virtual-time pricing (docs/MEMORY.md). 'advantage'\n"
              "  is the aware/blind throughput ratio; bw_skew is the committed gate.\n\n");
  bench::print_section("placement quality (virtual time, simulated backend)");
  for (const auto& s : make_scenarios()) run_scenario(s);
  bench::print_section("reallocation-tick migration payoff");
  run_migration_payoff();
  bench::print_section("steal-path cost (real runtime, aware vs blind)");
  run_steal_timings();
  emit_json();
}

void BM_DrainSimAware(benchmark::State& state) {
  const auto scenarios = make_scenarios();
  for (auto _ : state) {
    auto result = simulate(scenarios.front(), /*aware=*/true);
    benchmark::DoNotOptimize(result.makespan_s);
  }
}
BENCHMARK(BM_DrainSimAware)->Unit(benchmark::kMicrosecond);

void BM_DrainSimBlind(benchmark::State& state) {
  const auto scenarios = make_scenarios();
  for (auto _ : state) {
    auto result = simulate(scenarios.front(), /*aware=*/false);
    benchmark::DoNotOptimize(result.makespan_s);
  }
}
BENCHMARK(BM_DrainSimBlind)->Unit(benchmark::kMicrosecond);

void BM_MigratePrice(benchmark::State& state) {
  const auto machine = topo::Machine::symmetric(2, 2, 1.0, 12.0, 2.0);
  const rt::SimulatedBackend backend(machine);
  for (auto _ : state) {
    double s = backend.migrate_seconds(std::size_t{64} << 20, 0, 1);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_MigratePrice);

}  // namespace

NUMASHARE_BENCH_MAIN(reproduce)
