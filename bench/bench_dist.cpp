// E10 — §V distributed environment: how much of the on-node speedup from
// dynamic core allocation survives at cluster scale, as a function of work
// distribution (static vs dynamic) and synchronization tightness.
//
// Per-node speedups come from the on-node model itself: the model-guided
// allocation vs the even allocation on the paper's fig.2 mix gives 254/140.
#include "bench_support.hpp"
#include "common/table.hpp"
#include "core/paper_scenarios.hpp"
#include "core/roofline.hpp"
#include "dist/cluster.hpp"

namespace {

using namespace numashare;

double on_node_speedup() {
  const auto uneven = model::paper::table1();
  const auto even = model::paper::table2();
  const double best = model::solve(uneven.machine, uneven.apps, uneven.allocation).total_gflops;
  const double base = model::solve(even.machine, even.apps, even.allocation).total_gflops;
  return best / base;  // 254/140 = 1.814
}

void reproduce() {
  bench::print_header("E10 / distributed model",
                      "translating on-node speedup to cluster speedup (paper §V)");
  const double s = on_node_speedup();
  std::printf("  on-node speedup from NUMA-aware allocation (model, fig.2 mix): %.3fx\n", s);

  bench::print_section("uniform speedup on 16 nodes, barrier-tightness sweep");
  TextTable sweep({"barrier fraction", "static", "dynamic"});
  dist::ClusterWorkload workload;
  workload.node_speedups.assign(16, s);
  for (double b : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    workload.barrier_fraction = b;
    sweep.add_row({fmt_fixed(b, 1),
                   fmt_fixed(dist::overall_speedup(workload, dist::Distribution::kStatic), 3),
                   fmt_fixed(dist::overall_speedup(workload, dist::Distribution::kDynamic), 3)});
  }
  std::printf("%s", sweep.render().c_str());
  std::printf("  uniform speedups translate fully either way — heterogeneity is what\n"
              "  separates the schemes:\n");

  bench::print_section("heterogeneous speedups (half the nodes gain nothing)");
  dist::ClusterWorkload uneven;
  uneven.node_speedups.assign(16, 1.0);
  for (std::size_t n = 0; n < 8; ++n) uneven.node_speedups[n] = s;
  TextTable het({"barrier fraction", "static", "dynamic", "dynamic (simulated, 64 tasks)"});
  uneven.iterations = 5;
  for (double b : {0.0, 0.5, 1.0}) {
    uneven.barrier_fraction = b;
    const double simulated =
        dist::baseline_makespan(uneven, 64) /
        dist::simulate_makespan(uneven, dist::Distribution::kDynamic, 64);
    het.add_row({fmt_fixed(b, 1),
                 fmt_fixed(dist::overall_speedup(uneven, dist::Distribution::kStatic), 3),
                 fmt_fixed(dist::overall_speedup(uneven, dist::Distribution::kDynamic), 3),
                 fmt_fixed(simulated, 3)});
  }
  std::printf("%s", het.render().c_str());

  bench::print_section("paper claims");
  uneven.barrier_fraction = 1.0;
  const double tight = dist::overall_speedup(uneven, dist::Distribution::kStatic);
  uneven.barrier_fraction = 0.0;
  const double loose = dist::overall_speedup(uneven, dist::Distribution::kDynamic);
  std::printf("  tight sync, static work: speedup %.3f — 'the benefit ... is rather "
              "limited' %s\n", tight, tight < 1.05 ? "[OK]" : "[SHAPE]");
  std::printf("  loose sync, dynamic work: speedup %.3f of local %.3f — 'most of the "
              "local speedup should translate' %s\n", loose, s,
              loose > 1.0 + 0.8 * (s - 1.0) / 2.0 ? "[OK]" : "[SHAPE]");
}

void BM_ClosedFormSpeedup(benchmark::State& state) {
  dist::ClusterWorkload workload;
  workload.node_speedups.assign(64, 1.5);
  workload.barrier_fraction = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dist::overall_speedup(workload, dist::Distribution::kDynamic));
  }
}
BENCHMARK(BM_ClosedFormSpeedup);

void BM_SimulatedMakespan(benchmark::State& state) {
  dist::ClusterWorkload workload;
  workload.node_speedups.assign(static_cast<std::size_t>(state.range(0)), 1.5);
  for (std::size_t n = 0; n < workload.node_speedups.size(); n += 2) {
    workload.node_speedups[n] = 1.0;
  }
  workload.barrier_fraction = 0.3;
  workload.iterations = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dist::simulate_makespan(workload, dist::Distribution::kDynamic, 128));
  }
}
BENCHMARK(BM_SimulatedMakespan)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

NUMASHARE_BENCH_MAIN(reproduce)
