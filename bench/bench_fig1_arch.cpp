// E6 — Figure 1: the agent architecture on live runtimes.
//
// Two task-based applications (producer + consumer) co-run; the agent keeps
// the producer "only ahead by a small number of iterations" by shifting
// thread targets. Reproduced claim (the paper's ref [10] result): a large
// reduction in intermediate data with only marginal throughput change.
#include <atomic>
#include <chrono>
#include <thread>

#include "agent/agent.hpp"
#include "agent/policies.hpp"
#include "bench_support.hpp"
#include "common/table.hpp"
#include "topology/presets.hpp"

namespace {

using namespace numashare;
using namespace std::chrono_literals;

struct PipelineResult {
  double produced_per_s = 0.0;
  double consumed_per_s = 0.0;
  std::uint64_t peak_intermediate = 0;
  double mean_intermediate = 0.0;
};

/// Spin-work sized so a single iteration is ~tens of microseconds.
void busy_work(std::uint32_t units) {
  volatile double x = 1.0;
  for (std::uint32_t i = 0; i < units * 2000; ++i) x = x * 1.0000001 + 1e-9;
}

PipelineResult run_pipeline(bool coordinated, double seconds) {
  const auto machine = topo::Machine::symmetric(2, 2, 1.0, 10.0);
  rt::Runtime producer(machine, {.name = "producer"});
  rt::Runtime consumer(machine, {.name = "consumer"});

  agent::Channel chp, chc;
  agent::RuntimeAdapter adp(producer, chp), adc(consumer, chc);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> produced{0};
  std::atomic<std::uint64_t> consumed{0};

  // Producer: each iteration is one task; the producer's work per item is
  // half the consumer's, so unmanaged it runs away.
  std::function<void(rt::TaskContext&)> produce = [&](rt::TaskContext& ctx) {
    if (stop.load(std::memory_order_acquire)) return;
    busy_work(1);
    produced.fetch_add(1, std::memory_order_relaxed);
    ctx.runtime.report_progress();
    ctx.runtime.spawn(produce);
  };
  std::function<void(rt::TaskContext&)> consume = [&](rt::TaskContext& ctx) {
    if (stop.load(std::memory_order_acquire)) return;
    if (consumed.load(std::memory_order_relaxed) < produced.load(std::memory_order_relaxed)) {
      busy_work(2);
      consumed.fetch_add(1, std::memory_order_relaxed);
      ctx.runtime.report_progress();
    } else {
      std::this_thread::sleep_for(50us);  // starved; wait for stock
    }
    ctx.runtime.spawn(consume);
  };
  for (std::uint32_t i = 0; i < machine.core_count(); ++i) {
    producer.spawn(produce);
    consumer.spawn(consume);
  }

  agent::ProducerConsumerPolicy::Options options;
  options.min_lead = 2;
  options.max_lead = 8;
  std::unique_ptr<agent::Agent> the_agent;
  if (coordinated) {
    the_agent = std::make_unique<agent::Agent>(
        machine, std::make_unique<agent::ProducerConsumerPolicy>(options),
        agent::AgentOptions{.period_us = 1000});
    the_agent->add_app("producer", chp);
    the_agent->add_app("consumer", chc);
    adp.start(500);
    adc.start(500);
    the_agent->start();
  }

  // Sample the intermediate-data depth while the pipeline runs.
  std::uint64_t peak = 0;
  double depth_sum = 0.0;
  std::uint64_t samples = 0;
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count() <
         seconds) {
    const auto p = produced.load(std::memory_order_relaxed);
    const auto c = consumed.load(std::memory_order_relaxed);
    const std::uint64_t depth = p > c ? p - c : 0;
    peak = std::max(peak, depth);
    depth_sum += static_cast<double>(depth);
    ++samples;
    std::this_thread::sleep_for(1ms);
  }
  stop.store(true, std::memory_order_release);
  if (the_agent) the_agent->stop();
  adp.stop();
  adc.stop();
  producer.wait_idle();
  consumer.wait_idle();

  PipelineResult result;
  result.produced_per_s = static_cast<double>(produced.load()) / seconds;
  result.consumed_per_s = static_cast<double>(consumed.load()) / seconds;
  result.peak_intermediate = peak;
  result.mean_intermediate = samples ? depth_sum / static_cast<double>(samples) : 0.0;
  return result;
}

void reproduce() {
  bench::print_header("E6 / Figure 1",
                      "agent-coordinated producer/consumer vs uncoordinated baseline");
  const double seconds = 0.6;
  const auto baseline = run_pipeline(/*coordinated=*/false, seconds);
  const auto managed = run_pipeline(/*coordinated=*/true, seconds);

  TextTable table({"metric", "uncoordinated", "agent-coordinated"});
  table.add_row({"items consumed /s", fmt_fixed(baseline.consumed_per_s, 0),
                 fmt_fixed(managed.consumed_per_s, 0)});
  table.add_row({"items produced /s", fmt_fixed(baseline.produced_per_s, 0),
                 fmt_fixed(managed.produced_per_s, 0)});
  table.add_row({"peak intermediate items", fmt_compact(double(baseline.peak_intermediate)),
                 fmt_compact(double(managed.peak_intermediate))});
  table.add_row({"mean intermediate items", fmt_fixed(baseline.mean_intermediate, 1),
                 fmt_fixed(managed.mean_intermediate, 1)});
  std::printf("%s", table.render().c_str());

  bench::print_section("paper claims ([10], cited in §II)");
  const double reduction = baseline.mean_intermediate > 0
                               ? (1.0 - managed.mean_intermediate /
                                            baseline.mean_intermediate) * 100.0
                               : 0.0;
  std::printf("  intermediate data reduced by %.0f%% (paper: 'clear benefit on storage')\n",
              reduction);
  const double throughput_delta =
      baseline.consumed_per_s > 0
          ? (managed.consumed_per_s / baseline.consumed_per_s - 1.0) * 100.0
          : 0.0;
  std::printf("  consumer throughput delta: %+.1f%% (paper: 'only marginal (a few "
              "percent) improvement ... in some cases no measurable improvement')\n",
              throughput_delta);
}

void BM_AgentTick(benchmark::State& state) {
  const auto machine = topo::Machine::symmetric(2, 2, 1.0, 10.0);
  rt::Runtime app(machine, {.name = "tick"});
  agent::Channel channel;
  agent::RuntimeAdapter adapter(app, channel);
  agent::Agent the_agent(machine, std::make_unique<agent::FairSharePolicy>());
  the_agent.add_app("tick", channel);
  double now = 0.0;
  for (auto _ : state) {
    adapter.pump();
    benchmark::DoNotOptimize(the_agent.step(now += 0.001));
  }
}
BENCHMARK(BM_AgentTick);

void BM_TelemetryRoundTrip(benchmark::State& state) {
  const auto machine = topo::Machine::symmetric(2, 2, 1.0, 10.0);
  rt::Runtime app(machine, {.name = "rt"});
  agent::Channel channel;
  agent::RuntimeAdapter adapter(app, channel);
  for (auto _ : state) {
    adapter.pump();
    benchmark::DoNotOptimize(channel.telemetry.try_pop());
  }
}
BENCHMARK(BM_TelemetryRoundTrip);

}  // namespace

NUMASHARE_BENCH_MAIN(reproduce)
