// E3 — Figure 2: the three allocation scenarios (uneven, even, one node per
// app) as a series, with an ASCII rendering of each layout.
#include "bench_support.hpp"
#include "common/table.hpp"
#include "core/paper_scenarios.hpp"
#include "core/roofline.hpp"

namespace {

using namespace numashare;

void print_layout(const model::paper::Scenario& scenario) {
  // One row per node: which app occupies each core slot.
  const auto& machine = scenario.machine;
  std::printf("  layout (%s):\n", scenario.allocation.to_string().c_str());
  for (topo::NodeId n = 0; n < machine.node_count(); ++n) {
    std::string row = ns_format("    node {}: ", n);
    for (model::AppId a = 0; a < scenario.allocation.app_count(); ++a) {
      for (std::uint32_t t = 0; t < scenario.allocation.threads(a, n); ++t) {
        row += ns_format("[app{}]", a + 1);
      }
    }
    const std::uint32_t idle = machine.cores_in_node(n) - scenario.allocation.node_total(n);
    for (std::uint32_t t = 0; t < idle; ++t) row += "[ -- ]";
    std::printf("%s\n", row.c_str());
  }
}

void reproduce() {
  bench::print_header("E3 / Figure 2", "three ways of allocating threads to the fig.2 mix");
  const auto scenarios = model::paper::fig2();
  const char* names[] = {"a) uneven (1,1,1,5)", "b) even (2,2,2,2)", "c) node per app"};

  TextTable table({"scenario", "model GFLOPS", "paper GFLOPS"});
  std::size_t i = 0;
  for (const auto& scenario : scenarios) {
    const auto solution = model::solve(scenario.machine, scenario.apps, scenario.allocation);
    std::printf("\n%s\n", names[i]);
    print_layout(scenario);
    std::printf("  per-app GFLOPS:\n%s", solution.describe(scenario.apps).c_str());
    table.add_row({names[i], fmt_compact(solution.total_gflops, 2),
                   fmt_compact(scenario.paper_model_gflops, 2)});
    ++i;
  }
  bench::print_section("series (paper: 254 / 140 / 128)");
  std::printf("%s", table.render().c_str());
  std::printf("  ordering check: a > b > c (%s)\n",
              254.0 > 140.0 && 140.0 > 128.0 ? "matches the paper" : "MISMATCH");
}

void BM_SolveAllFig2Scenarios(benchmark::State& state) {
  const auto scenarios = model::paper::fig2();
  for (auto _ : state) {
    double total = 0.0;
    for (const auto& s : scenarios) {
      total += model::solve(s.machine, s.apps, s.allocation).total_gflops;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_SolveAllFig2Scenarios);

}  // namespace

NUMASHARE_BENCH_MAIN(reproduce)
