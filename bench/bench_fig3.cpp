// E4 — Figure 3: the NUMA-bad mix flips the Figure-2 verdict — dedicating a
// whole node to each app (with the bad app on its data node) now wins.
// Includes the cross-node traffic matrix the figure illustrates.
#include "bench_support.hpp"
#include "common/table.hpp"
#include "core/paper_scenarios.hpp"
#include "core/roofline.hpp"

namespace {

using namespace numashare;

void print_traffic_matrix(const model::Solution& solution, const topo::Machine& machine) {
  // exec node -> memory node GB/s, aggregated over groups.
  std::vector<std::vector<double>> traffic(machine.node_count(),
                                           std::vector<double>(machine.node_count(), 0.0));
  for (const auto& g : solution.groups) {
    traffic[g.exec_node][g.memory_node] += g.group_granted();
  }
  std::printf("  achieved traffic (GB/s, row = exec node, col = memory node):\n");
  for (topo::NodeId a = 0; a < machine.node_count(); ++a) {
    std::string row = "   ";
    for (topo::NodeId b = 0; b < machine.node_count(); ++b) {
      row += ns_format(" {}", fmt_fixed(traffic[a][b], 1));
    }
    std::printf("%s\n", row.c_str());
  }
}

void reproduce() {
  bench::print_header("E4 / Figure 3",
                      "3x NUMA-perfect AI=0.5 + 1x NUMA-bad AI=1 (data on node 0)");
  const auto even = model::paper::fig3_even();
  const auto whole = model::paper::fig3_node_per_app();
  std::printf("%s\n", even.machine.describe().c_str());

  bench::print_section("even allocation (2,2,2,2) — cross-node traffic from the bad app");
  const auto even_solution = model::solve(even.machine, even.apps, even.allocation);
  print_traffic_matrix(even_solution, even.machine);
  std::printf("%s", even_solution.describe(even.apps).c_str());

  bench::print_section("one node per app, bad app on its data node — all local");
  const auto whole_solution = model::solve(whole.machine, whole.apps, whole.allocation);
  print_traffic_matrix(whole_solution, whole.machine);
  std::printf("%s", whole_solution.describe(whole.apps).c_str());

  bench::print_section("paper comparison");
  // The paper prints 138 (exact arithmetic: 138.75) and 150.
  bench::print_comparison("even allocation GFLOPS", even_solution.total_gflops, 138.0, 1.0);
  bench::print_comparison("whole-node GFLOPS", whole_solution.total_gflops, 150.0, 0.01);
  std::printf("  verdict flip vs Figure 2: whole-node wins here (%s)\n",
              whole_solution.total_gflops > even_solution.total_gflops
                  ? "matches the paper"
                  : "MISMATCH");

  bench::print_section("ablation: what if the bad app lands on the wrong node?");
  auto wrong = whole;
  wrong.allocation = model::Allocation::node_per_app(wrong.machine, {0, 2, 3, 1});
  const auto wrong_solution = model::solve(wrong.machine, wrong.apps, wrong.allocation);
  std::printf("  bad app on node 1, data on node 0: %s GFLOPS (vs %s on-node)\n",
              fmt_compact(wrong_solution.total_gflops, 2).c_str(),
              fmt_compact(whole_solution.total_gflops, 2).c_str());
}

void BM_SolveFig3Even(benchmark::State& state) {
  const auto s = model::paper::fig3_even();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::solve(s.machine, s.apps, s.allocation).total_gflops);
  }
}
BENCHMARK(BM_SolveFig3Even);

void BM_SolveFig3WholeNode(benchmark::State& state) {
  const auto s = model::paper::fig3_node_per_app();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::solve(s.machine, s.apps, s.allocation).total_gflops);
  }
}
BENCHMARK(BM_SolveFig3WholeNode);

}  // namespace

NUMASHARE_BENCH_MAIN(reproduce)
