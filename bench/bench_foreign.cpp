// E19 — foreign-workload arbitration: foreign-blind vs foreign-aware
// placement under opaque background consumers.
//
// The paper's arbiter (§II) only commands the applications that link it;
// anything else on the machine silently distorts the model. This bench
// quantifies what pricing those opaque consumers (src/foreign, docs/FOREIGN.md
// "Modeling") is worth: for each scenario a foreign hog occupies part of the
// machine, two searches run — one blind to the hog, one aware of it — and
// both resulting allocations are then scored under the *true* contended
// model. The aware/blind throughput ratio is the value of arbitration; the
// committed gate requires >= 1.3x on the bw_shift scenario (a foreign draw
// emptying the fat controller of an asymmetric box, where blind and aware
// have strict, opposite optima).
//
// Also timed: the foreign-aware streaming search (the pricing must not blow
// up the §IV scheduling budget) and a steady-state scanner pass over a
// scripted 32-process procfs tree (what the daemon pays per monitor tick).
//
// Emits machine-readable results to BENCH_foreign.json (path overridable
// via NS_BENCH_FOREIGN_OUT) in the numashare-bench-foreign/1 schema;
// scripts/check_bench_json.py validates it in CI. The placement rows are
// pure model arithmetic — deterministic, sanitizer-independent — so the
// gate must pass even in NS_BENCH_QUICK smoke runs; quick mode only trims
// the timing repetitions.
#include "bench_support.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/optimizer.hpp"
#include "core/roofline.hpp"
#include "foreign/procfs_writer.hpp"
#include "foreign/scanner.hpp"
#include "obs/histogram.hpp"
#include "topology/machine.hpp"

namespace {

using namespace numashare;
using Clock = std::chrono::steady_clock;

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

bool quick_mode() {
  const char* q = std::getenv("NS_BENCH_QUICK");
  return q != nullptr && q[0] != '\0' && q[0] != '0';
}

constexpr double kRequiredAdvantage = 1.3;
constexpr const char* kGateScenario = "bw_shift";

struct Scenario {
  std::string name;
  std::string blurb;
  topo::Machine machine;
  std::vector<model::AppSpec> apps;
  model::ForeignLoad foreign;
};

/// Asymmetric box: node 0 carries the fat memory controller (12 GB/s),
/// node 1 the thin one (6 GB/s); 2 cores x 3 GFLOPS each side.
topo::Machine asymmetric_machine() {
  topo::Machine machine;
  machine.add_node(2, 3.0, 12.0);
  machine.add_node(2, 3.0, 6.0);
  machine.set_link_bandwidth(0, 1, 5.0);
  machine.set_link_bandwidth(1, 0, 5.0);
  return machine;
}

std::vector<Scenario> make_scenarios() {
  std::vector<Scenario> scenarios;
  {
    // The gate scenario. Blind, the mem-bound app strictly belongs on the
    // fat node 0 (6 vs 3 GFLOPS) and the compute-bound app is indifferent —
    // so blind commits mem@0/cpu@1. A foreign draw empties exactly that
    // controller; aware swaps the two apps (the cpu app doesn't care, the
    // mem app escapes to the thin-but-clean node). No ties, no tie-break
    // luck: both searches have strict, opposite optima.
    Scenario s{"bw_shift",
               "11.5/12 GB/s foreign draw on the fat node of an asymmetric 2x2",
               asymmetric_machine(),
               {model::AppSpec::numa_perfect("cpu", 100.0),
                model::AppSpec::numa_perfect("mem", 0.5)},
               {}};
    s.foreign.bandwidth = {11.5, 0.0};
    scenarios.push_back(std::move(s));
  }
  {
    // A symmetric bandwidth hog: node 0 keeps its cores but loses 8 of
    // 10 GB/s. Blind every split ties; aware the tie breaks toward the
    // clean node.
    Scenario s{"bw_hog",
               "foreign draw of 8/10 GB/s on node 0, cores free",
               topo::Machine::symmetric(2, 2, 1.0, 10.0, 5.0),
               {model::AppSpec::numa_perfect("cpu", 10.0),
                model::AppSpec::numa_perfect("mem", 0.5)},
               {}};
    s.foreign.bandwidth = {8.0, 0.0};
    scenarios.push_back(std::move(s));
  }
  {
    // The fence scenario: a hog owns node 0 outright — both cores busy and
    // the whole 4 GB/s controller drained. On a symmetric box the aggregate
    // is conserved wherever the victims sit (timesharing), so this row
    // documents the neutral case the monitor's fence handles instead.
    Scenario s{"node_hog",
               "foreign hog owns node 0 (2 cores + full 4 GB/s controller)",
               topo::Machine::symmetric(2, 2, 1.0, 4.0, 5.0),
               {model::AppSpec::numa_perfect("mem", 0.5),
                model::AppSpec::numa_bad("bad", 0.5, 1)},
               {}};
    s.foreign.busy_cores = {2.0, 0.0};
    s.foreign.bandwidth = {4.0, 0.0};
    scenarios.push_back(std::move(s));
  }
  {
    // Partial pressure on a bigger box: 3 of 4 cores and half the
    // controller on node 0, three cooperating apps.
    Scenario s{"busy_hog",
               "3/4 cores + 6/12 GB/s foreign on node 0 of a 2x4",
               topo::Machine::symmetric(2, 4, 1.0, 12.0, 6.0),
               {model::AppSpec::numa_perfect("cpu", 8.0),
                model::AppSpec::numa_perfect("mem", 0.5),
                model::AppSpec::numa_bad("bad", 1.0, 1)},
               {}};
    s.foreign.busy_cores = {3.0, 0.0};
    s.foreign.bandwidth = {6.0, 0.0};
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

struct Row {
  std::string name;
  std::string scenario;
  std::string unit;
  double value = 0.0;
};

std::vector<Row> g_rows;

struct Gate {
  double blind_gflops = 0.0;
  double aware_gflops = 0.0;
  double advantage = 0.0;
  bool measured = false;
};
Gate g_gate;

void record(const std::string& name, const std::string& scenario, const std::string& unit,
            double value) {
  g_rows.push_back({name, scenario, unit, value});
}

double true_score(const Scenario& s, const model::Allocation& allocation) {
  model::SolveOptions options;
  options.foreign = s.foreign;
  return model::score(model::solve(s.machine, s.apps, allocation, options),
                      model::Objective::kTotalGflops);
}

void run_scenario(const Scenario& s) {
  // Both engines search the identical space; only the aware one prices the
  // hog. Both winners are then scored under the true contended model —
  // the hog is on the machine whether the search believed in it or not.
  const auto blind = model::exhaustive_search(s.machine, s.apps,
                                              model::Objective::kTotalGflops,
                                              /*require_full=*/true, 1);
  const auto aware = model::exhaustive_search(s.machine, s.apps,
                                              model::Objective::kTotalGflops,
                                              /*require_full=*/true, 1, {}, s.foreign);
  const double blind_gflops = true_score(s, blind.allocation);
  const double aware_gflops = true_score(s, aware.allocation);
  const double advantage = blind_gflops > 0.0 ? aware_gflops / blind_gflops : 0.0;
  record("blind", s.name, "gflops", blind_gflops);
  record("aware", s.name, "gflops", aware_gflops);
  record("advantage", s.name, "x", advantage);
  if (s.name == kGateScenario) {
    g_gate.blind_gflops = blind_gflops;
    g_gate.aware_gflops = aware_gflops;
    g_gate.advantage = advantage;
    g_gate.measured = true;
  }
  std::printf("  %-10s %-52s blind %6.3f  aware %6.3f  advantage %5.2fx\n", s.name.c_str(),
              s.blurb.c_str(), blind_gflops, aware_gflops, advantage);
}

double best_of_us(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto start = Clock::now();
    fn();
    const double us = std::chrono::duration<double, std::micro>(Clock::now() - start).count();
    best = std::min(best, us);
  }
  return best;
}

/// best_of_us that also feeds every rep into an obs latency histogram, so
/// the JSON can carry the tail (p50/p99/p999/max), not just the best rep.
double timed_reps_us(int reps, obs::LatencyHistogram& hist,
                     const std::function<void()>& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto start = Clock::now();
    fn();
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        Clock::now() - start)
                        .count();
    hist.record(static_cast<std::uint64_t>(ns));
    best = std::min(best, static_cast<double>(ns) / 1000.0);
  }
  return best;
}

void run_timings(const std::vector<Scenario>& scenarios) {
  const int reps = quick_mode() ? 5 : 200;

  // Foreign-aware streaming search on the largest scenario. Every rep feeds
  // the tail distribution: on a co-tenant machine the search's p99 is what
  // bounds the scheduling tick, not its best case.
  const Scenario& big = scenarios.back();
  obs::LatencyHistogram search_hist;
  const double search_us = timed_reps_us(reps, search_hist, [&] {
    auto result = model::exhaustive_search(big.machine, big.apps,
                                           model::Objective::kTotalGflops,
                                           /*require_full=*/true, 1, {}, big.foreign);
    benchmark::DoNotOptimize(result.objective_value);
  });
  record("aware_search", big.name, "us_per_search", search_us);
  obs::HistogramSnapshot search_snap;
  search_hist.snapshot_into(search_snap);
  record("aware_search_p50", big.name, "us_per_search", search_snap.percentile(50.0) / 1000.0);
  record("aware_search_p99", big.name, "us_per_search", search_snap.percentile(99.0) / 1000.0);
  record("aware_search_p999", big.name, "us_per_search", search_snap.percentile(99.9) / 1000.0);
  record("aware_search_max", big.name, "us_per_search",
         static_cast<double>(search_snap.max_ns) / 1000.0);
  std::printf("  foreign-aware search (%s):  %10.1f us best, p50 %.1f  p99 %.1f  max %.1f\n",
              big.name.c_str(), search_us, search_snap.percentile(50.0) / 1000.0,
              search_snap.percentile(99.0) / 1000.0,
              static_cast<double>(search_snap.max_ns) / 1000.0);

  // Steady-state scanner pass over a scripted 32-process tree: the per-tick
  // cost the daemon pays for detection.
  foreign::ProcfsWriter proc;
  proc.set_cpu_times({{100, 100}, {100, 100}, {100, 100}, {100, 100}});
  for (std::int32_t pid = 100; pid < 132; ++pid) {
    proc.set_process(pid, "hog-" + std::to_string(pid), 50);
  }
  foreign::ScannerOptions scanner_options;
  scanner_options.proc_root = proc.root();
  scanner_options.ticks_per_second = 100;
  foreign::ForeignScanner scanner(topo::Machine::symmetric(2, 2, 1.0, 10.0, 5.0),
                                  scanner_options);
  double now = 1.0;
  scanner.scan(now);  // priming pass
  const double scan_us = best_of_us(reps, [&] {
    auto result = scanner.scan(now += 1.0);
    benchmark::DoNotOptimize(result.has_value());
  });
  record("scan", "procfs_32", "us_per_scan", scan_us);
  std::printf("  scanner pass (32 processes): %9.1f us\n", scan_us);
}

void emit_json() {
  const char* env = std::getenv("NS_BENCH_FOREIGN_OUT");
  const std::string path = env != nullptr && env[0] != '\0' ? env : "BENCH_foreign.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_foreign: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"numashare-bench-foreign/1\",\n");
  std::fprintf(f, "  \"bench\": \"bench_foreign\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick_mode() ? "true" : "false");
  std::fprintf(f, "  \"sanitized\": %s,\n", kSanitized ? "true" : "false");
  std::fprintf(f, "  \"host_cpus\": %u,\n", std::thread::hardware_concurrency());
  std::fprintf(f,
               "  \"protocol\": \"per scenario, a foreign-blind and a foreign-aware "
               "exhaustive search each pick an allocation; both are scored under the "
               "true contended model (SolveOptions.foreign) and 'advantage' is the "
               "aware/blind throughput ratio — deterministic model arithmetic, so the "
               "gate holds in quick and sanitized runs too; timing rows are best-of-N "
               "wall time\",\n");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"scenario\": \"%s\", \"unit\": \"%s\", "
                 "\"value\": %.3f}%s\n",
                 r.name.c_str(), r.scenario.c_str(), r.unit.c_str(), r.value,
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"gate\": {\n");
  std::fprintf(f, "    \"scenario\": \"%s\",\n", kGateScenario);
  std::fprintf(f, "    \"measured\": %s,\n", g_gate.measured ? "true" : "false");
  std::fprintf(f, "    \"blind_gflops\": %.3f,\n", g_gate.blind_gflops);
  std::fprintf(f, "    \"aware_gflops\": %.3f,\n", g_gate.aware_gflops);
  std::fprintf(f, "    \"advantage_x\": %.3f,\n", g_gate.advantage);
  std::fprintf(f, "    \"required_x\": %.1f,\n", kRequiredAdvantage);
  std::fprintf(f, "    \"pass\": %s\n",
               g_gate.measured && g_gate.advantage >= kRequiredAdvantage ? "true" : "false");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu results, gate %s)\n", path.c_str(), g_rows.size(),
              g_gate.measured && g_gate.advantage >= kRequiredAdvantage ? "PASS" : "FAIL");
}

void reproduce() {
  bench::print_header("E19", "foreign-workload arbitration (blind vs aware placement)");
  std::printf("  An opaque process occupies part of the machine. 'blind' places the\n"
              "  cooperating apps ignoring it; 'aware' prices it (docs/FOREIGN.md).\n"
              "  Both allocations are scored under the true contended model.\n\n");
  const auto scenarios = make_scenarios();
  bench::print_section("placement quality under a foreign hog");
  for (const auto& s : scenarios) run_scenario(s);
  bench::print_section("arbitration costs");
  run_timings(scenarios);
  emit_json();
}

void BM_ForeignAwareSearch(benchmark::State& state) {
  const auto machine = topo::Machine::symmetric(2, 4, 1.0, 12.0, 6.0);
  const std::vector<model::AppSpec> apps{model::AppSpec::numa_perfect("cpu", 8.0),
                                         model::AppSpec::numa_perfect("mem", 0.5),
                                         model::AppSpec::numa_bad("bad", 1.0, 1)};
  model::ForeignLoad foreign;
  foreign.busy_cores = {3.0, 0.0};
  foreign.bandwidth = {6.0, 0.0};
  for (auto _ : state) {
    auto result = model::exhaustive_search(machine, apps, model::Objective::kTotalGflops,
                                           true, 1, {}, foreign);
    benchmark::DoNotOptimize(result.objective_value);
  }
}
BENCHMARK(BM_ForeignAwareSearch)->Unit(benchmark::kMicrosecond);

void BM_ScannerPass(benchmark::State& state) {
  foreign::ProcfsWriter proc;
  proc.set_cpu_times({{100, 100}, {100, 100}, {100, 100}, {100, 100}});
  for (std::int32_t pid = 100; pid < 132; ++pid) {
    proc.set_process(pid, "hog-" + std::to_string(pid), 50);
  }
  foreign::ScannerOptions options;
  options.proc_root = proc.root();
  options.ticks_per_second = 100;
  foreign::ForeignScanner scanner(topo::Machine::symmetric(2, 2, 1.0, 10.0, 5.0), options);
  double now = 1.0;
  scanner.scan(now);
  for (auto _ : state) {
    auto result = scanner.scan(now += 1.0);
    benchmark::DoNotOptimize(result.has_value());
  }
}
BENCHMARK(BM_ScannerPass)->Unit(benchmark::kMicrosecond);

}  // namespace

NUMASHARE_BENCH_MAIN(reproduce)
