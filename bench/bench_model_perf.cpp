// E12 — engineering ablation: cost of the analytic solver and of the epoch
// simulator as machine size and app count grow. Relevant to §IV's worry
// that a "sophisticated, CPU-intensive scheduling algorithm" would itself
// perturb the machine: these numbers bound the agent's own footprint.
//
// The search timed here is the streaming branch-and-bound engine
// (docs/MODEL.md §7): it visits the same candidate family the old
// materialize-then-evaluate search did, but prunes subtrees whose admissible
// upper bound cannot beat the incumbent and solves each survivor through a
// reusable allocation-free scratch. The `evals` counter reports the full
// enumerated candidate count for scale; the engine itself typically solves
// only a fraction of it. bench_alloc_scale (E18) extends this sweep to the
// machine sizes where the brute force stops being runnable and records the
// before/after trajectory in BENCH_model.json.
#include "bench_support.hpp"
#include "common/table.hpp"
#include "core/optimizer.hpp"
#include "core/roofline.hpp"
#include "sim/simulator.hpp"
#include "topology/machine.hpp"

namespace {

using namespace numashare;

std::vector<model::AppSpec> make_apps(std::uint32_t count, std::uint32_t nodes) {
  std::vector<model::AppSpec> apps;
  for (std::uint32_t a = 0; a < count; ++a) {
    const double ai = 0.1 * (a + 1);
    if (a % 3 == 2) {
      apps.push_back(model::AppSpec::numa_bad("bad", ai, a % nodes));
    } else {
      apps.push_back(model::AppSpec::numa_perfect("perfect", ai));
    }
  }
  return apps;
}

void reproduce() {
  bench::print_header("E12 / solver cost", "model & simulator scaling (agent footprint)");
  std::printf("  The timings below (google-benchmark output) answer §IV's concern about\n"
              "  the agent's own CPU cost: one model solve on a 4-node machine is in the\n"
              "  microsecond range, an exhaustive constrained search in the millisecond\n"
              "  range — comfortably inside a multi-millisecond agent tick.\n");
}

void BM_SolveByNodes(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  const auto machine = topo::Machine::symmetric(nodes, 8, 10.0, 32.0, 10.0);
  const auto apps = make_apps(4, nodes);
  const auto allocation = model::Allocation::even(machine, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::solve(machine, apps, allocation).total_gflops);
  }
}
BENCHMARK(BM_SolveByNodes)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_SolveByApps(benchmark::State& state) {
  const auto n_apps = static_cast<std::uint32_t>(state.range(0));
  const auto machine = topo::Machine::symmetric(4, 32, 10.0, 32.0, 10.0);
  const auto apps = make_apps(n_apps, 4);
  const auto allocation = model::Allocation::even(machine, n_apps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::solve(machine, apps, allocation).total_gflops);
  }
}
BENCHMARK(BM_SolveByApps)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_ExhaustiveByCores(benchmark::State& state) {
  const auto cores = static_cast<std::uint32_t>(state.range(0));
  const auto machine = topo::Machine::symmetric(4, cores, 10.0, 32.0, 10.0);
  const auto apps = make_apps(4, 4);
  for (auto _ : state) {
    auto result =
        model::exhaustive_search(machine, apps, model::Objective::kTotalGflops, true, 1);
    benchmark::DoNotOptimize(result.objective_value);
  }
  state.counters["evals"] =
      static_cast<double>(model::count_candidates(machine, 4, true, 1));
}
BENCHMARK(BM_ExhaustiveByCores)->Arg(8)->Arg(12)->Arg(16)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_GreedyByCores(benchmark::State& state) {
  const auto cores = static_cast<std::uint32_t>(state.range(0));
  const auto machine = topo::Machine::symmetric(4, cores, 10.0, 32.0, 10.0);
  const auto apps = make_apps(4, 4);
  const auto start = model::Allocation::even(machine, 4);
  for (auto _ : state) {
    auto result = model::greedy_search(machine, apps, start);
    benchmark::DoNotOptimize(result.objective_value);
  }
}
BENCHMARK(BM_GreedyByCores)->Arg(8)->Arg(20)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_SimEpoch(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  const auto machine = topo::Machine::symmetric(nodes, 8, 10.0, 32.0, 10.0);
  sim::MachineSim machine_sim(machine, sim::SimEffects{});
  std::vector<sim::GroupLoad> loads;
  for (topo::NodeId n = 0; n < nodes; ++n) {
    sim::GroupLoad load;
    load.exec_node = n;
    load.memory_node = (n + 1) % nodes;
    load.threads = 4;
    load.per_thread_demand = 5.0;
    load.ai = 0.5;
    loads.push_back(load);
    load.memory_node = n;
    loads.push_back(load);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine_sim.epoch(loads, 1e-3).size());
  }
}
BENCHMARK(BM_SimEpoch)->Arg(2)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

NUMASHARE_BENCH_MAIN(reproduce)
