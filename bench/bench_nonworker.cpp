// E15 — §IV non-worker threads and the static-scheduling hazard:
//
//   "the applications might be written with the assumption that all their
//    threads progress at a similar rate, leading to significant inefficiency
//    if we break this assumption. One example of such code is the OpenMP
//    parallel for loop with static scheduling."
//
// Part 1 measures that hazard on the live runtime: a loop of equal chunks
// executed (a) statically — one long task per thread owning a fixed range —
// vs (b) dynamically — one task per chunk, work-stealing rebalances — while
// one worker runs 4x slower (emulating a core lost to a co-runner).
//
// Part 2 demonstrates the §IV facility for threads the runtime does not own:
// enrolling foreign compute/IO threads and steering their NUMA binding.
#include <atomic>
#include <chrono>
#include <thread>

#include "bench_support.hpp"
#include "common/table.hpp"
#include "runtime/runtime.hpp"
#include "topology/presets.hpp"

namespace {

using namespace numashare;

constexpr int kChunks = 96;
constexpr int kSpin = 6000;
constexpr std::uint32_t kSlowWorker = 0;
constexpr int kSlowFactor = 4;

void chunk_work(std::uint32_t worker_id) {
  const int reps = worker_id == kSlowWorker ? kSpin * kSlowFactor : kSpin;
  volatile double x = 1.0;
  for (int i = 0; i < reps; ++i) x = x * 1.0000001 + 1e-9;
}

double run_static() {
  rt::Runtime runtime(topo::Machine::symmetric(2, 2, 1.0, 10.0), {.name = "static"});
  const std::uint32_t threads = runtime.worker_count();
  const int per_thread = kChunks / static_cast<int>(threads);
  auto latch = runtime.create_latch(threads);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint32_t t = 0; t < threads; ++t) {
    // One long task per "thread", owning a fixed range: OpenMP static.
    runtime.spawn([&, per_thread](rt::TaskContext& ctx) {
      for (int c = 0; c < per_thread; ++c) chunk_work(ctx.worker_id);
      latch->count_down();
    });
  }
  latch->wait();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

double run_dynamic() {
  rt::Runtime runtime(topo::Machine::symmetric(2, 2, 1.0, 10.0), {.name = "dynamic"});
  auto latch = runtime.create_latch(kChunks);
  const auto start = std::chrono::steady_clock::now();
  for (int c = 0; c < kChunks; ++c) {
    runtime.spawn([&](rt::TaskContext& ctx) {
      chunk_work(ctx.worker_id);
      latch->count_down();
    });
  }
  latch->wait();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

void reproduce() {
  bench::print_header("E15 / non-worker threads",
                      "static vs dynamic scheduling with one degraded worker (§IV)");

  bench::print_section("static-scheduling hazard (one worker 4x slower)");
  // Best of 3 to damp scheduler noise on small hosts.
  double static_s = 1e300, dynamic_s = 1e300;
  for (int round = 0; round < 3; ++round) {
    static_s = std::min(static_s, run_static());
    dynamic_s = std::min(dynamic_s, run_dynamic());
  }
  TextTable table({"schedule", "makespan ms"});
  table.add_row({"static (fixed ranges per thread)", fmt_fixed(static_s * 1e3, 1)});
  table.add_row({"dynamic (task per chunk, stealing)", fmt_fixed(dynamic_s * 1e3, 1)});
  std::printf("%s", table.render().c_str());
  std::printf("  dynamic is %.2fx faster; the paper's warning about equal-progress\n"
              "  assumptions (OpenMP static) holds: %s\n",
              static_s / dynamic_s, static_s > dynamic_s * 1.2 ? "[OK]" : "[SHAPE]");

  bench::print_section("foreign-thread steering (threads the runtime does not own)");
  {
    rt::Runtime runtime(topo::Machine::symmetric(2, 2, 1.0, 10.0), {.name = "host"});
    auto& registry = runtime.foreign_threads();
    std::atomic<bool> stop{false};
    std::thread legacy([&] {
      auto handle = registry.enroll("legacy-solver", rt::ForeignRole::kCompute);
      while (!stop.load(std::memory_order_acquire)) {
        handle->poll();  // cooperative re-binding point
        volatile double x = 1.0;
        for (int i = 0; i < 1000; ++i) x = x * 1.0000001;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });
    std::thread io([&] {
      auto handle = registry.enroll("io-pump", rt::ForeignRole::kIo);
      while (!stop.load(std::memory_order_acquire)) {
        handle->poll();
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
    while (registry.count() < 2) std::this_thread::yield();
    for (const auto& entry : registry.list()) {
      registry.request_bind(entry.id, entry.role == rt::ForeignRole::kCompute ? 1 : 0);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    TextTable threads({"thread", "role", "bound node"});
    for (const auto& entry : registry.list()) {
      threads.add_row({entry.name, rt::to_string(entry.role),
                       entry.bound_node == topo::kInvalidNode
                           ? "unbound"
                           : std::to_string(entry.bound_node)});
    }
    std::printf("%s", threads.render().c_str());
    const auto budget = registry.compute_bound_per_node();
    std::printf("  compute threads per node budget adjustment: [%u %u] — the agent\n"
                "  subtracts these from what it hands to task runtimes.\n",
                budget[0], budget[1]);
    stop.store(true, std::memory_order_release);
    legacy.join();
    io.join();
  }
}

void BM_StaticSchedule(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_static());
}
BENCHMARK(BM_StaticSchedule)->Unit(benchmark::kMillisecond);

void BM_DynamicSchedule(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_dynamic());
}
BENCHMARK(BM_DynamicSchedule)->Unit(benchmark::kMillisecond);

}  // namespace

NUMASHARE_BENCH_MAIN(reproduce)
