// E17 — the §III KNL narrative, made executable:
//
//   "We have performed our experiments on the Intel Knights Landing (KNL)
//    processor, where the NUMA is optional and can be switched off. It was
//    possible to get good performance from the NUMA-oblivious codes by
//    switching the process to non-NUMA mode. But on most multi-socket
//    servers, the NUMA is inherent ... and it is impossible to opt out."
//
// A NUMA-aware (perfect) and a NUMA-oblivious (all data on one node) variant
// of the same memory-bound code, modeled on (a) a KNL-like machine in SNC-4
// mode, (b) the same silicon with NUMA "switched off" (one flat node), and
// (c) a multi-socket Xeon where flat mode does not exist.
#include "bench_support.hpp"
#include "common/table.hpp"
#include "core/roofline.hpp"
#include "sim/simulator.hpp"
#include "topology/presets.hpp"

namespace {

using namespace numashare;
using model::Allocation;
using model::AppSpec;

struct ModeResult {
  double aware = 0.0;
  double oblivious = 0.0;
};

/// One app using the whole machine, NUMA-aware vs NUMA-oblivious.
ModeResult run_machine(const topo::Machine& machine, double ai) {
  ModeResult result;
  std::vector<std::uint32_t> all_cores;
  for (topo::NodeId n = 0; n < machine.node_count(); ++n) {
    all_cores.push_back(machine.cores_in_node(n));
  }
  const auto everywhere = [&](const AppSpec& app) {
    Allocation allocation(1, machine.node_count());
    for (topo::NodeId n = 0; n < machine.node_count(); ++n) {
      allocation.set_threads(0, n, machine.cores_in_node(n));
    }
    return model::solve(machine, {app}, allocation).total_gflops;
  };
  result.aware = everywhere(AppSpec::numa_perfect("aware", ai));
  result.oblivious = everywhere(AppSpec::numa_bad("oblivious", ai, 0));
  return result;
}

void reproduce() {
  bench::print_header("E17 / NUMA modes",
                      "NUMA-aware vs NUMA-oblivious code across machine modes");
  // Firmly memory-bound everywhere (low enough that the Xeon's compute
  // ceiling never binds and both comparisons are pure bandwidth stories).
  const double ai = 1.0 / 32.0;

  const auto knl = topo::knl_snc4_machine();
  const auto flat =
      topo::flat_machine(knl.core_count(), knl.core(0).peak_gflops,
                         knl.total_memory_bandwidth());
  const auto xeon = topo::paper_skylake_machine();

  const auto knl_result = run_machine(knl, ai);
  const auto flat_result = run_machine(flat, ai);
  const auto xeon_result = run_machine(xeon, ai);

  TextTable table({"machine", "NUMA-aware GFLOPS", "NUMA-oblivious GFLOPS",
                   "aware / oblivious"});
  const auto row = [&](const char* name, const ModeResult& r) {
    table.add_row({name, fmt_fixed(r.aware, 1), fmt_fixed(r.oblivious, 1),
                   fmt_fixed(r.aware / r.oblivious, 2) + "x"});
  };
  row("KNL, SNC-4 (NUMA on)", knl_result);
  row("KNL, flat mode (NUMA off)", flat_result);
  row("4-socket Xeon (NUMA inherent)", xeon_result);
  std::printf("%s", table.render().c_str());

  // The first-order model gives both machines the same ratio (the oblivious
  // code saturates its single home controller either way). The paper's
  // "even larger than on the KNL" gap comes from second-order NUMA costs —
  // KNL's on-package mesh is far gentler than cross-socket UPI — so that
  // comparison runs on the simulator with per-interconnect effects.
  const auto simulated_ratio = [&](const topo::Machine& machine,
                                   const sim::SimEffects& effects) {
    const auto run = [&](const AppSpec& app) {
      Allocation allocation(1, machine.node_count());
      for (topo::NodeId n = 0; n < machine.node_count(); ++n) {
        allocation.set_threads(0, n, machine.cores_in_node(n));
      }
      return sim::simulate_scenario(machine, {app}, allocation, effects, 0.2).total_gflops;
    };
    return run(AppSpec::numa_perfect("aware", ai)) /
           run(AppSpec::numa_bad("oblivious", ai, 0));
  };
  sim::SimEffects knl_effects;  // on-package mesh: gentle
  knl_effects.remote_link_efficiency = 0.95;
  knl_effects.numa_bad_locality = 0.97;
  sim::SimEffects xeon_effects;  // cross-socket UPI: the defaults
  const double knl_ratio = simulated_ratio(knl, knl_effects);
  const double xeon_ratio = simulated_ratio(xeon, xeon_effects);

  bench::print_section("paper claims");
  std::printf("  flat mode rescues the oblivious code (ratio %.2fx -> %.2fx) %s\n",
              knl_result.aware / knl_result.oblivious,
              flat_result.aware / flat_result.oblivious,
              flat_result.aware / flat_result.oblivious < 1.01 ? "[OK]" : "[SHAPE]");
  std::printf("  simulated aware/oblivious ratio: KNL %.2fx vs multi-socket Xeon %.2fx\n"
              "  — 'the speed improvement ... is significant, even larger than on the\n"
              "  KNL with enabled NUMA' %s\n",
              knl_ratio, xeon_ratio, xeon_ratio > knl_ratio ? "[OK]" : "[SHAPE]");
  std::printf("  note: flat mode costs the aware code nothing in this model; on real\n"
              "  KNL node interleaving 'degrades performance of most applications',\n"
              "  which is why the paper recommends against it when software is "
              "NUMA-aware.\n");
}

void BM_SolveKnl(benchmark::State& state) {
  const auto machine = topo::knl_snc4_machine();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_machine(machine, 1.0 / 16.0).aware);
  }
}
BENCHMARK(BM_SolveKnl);

}  // namespace

NUMASHARE_BENCH_MAIN(reproduce)
