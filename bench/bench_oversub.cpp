// E8 — §II over-subscription: N co-running task applications, each with a
// full-size worker pool (the OS sorts it out) vs agent-coordinated fair
// share (total threads == total cores).
//
// The paper's honest finding, which this bench reproduces in shape: "the
// Linux operating system can do a very good job ... the benefits ... may not
// be as good as one would imagine" — expect a modest (possibly ~0) delta on
// throughput, with coordination reducing involuntary switching pressure
// (proxied here by steal/idle-park counts).
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "agent/agent.hpp"
#include "agent/policies.hpp"
#include "bench_support.hpp"
#include "common/table.hpp"
#include "topology/presets.hpp"

namespace {

using namespace numashare;
using namespace std::chrono_literals;

struct CoRunResult {
  double tasks_per_s = 0.0;
  std::uint64_t idle_parks = 0;
  std::uint64_t total_threads_running = 0;
};

void busy_work() {
  volatile double x = 1.0;
  for (int i = 0; i < 4000; ++i) x = x * 1.0000001 + 1e-9;
}

CoRunResult co_run(std::uint32_t n_apps, bool coordinated, double seconds) {
  const auto machine = topo::Machine::symmetric(2, 2, 1.0, 10.0);
  std::vector<std::unique_ptr<rt::Runtime>> apps;
  std::vector<std::unique_ptr<agent::Channel>> channels;
  std::vector<std::unique_ptr<agent::RuntimeAdapter>> adapters;
  for (std::uint32_t a = 0; a < n_apps; ++a) {
    apps.push_back(
        std::make_unique<rt::Runtime>(machine, rt::RuntimeOptions{.name = "co" + std::to_string(a)}));
    channels.push_back(std::make_unique<agent::Channel>());
    adapters.push_back(std::make_unique<agent::RuntimeAdapter>(*apps[a], *channels[a]));
  }

  std::unique_ptr<agent::Agent> the_agent;
  if (coordinated) {
    the_agent = std::make_unique<agent::Agent>(
        machine, std::make_unique<agent::FairSharePolicy>(
                     agent::FairSharePolicy::Flavor::kTotalThreads),
        agent::AgentOptions{.period_us = 1000});
    for (std::uint32_t a = 0; a < n_apps; ++a) {
      the_agent->add_app("co" + std::to_string(a), *channels[a]);
      adapters[a]->start(500);
    }
    the_agent->start();
    std::this_thread::sleep_for(30ms);  // let targets settle
  }

  std::atomic<bool> stop{false};
  std::function<void(rt::TaskContext&)> work = [&](rt::TaskContext& ctx) {
    if (stop.load(std::memory_order_acquire)) return;
    busy_work();
    ctx.runtime.spawn(work);
  };
  for (auto& app : apps) {
    for (std::uint32_t i = 0; i < machine.core_count(); ++i) app->spawn(work);
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_release);

  CoRunResult result;
  for (auto& app : apps) {
    app->wait_idle();
    const auto s = app->stats();
    result.tasks_per_s += static_cast<double>(s.tasks_executed) / seconds;
    result.idle_parks += s.idle_parks;
    result.total_threads_running += s.running_threads;
  }
  if (the_agent) the_agent->stop();
  for (auto& adapter : adapters) adapter->stop();
  return result;
}

void reproduce() {
  bench::print_header("E8 / over-subscription",
                      "co-running apps: oversubscribed vs agent fair share");
  const double seconds = 0.5;
  TextTable table({"apps", "mode", "tasks/s", "threads running", "idle parks"});
  for (std::uint32_t apps : {2u, 4u}) {
    const auto oversub = co_run(apps, /*coordinated=*/false, seconds);
    const auto fair = co_run(apps, /*coordinated=*/true, seconds);
    table.add_row({std::to_string(apps), "oversubscribed",
                   fmt_fixed(oversub.tasks_per_s, 0),
                   std::to_string(oversub.total_threads_running),
                   std::to_string(oversub.idle_parks)});
    table.add_row({std::to_string(apps), "fair share", fmt_fixed(fair.tasks_per_s, 0),
                   std::to_string(fair.total_threads_running),
                   std::to_string(fair.idle_parks)});
    const double delta = oversub.tasks_per_s > 0
                             ? (fair.tasks_per_s / oversub.tasks_per_s - 1.0) * 100.0
                             : 0.0;
    std::printf("  %u apps: fair-share throughput delta %+.1f%% "
                "(paper: 'marginal (a few percent) ... in some cases no measurable')\n",
                apps, delta);
  }
  std::printf("%s", table.render().c_str());
  std::printf("  note: 'threads running' shows the mechanism — fair share caps the sum at\n"
              "  the core count, the oversubscribed mode runs apps x cores threads.\n");
}

void BM_CoRunOversubscribed(benchmark::State& state) {
  for (auto _ : state) {
    const auto r = co_run(2, false, 0.05);
    benchmark::DoNotOptimize(r.tasks_per_s);
  }
}
BENCHMARK(BM_CoRunOversubscribed)->Unit(benchmark::kMillisecond);

void BM_CoRunFairShare(benchmark::State& state) {
  for (auto _ : state) {
    const auto r = co_run(2, true, 0.05);
    benchmark::DoNotOptimize(r.tasks_per_s);
  }
}
BENCHMARK(BM_CoRunFairShare)->Unit(benchmark::kMillisecond);

}  // namespace

NUMASHARE_BENCH_MAIN(reproduce)
