// E13 — data-placement ablation (§III.A's "influence where the application
// stores its data", which the paper names as the ideal but does not build):
// the advisor must recover the paper's 150-GFLOPS configuration from any
// starting placement, and the payback analysis quantifies when moving the
// data is worth the stall.
#include "bench_support.hpp"
#include "common/table.hpp"
#include "core/paper_scenarios.hpp"
#include "core/placement.hpp"
#include "topology/presets.hpp"

namespace {

using namespace numashare;

void reproduce() {
  bench::print_header("E13 / data placement",
                      "placement advisor + joint optimization on the fig.3 mix");
  const auto machine = topo::paper_numabad_machine();

  bench::print_section("advice with the allocation held fixed (whole-node, bad app on node 1)");
  {
    const auto apps = model::mixes::three_perfect_one_bad(/*bad_home=*/0);
    const auto allocation = model::Allocation::node_per_app(machine, {0, 2, 3, 1});
    model::PlacementOptions options;
    options.data_gb = 16.0;  // 16 GB of application data
    const auto advice = model::advise_placement(machine, apps, allocation, options);
    TextTable table({"app", "home", "advice", "GFLOPS now", "GFLOPS after", "move s",
                     "payback s"});
    for (const auto& entry : advice) {
      table.add_row({"numa-bad", std::to_string(entry.current_home),
                     entry.move_recommended()
                         ? "move to node " + std::to_string(entry.recommended_home)
                         : "stay",
                     fmt_fixed(entry.current_gflops, 1), fmt_fixed(entry.predicted_gflops, 1),
                     fmt_fixed(entry.move_seconds, 2), fmt_fixed(entry.payback_seconds, 2)});
    }
    std::printf("%s", table.render().c_str());
  }

  bench::print_section("joint optimization from every starting home");
  {
    TextTable table({"bad app data starts on", "joint GFLOPS", "final home", "rounds"});
    for (topo::NodeId start = 0; start < machine.node_count(); ++start) {
      const auto result =
          model::advise_joint(machine, model::mixes::three_perfect_one_bad(start));
      table.add_row({"node " + std::to_string(start),
                     fmt_fixed(result.solution.total_gflops, 1),
                     "node " + std::to_string(result.apps[3].home_node),
                     std::to_string(result.placement_rounds)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("  every start converges to the paper's 150-GFLOPS co-located optimum.\n");
  }

  bench::print_section("payback sweep: when is moving the data worth it?");
  {
    const auto apps = model::mixes::three_perfect_one_bad(0);
    const auto allocation = model::Allocation::node_per_app(machine, {0, 2, 3, 1});
    TextTable table({"data size GB", "move seconds", "payback seconds"});
    for (double gb : {1.0, 4.0, 16.0, 64.0, 256.0}) {
      model::PlacementOptions options;
      options.data_gb = gb;
      const auto advice = model::advise_placement(machine, apps, allocation, options);
      table.add_row({fmt_compact(gb), fmt_fixed(advice[0].move_seconds, 2),
                     fmt_fixed(advice[0].payback_seconds, 2)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("  moves amortize linearly in data size (10 GB/s links); even 256 GB pays\n"
                "  back within seconds because the gain (95 -> 150 GFLOPS) is so large.\n");
  }
}

void BM_AdvisePlacement(benchmark::State& state) {
  const auto machine = topo::paper_numabad_machine();
  const auto apps = model::mixes::three_perfect_one_bad(0);
  const auto allocation = model::Allocation::node_per_app(machine, {0, 2, 3, 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::advise_placement(machine, apps, allocation).size());
  }
}
BENCHMARK(BM_AdvisePlacement);

void BM_AdviseJoint(benchmark::State& state) {
  const auto machine = topo::paper_numabad_machine();
  for (auto _ : state) {
    auto result = model::advise_joint(machine, model::mixes::three_perfect_one_bad(2));
    benchmark::DoNotOptimize(result.solution.total_gflops);
  }
}
BENCHMARK(BM_AdviseJoint)->Unit(benchmark::kMillisecond);

}  // namespace

NUMASHARE_BENCH_MAIN(reproduce)
