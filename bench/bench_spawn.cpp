// E16 — task lifecycle microbenchmarks: the cost of creating, dispatching and
// retiring a task, swept over worker counts.
//
// The paper's premise (§II) is that a runtime absorbs thread-target changes
// cheaply *while running fine-grained task graphs*; that only holds if the
// spawn/retire path itself scales. This bench records the trajectory:
//
//   * spawn_retire_external — an external thread pumps empty tasks through
//     the injection path, workers drain them (tasks/s);
//   * spawn_retire_nested  — tasks spawn their successors from inside the
//     pool, the worker-local fast path (tasks/s);
//   * steal_drain          — raw WsDeque::steal cost on a populated deque;
//   * handoff_latency      — submit-to-execution latency for a single task
//     crossing from an external thread into the pool (median);
//   * wait_idle_latency    — full spawn → retire → wait_idle() wake cycle
//     for one task: the idle-detection/notify path (median).
//
// Unlike the paper-reproduction benches this one has no published number to
// compare against; instead it *emits machine-readable results* to
// BENCH_runtime.json (path overridable via NS_BENCH_OUT) so successive PRs
// carry a measured perf trajectory. NS_BENCH_QUICK=1 shrinks iteration
// counts for CI smoke runs; sanitizer builds shrink automatically.
#include "bench_support.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "runtime/runtime.hpp"
#include "runtime/wsdeque.hpp"
#include "topology/machine.hpp"

namespace {

using namespace numashare;
using Clock = std::chrono::steady_clock;

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

bool quick_mode() {
  const char* q = std::getenv("NS_BENCH_QUICK");
  return q != nullptr && q[0] != '\0' && q[0] != '0';
}

/// Iteration scale: full by default, /32 for CI smoke, /8 under sanitizers.
std::uint64_t scaled(std::uint64_t full) {
  if (quick_mode()) return std::max<std::uint64_t>(full / 32, 64);
  if (kSanitized) return std::max<std::uint64_t>(full / 8, 64);
  return full;
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double median(std::vector<double>& xs) {
  std::sort(xs.begin(), xs.end());
  return xs.empty() ? 0.0 : xs[xs.size() / 2];
}

struct Result {
  std::string name;
  std::uint32_t workers;
  std::string unit;
  double value;
};

std::vector<Result> g_results;

void record(const std::string& name, std::uint32_t workers, const std::string& unit,
            double value) {
  g_results.push_back({name, workers, unit, value});
  std::printf("  %-28s w=%-3u %14.1f %s\n", name.c_str(), workers, value, unit.c_str());
}

/// Worker-count sweep points and the virtual machines providing them.
topo::Machine machine_for(std::uint32_t workers) {
  switch (workers) {
    case 1: return topo::Machine::symmetric(1, 1, 1.0, 10.0);
    case 4: return topo::Machine::symmetric(2, 2, 1.0, 10.0);
    case 8: return topo::Machine::symmetric(2, 4, 1.0, 10.0);
    default: return topo::Machine::symmetric(4, 4, 1.0, 10.0);
  }
}

void bench_spawn_retire_external(std::uint32_t workers) {
  rt::Runtime runtime(machine_for(workers), {.name = "bspawn"});
  const std::uint64_t tasks = scaled(100'000);
  // Warm the pool (thread creation, first parks) before timing.
  for (int i = 0; i < 256; ++i) runtime.spawn([](rt::TaskContext&) {});
  runtime.wait_idle();

  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < tasks; ++i) {
    runtime.spawn([](rt::TaskContext&) {});
  }
  runtime.wait_idle();
  const double elapsed = seconds_since(start);
  record("spawn_retire_external", workers, "tasks_per_sec",
         static_cast<double>(tasks) / elapsed);
}

void bench_spawn_retire_nested(std::uint32_t workers) {
  rt::Runtime runtime(machine_for(workers), {.name = "bspawn"});
  const std::int64_t tasks = static_cast<std::int64_t>(scaled(100'000));
  // Signed: concurrent chains may race the counter a few steps below zero,
  // which must read as "stop", not wrap to a huge count.
  std::atomic<std::int64_t> remaining{tasks};

  // Each task claims one unit and respawns itself until the budget is gone:
  // allocation, dispatch and retirement all happen on worker threads.
  std::function<void(rt::TaskContext&)> body = [&](rt::TaskContext& ctx) {
    if (remaining.fetch_sub(1, std::memory_order_relaxed) > 1) {
      ctx.runtime.spawn(body);
    }
  };

  const auto start = Clock::now();
  const std::int64_t seeds = std::min<std::int64_t>(workers, tasks);
  for (std::int64_t i = 0; i < seeds; ++i) {
    runtime.spawn(body);
  }
  runtime.wait_idle();
  const double elapsed = seconds_since(start);
  const auto stats = runtime.stats();
  record("spawn_retire_nested", workers, "tasks_per_sec",
         static_cast<double>(stats.tasks_executed) / elapsed);
}

void bench_steal_drain() {
  // Raw deque steal cost, no runtime involved: populate, then drain through
  // the thief-side entry point.
  const std::uint64_t n = scaled(200'000);
  rt::WsDeque<int> deque(1024);
  int item = 7;
  std::uint64_t stolen = 0;
  const auto start = Clock::now();
  std::uint64_t queued = 0;
  while (stolen < n) {
    while (queued < 512 && stolen + queued < n) {
      deque.push(&item);
      ++queued;
    }
    while (deque.steal() != nullptr) {
      ++stolen;
      --queued;
    }
  }
  const double elapsed = seconds_since(start);
  record("steal_drain", 1, "ns_per_steal", elapsed / static_cast<double>(n) * 1e9);
}

void bench_handoff_latency(std::uint32_t workers) {
  rt::Runtime runtime(machine_for(workers), {.name = "bspawn"});
  const std::uint64_t reps = scaled(2'000);
  for (int i = 0; i < 64; ++i) runtime.spawn([](rt::TaskContext&) {});
  runtime.wait_idle();

  std::vector<double> samples;
  samples.reserve(reps);
  for (std::uint64_t i = 0; i < reps; ++i) {
    std::atomic<bool> ran{false};
    const auto start = Clock::now();
    runtime.spawn([&](rt::TaskContext&) { ran.store(true, std::memory_order_release); });
    while (!ran.load(std::memory_order_acquire)) std::this_thread::yield();
    samples.push_back(seconds_since(start) * 1e9);
    runtime.wait_idle();
  }
  record("handoff_latency", workers, "ns_median", median(samples));
}

void bench_wait_idle_latency(std::uint32_t workers) {
  rt::Runtime runtime(machine_for(workers), {.name = "bspawn"});
  const std::uint64_t reps = scaled(2'000);
  for (int i = 0; i < 64; ++i) runtime.spawn([](rt::TaskContext&) {});
  runtime.wait_idle();

  std::vector<double> samples;
  samples.reserve(reps);
  for (std::uint64_t i = 0; i < reps; ++i) {
    const auto start = Clock::now();
    runtime.spawn([](rt::TaskContext&) {});
    runtime.wait_idle();
    samples.push_back(seconds_since(start) * 1e9);
  }
  record("wait_idle_latency", workers, "ns_median", median(samples));
}

void emit_json() {
  const char* env = std::getenv("NS_BENCH_OUT");
  const std::string path = env != nullptr && env[0] != '\0' ? env : "BENCH_runtime.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_spawn: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"numashare-bench-runtime/1\",\n");
  std::fprintf(f, "  \"bench\": \"bench_spawn\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick_mode() ? "true" : "false");
  std::fprintf(f, "  \"sanitized\": %s,\n", kSanitized ? "true" : "false");
  std::fprintf(f, "  \"host_cpus\": %u,\n", std::thread::hardware_concurrency());
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < g_results.size(); ++i) {
    const Result& r = g_results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"workers\": %u, \"unit\": \"%s\", "
                 "\"value\": %.3f}%s\n",
                 r.name.c_str(), r.workers, r.unit.c_str(), r.value,
                 i + 1 < g_results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu results)\n", path.c_str(), g_results.size());
}

void reproduce() {
  bench::print_header("E16", "task lifecycle scalability (spawn / dispatch / retire)");

  bench::print_section("spawn+retire throughput (external producer)");
  for (std::uint32_t w : {1u, 4u, 8u, 16u}) bench_spawn_retire_external(w);

  bench::print_section("spawn+retire throughput (nested, worker-local)");
  for (std::uint32_t w : {1u, 4u, 8u, 16u}) bench_spawn_retire_nested(w);

  bench::print_section("steal + latency paths");
  bench_steal_drain();
  for (std::uint32_t w : {1u, 4u}) bench_handoff_latency(w);
  for (std::uint32_t w : {1u, 4u}) bench_wait_idle_latency(w);

  emit_json();
}

// --- google-benchmark timings (smoke-run friendly) -------------------------

void BM_SpawnRetireBatch(benchmark::State& state) {
  rt::Runtime runtime(topo::Machine::symmetric(1, 1, 1.0, 10.0), {.name = "bm"});
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) runtime.spawn([](rt::TaskContext&) {});
    runtime.wait_idle();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SpawnRetireBatch);

void BM_WsDequePushPop(benchmark::State& state) {
  rt::WsDeque<int> deque(1024);
  int item = 1;
  for (auto _ : state) {
    deque.push(&item);
    benchmark::DoNotOptimize(deque.pop());
  }
}
BENCHMARK(BM_WsDequePushPop);

}  // namespace

NUMASHARE_BENCH_MAIN(reproduce)
