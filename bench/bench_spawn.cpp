// E16 — task lifecycle microbenchmarks: the cost of creating, dispatching and
// retiring a task, swept over worker counts.
//
// The paper's premise (§II) is that a runtime absorbs thread-target changes
// cheaply *while running fine-grained task graphs*; that only holds if the
// spawn/retire path itself scales. This bench records the trajectory:
//
//   * spawn_retire_external — an external thread pumps empty tasks through
//     the injection path, workers drain them (tasks/s);
//   * spawn_retire_nested  — tasks spawn their successors from inside the
//     pool, the worker-local fast path (tasks/s);
//   * steal_drain          — raw WsDeque::steal cost on a populated deque;
//   * handoff_latency      — submit-to-execution latency for a single task
//     crossing from an external thread into the pool (median);
//   * wait_idle_latency    — full spawn → retire → wait_idle() wake cycle
//     for one task: the idle-detection/notify path (median).
//
// Unlike the paper-reproduction benches this one has no published number to
// compare against; instead it *emits machine-readable results* to
// BENCH_runtime.json (path overridable via NS_BENCH_OUT) so successive PRs
// carry a measured perf trajectory. NS_BENCH_QUICK=1 shrinks iteration
// counts for CI smoke runs; sanitizer builds shrink automatically.
#include "bench_support.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "agent/channel.hpp"
#include "agent/protocol.hpp"
#include "obs/histogram.hpp"
#include "runtime/runtime.hpp"
#include "runtime/wsdeque.hpp"
#include "topology/machine.hpp"

namespace {

using namespace numashare;
using Clock = std::chrono::steady_clock;

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

bool quick_mode() {
  const char* q = std::getenv("NS_BENCH_QUICK");
  return q != nullptr && q[0] != '\0' && q[0] != '0';
}

/// Iteration scale: full by default, /32 for CI smoke, /8 under sanitizers.
std::uint64_t scaled(std::uint64_t full) {
  if (quick_mode()) return std::max<std::uint64_t>(full / 32, 64);
  if (kSanitized) return std::max<std::uint64_t>(full / 8, 64);
  return full;
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double median(std::vector<double>& xs) {
  std::sort(xs.begin(), xs.end());
  return xs.empty() ? 0.0 : xs[xs.size() / 2];
}

struct Result {
  std::string name;
  std::uint32_t workers;
  std::string unit;
  double value;
};

std::vector<Result> g_results;

void record(const std::string& name, std::uint32_t workers, const std::string& unit,
            double value) {
  g_results.push_back({name, workers, unit, value});
  std::printf("  %-28s w=%-3u %14.1f %s\n", name.c_str(), workers, value, unit.c_str());
}

/// One latency distribution row (schema v2): full-percentile view of a
/// runtime-internal latency, from the obs histograms.
struct LatencyRow {
  std::string name;
  std::uint32_t workers;
  std::uint64_t count;
  double p50;
  double p99;
  double p999;
  double max;
};

std::vector<LatencyRow> g_latency;

void record_latency(const std::string& name, std::uint32_t workers,
                    const obs::HistogramSnapshot& snap) {
  if (snap.count == 0) return;  // nothing observed (e.g. no steals at w=1)
  const LatencyRow row{name,
                       workers,
                       snap.count,
                       snap.percentile(50.0),
                       snap.percentile(99.0),
                       snap.percentile(99.9),
                       static_cast<double>(snap.max_ns)};
  g_latency.push_back(row);
  std::printf("  %-16s w=%-3u n=%-8llu p50=%10.0f p99=%10.0f p999=%10.0f max=%10.0f ns\n",
              name.c_str(), workers, static_cast<unsigned long long>(row.count),
              row.p50, row.p99, row.p999, row.max);
}

/// Measured obs-overhead gate (filled by bench_obs_overhead) and the p99
/// handoff gate, both exported in the JSON "gates" object and enforced by
/// scripts/check_bench_json.py on non-quick documents.
double g_obs_overhead_x = 0.0;
constexpr double kObsOverheadLimitX = 1.02;  // < 2% throughput cost
/// p99 of the dedicated single-task handoff distribution (w=1). Measured
/// ~2.2 us on the reference container (p50 ~0.6 us; the p999 ~15 us tail is
/// scheduler preemption on the shared CPU). The limit sits ~10x over the
/// measured p99 and above the observed p999, so container noise can't trip
/// it, while a lost-wake regression — which drives p99 toward the park
/// timeout, hundreds of microseconds — lands far past it.
constexpr double kHandoffP99LimitNs = 25'000.0;

/// Worker-count sweep points and the virtual machines providing them.
topo::Machine machine_for(std::uint32_t workers) {
  switch (workers) {
    case 1: return topo::Machine::symmetric(1, 1, 1.0, 10.0);
    case 4: return topo::Machine::symmetric(2, 2, 1.0, 10.0);
    case 8: return topo::Machine::symmetric(2, 4, 1.0, 10.0);
    default: return topo::Machine::symmetric(4, 4, 1.0, 10.0);
  }
}

void bench_spawn_retire_external(std::uint32_t workers) {
  rt::Runtime runtime(machine_for(workers), {.name = "bspawn"});
  const std::uint64_t tasks = scaled(100'000);
  // Warm the pool (thread creation, first parks) before timing.
  for (int i = 0; i < 256; ++i) runtime.spawn([](rt::TaskContext&) {});
  runtime.wait_idle();

  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < tasks; ++i) {
    runtime.spawn([](rt::TaskContext&) {});
  }
  runtime.wait_idle();
  const double elapsed = seconds_since(start);
  record("spawn_retire_external", workers, "tasks_per_sec",
         static_cast<double>(tasks) / elapsed);
}

void bench_spawn_retire_nested(std::uint32_t workers) {
  rt::Runtime runtime(machine_for(workers), {.name = "bspawn"});
  const std::int64_t tasks = static_cast<std::int64_t>(scaled(100'000));
  // Signed: concurrent chains may race the counter a few steps below zero,
  // which must read as "stop", not wrap to a huge count.
  std::atomic<std::int64_t> remaining{tasks};

  // Each task claims one unit and respawns itself until the budget is gone:
  // allocation, dispatch and retirement all happen on worker threads.
  std::function<void(rt::TaskContext&)> body = [&](rt::TaskContext& ctx) {
    if (remaining.fetch_sub(1, std::memory_order_relaxed) > 1) {
      ctx.runtime.spawn(body);
    }
  };

  const auto start = Clock::now();
  const std::int64_t seeds = std::min<std::int64_t>(workers, tasks);
  for (std::int64_t i = 0; i < seeds; ++i) {
    runtime.spawn(body);
  }
  runtime.wait_idle();
  const double elapsed = seconds_since(start);
  const auto stats = runtime.stats();
  record("spawn_retire_nested", workers, "tasks_per_sec",
         static_cast<double>(stats.tasks_executed) / elapsed);
}

void bench_steal_drain() {
  // Raw deque steal cost, no runtime involved: populate, then drain through
  // the thief-side entry point.
  const std::uint64_t n = scaled(200'000);
  rt::WsDeque<int> deque(1024);
  int item = 7;
  std::uint64_t stolen = 0;
  const auto start = Clock::now();
  std::uint64_t queued = 0;
  while (stolen < n) {
    while (queued < 512 && stolen + queued < n) {
      deque.push(&item);
      ++queued;
    }
    while (deque.steal() != nullptr) {
      ++stolen;
      --queued;
    }
  }
  const double elapsed = seconds_since(start);
  record("steal_drain", 1, "ns_per_steal", elapsed / static_cast<double>(n) * 1e9);
}

void bench_handoff_latency(std::uint32_t workers) {
  rt::Runtime runtime(machine_for(workers), {.name = "bspawn"});
  const std::uint64_t reps = scaled(2'000);
  for (int i = 0; i < 64; ++i) runtime.spawn([](rt::TaskContext&) {});
  runtime.wait_idle();

  std::vector<double> samples;
  samples.reserve(reps);
  for (std::uint64_t i = 0; i < reps; ++i) {
    std::atomic<bool> ran{false};
    const auto start = Clock::now();
    runtime.spawn([&](rt::TaskContext&) { ran.store(true, std::memory_order_release); });
    while (!ran.load(std::memory_order_acquire)) std::this_thread::yield();
    samples.push_back(seconds_since(start) * 1e9);
    runtime.wait_idle();
  }
  record("handoff_latency", workers, "ns_median", median(samples));
}

void bench_wait_idle_latency(std::uint32_t workers) {
  rt::Runtime runtime(machine_for(workers), {.name = "bspawn"});
  const std::uint64_t reps = scaled(2'000);
  for (int i = 0; i < 64; ++i) runtime.spawn([](rt::TaskContext&) {});
  runtime.wait_idle();

  std::vector<double> samples;
  samples.reserve(reps);
  for (std::uint64_t i = 0; i < reps; ++i) {
    const auto start = Clock::now();
    runtime.spawn([](rt::TaskContext&) {});
    runtime.wait_idle();
    samples.push_back(seconds_since(start) * 1e9);
  }
  record("wait_idle_latency", workers, "ns_median", median(samples));
}

void bench_latency_percentiles(std::uint32_t workers) {
  rt::RuntimeOptions options;
  options.name = "bspawn";
  options.latency_sample_shift = 0;  // stamp every handoff for the full tail

  // Phase 1 — single-task handoffs with park/wake cycles between reps: the
  // same shape as handoff_latency, now captured as a full distribution
  // (each rep also exercises the wake path when the pool re-parks). This
  // phase gets its own runtime so the handoff row is a pure ready->running
  // distribution; mixing in the burst phase below would swamp these ~20k
  // samples with ~130k queue-depth-dominated ones and turn the p99 gate
  // into a burst-size measurement.
  {
    rt::Runtime runtime(machine_for(workers), options);
    const std::uint64_t reps = scaled(20'000);
    // Warm up with the same single-task shape so warmup samples match.
    for (int i = 0; i < 64; ++i) {
      runtime.spawn([](rt::TaskContext&) {});
      runtime.wait_idle();
    }
    for (std::uint64_t i = 0; i < reps; ++i) {
      std::atomic<bool> ran{false};
      runtime.spawn([&](rt::TaskContext&) { ran.store(true, std::memory_order_release); });
      while (!ran.load(std::memory_order_acquire)) std::this_thread::yield();
      runtime.wait_idle();
    }
    const auto lat = runtime.latency_snapshot();
    record_latency("handoff", workers, lat.handoff);
    record_latency("wake", workers, lat.wake);
  }

  // Phase 2 — burst churn in a fresh runtime: multi-worker pools drain
  // shared bursts, which is what populates the steal distribution
  // (same-node deque steals).
  {
    rt::Runtime runtime(machine_for(workers), options);
    const std::uint64_t bursts = scaled(512);
    for (std::uint64_t b = 0; b < bursts; ++b) {
      for (int i = 0; i < 256; ++i) runtime.spawn([](rt::TaskContext&) {});
      runtime.wait_idle();
    }
    record_latency("steal", workers, runtime.latency_snapshot().steal);
  }
}

void bench_enactment_lag() {
  // Issue alternating thread-target epochs through the real agent plumbing
  // (Channel -> RuntimeAdapter) with issued_ns stamped like agent::send()
  // does, pumping until each epoch is enacted — the enact_lag histogram then
  // holds the full issue -> enactment-ack distribution, including shrink
  // epochs that wait for surplus workers to genuinely park.
  rt::RuntimeOptions options;
  options.name = "bspawn";
  rt::Runtime runtime(machine_for(4), options);
  agent::Channel channel;
  agent::RuntimeAdapter adapter(runtime, channel);

  const std::uint64_t reps = scaled(2'000);
  agent::Command command;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    command.type = agent::CommandType::kSetTotalThreads;
    command.total_threads = rep % 2 == 0 ? 2 : 4;
    command.seq = rep + 1;
    command.epoch = rep + 1;
    command.issued_ns = obs::now_ns();
    channel.push_command(command);
    while (adapter.enacted_epoch() < command.epoch) {
      adapter.pump();
      std::this_thread::yield();
    }
  }
  runtime.clear_thread_controls();
  record_latency("enact_lag", 4, runtime.latency_snapshot().enact);
}

double spawn_throughput_once(bool histograms) {
  rt::RuntimeOptions options;
  options.name = "bspawn";
  options.latency_histograms = histograms;  // default sampling (1/64)
  rt::Runtime runtime(machine_for(4), options);
  const std::uint64_t tasks = scaled(100'000);
  for (int i = 0; i < 256; ++i) runtime.spawn([](rt::TaskContext&) {});
  runtime.wait_idle();

  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < tasks; ++i) {
    runtime.spawn([](rt::TaskContext&) {});
  }
  runtime.wait_idle();
  return static_cast<double>(tasks) / seconds_since(start);
}

void bench_obs_overhead() {
  // Histogram recording cost on the hottest path, as a throughput ratio:
  // best-of-5 interleaved off/on runs of the external spawn+retire loop at
  // production sampling (1 in 64 handoffs stamped). Best-of over interleaved
  // rounds because the reference container is a single shared CPU: the
  // best run of each arm is the least-perturbed one, and interleaving keeps
  // slow ambient phases from landing entirely on one arm. The gate demands
  // the ratio stay under kObsOverheadLimitX (< 2% cost) on full runs.
  double best_off = 0.0;
  double best_on = 0.0;
  for (int round = 0; round < 5; ++round) {
    best_off = std::max(best_off, spawn_throughput_once(false));
    best_on = std::max(best_on, spawn_throughput_once(true));
  }
  g_obs_overhead_x = best_off / best_on;
  record("obs_overhead", 4, "x", g_obs_overhead_x);
  std::printf("  (histograms off %.0f tasks/s, on %.0f tasks/s, limit %.2fx)\n",
              best_off, best_on, kObsOverheadLimitX);
}

void emit_json() {
  const char* env = std::getenv("NS_BENCH_OUT");
  const std::string path = env != nullptr && env[0] != '\0' ? env : "BENCH_runtime.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_spawn: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"numashare-bench-runtime/2\",\n");
  std::fprintf(f, "  \"bench\": \"bench_spawn\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick_mode() ? "true" : "false");
  std::fprintf(f, "  \"sanitized\": %s,\n", kSanitized ? "true" : "false");
  std::fprintf(f, "  \"host_cpus\": %u,\n", std::thread::hardware_concurrency());
  std::fprintf(f,
               "  \"protocol\": \"throughput/median rows: best of 3 runs; "
               "latency rows: full obs-histogram distributions (handoff/wake "
               "from a dedicated single-task phase, steal from burst churn, "
               "enact_lag through Channel+RuntimeAdapter); obs_overhead: "
               "best-of-5 interleaved off/on at production 1/64 sampling; "
               "single shared-CPU container, so all multi-worker points are "
               "oversubscribed and tails include scheduler preemption\",\n");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < g_results.size(); ++i) {
    const Result& r = g_results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"workers\": %u, \"unit\": \"%s\", "
                 "\"value\": %.3f}%s\n",
                 r.name.c_str(), r.workers, r.unit.c_str(), r.value,
                 i + 1 < g_results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // v2: full-percentile latency distributions from the obs histograms. The
  // checker enforces p50 <= p99 <= p999 <= max on every row.
  std::fprintf(f, "  \"latency\": [\n");
  for (std::size_t i = 0; i < g_latency.size(); ++i) {
    const LatencyRow& r = g_latency[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"workers\": %u, \"unit\": \"ns\", "
                 "\"count\": %llu, \"p50\": %.1f, \"p99\": %.1f, "
                 "\"p999\": %.1f, \"max\": %.1f}%s\n",
                 r.name.c_str(), r.workers,
                 static_cast<unsigned long long>(r.count), r.p50, r.p99,
                 r.p999, r.max, i + 1 < g_latency.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // Regression gates: the recording-overhead ratio and the w=1 handoff p99,
  // enforced by scripts/check_bench_json.py when quick=false.
  double handoff_p99 = 0.0;
  for (const LatencyRow& r : g_latency) {
    if (r.name == "handoff" && r.workers == 1) handoff_p99 = r.p99;
  }
  std::fprintf(f, "  \"gates\": {\n");
  std::fprintf(f, "    \"obs_overhead_x\": %.4f,\n", g_obs_overhead_x);
  std::fprintf(f, "    \"obs_limit_x\": %.2f,\n", kObsOverheadLimitX);
  std::fprintf(f, "    \"handoff_p99_ns\": %.1f,\n", handoff_p99);
  std::fprintf(f, "    \"handoff_p99_limit_ns\": %.1f,\n", kHandoffP99LimitNs);
  std::fprintf(f, "    \"measured\": %s,\n",
               g_obs_overhead_x > 0.0 && handoff_p99 > 0.0 ? "true" : "false");
  std::fprintf(f, "    \"pass\": %s\n",
               g_obs_overhead_x <= kObsOverheadLimitX &&
                       handoff_p99 <= kHandoffP99LimitNs
                   ? "true"
                   : "false");
  std::fprintf(f, "  },\n");
  // Historical before/after context carried in the artifact itself: the
  // pre-lifecycle-rework numbers (commit eb74b81, same machine, same bench
  // source) that the PR 4 speedup claims were measured against.
  std::fprintf(f, "%s", R"json(  "baseline": {
    "commit": "eb74b81",
    "note": "same machine, same bench source, runtime before the slab-pool/MPMC/sharded-metrics lifecycle rework",
    "results": [
      {"name": "spawn_retire_external", "workers": 1, "unit": "tasks_per_sec", "value": 2153624.264},
      {"name": "spawn_retire_external", "workers": 4, "unit": "tasks_per_sec", "value": 1288099.952},
      {"name": "spawn_retire_external", "workers": 8, "unit": "tasks_per_sec", "value": 1710397.775},
      {"name": "spawn_retire_external", "workers": 16, "unit": "tasks_per_sec", "value": 1229898.569},
      {"name": "spawn_retire_nested", "workers": 1, "unit": "tasks_per_sec", "value": 6776643.917},
      {"name": "spawn_retire_nested", "workers": 4, "unit": "tasks_per_sec", "value": 6781273.992},
      {"name": "spawn_retire_nested", "workers": 8, "unit": "tasks_per_sec", "value": 6578669.526},
      {"name": "spawn_retire_nested", "workers": 16, "unit": "tasks_per_sec", "value": 6769592.815},
      {"name": "steal_drain", "workers": 1, "unit": "ns_per_steal", "value": 16.049},
      {"name": "handoff_latency", "workers": 1, "unit": "ns_median", "value": 2175.0},
      {"name": "handoff_latency", "workers": 4, "unit": "ns_median", "value": 2078.0},
      {"name": "wait_idle_latency", "workers": 1, "unit": "ns_median", "value": 2222.0},
      {"name": "wait_idle_latency", "workers": 4, "unit": "ns_median", "value": 2122.0}
    ]
  }
}
)json");
  std::fclose(f);
  std::printf("\nwrote %s (%zu results)\n", path.c_str(), g_results.size());
}

void reproduce() {
  bench::print_header("E16", "task lifecycle scalability (spawn / dispatch / retire)");

  bench::print_section("spawn+retire throughput (external producer)");
  for (std::uint32_t w : {1u, 4u, 8u, 16u}) bench_spawn_retire_external(w);

  bench::print_section("spawn+retire throughput (nested, worker-local)");
  for (std::uint32_t w : {1u, 4u, 8u, 16u}) bench_spawn_retire_nested(w);

  bench::print_section("steal + latency paths");
  bench_steal_drain();
  for (std::uint32_t w : {1u, 4u}) bench_handoff_latency(w);
  for (std::uint32_t w : {1u, 4u}) bench_wait_idle_latency(w);

  bench::print_section("latency distributions (obs histograms, p50/p99/p999/max)");
  for (std::uint32_t w : {1u, 4u}) bench_latency_percentiles(w);
  bench_enactment_lag();

  bench::print_section("observability overhead (histograms off vs on)");
  bench_obs_overhead();

  emit_json();
}

// --- google-benchmark timings (smoke-run friendly) -------------------------

void BM_SpawnRetireBatch(benchmark::State& state) {
  rt::Runtime runtime(topo::Machine::symmetric(1, 1, 1.0, 10.0), {.name = "bm"});
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) runtime.spawn([](rt::TaskContext&) {});
    runtime.wait_idle();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SpawnRetireBatch);

void BM_WsDequePushPop(benchmark::State& state) {
  rt::WsDeque<int> deque(1024);
  int item = 1;
  for (auto _ : state) {
    deque.push(&item);
    benchmark::DoNotOptimize(deque.pop());
  }
}
BENCHMARK(BM_WsDequePushPop);

}  // namespace

NUMASHARE_BENCH_MAIN(reproduce)
