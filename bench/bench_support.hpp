// Shared scaffolding for the experiment benches.
//
// Every bench binary does two things:
//   1. prints its paper reproduction (the same rows/series the paper
//      reports, next to the paper's published values), then
//   2. runs google-benchmark timings for the machinery involved.
// A bench must run argument-free and exit cleanly ("for b in bench/*; do
// $b; done" is the documented driver).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/format.hpp"
#include "common/table.hpp"

namespace numashare::bench {

inline void print_header(const std::string& experiment_id, const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), title.c_str());
  std::printf("==============================================================\n");
}

inline void print_section(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

/// "reproduced X vs paper Y (delta Z%)" line with a PASS/SHAPE marker.
inline void print_comparison(const std::string& label, double reproduced, double paper,
                             double tolerance_percent) {
  const double delta = paper != 0.0 ? (reproduced - paper) / paper * 100.0 : 0.0;
  const bool ok = paper == 0.0 || std::abs(delta) <= tolerance_percent;
  std::printf("  %-42s %10s (paper: %8s, delta %+6.2f%%) %s\n", label.c_str(),
              fmt_compact(reproduced, 2).c_str(), fmt_compact(paper, 2).c_str(), delta,
              ok ? "[OK]" : "[SHAPE]");
}

inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace numashare::bench

/// Standard main: reproduction printout first, then the timings.
#define NUMASHARE_BENCH_MAIN(reproduce_fn)                     \
  int main(int argc, char** argv) {                            \
    reproduce_fn();                                            \
    return ::numashare::bench::run_benchmarks(argc, argv);     \
  }
