// E11 — §III.B substrate: the synthetic tunable-AI benchmark and STREAM,
// run for real on the host, plus the simulator-backed calibration loop.
// Host numbers are hardware truth for whatever machine this runs on; the
// reproducible Table III column lives in bench_table3.
#include "bench_support.hpp"
#include "common/table.hpp"
#include "core/paper_scenarios.hpp"
#include "sim/simulator.hpp"
#include "synth/calibrate.hpp"
#include "synth/harness.hpp"
#include "synth/stream.hpp"
#include "topology/discovery.hpp"

namespace {

using namespace numashare;

void reproduce() {
  bench::print_header("E11 / synthetic benchmark", "tunable-AI kernel + STREAM on the host");

  const auto host = topo::discover_host_or_flat();
  std::printf("%s", host.describe().c_str());

  bench::print_section("STREAM (best of 3 trials)");
  synth::StreamConfig stream_config;
  stream_config.elements = 1u << 21;  // 16 MiB arrays
  stream_config.trials = 3;
  synth::Stream stream(stream_config);
  TextTable stream_table({"kernel", "best GB/s", "avg GB/s", "verified"});
  for (const auto& r : stream.run()) {
    stream_table.add_row({synth::to_string(r.kernel), fmt_fixed(r.best_gbps, 2),
                          fmt_fixed(r.avg_gbps, 2), r.verified ? "yes" : "NO"});
  }
  std::printf("%s", stream_table.render().c_str());

  bench::print_section("tunable-AI kernel sweep (host, 1 thread)");
  TextTable sweep({"flops/elem", "nominal AI", "GFLOPS", "GB/s"});
  for (std::uint32_t flops : {2u, 8u, 32u, 128u, 512u}) {
    synth::KernelConfig config;
    config.elements = 1u << 20;
    config.flops_per_element = flops;
    synth::TunableKernel kernel(config);
    const auto r = kernel.run_for(0.05);
    sweep.add_row({std::to_string(flops), fmt_compact(kernel.configured_ai(), 4),
                   fmt_fixed(r.gflops, 3), fmt_fixed(r.gbps, 3)});
  }
  std::printf("%s", sweep.render().c_str());
  std::printf("  shape check: GB/s falls and GFLOPS rises as AI grows (roofline walk).\n");

  bench::print_section("host scenario harness (even allocation, scaled-down mix)");
  {
    std::vector<synth::HostApp> apps;
    apps.push_back({"mem-1", synth::kernel_for_ai(0.125, 1u << 18)});
    apps.push_back({"mem-2", synth::kernel_for_ai(0.125, 1u << 18)});
    apps.push_back({"mem-3", synth::kernel_for_ai(0.125, 1u << 18)});
    apps.push_back({"compute", synth::kernel_for_ai(8.0, 1u << 18)});
    // One thread per app on node 0 of whatever the host is.
    model::Allocation allocation(4, host.node_count());
    for (model::AppId a = 0; a < 4 && a < host.cores_in_node(0); ++a) {
      allocation.set_threads(a, 0, 1);
    }
    const auto result = synth::run_host_scenario(host, apps, allocation, 0.2);
    TextTable apps_table({"app", "threads", "GFLOPS", "GB/s"});
    for (const auto& app : result.apps) {
      apps_table.add_row({app.name, std::to_string(app.threads), fmt_fixed(app.gflops, 3),
                          fmt_fixed(app.gbps, 3)});
    }
    std::printf("%s", apps_table.render().c_str());
  }

  bench::print_section("calibration loop on the simulator (paper methodology)");
  {
    const auto even = model::paper::table3()[1];
    const auto measured = sim::simulate_scenario(even.machine, even.apps, even.allocation,
                                                 sim::SimEffects{}, 0.3);
    synth::EvenScenarioMeasurement m;
    m.nodes = 4;
    m.cores_per_node = 20;
    m.mem_instances = 3;
    m.mem_threads_per_node = 5;
    m.mem_ai = even.apps[0].ai;
    m.mem_total_gflops =
        measured.app_gflops[0] + measured.app_gflops[1] + measured.app_gflops[2];
    m.compute_threads_per_node = 5;
    m.compute_ai = even.apps[3].ai;
    m.compute_total_gflops = measured.app_gflops[3];
    std::string error;
    if (const auto c = synth::calibrate_even_scenario(m, &error)) {
      std::printf("  with second-order effects ON, calibration absorbs them into the\n"
                  "  estimates (exactly what the paper's estimation did):\n");
      bench::print_comparison("estimated peak GFLOPS/thread", c->peak_gflops_per_thread,
                              0.29, 3.0);
      bench::print_comparison("estimated node bandwidth GB/s", c->node_bandwidth, 100.0,
                              5.0);
    } else {
      std::printf("  calibration failed: %s\n", error.c_str());
    }
  }
}

void BM_KernelPass(benchmark::State& state) {
  synth::KernelConfig config;
  config.elements = 1u << 16;
  config.flops_per_element = static_cast<std::uint32_t>(state.range(0));
  synth::TunableKernel kernel(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.run_passes(1).checksum);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(kernel.bytes_per_pass()) *
                          state.iterations());
}
BENCHMARK(BM_KernelPass)->Arg(2)->Arg(32)->Arg(256);

void BM_StreamTriad(benchmark::State& state) {
  synth::StreamConfig config;
  config.elements = 1u << 18;
  config.trials = 1;
  synth::Stream stream(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stream.run().back().best_gbps);
  }
}
BENCHMARK(BM_StreamTriad)->Unit(benchmark::kMillisecond);

}  // namespace

NUMASHARE_BENCH_MAIN(reproduce)
