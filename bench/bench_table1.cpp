// E1 — Table I: uneven thread allocation (1,1,1,5) on the 4x8 model machine.
// Prints the paper's full derivation (same row labels, same order) and the
// 254 GFLOPS total, then times the solver.
#include "bench_support.hpp"
#include "core/paper_scenarios.hpp"
#include "core/report.hpp"
#include "core/roofline.hpp"
#include "topology/presets.hpp"

namespace {

using namespace numashare;

void reproduce() {
  bench::print_header("E1 / Table I",
                      "uneven allocation (1,1,1,5): 3x memory-bound AI=0.5 + "
                      "1x compute-bound AI=10");
  const auto scenario = model::paper::table1();
  std::printf("%s\n", scenario.machine.describe().c_str());

  bench::print_section("derivation (paper Table I rows)");
  const auto derivation = model::derive(
      scenario.machine, model::classes_from(scenario.apps, {1, 1, 1, 5}));
  std::printf("%s", derivation.render().c_str());

  bench::print_section("general solver cross-check");
  const auto solution = model::solve(scenario.machine, scenario.apps, scenario.allocation);
  std::printf("%s", solution.describe(scenario.apps).c_str());

  bench::print_section("paper comparison");
  bench::print_comparison("total GFLOPS", solution.total_gflops,
                          scenario.paper_model_gflops, 0.01);
  bench::print_comparison("GFLOPS per node", solution.nodes[0].node_gflops, 63.5, 0.01);
  bench::print_comparison("memory-bound GB/s per thread",
                          solution.find_group(0, 0)->per_thread_granted, 9.0, 0.01);
  bench::print_comparison("compute-bound GFLOPS per app", solution.app_gflops[3], 200.0,
                          0.01);
}

void BM_SolveTable1(benchmark::State& state) {
  const auto scenario = model::paper::table1();
  for (auto _ : state) {
    auto solution = model::solve(scenario.machine, scenario.apps, scenario.allocation);
    benchmark::DoNotOptimize(solution.total_gflops);
  }
}
BENCHMARK(BM_SolveTable1);

void BM_DeriveTable1(benchmark::State& state) {
  const auto machine = topo::paper_model_machine();
  const auto apps = model::mixes::three_mem_one_compute();
  for (auto _ : state) {
    auto derivation = model::derive(machine, model::classes_from(apps, {1, 1, 1, 5}));
    benchmark::DoNotOptimize(derivation.total_gflops);
  }
}
BENCHMARK(BM_DeriveTable1);

}  // namespace

NUMASHARE_BENCH_MAIN(reproduce)
