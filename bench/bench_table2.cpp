// E2 — Table II: even thread allocation (2,2,2,2), same mix and machine.
#include "bench_support.hpp"
#include "core/paper_scenarios.hpp"
#include "core/report.hpp"
#include "core/roofline.hpp"

namespace {

using namespace numashare;

void reproduce() {
  bench::print_header("E2 / Table II",
                      "even allocation (2,2,2,2): 3x memory-bound AI=0.5 + "
                      "1x compute-bound AI=10");
  const auto scenario = model::paper::table2();

  bench::print_section("derivation (paper Table II rows)");
  const auto derivation = model::derive(
      scenario.machine, model::classes_from(scenario.apps, {2, 2, 2, 2}));
  std::printf("%s", derivation.render().c_str());

  const auto solution = model::solve(scenario.machine, scenario.apps, scenario.allocation);
  bench::print_section("paper comparison");
  bench::print_comparison("total GFLOPS", solution.total_gflops,
                          scenario.paper_model_gflops, 0.01);
  bench::print_comparison("GFLOPS per node", solution.nodes[0].node_gflops, 35.0, 0.01);
  bench::print_comparison("memory-bound GB/s per thread",
                          solution.find_group(0, 0)->per_thread_granted, 5.0, 0.01);
  bench::print_comparison("memory-bound GFLOPS per thread",
                          solution.find_group(0, 0)->per_thread_gflops, 2.5, 0.01);
  bench::print_comparison("compute-bound GFLOPS per app", solution.app_gflops[3], 80.0,
                          0.01);

  bench::print_section("contrast with Table I");
  std::printf("  uneven (1,1,1,5): 254 GFLOPS  |  even (2,2,2,2): %s GFLOPS\n",
              fmt_compact(solution.total_gflops).c_str());
  std::printf("  the uneven split is %.1f%% faster on this mix\n",
              (254.0 / solution.total_gflops - 1.0) * 100.0);
}

void BM_SolveTable2(benchmark::State& state) {
  const auto scenario = model::paper::table2();
  for (auto _ : state) {
    auto solution = model::solve(scenario.machine, scenario.apps, scenario.allocation);
    benchmark::DoNotOptimize(solution.total_gflops);
  }
}
BENCHMARK(BM_SolveTable2);

void BM_SolveSingleShotVariant(benchmark::State& state) {
  const auto scenario = model::paper::table2();
  model::SolveOptions options;
  options.single_shot_remainder = true;
  for (auto _ : state) {
    auto solution =
        model::solve(scenario.machine, scenario.apps, scenario.allocation, options);
    benchmark::DoNotOptimize(solution.total_gflops);
  }
}
BENCHMARK(BM_SolveSingleShotVariant);

}  // namespace

NUMASHARE_BENCH_MAIN(reproduce)
