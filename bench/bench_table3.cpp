// E5 — Table III: model vs "real hardware" across the five scenarios.
//
// The authors' 4-socket Skylake is replaced by the epoch-level machine
// simulator with second-order effects (see DESIGN.md §2); the calibration
// step mirrors the paper's methodology (parameters estimated from the even
// scenario). Columns: our analytic model (must match the paper's model
// column exactly), our simulated hardware, and both paper columns.
#include "bench_support.hpp"
#include "common/table.hpp"
#include "core/paper_scenarios.hpp"
#include "core/roofline.hpp"
#include "sim/simulator.hpp"
#include "synth/calibrate.hpp"

namespace {

using namespace numashare;

constexpr std::uint64_t kSeed = 0x5eed;

void reproduce() {
  bench::print_header("E5 / Table III", "model vs (simulated) real hardware, five scenarios");
  const auto rows = model::paper::table3();
  std::printf("%s\n", rows[0].machine.describe().c_str());

  bench::print_section("calibration (paper §III.B methodology)");
  {
    // Measure the even scenario on the simulated hardware, then invert.
    const auto& even = rows[1];
    const auto measured = sim::simulate_scenario(even.machine, even.apps, even.allocation,
                                                 sim::SimEffects::none(), 0.2, kSeed);
    synth::EvenScenarioMeasurement m;
    m.nodes = even.machine.node_count();
    m.cores_per_node = even.machine.cores_in_node(0);
    m.mem_instances = 3;
    m.mem_threads_per_node = 5;
    m.mem_ai = even.apps[0].ai;
    m.mem_total_gflops =
        measured.app_gflops[0] + measured.app_gflops[1] + measured.app_gflops[2];
    m.compute_threads_per_node = 5;
    m.compute_ai = even.apps[3].ai;
    m.compute_total_gflops = measured.app_gflops[3];
    std::string error;
    if (const auto c = synth::calibrate_even_scenario(m, &error)) {
      bench::print_comparison("estimated peak GFLOPS/thread", c->peak_gflops_per_thread,
                              0.29, 1.0);
      bench::print_comparison("estimated node bandwidth GB/s", c->node_bandwidth, 100.0,
                              1.0);
    } else {
      std::printf("  calibration failed: %s\n", error.c_str());
    }
  }

  bench::print_section("Table III");
  TextTable table({"scenario", "model", "sim 'real'", "paper model", "paper real"});
  for (const auto& row : rows) {
    const auto analytic = model::solve(row.machine, row.apps, row.allocation);
    const auto simulated = sim::simulate_scenario(row.machine, row.apps, row.allocation,
                                                  sim::SimEffects{}, 0.5, kSeed);
    table.add_row({row.description, fmt_fixed(analytic.total_gflops, 2),
                   fmt_fixed(simulated.total_gflops, 2),
                   fmt_fixed(row.paper_model_gflops, 2),
                   fmt_fixed(row.paper_real_gflops, 2)});
  }
  std::printf("%s", table.render().c_str());

  bench::print_section("checks");
  for (const auto& row : rows) {
    const auto analytic = model::solve(row.machine, row.apps, row.allocation);
    bench::print_comparison(row.id + " model column", analytic.total_gflops,
                            row.paper_model_gflops, 0.1);
  }
  // The paper's observation: the model overestimates the NUMA-bad rows by
  // ~5% but ranks scenarios correctly.
  const auto& bad_even = rows[3];
  const auto& bad_whole = rows[4];
  const auto sim_even = sim::simulate_scenario(bad_even.machine, bad_even.apps,
                                               bad_even.allocation, sim::SimEffects{}, 0.5,
                                               kSeed);
  const auto sim_whole = sim::simulate_scenario(bad_whole.machine, bad_whole.apps,
                                                bad_whole.allocation, sim::SimEffects{}, 0.5,
                                                kSeed);
  const auto model_even = model::solve(bad_even.machine, bad_even.apps, bad_even.allocation);
  const auto model_whole =
      model::solve(bad_whole.machine, bad_whole.apps, bad_whole.allocation);
  std::printf("  NUMA-bad rows: model overestimates sim by %.1f%% / %.1f%% "
              "(paper: ~5%% / ~5%%)\n",
              (model_even.total_gflops / sim_even.total_gflops - 1.0) * 100.0,
              (model_whole.total_gflops / sim_whole.total_gflops - 1.0) * 100.0);
  std::printf("  ranking preserved on sim: on-node > cross-node (%s)\n",
              sim_whole.total_gflops > sim_even.total_gflops ? "yes, as in the paper"
                                                             : "NO");
}

void BM_SimulateTable3Row(benchmark::State& state) {
  const auto rows = model::paper::table3();
  const auto& row = rows[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    const auto m = sim::simulate_scenario(row.machine, row.apps, row.allocation,
                                          sim::SimEffects{}, 0.05, kSeed);
    benchmark::DoNotOptimize(m.total_gflops);
  }
}
BENCHMARK(BM_SimulateTable3Row)->DenseRange(0, 4);

void BM_SolveTable3AllRows(benchmark::State& state) {
  const auto rows = model::paper::table3();
  for (auto _ : state) {
    double total = 0.0;
    for (const auto& row : rows) {
      total += model::solve(row.machine, row.apps, row.allocation).total_gflops;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_SolveTable3AllRows);

}  // namespace

NUMASHARE_BENCH_MAIN(reproduce)
