file(REMOVE_RECURSE
  "CMakeFiles/bench_alloc_search.dir/bench_alloc_search.cpp.o"
  "CMakeFiles/bench_alloc_search.dir/bench_alloc_search.cpp.o.d"
  "bench_alloc_search"
  "bench_alloc_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alloc_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
