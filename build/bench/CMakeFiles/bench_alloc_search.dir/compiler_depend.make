# Empty compiler generated dependencies file for bench_alloc_search.
# This may be replaced when dependencies are built.
