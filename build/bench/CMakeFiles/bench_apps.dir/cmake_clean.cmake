file(REMOVE_RECURSE
  "CMakeFiles/bench_apps.dir/bench_apps.cpp.o"
  "CMakeFiles/bench_apps.dir/bench_apps.cpp.o.d"
  "bench_apps"
  "bench_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
