file(REMOVE_RECURSE
  "CMakeFiles/bench_blocking.dir/bench_blocking.cpp.o"
  "CMakeFiles/bench_blocking.dir/bench_blocking.cpp.o.d"
  "bench_blocking"
  "bench_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
