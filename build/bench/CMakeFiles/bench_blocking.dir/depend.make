# Empty dependencies file for bench_blocking.
# This may be replaced when dependencies are built.
