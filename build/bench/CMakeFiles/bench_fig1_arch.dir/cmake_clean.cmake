file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_arch.dir/bench_fig1_arch.cpp.o"
  "CMakeFiles/bench_fig1_arch.dir/bench_fig1_arch.cpp.o.d"
  "bench_fig1_arch"
  "bench_fig1_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
