# Empty dependencies file for bench_fig1_arch.
# This may be replaced when dependencies are built.
