file(REMOVE_RECURSE
  "CMakeFiles/bench_model_perf.dir/bench_model_perf.cpp.o"
  "CMakeFiles/bench_model_perf.dir/bench_model_perf.cpp.o.d"
  "bench_model_perf"
  "bench_model_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
