file(REMOVE_RECURSE
  "CMakeFiles/bench_nonworker.dir/bench_nonworker.cpp.o"
  "CMakeFiles/bench_nonworker.dir/bench_nonworker.cpp.o.d"
  "bench_nonworker"
  "bench_nonworker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nonworker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
