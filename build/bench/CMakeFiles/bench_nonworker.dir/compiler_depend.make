# Empty compiler generated dependencies file for bench_nonworker.
# This may be replaced when dependencies are built.
