file(REMOVE_RECURSE
  "CMakeFiles/bench_numa_modes.dir/bench_numa_modes.cpp.o"
  "CMakeFiles/bench_numa_modes.dir/bench_numa_modes.cpp.o.d"
  "bench_numa_modes"
  "bench_numa_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_numa_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
