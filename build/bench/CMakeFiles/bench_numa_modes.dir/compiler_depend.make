# Empty compiler generated dependencies file for bench_numa_modes.
# This may be replaced when dependencies are built.
