file(REMOVE_RECURSE
  "CMakeFiles/bench_oversub.dir/bench_oversub.cpp.o"
  "CMakeFiles/bench_oversub.dir/bench_oversub.cpp.o.d"
  "bench_oversub"
  "bench_oversub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oversub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
