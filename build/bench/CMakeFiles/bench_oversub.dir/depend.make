# Empty dependencies file for bench_oversub.
# This may be replaced when dependencies are built.
