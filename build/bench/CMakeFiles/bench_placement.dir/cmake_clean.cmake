file(REMOVE_RECURSE
  "CMakeFiles/bench_placement.dir/bench_placement.cpp.o"
  "CMakeFiles/bench_placement.dir/bench_placement.cpp.o.d"
  "bench_placement"
  "bench_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
