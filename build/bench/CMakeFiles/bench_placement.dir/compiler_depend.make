# Empty compiler generated dependencies file for bench_placement.
# This may be replaced when dependencies are built.
