file(REMOVE_RECURSE
  "CMakeFiles/bench_synth.dir/bench_synth.cpp.o"
  "CMakeFiles/bench_synth.dir/bench_synth.cpp.o.d"
  "bench_synth"
  "bench_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
