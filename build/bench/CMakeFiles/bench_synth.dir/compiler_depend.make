# Empty compiler generated dependencies file for bench_synth.
# This may be replaced when dependencies are built.
