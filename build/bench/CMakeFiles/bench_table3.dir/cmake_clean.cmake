file(REMOVE_RECURSE
  "CMakeFiles/bench_table3.dir/bench_table3.cpp.o"
  "CMakeFiles/bench_table3.dir/bench_table3.cpp.o.d"
  "bench_table3"
  "bench_table3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
