file(REMOVE_RECURSE
  "CMakeFiles/composed_app.dir/composed_app.cpp.o"
  "CMakeFiles/composed_app.dir/composed_app.cpp.o.d"
  "composed_app"
  "composed_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composed_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
