# Empty dependencies file for composed_app.
# This may be replaced when dependencies are built.
