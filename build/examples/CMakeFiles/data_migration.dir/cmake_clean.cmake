file(REMOVE_RECURSE
  "CMakeFiles/data_migration.dir/data_migration.cpp.o"
  "CMakeFiles/data_migration.dir/data_migration.cpp.o.d"
  "data_migration"
  "data_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
