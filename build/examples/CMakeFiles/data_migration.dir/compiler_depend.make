# Empty compiler generated dependencies file for data_migration.
# This may be replaced when dependencies are built.
