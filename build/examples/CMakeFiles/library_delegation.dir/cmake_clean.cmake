file(REMOVE_RECURSE
  "CMakeFiles/library_delegation.dir/library_delegation.cpp.o"
  "CMakeFiles/library_delegation.dir/library_delegation.cpp.o.d"
  "library_delegation"
  "library_delegation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/library_delegation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
