# Empty compiler generated dependencies file for library_delegation.
# This may be replaced when dependencies are built.
