file(REMOVE_RECURSE
  "CMakeFiles/numa_probe.dir/numa_probe.cpp.o"
  "CMakeFiles/numa_probe.dir/numa_probe.cpp.o.d"
  "numa_probe"
  "numa_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numa_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
