# Empty compiler generated dependencies file for numa_probe.
# This may be replaced when dependencies are built.
