file(REMOVE_RECURSE
  "CMakeFiles/producer_consumer.dir/producer_consumer.cpp.o"
  "CMakeFiles/producer_consumer.dir/producer_consumer.cpp.o.d"
  "producer_consumer"
  "producer_consumer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/producer_consumer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
