# Empty dependencies file for producer_consumer.
# This may be replaced when dependencies are built.
