
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agent/agent.cpp" "src/agent/CMakeFiles/ns_agent.dir/agent.cpp.o" "gcc" "src/agent/CMakeFiles/ns_agent.dir/agent.cpp.o.d"
  "/root/repo/src/agent/channel.cpp" "src/agent/CMakeFiles/ns_agent.dir/channel.cpp.o" "gcc" "src/agent/CMakeFiles/ns_agent.dir/channel.cpp.o.d"
  "/root/repo/src/agent/consensus.cpp" "src/agent/CMakeFiles/ns_agent.dir/consensus.cpp.o" "gcc" "src/agent/CMakeFiles/ns_agent.dir/consensus.cpp.o.d"
  "/root/repo/src/agent/consensus_group.cpp" "src/agent/CMakeFiles/ns_agent.dir/consensus_group.cpp.o" "gcc" "src/agent/CMakeFiles/ns_agent.dir/consensus_group.cpp.o.d"
  "/root/repo/src/agent/os_load.cpp" "src/agent/CMakeFiles/ns_agent.dir/os_load.cpp.o" "gcc" "src/agent/CMakeFiles/ns_agent.dir/os_load.cpp.o.d"
  "/root/repo/src/agent/policies.cpp" "src/agent/CMakeFiles/ns_agent.dir/policies.cpp.o" "gcc" "src/agent/CMakeFiles/ns_agent.dir/policies.cpp.o.d"
  "/root/repo/src/agent/shm_channel.cpp" "src/agent/CMakeFiles/ns_agent.dir/shm_channel.cpp.o" "gcc" "src/agent/CMakeFiles/ns_agent.dir/shm_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ns_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ns_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ns_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ns_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
