file(REMOVE_RECURSE
  "CMakeFiles/ns_agent.dir/agent.cpp.o"
  "CMakeFiles/ns_agent.dir/agent.cpp.o.d"
  "CMakeFiles/ns_agent.dir/channel.cpp.o"
  "CMakeFiles/ns_agent.dir/channel.cpp.o.d"
  "CMakeFiles/ns_agent.dir/consensus.cpp.o"
  "CMakeFiles/ns_agent.dir/consensus.cpp.o.d"
  "CMakeFiles/ns_agent.dir/consensus_group.cpp.o"
  "CMakeFiles/ns_agent.dir/consensus_group.cpp.o.d"
  "CMakeFiles/ns_agent.dir/os_load.cpp.o"
  "CMakeFiles/ns_agent.dir/os_load.cpp.o.d"
  "CMakeFiles/ns_agent.dir/policies.cpp.o"
  "CMakeFiles/ns_agent.dir/policies.cpp.o.d"
  "CMakeFiles/ns_agent.dir/shm_channel.cpp.o"
  "CMakeFiles/ns_agent.dir/shm_channel.cpp.o.d"
  "libns_agent.a"
  "libns_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
