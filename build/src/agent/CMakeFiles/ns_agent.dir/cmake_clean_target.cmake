file(REMOVE_RECURSE
  "libns_agent.a"
)
