# Empty compiler generated dependencies file for ns_agent.
# This may be replaced when dependencies are built.
