file(REMOVE_RECURSE
  "CMakeFiles/ns_apps.dir/matmul.cpp.o"
  "CMakeFiles/ns_apps.dir/matmul.cpp.o.d"
  "CMakeFiles/ns_apps.dir/montecarlo.cpp.o"
  "CMakeFiles/ns_apps.dir/montecarlo.cpp.o.d"
  "CMakeFiles/ns_apps.dir/stencil.cpp.o"
  "CMakeFiles/ns_apps.dir/stencil.cpp.o.d"
  "libns_apps.a"
  "libns_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
