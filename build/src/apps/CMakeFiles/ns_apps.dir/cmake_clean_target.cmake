file(REMOVE_RECURSE
  "libns_apps.a"
)
