# Empty compiler generated dependencies file for ns_apps.
# This may be replaced when dependencies are built.
