file(REMOVE_RECURSE
  "CMakeFiles/ns_common.dir/config.cpp.o"
  "CMakeFiles/ns_common.dir/config.cpp.o.d"
  "CMakeFiles/ns_common.dir/csv.cpp.o"
  "CMakeFiles/ns_common.dir/csv.cpp.o.d"
  "CMakeFiles/ns_common.dir/logging.cpp.o"
  "CMakeFiles/ns_common.dir/logging.cpp.o.d"
  "CMakeFiles/ns_common.dir/stats.cpp.o"
  "CMakeFiles/ns_common.dir/stats.cpp.o.d"
  "CMakeFiles/ns_common.dir/table.cpp.o"
  "CMakeFiles/ns_common.dir/table.cpp.o.d"
  "CMakeFiles/ns_common.dir/threading.cpp.o"
  "CMakeFiles/ns_common.dir/threading.cpp.o.d"
  "libns_common.a"
  "libns_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
