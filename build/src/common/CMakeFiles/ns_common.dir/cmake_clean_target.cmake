file(REMOVE_RECURSE
  "libns_common.a"
)
