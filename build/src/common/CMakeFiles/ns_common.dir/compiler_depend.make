# Empty compiler generated dependencies file for ns_common.
# This may be replaced when dependencies are built.
