
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocation.cpp" "src/core/CMakeFiles/ns_core.dir/allocation.cpp.o" "gcc" "src/core/CMakeFiles/ns_core.dir/allocation.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/core/CMakeFiles/ns_core.dir/optimizer.cpp.o" "gcc" "src/core/CMakeFiles/ns_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/core/paper_scenarios.cpp" "src/core/CMakeFiles/ns_core.dir/paper_scenarios.cpp.o" "gcc" "src/core/CMakeFiles/ns_core.dir/paper_scenarios.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/core/CMakeFiles/ns_core.dir/placement.cpp.o" "gcc" "src/core/CMakeFiles/ns_core.dir/placement.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/ns_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/ns_core.dir/report.cpp.o.d"
  "/root/repo/src/core/roofline.cpp" "src/core/CMakeFiles/ns_core.dir/roofline.cpp.o" "gcc" "src/core/CMakeFiles/ns_core.dir/roofline.cpp.o.d"
  "/root/repo/src/core/scenario_io.cpp" "src/core/CMakeFiles/ns_core.dir/scenario_io.cpp.o" "gcc" "src/core/CMakeFiles/ns_core.dir/scenario_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ns_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
