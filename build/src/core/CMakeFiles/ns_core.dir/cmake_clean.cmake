file(REMOVE_RECURSE
  "CMakeFiles/ns_core.dir/allocation.cpp.o"
  "CMakeFiles/ns_core.dir/allocation.cpp.o.d"
  "CMakeFiles/ns_core.dir/optimizer.cpp.o"
  "CMakeFiles/ns_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/ns_core.dir/paper_scenarios.cpp.o"
  "CMakeFiles/ns_core.dir/paper_scenarios.cpp.o.d"
  "CMakeFiles/ns_core.dir/placement.cpp.o"
  "CMakeFiles/ns_core.dir/placement.cpp.o.d"
  "CMakeFiles/ns_core.dir/report.cpp.o"
  "CMakeFiles/ns_core.dir/report.cpp.o.d"
  "CMakeFiles/ns_core.dir/roofline.cpp.o"
  "CMakeFiles/ns_core.dir/roofline.cpp.o.d"
  "CMakeFiles/ns_core.dir/scenario_io.cpp.o"
  "CMakeFiles/ns_core.dir/scenario_io.cpp.o.d"
  "libns_core.a"
  "libns_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
