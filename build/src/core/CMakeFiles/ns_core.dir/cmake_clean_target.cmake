file(REMOVE_RECURSE
  "libns_core.a"
)
