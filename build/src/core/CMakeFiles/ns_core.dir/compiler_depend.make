# Empty compiler generated dependencies file for ns_core.
# This may be replaced when dependencies are built.
