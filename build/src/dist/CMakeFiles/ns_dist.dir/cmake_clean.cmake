file(REMOVE_RECURSE
  "CMakeFiles/ns_dist.dir/cluster.cpp.o"
  "CMakeFiles/ns_dist.dir/cluster.cpp.o.d"
  "libns_dist.a"
  "libns_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
