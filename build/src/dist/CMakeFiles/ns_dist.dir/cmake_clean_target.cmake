file(REMOVE_RECURSE
  "libns_dist.a"
)
