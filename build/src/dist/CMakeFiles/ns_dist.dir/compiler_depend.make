# Empty compiler generated dependencies file for ns_dist.
# This may be replaced when dependencies are built.
