
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/arena.cpp" "src/runtime/CMakeFiles/ns_runtime.dir/arena.cpp.o" "gcc" "src/runtime/CMakeFiles/ns_runtime.dir/arena.cpp.o.d"
  "/root/repo/src/runtime/datablock.cpp" "src/runtime/CMakeFiles/ns_runtime.dir/datablock.cpp.o" "gcc" "src/runtime/CMakeFiles/ns_runtime.dir/datablock.cpp.o.d"
  "/root/repo/src/runtime/event.cpp" "src/runtime/CMakeFiles/ns_runtime.dir/event.cpp.o" "gcc" "src/runtime/CMakeFiles/ns_runtime.dir/event.cpp.o.d"
  "/root/repo/src/runtime/foreign.cpp" "src/runtime/CMakeFiles/ns_runtime.dir/foreign.cpp.o" "gcc" "src/runtime/CMakeFiles/ns_runtime.dir/foreign.cpp.o.d"
  "/root/repo/src/runtime/runtime.cpp" "src/runtime/CMakeFiles/ns_runtime.dir/runtime.cpp.o" "gcc" "src/runtime/CMakeFiles/ns_runtime.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ns_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ns_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
