file(REMOVE_RECURSE
  "CMakeFiles/ns_runtime.dir/arena.cpp.o"
  "CMakeFiles/ns_runtime.dir/arena.cpp.o.d"
  "CMakeFiles/ns_runtime.dir/datablock.cpp.o"
  "CMakeFiles/ns_runtime.dir/datablock.cpp.o.d"
  "CMakeFiles/ns_runtime.dir/event.cpp.o"
  "CMakeFiles/ns_runtime.dir/event.cpp.o.d"
  "CMakeFiles/ns_runtime.dir/foreign.cpp.o"
  "CMakeFiles/ns_runtime.dir/foreign.cpp.o.d"
  "CMakeFiles/ns_runtime.dir/runtime.cpp.o"
  "CMakeFiles/ns_runtime.dir/runtime.cpp.o.d"
  "libns_runtime.a"
  "libns_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
