file(REMOVE_RECURSE
  "libns_runtime.a"
)
