# Empty compiler generated dependencies file for ns_runtime.
# This may be replaced when dependencies are built.
