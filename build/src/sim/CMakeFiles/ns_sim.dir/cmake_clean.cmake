file(REMOVE_RECURSE
  "CMakeFiles/ns_sim.dir/machine_sim.cpp.o"
  "CMakeFiles/ns_sim.dir/machine_sim.cpp.o.d"
  "CMakeFiles/ns_sim.dir/simulator.cpp.o"
  "CMakeFiles/ns_sim.dir/simulator.cpp.o.d"
  "libns_sim.a"
  "libns_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
