file(REMOVE_RECURSE
  "libns_sim.a"
)
