# Empty compiler generated dependencies file for ns_sim.
# This may be replaced when dependencies are built.
