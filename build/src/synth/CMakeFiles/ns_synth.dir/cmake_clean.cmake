file(REMOVE_RECURSE
  "CMakeFiles/ns_synth.dir/calibrate.cpp.o"
  "CMakeFiles/ns_synth.dir/calibrate.cpp.o.d"
  "CMakeFiles/ns_synth.dir/harness.cpp.o"
  "CMakeFiles/ns_synth.dir/harness.cpp.o.d"
  "CMakeFiles/ns_synth.dir/kernel.cpp.o"
  "CMakeFiles/ns_synth.dir/kernel.cpp.o.d"
  "CMakeFiles/ns_synth.dir/stream.cpp.o"
  "CMakeFiles/ns_synth.dir/stream.cpp.o.d"
  "libns_synth.a"
  "libns_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
