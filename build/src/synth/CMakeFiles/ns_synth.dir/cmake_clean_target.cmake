file(REMOVE_RECURSE
  "libns_synth.a"
)
