# Empty compiler generated dependencies file for ns_synth.
# This may be replaced when dependencies are built.
