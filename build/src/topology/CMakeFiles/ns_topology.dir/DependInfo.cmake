
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/affinity.cpp" "src/topology/CMakeFiles/ns_topology.dir/affinity.cpp.o" "gcc" "src/topology/CMakeFiles/ns_topology.dir/affinity.cpp.o.d"
  "/root/repo/src/topology/discovery.cpp" "src/topology/CMakeFiles/ns_topology.dir/discovery.cpp.o" "gcc" "src/topology/CMakeFiles/ns_topology.dir/discovery.cpp.o.d"
  "/root/repo/src/topology/machine.cpp" "src/topology/CMakeFiles/ns_topology.dir/machine.cpp.o" "gcc" "src/topology/CMakeFiles/ns_topology.dir/machine.cpp.o.d"
  "/root/repo/src/topology/presets.cpp" "src/topology/CMakeFiles/ns_topology.dir/presets.cpp.o" "gcc" "src/topology/CMakeFiles/ns_topology.dir/presets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
