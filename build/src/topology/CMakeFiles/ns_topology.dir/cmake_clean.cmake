file(REMOVE_RECURSE
  "CMakeFiles/ns_topology.dir/affinity.cpp.o"
  "CMakeFiles/ns_topology.dir/affinity.cpp.o.d"
  "CMakeFiles/ns_topology.dir/discovery.cpp.o"
  "CMakeFiles/ns_topology.dir/discovery.cpp.o.d"
  "CMakeFiles/ns_topology.dir/machine.cpp.o"
  "CMakeFiles/ns_topology.dir/machine.cpp.o.d"
  "CMakeFiles/ns_topology.dir/presets.cpp.o"
  "CMakeFiles/ns_topology.dir/presets.cpp.o.d"
  "libns_topology.a"
  "libns_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
