file(REMOVE_RECURSE
  "libns_topology.a"
)
