# Empty dependencies file for ns_topology.
# This may be replaced when dependencies are built.
