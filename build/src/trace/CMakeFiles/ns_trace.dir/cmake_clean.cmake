file(REMOVE_RECURSE
  "CMakeFiles/ns_trace.dir/trace.cpp.o"
  "CMakeFiles/ns_trace.dir/trace.cpp.o.d"
  "libns_trace.a"
  "libns_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
