file(REMOVE_RECURSE
  "libns_trace.a"
)
