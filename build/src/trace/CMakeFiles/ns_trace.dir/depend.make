# Empty dependencies file for ns_trace.
# This may be replaced when dependencies are built.
