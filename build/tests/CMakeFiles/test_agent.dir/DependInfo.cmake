
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/agent/agent_test.cpp" "tests/CMakeFiles/test_agent.dir/agent/agent_test.cpp.o" "gcc" "tests/CMakeFiles/test_agent.dir/agent/agent_test.cpp.o.d"
  "/root/repo/tests/agent/auto_ai_test.cpp" "tests/CMakeFiles/test_agent.dir/agent/auto_ai_test.cpp.o" "gcc" "tests/CMakeFiles/test_agent.dir/agent/auto_ai_test.cpp.o.d"
  "/root/repo/tests/agent/channel_test.cpp" "tests/CMakeFiles/test_agent.dir/agent/channel_test.cpp.o" "gcc" "tests/CMakeFiles/test_agent.dir/agent/channel_test.cpp.o.d"
  "/root/repo/tests/agent/consensus_group_test.cpp" "tests/CMakeFiles/test_agent.dir/agent/consensus_group_test.cpp.o" "gcc" "tests/CMakeFiles/test_agent.dir/agent/consensus_group_test.cpp.o.d"
  "/root/repo/tests/agent/consensus_test.cpp" "tests/CMakeFiles/test_agent.dir/agent/consensus_test.cpp.o" "gcc" "tests/CMakeFiles/test_agent.dir/agent/consensus_test.cpp.o.d"
  "/root/repo/tests/agent/failure_injection_test.cpp" "tests/CMakeFiles/test_agent.dir/agent/failure_injection_test.cpp.o" "gcc" "tests/CMakeFiles/test_agent.dir/agent/failure_injection_test.cpp.o.d"
  "/root/repo/tests/agent/model_guided_integration_test.cpp" "tests/CMakeFiles/test_agent.dir/agent/model_guided_integration_test.cpp.o" "gcc" "tests/CMakeFiles/test_agent.dir/agent/model_guided_integration_test.cpp.o.d"
  "/root/repo/tests/agent/os_load_test.cpp" "tests/CMakeFiles/test_agent.dir/agent/os_load_test.cpp.o" "gcc" "tests/CMakeFiles/test_agent.dir/agent/os_load_test.cpp.o.d"
  "/root/repo/tests/agent/placement_flow_test.cpp" "tests/CMakeFiles/test_agent.dir/agent/placement_flow_test.cpp.o" "gcc" "tests/CMakeFiles/test_agent.dir/agent/placement_flow_test.cpp.o.d"
  "/root/repo/tests/agent/policies_test.cpp" "tests/CMakeFiles/test_agent.dir/agent/policies_test.cpp.o" "gcc" "tests/CMakeFiles/test_agent.dir/agent/policies_test.cpp.o.d"
  "/root/repo/tests/agent/protocol_test.cpp" "tests/CMakeFiles/test_agent.dir/agent/protocol_test.cpp.o" "gcc" "tests/CMakeFiles/test_agent.dir/agent/protocol_test.cpp.o.d"
  "/root/repo/tests/agent/shm_channel_test.cpp" "tests/CMakeFiles/test_agent.dir/agent/shm_channel_test.cpp.o" "gcc" "tests/CMakeFiles/test_agent.dir/agent/shm_channel_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/agent/CMakeFiles/ns_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ns_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ns_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ns_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ns_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ns_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
