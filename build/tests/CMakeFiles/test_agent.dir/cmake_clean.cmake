file(REMOVE_RECURSE
  "CMakeFiles/test_agent.dir/agent/agent_test.cpp.o"
  "CMakeFiles/test_agent.dir/agent/agent_test.cpp.o.d"
  "CMakeFiles/test_agent.dir/agent/auto_ai_test.cpp.o"
  "CMakeFiles/test_agent.dir/agent/auto_ai_test.cpp.o.d"
  "CMakeFiles/test_agent.dir/agent/channel_test.cpp.o"
  "CMakeFiles/test_agent.dir/agent/channel_test.cpp.o.d"
  "CMakeFiles/test_agent.dir/agent/consensus_group_test.cpp.o"
  "CMakeFiles/test_agent.dir/agent/consensus_group_test.cpp.o.d"
  "CMakeFiles/test_agent.dir/agent/consensus_test.cpp.o"
  "CMakeFiles/test_agent.dir/agent/consensus_test.cpp.o.d"
  "CMakeFiles/test_agent.dir/agent/failure_injection_test.cpp.o"
  "CMakeFiles/test_agent.dir/agent/failure_injection_test.cpp.o.d"
  "CMakeFiles/test_agent.dir/agent/model_guided_integration_test.cpp.o"
  "CMakeFiles/test_agent.dir/agent/model_guided_integration_test.cpp.o.d"
  "CMakeFiles/test_agent.dir/agent/os_load_test.cpp.o"
  "CMakeFiles/test_agent.dir/agent/os_load_test.cpp.o.d"
  "CMakeFiles/test_agent.dir/agent/placement_flow_test.cpp.o"
  "CMakeFiles/test_agent.dir/agent/placement_flow_test.cpp.o.d"
  "CMakeFiles/test_agent.dir/agent/policies_test.cpp.o"
  "CMakeFiles/test_agent.dir/agent/policies_test.cpp.o.d"
  "CMakeFiles/test_agent.dir/agent/protocol_test.cpp.o"
  "CMakeFiles/test_agent.dir/agent/protocol_test.cpp.o.d"
  "CMakeFiles/test_agent.dir/agent/shm_channel_test.cpp.o"
  "CMakeFiles/test_agent.dir/agent/shm_channel_test.cpp.o.d"
  "test_agent"
  "test_agent.pdb"
  "test_agent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
