
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/config_test.cpp" "tests/CMakeFiles/test_common.dir/common/config_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/config_test.cpp.o.d"
  "/root/repo/tests/common/csv_test.cpp" "tests/CMakeFiles/test_common.dir/common/csv_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/csv_test.cpp.o.d"
  "/root/repo/tests/common/format_test.cpp" "tests/CMakeFiles/test_common.dir/common/format_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/format_test.cpp.o.d"
  "/root/repo/tests/common/rng_test.cpp" "tests/CMakeFiles/test_common.dir/common/rng_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/rng_test.cpp.o.d"
  "/root/repo/tests/common/spsc_ring_test.cpp" "tests/CMakeFiles/test_common.dir/common/spsc_ring_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/spsc_ring_test.cpp.o.d"
  "/root/repo/tests/common/stats_test.cpp" "tests/CMakeFiles/test_common.dir/common/stats_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/stats_test.cpp.o.d"
  "/root/repo/tests/common/table_test.cpp" "tests/CMakeFiles/test_common.dir/common/table_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/table_test.cpp.o.d"
  "/root/repo/tests/common/threading_test.cpp" "tests/CMakeFiles/test_common.dir/common/threading_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/threading_test.cpp.o.d"
  "/root/repo/tests/common/units_test.cpp" "tests/CMakeFiles/test_common.dir/common/units_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/units_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
