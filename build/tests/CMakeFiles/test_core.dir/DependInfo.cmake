
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/allocation_test.cpp" "tests/CMakeFiles/test_core.dir/core/allocation_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/allocation_test.cpp.o.d"
  "/root/repo/tests/core/asymmetric_test.cpp" "tests/CMakeFiles/test_core.dir/core/asymmetric_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/asymmetric_test.cpp.o.d"
  "/root/repo/tests/core/model_properties_test.cpp" "tests/CMakeFiles/test_core.dir/core/model_properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/model_properties_test.cpp.o.d"
  "/root/repo/tests/core/optimizer_test.cpp" "tests/CMakeFiles/test_core.dir/core/optimizer_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/optimizer_test.cpp.o.d"
  "/root/repo/tests/core/paper_numbers_test.cpp" "tests/CMakeFiles/test_core.dir/core/paper_numbers_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/paper_numbers_test.cpp.o.d"
  "/root/repo/tests/core/placement_test.cpp" "tests/CMakeFiles/test_core.dir/core/placement_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/placement_test.cpp.o.d"
  "/root/repo/tests/core/report_test.cpp" "tests/CMakeFiles/test_core.dir/core/report_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/report_test.cpp.o.d"
  "/root/repo/tests/core/roofline_test.cpp" "tests/CMakeFiles/test_core.dir/core/roofline_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/roofline_test.cpp.o.d"
  "/root/repo/tests/core/scaling_test.cpp" "tests/CMakeFiles/test_core.dir/core/scaling_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/scaling_test.cpp.o.d"
  "/root/repo/tests/core/scenario_io_test.cpp" "tests/CMakeFiles/test_core.dir/core/scenario_io_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/scenario_io_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ns_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ns_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
