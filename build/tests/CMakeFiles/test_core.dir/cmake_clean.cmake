file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/allocation_test.cpp.o"
  "CMakeFiles/test_core.dir/core/allocation_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/asymmetric_test.cpp.o"
  "CMakeFiles/test_core.dir/core/asymmetric_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/model_properties_test.cpp.o"
  "CMakeFiles/test_core.dir/core/model_properties_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/optimizer_test.cpp.o"
  "CMakeFiles/test_core.dir/core/optimizer_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/paper_numbers_test.cpp.o"
  "CMakeFiles/test_core.dir/core/paper_numbers_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/placement_test.cpp.o"
  "CMakeFiles/test_core.dir/core/placement_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/report_test.cpp.o"
  "CMakeFiles/test_core.dir/core/report_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/roofline_test.cpp.o"
  "CMakeFiles/test_core.dir/core/roofline_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/scaling_test.cpp.o"
  "CMakeFiles/test_core.dir/core/scaling_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/scenario_io_test.cpp.o"
  "CMakeFiles/test_core.dir/core/scenario_io_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
