file(REMOVE_RECURSE
  "CMakeFiles/test_dist.dir/dist/cluster_test.cpp.o"
  "CMakeFiles/test_dist.dir/dist/cluster_test.cpp.o.d"
  "test_dist"
  "test_dist.pdb"
  "test_dist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
