# Empty compiler generated dependencies file for test_dist.
# This may be replaced when dependencies are built.
