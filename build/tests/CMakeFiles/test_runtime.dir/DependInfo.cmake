
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/arena_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/arena_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/arena_test.cpp.o.d"
  "/root/repo/tests/runtime/blocking_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/blocking_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/blocking_test.cpp.o.d"
  "/root/repo/tests/runtime/data_deps_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/data_deps_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/data_deps_test.cpp.o.d"
  "/root/repo/tests/runtime/datablock_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/datablock_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/datablock_test.cpp.o.d"
  "/root/repo/tests/runtime/event_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/event_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/event_test.cpp.o.d"
  "/root/repo/tests/runtime/foreign_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/foreign_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/foreign_test.cpp.o.d"
  "/root/repo/tests/runtime/runtime_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/runtime_test.cpp.o.d"
  "/root/repo/tests/runtime/stress_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/stress_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/stress_test.cpp.o.d"
  "/root/repo/tests/runtime/wsdeque_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/wsdeque_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/wsdeque_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/ns_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ns_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ns_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
