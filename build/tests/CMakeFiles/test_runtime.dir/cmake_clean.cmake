file(REMOVE_RECURSE
  "CMakeFiles/test_runtime.dir/runtime/arena_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/arena_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/blocking_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/blocking_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/data_deps_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/data_deps_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/datablock_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/datablock_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/event_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/event_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/foreign_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/foreign_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/runtime_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/runtime_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/stress_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/stress_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/wsdeque_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/wsdeque_test.cpp.o.d"
  "test_runtime"
  "test_runtime.pdb"
  "test_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
