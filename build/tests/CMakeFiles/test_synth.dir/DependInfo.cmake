
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/synth/calibrate_test.cpp" "tests/CMakeFiles/test_synth.dir/synth/calibrate_test.cpp.o" "gcc" "tests/CMakeFiles/test_synth.dir/synth/calibrate_test.cpp.o.d"
  "/root/repo/tests/synth/harness_test.cpp" "tests/CMakeFiles/test_synth.dir/synth/harness_test.cpp.o" "gcc" "tests/CMakeFiles/test_synth.dir/synth/harness_test.cpp.o.d"
  "/root/repo/tests/synth/kernel_test.cpp" "tests/CMakeFiles/test_synth.dir/synth/kernel_test.cpp.o" "gcc" "tests/CMakeFiles/test_synth.dir/synth/kernel_test.cpp.o.d"
  "/root/repo/tests/synth/stream_test.cpp" "tests/CMakeFiles/test_synth.dir/synth/stream_test.cpp.o" "gcc" "tests/CMakeFiles/test_synth.dir/synth/stream_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synth/CMakeFiles/ns_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ns_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ns_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ns_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ns_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ns_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
