file(REMOVE_RECURSE
  "CMakeFiles/test_synth.dir/synth/calibrate_test.cpp.o"
  "CMakeFiles/test_synth.dir/synth/calibrate_test.cpp.o.d"
  "CMakeFiles/test_synth.dir/synth/harness_test.cpp.o"
  "CMakeFiles/test_synth.dir/synth/harness_test.cpp.o.d"
  "CMakeFiles/test_synth.dir/synth/kernel_test.cpp.o"
  "CMakeFiles/test_synth.dir/synth/kernel_test.cpp.o.d"
  "CMakeFiles/test_synth.dir/synth/stream_test.cpp.o"
  "CMakeFiles/test_synth.dir/synth/stream_test.cpp.o.d"
  "test_synth"
  "test_synth.pdb"
  "test_synth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
