file(REMOVE_RECURSE
  "CMakeFiles/test_topology.dir/topology/affinity_test.cpp.o"
  "CMakeFiles/test_topology.dir/topology/affinity_test.cpp.o.d"
  "CMakeFiles/test_topology.dir/topology/discovery_test.cpp.o"
  "CMakeFiles/test_topology.dir/topology/discovery_test.cpp.o.d"
  "CMakeFiles/test_topology.dir/topology/machine_test.cpp.o"
  "CMakeFiles/test_topology.dir/topology/machine_test.cpp.o.d"
  "CMakeFiles/test_topology.dir/topology/presets_test.cpp.o"
  "CMakeFiles/test_topology.dir/topology/presets_test.cpp.o.d"
  "test_topology"
  "test_topology.pdb"
  "test_topology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
