file(REMOVE_RECURSE
  "CMakeFiles/test_trace.dir/trace/runtime_trace_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/runtime_trace_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/trace_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/trace_test.cpp.o.d"
  "test_trace"
  "test_trace.pdb"
  "test_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
