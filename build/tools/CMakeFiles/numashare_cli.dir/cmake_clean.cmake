file(REMOVE_RECURSE
  "CMakeFiles/numashare_cli.dir/numashare_cli.cpp.o"
  "CMakeFiles/numashare_cli.dir/numashare_cli.cpp.o.d"
  "numashare_cli"
  "numashare_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numashare_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
