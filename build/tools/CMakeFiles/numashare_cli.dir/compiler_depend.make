# Empty compiler generated dependencies file for numashare_cli.
# This may be replaced when dependencies are built.
