# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_usage "/root/repo/build/tools/numashare_cli")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_probe "/root/repo/build/tools/numashare_cli" "probe")
set_tests_properties(cli_probe PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_paper_table1 "/root/repo/build/tools/numashare_cli" "paper" "table1")
set_tests_properties(cli_paper_table1 PROPERTIES  PASS_REGULAR_EXPRESSION "254" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_paper_table3 "/root/repo/build/tools/numashare_cli" "paper" "table3")
set_tests_properties(cli_paper_table3 PROPERTIES  PASS_REGULAR_EXPRESSION "15.18" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_template "/root/repo/build/tools/numashare_cli" "template")
set_tests_properties(cli_template PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_pipeline "/usr/bin/cmake" "-DCLI=/root/repo/build/tools/numashare_cli" "-DWORK_DIR=/root/repo/build/tools" "-P" "/root/repo/tools/cli_pipeline_test.cmake")
set_tests_properties(cli_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
