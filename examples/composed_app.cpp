// The paper's opening vision, end to end:
//
//   "One interesting approach is to build a larger, more complex application
//    out of multiple simpler applications. ... keep the applications
//    separate, but allow them to share data ... If one application cannot
//    use some resources at a point in time, we might be able to allocate
//    them to another application, which can use them."
//
// Three real component applications — a memory-bound Jacobi stencil, a
// compute-bound blocked matmul, and a Monte Carlo sampler — each on its own
// task runtime, each advertising its own arithmetic intensity through
// telemetry. A model-guided agent partitions the (virtual) NUMA machine
// among them; the printout compares the agent's allocation against fair
// share and shows each component's progress.
//
// Usage: ./examples/composed_app [rounds]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>

#include "agent/agent.hpp"
#include "agent/policies.hpp"
#include "apps/matmul.hpp"
#include "apps/montecarlo.hpp"
#include "apps/stencil.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/roofline.hpp"
#include "topology/presets.hpp"

using namespace numashare;
using namespace std::chrono_literals;

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 3;
  // 2 nodes x 4 cores: room for all three components to keep at least one
  // thread per node under the model-guided partition.
  const auto machine = topo::Machine::symmetric(2, 4, 1.0, 32.0, 10.0);
  std::printf("%s\n", machine.describe().c_str());

  // --- the component applications, each on its own runtime ---------------
  rt::Runtime stencil_rt(machine, {.name = "stencil"});
  rt::Runtime matmul_rt(machine, {.name = "matmul"});
  rt::Runtime mc_rt(machine, {.name = "montecarlo"});

  apps::StencilConfig stencil_config;
  stencil_config.rows = 96;
  stencil_config.cols = 96;
  stencil_config.row_blocks = 4;
  apps::Stencil stencil(stencil_rt, stencil_config);

  apps::MatmulConfig matmul_config;
  matmul_config.n = 64;
  matmul_config.tile = 16;
  apps::Matmul matmul(matmul_rt, matmul_config);

  apps::MonteCarloConfig mc_config;
  mc_config.tasks = 32;
  mc_config.samples_per_task = 1u << 12;
  apps::MonteCarlo montecarlo(mc_rt, mc_config);

  // --- Figure-1 plumbing: channels, adapters, agent ----------------------
  agent::Channel stencil_ch, matmul_ch, mc_ch;
  agent::RuntimeAdapter stencil_ad(stencil_rt, stencil_ch, stencil.ai_estimate());
  agent::RuntimeAdapter matmul_ad(matmul_rt, matmul_ch, matmul.ai_estimate());
  agent::RuntimeAdapter mc_ad(mc_rt, mc_ch, montecarlo.ai_estimate());

  auto policy = std::make_unique<agent::ModelGuidedPolicy>();
  auto* policy_raw = policy.get();
  agent::Agent coordinator(machine, std::move(policy), {.period_us = 1000});
  coordinator.add_app("stencil", stencil_ch);
  coordinator.add_app("matmul", matmul_ch);
  coordinator.add_app("montecarlo", mc_ch);

  stencil_ad.start(500);
  matmul_ad.start(500);
  mc_ad.start(500);
  coordinator.start();
  std::this_thread::sleep_for(20ms);  // let the first decision land

  // --- run the composed application --------------------------------------
  std::printf("running %d composed rounds (stencil sweeps + matmul + Monte Carlo)...\n\n",
              rounds);
  const auto start = std::chrono::steady_clock::now();
  for (int round = 0; round < rounds; ++round) {
    // The components genuinely overlap: stencil and Monte Carlo work is
    // driven from worker threads while this thread drives the matmul.
    std::thread stencil_driver([&] { stencil.run(20); });
    std::thread mc_driver([&] { montecarlo.run(); });
    matmul.initialize();
    matmul.run();
    stencil_driver.join();
    mc_driver.join();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  coordinator.stop();
  stencil_ad.stop();
  matmul_ad.stop();
  mc_ad.stop();

  // --- report ---------------------------------------------------------------
  TextTable table({"component", "advertised AI", "result", "tasks executed"});
  table.add_row({"stencil", fmt_compact(stencil.ai_estimate(), 3),
                 ns_format("{} sweeps, checksum {}", stencil.sweeps_done(),
                           fmt_compact(stencil.checksum(), 1)),
                 std::to_string(stencil_rt.stats().tasks_executed)});
  table.add_row({"matmul", fmt_compact(matmul.ai_estimate(), 3),
                 ns_format("max |err| {}", fmt_compact(matmul.verify_sample(), 6)),
                 std::to_string(matmul_rt.stats().tasks_executed)});
  table.add_row({"montecarlo", fmt_compact(montecarlo.ai_estimate(), 3),
                 ns_format("pi = {}", fmt_compact(montecarlo.estimate(), 5)),
                 std::to_string(mc_rt.stats().tasks_executed)});
  std::printf("%s", table.render().c_str());
  std::printf("completed in %.2f s\n\n", seconds);

  if (policy_raw->last_allocation()) {
    std::printf("agent's model-guided allocation: %s\n",
                policy_raw->last_allocation()->to_string().c_str());
  }
  std::printf("final running threads: stencil=%u matmul=%u montecarlo=%u "
              "(sum <= %u cores)\n",
              stencil_rt.running_threads(), matmul_rt.running_threads(),
              mc_rt.running_threads(), machine.core_count());

  // What the model says the agent's split is worth vs fair share.
  std::vector<model::AppSpec> specs{
      model::AppSpec::numa_perfect("stencil", stencil.ai_estimate()),
      model::AppSpec::numa_perfect("matmul", matmul.ai_estimate()),
      model::AppSpec::numa_perfect("montecarlo", montecarlo.ai_estimate())};
  if (policy_raw->last_allocation()) {
    const auto guided = model::solve(machine, specs, *policy_raw->last_allocation());
    // Fair share on a 2-cores/node machine: 3 apps cannot split evenly;
    // compare against one thread each per node (the closest fair option).
    auto fair = model::Allocation(3, machine.node_count());
    for (model::AppId a = 0; a < 3; ++a) {
      for (topo::NodeId n = 0; n < machine.node_count(); ++n) {
        if (a < machine.cores_in_node(n)) fair.set_threads(a, n, a < 2 ? 1 : 0);
      }
    }
    const auto fair_solution = model::solve(machine, specs, fair);
    std::printf("model: guided %.2f GFLOPS vs naive split %.2f GFLOPS\n",
                guided.total_gflops, fair_solution.total_gflops);
  }
  return 0;
}
