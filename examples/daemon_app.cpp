// A daemon-managed application: connect to a running `numashared`, register
// with a name and an advertised arithmetic intensity, and let the daemon's
// policy decide how many threads this process runs on each NUMA node.
//
// Usage: ./examples/daemon_app [name] [ai] [seconds] [--registry=/name]
//
// Run several copies with different AIs and watch the daemon partition the
// machine between them (and re-partition when one exits or is killed):
//
//   ./src/daemon/numashared --machine=2x4:10:32 --journal=/tmp/ns.jsonl &
//   ./examples/daemon_app stencil 0.5 10 &
//   ./examples/daemon_app matmul  10  10 &
//   ./tools/numashare_cli daemon-status
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "agent/channel.hpp"
#include "daemon/client.hpp"
#include "runtime/runtime.hpp"

using namespace numashare;
using namespace std::chrono_literals;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "daemon_app";
  const double ai = argc > 2 ? std::atof(argv[2]) : 1.0;
  const double seconds = argc > 3 ? std::atof(argv[3]) : 10.0;
  nsd::ClientConnectOptions options;
  options.advertised_ai = ai;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--registry=", 0) == 0) options.registry_name = arg.substr(11);
  }

  nsd::DaemonClient client(name, options);
  std::string error;
  if (!client.connect(&error)) {
    std::fprintf(stderr,
                 "%s: could not join a daemon: %s\n"
                 "start one first, e.g.  ./src/daemon/numashared --machine=probe\n",
                 name.c_str(), error.c_str());
    return 1;
  }
  std::printf("%s: joined as slot %u (generation %llu), advertised AI %.2f\n", name.c_str(),
              client.slot_index(), static_cast<unsigned long long>(client.generation()), ai);

  // The runtime must mirror the daemon's node layout (published in the
  // registry) so per-node thread targets land on matching pools.
  rt::Runtime runtime(client.arbitration_machine(), {.name = name});
  agent::RuntimeAdapter adapter(runtime, *client.channel(), ai);
  client.start_heartbeat();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(seconds);
  auto next_print = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() < deadline) {
    // Simulated work so progress/task rates flow through telemetry.
    runtime.report_progress();
    adapter.pump();
    if (!client.check_connection()) {
      std::printf("%s: evicted (or the daemon restarted) — reconnecting\n", name.c_str());
      if (!client.reconnect(&error)) {
        std::fprintf(stderr, "%s: reconnect failed: %s\n", name.c_str(), error.c_str());
        return 1;
      }
      std::printf("%s: rejoined as slot %u\n", name.c_str(), client.slot_index());
    }
    if (std::chrono::steady_clock::now() >= next_print) {
      const auto per_node = runtime.running_per_node();
      std::string split;
      for (std::size_t n = 0; n < per_node.size(); ++n) {
        split += (n ? "+" : "") + std::to_string(per_node[n]);
      }
      std::printf("%s: running %u threads (%s per node)\n", name.c_str(),
                  runtime.running_threads(), split.c_str());
      next_print += 1s;
    }
    std::this_thread::sleep_for(10ms);
  }

  client.stop_heartbeat();
  client.disconnect();  // graceful goodbye: the daemon logs "leave"
  std::printf("%s: left the daemon\n", name.c_str());
  return 0;
}
