// Data migration end to end — §III.A's ideal case made concrete:
//
//   "In the ideal case, the application should be able to move the data to a
//    different NUMA node. This would easily be possible in OCR, where the
//    runtime system is also in charge of managing the data."
//
// A NUMA-bad application holds its working set in a runtime-managed
// datablock on the wrong node. The model-guided agent (with placement advice
// on) notices the mismatch between where the app runs and where its data
// lives, suggests a home, and the application migrates at its next phase
// boundary via Datablock::move_to. The printout shows before/after placement
// and the model's predicted gain.
//
// Usage: ./examples/data_migration
#include <chrono>
#include <cstdio>
#include <thread>

#include "agent/agent.hpp"
#include "agent/policies.hpp"
#include "core/placement.hpp"
#include "topology/presets.hpp"

using namespace numashare;
using namespace std::chrono_literals;

int main() {
  const auto machine = topo::paper_numabad_machine();
  std::printf("%s\n", machine.describe().c_str());

  // Four runtimes: three NUMA-perfect streamers + one NUMA-bad app whose
  // data sits on node 0 while the optimizer will run it elsewhere.
  std::vector<std::unique_ptr<rt::Runtime>> apps;
  std::vector<std::unique_ptr<agent::Channel>> channels;
  std::vector<std::unique_ptr<agent::RuntimeAdapter>> adapters;
  const double ais[] = {0.5, 0.5, 0.5, 1.0};
  for (int a = 0; a < 4; ++a) {
    apps.push_back(std::make_unique<rt::Runtime>(
        machine, rt::RuntimeOptions{.name = "app" + std::to_string(a)}));
    channels.push_back(std::make_unique<agent::Channel>());
    const auto home = a == 3 ? 0u : agent::kMaxNodes;  // only app3 is NUMA-bad
    adapters.push_back(
        std::make_unique<agent::RuntimeAdapter>(*apps[a], *channels[a], ais[a], home));
  }

  // The NUMA-bad app's working set: 64 MiB on node 0.
  auto working_set = apps[3]->create_datablock(64u << 20, 0);
  std::printf("before: app3's %zu MiB datablock lives on node %u\n",
              working_set->size_bytes() >> 20, working_set->node());

  adapters[3]->set_data_home_handler([&](topo::NodeId node) {
    const auto moved = working_set->move_to(node);
    adapters[3]->set_data_home(node);
    std::printf("  -> agent suggested node %u; migrated %zu MiB\n", node, moved >> 20);
  });

  agent::ModelGuidedOptions policy_options;
  policy_options.advise_data_placement = true;
  agent::Agent coordinator(machine,
                           std::make_unique<agent::ModelGuidedPolicy>(policy_options),
                           {.period_us = 2000});
  for (int a = 0; a < 4; ++a) coordinator.add_app("app" + std::to_string(a), *channels[a]);

  // A few manual ticks: telemetry out, decision, commands back.
  for (int tick = 0; tick < 4; ++tick) {
    for (auto& adapter : adapters) adapter->pump();
    coordinator.step(tick * 0.002);
    for (auto& adapter : adapters) adapter->pump();
    std::this_thread::sleep_for(5ms);
  }

  std::printf("after:  app3's datablock lives on node %u; per-node bytes:", working_set->node());
  for (topo::NodeId n = 0; n < machine.node_count(); ++n) {
    std::printf(" n%u=%lluMiB", n,
                static_cast<unsigned long long>(apps[3]->datablocks().bytes_on_node(n) >> 20));
  }
  std::printf("\nthread targets now:");
  for (int a = 0; a < 4; ++a) {
    std::printf(" app%d=[", a);
    const auto per_node = apps[a]->running_per_node();
    for (std::size_t n = 0; n < per_node.size(); ++n) {
      std::printf("%s%u", n ? " " : "", per_node[n]);
    }
    std::printf("]");
  }

  // What the model says this was worth.
  auto before = model::mixes::three_perfect_one_bad(0);
  const auto wrong = model::solve(machine, before,
                                  model::Allocation::node_per_app(machine, {0, 2, 3, 1}));
  const auto joint = model::advise_joint(machine, before);
  std::printf("\n\nmodel: worst misplaced whole-node config %.0f GFLOPS -> joint optimum "
              "%.0f GFLOPS (+%.0f%%)\n",
              wrong.total_gflops, joint.solution.total_gflops,
              (joint.solution.total_gflops / wrong.total_gflops - 1.0) * 100.0);
  return 0;
}
