// The paper's tight-integration scenario (§II): "one application might use
// the other application like a library, delegating a specific job to it
// whenever needed. In this case, quickly shifting resources to the 'library'
// application when it is called could improve efficiency."
//
// A "main" application computes in phases; between phases it delegates a
// burst of work to a separate "library" application (its own runtime). A
// small delegation-aware policy watches the library's outstanding work and
// snaps the core split to library-heavy while the call is in flight, then
// back. The ticker shows cores following the call structure.
//
// Usage: ./examples/library_delegation [calls]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "agent/agent.hpp"
#include "agent/policies.hpp"
#include "topology/presets.hpp"

using namespace numashare;
using namespace std::chrono_literals;

namespace {

void work_unit() {
  volatile double x = 1.0;
  for (int i = 0; i < 20000; ++i) x = x * 1.0000001 + 1e-9;
}

/// Shift cores to whichever app has outstanding work, favouring the library
/// during calls (the paper's "quickly shifting resources").
class DelegationPolicy final : public agent::Policy {
 public:
  const char* name() const override { return "delegation"; }

  std::vector<agent::Directive> decide(const topo::Machine& machine,
                                       const std::vector<agent::AppView>& views) override {
    std::vector<agent::Directive> out(views.size(), agent::Directive::none());
    if (views.size() != 2 || !views[0].has_telemetry || !views[1].has_telemetry) return out;
    const bool library_busy = views[1].latest.outstanding_tasks > 0;
    const std::uint32_t cores = machine.core_count();
    // Library gets almost everything while a call is in flight; the main app
    // keeps one core so it can submit/collect.
    const std::uint32_t library_share = library_busy ? cores - 1 : 0;
    if (library_share == current_) return out;
    current_ = library_share;
    out[0] = agent::Directive::total(cores - std::max(1u, library_share));
    out[1] = agent::Directive::total(std::max(1u, library_share));
    return out;
  }

 private:
  std::uint32_t current_ = ~0u;
};

}  // namespace

int main(int argc, char** argv) {
  const int calls = argc > 1 ? std::atoi(argv[1]) : 4;
  const auto machine = topo::Machine::symmetric(2, 2, 1.0, 10.0);

  rt::Runtime main_app(machine, {.name = "main-app"});
  rt::Runtime library(machine, {.name = "library"});

  agent::Channel main_channel, library_channel;
  agent::RuntimeAdapter main_adapter(main_app, main_channel);
  agent::RuntimeAdapter library_adapter(library, library_channel);
  agent::Agent coordinator(machine, std::make_unique<DelegationPolicy>(),
                           {.period_us = 500});
  coordinator.add_app("main-app", main_channel);
  coordinator.add_app("library", library_channel);
  main_adapter.start(250);
  library_adapter.start(250);
  coordinator.start();

  std::atomic<bool> ticker_stop{false};
  std::thread ticker([&] {
    std::printf("%10s %14s %14s\n", "t(ms)", "main threads", "library threads");
    const auto start = std::chrono::steady_clock::now();
    while (!ticker_stop.load()) {
      const double ms =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count() *
          1e3;
      std::printf("%10.0f %14u %14u\n", ms, main_app.running_threads(),
                  library.running_threads());
      std::this_thread::sleep_for(60ms);
    }
  });

  for (int call = 0; call < calls; ++call) {
    // Phase 1: the main app computes on its own.
    auto phase = main_app.create_latch(8);
    for (int i = 0; i < 8; ++i) {
      main_app.spawn([&](rt::TaskContext&) {
        work_unit();
        phase->count_down();
      });
    }
    phase->wait();

    // Phase 2: delegate a burst to the library app and wait for it. The
    // policy sees the library's outstanding tasks and shifts the cores.
    std::printf("-- call %d: delegating to library --\n", call + 1);
    auto job = library.create_latch(24);
    for (int i = 0; i < 24; ++i) {
      library.spawn([&](rt::TaskContext&) {
        work_unit();
        job->count_down();
      });
    }
    job->wait();
    main_app.report_progress();
  }

  ticker_stop.store(true);
  ticker.join();
  coordinator.stop();
  main_adapter.stop();
  library_adapter.stop();
  main_app.wait_idle();
  library.wait_idle();

  std::printf("\n%d delegated calls completed; library executed %llu tasks, "
              "main app %llu.\n",
              calls,
              static_cast<unsigned long long>(library.stats().tasks_executed),
              static_cast<unsigned long long>(main_app.stats().tasks_executed));
  std::printf("The thread ticker above shows cores snapping to the library during "
              "each call\nand back between calls — the paper's tight-integration "
              "resource shift.\n");
  return 0;
}
