// Probe the host: discover the NUMA topology from /sys, report the calling
// thread's affinity, run STREAM and a small AI sweep, and print the machine
// description the other tools would use on this box.
//
// Usage: ./examples/numa_probe [stream_mib]
#include <cstdio>
#include <cstdlib>

#include "common/format.hpp"
#include "common/table.hpp"
#include "synth/kernel.hpp"
#include "synth/stream.hpp"
#include "topology/affinity.hpp"
#include "topology/discovery.hpp"

using namespace numashare;

int main(int argc, char** argv) {
  const std::size_t stream_mib = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16;

  std::printf("=== host topology ===\n");
  const auto machine = topo::discover_host_or_flat();
  std::printf("%s", machine.describe().c_str());
  std::printf("note: bandwidth/peak values above are placeholders until calibrated;\n"
              "      sysfs knows the layout, not the speeds.\n\n");

  const auto affinity = topo::current_thread_affinity();
  std::printf("current thread affinity: %s (%zu cores)\n\n",
              affinity.empty() ? "(unknown)" : affinity.to_string().c_str(),
              affinity.count());

  std::printf("=== STREAM (%zu MiB arrays, best of 5) ===\n", stream_mib);
  synth::StreamConfig stream_config;
  stream_config.elements = stream_mib * 1024 * 1024 / sizeof(double);
  stream_config.trials = 5;
  synth::Stream stream(stream_config);
  TextTable stream_table({"kernel", "best GB/s", "avg GB/s", "verified"});
  for (const auto& r : stream.run()) {
    stream_table.add_row({synth::to_string(r.kernel), fmt_fixed(r.best_gbps, 2),
                          fmt_fixed(r.avg_gbps, 2), r.verified ? "yes" : "NO"});
  }
  std::printf("%s\n", stream_table.render().c_str());

  std::printf("=== roofline walk (single thread) ===\n");
  TextTable sweep({"nominal AI", "GFLOPS", "GB/s"});
  for (std::uint32_t flops : {2u, 4u, 16u, 64u, 256u, 1024u}) {
    synth::KernelConfig config;
    config.elements = 1u << 20;
    config.flops_per_element = flops;
    synth::TunableKernel kernel(config);
    const auto r = kernel.run_for(0.05);
    sweep.add_row({fmt_compact(kernel.configured_ai(), 4), fmt_fixed(r.gflops, 3),
                   fmt_fixed(r.gbps, 3)});
  }
  std::printf("%s", sweep.render().c_str());
  std::printf("\nThe knee of the GFLOPS column is this machine's single-thread roofline\n"
              "ridge point; the flat GB/s region estimates its streaming bandwidth.\n");
  return 0;
}
