// Interactive front-end for the allocation model: describe a machine and an
// application mix (INI file or a built-in preset), enumerate candidate
// allocations and print them ranked by predicted GFLOPS.
//
// Usage:
//   ./examples/partition_explorer                   # paper fig.2 preset
//   ./examples/partition_explorer numabad           # paper fig.3 preset
//   ./examples/partition_explorer skylake           # paper Table III preset
//   ./examples/partition_explorer mix.ini           # your own description
//
// INI format:
//   [machine]
//   nodes = 4
//   cores_per_node = 8
//   core_gflops = 10
//   node_bandwidth = 32
//   link_bandwidth = 10
//   [app.stream]           ; one section per app, any name
//   ai = 0.5
//   placement = perfect    ; or: bad
//   home = 0               ; only for placement = bad
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/format.hpp"
#include "common/table.hpp"
#include "core/optimizer.hpp"
#include "core/paper_scenarios.hpp"
#include "core/scenario_io.hpp"
#include "topology/presets.hpp"

using namespace numashare;

namespace {

using Problem = model::ScenarioDescription;

Problem preset(const std::string& name) {
  if (name == "numabad") {
    return {topo::paper_numabad_machine(), model::mixes::three_perfect_one_bad(0)};
  }
  if (name == "skylake") {
    return {topo::paper_skylake_machine(), model::mixes::skylake_mem_compute()};
  }
  return {topo::paper_model_machine(), model::mixes::three_mem_one_compute()};
}

}  // namespace

int main(int argc, char** argv) {
  Problem problem;
  if (argc > 1 && std::strchr(argv[1], '.') != nullptr) {
    std::string error;
    const auto loaded = model::load_scenario(argv[1], &error);
    if (!loaded) {
      std::fprintf(stderr, "failed to load '%s': %s\n", argv[1], error.c_str());
      return 1;
    }
    problem = *loaded;
  } else {
    problem = preset(argc > 1 ? argv[1] : "fig2");
  }

  std::printf("%s\napplications:\n", problem.machine.describe().c_str());
  for (const auto& app : problem.apps) {
    std::printf("  %-16s AI=%-8g %s\n", app.name.c_str(), app.ai,
                app.placement == model::Placement::kNumaBad
                    ? ("NUMA-bad, data on node " + std::to_string(app.home_node)).c_str()
                    : "NUMA-perfect");
  }

  // Collect candidates: uniform-per-node (everyone alive) + node permutations.
  auto candidates = model::enumerate_uniform(
      problem.machine, static_cast<std::uint32_t>(problem.apps.size()),
      /*require_full=*/true, /*min_threads_per_app=*/1);
  if (problem.apps.size() == problem.machine.node_count()) {
    for (auto& perm : model::enumerate_node_permutations(problem.machine)) {
      candidates.push_back(std::move(perm));
    }
  }

  struct Ranked {
    double gflops;
    double worst_app;
    model::Allocation allocation;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(candidates.size());
  for (const auto& allocation : candidates) {
    const auto solution = model::solve(problem.machine, problem.apps, allocation);
    double worst = 1e300;
    for (auto g : solution.app_gflops) worst = std::min(worst, g);
    ranked.push_back({solution.total_gflops, worst, allocation});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) { return a.gflops > b.gflops; });

  const std::size_t show = std::min<std::size_t>(10, ranked.size());
  std::printf("\ntop %zu of %zu candidate allocations (by total GFLOPS):\n", show,
              ranked.size());
  TextTable table({"#", "allocation", "total GFLOPS", "worst app GFLOPS"});
  for (std::size_t i = 0; i < show; ++i) {
    table.add_row({std::to_string(i + 1), ranked[i].allocation.to_string(),
                   fmt_fixed(ranked[i].gflops, 2), fmt_fixed(ranked[i].worst_app, 2)});
  }
  table.add_separator();
  table.add_row({"last", ranked.back().allocation.to_string(),
                 fmt_fixed(ranked.back().gflops, 2), fmt_fixed(ranked.back().worst_app, 2)});
  std::printf("%s", table.render().c_str());
  std::printf("\nspread: best %.2f vs worst %.2f GFLOPS — allocation choice is worth "
              "%.0f%% on this mix.\n",
              ranked.front().gflops, ranked.back().gflops,
              (ranked.front().gflops / ranked.back().gflops - 1.0) * 100.0);
  return 0;
}
