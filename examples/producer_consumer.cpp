// The paper's Figure 1 end to end: two task-based applications (a producer
// and a consumer) coordinated by an agent so the producer stays only a few
// iterations ahead. Prints a live ticker of thread splits and pipeline depth.
//
// Usage: ./examples/producer_consumer [seconds] [max_lead] [trace.json]
//   With a third argument, a Chrome trace (chrome://tracing / Perfetto) of
//   the producer runtime's task executions and blocking episodes is written
//   there, and an ASCII timeline is printed.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>

#include "agent/agent.hpp"
#include "agent/policies.hpp"
#include "topology/presets.hpp"
#include "trace/trace.hpp"

using namespace numashare;
using namespace std::chrono_literals;

namespace {

void item_work(int cost) {
  volatile double x = 1.0;
  for (int i = 0; i < cost * 2000; ++i) x = x * 1.0000001 + 1e-9;
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 2.0;
  const std::uint64_t max_lead = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;
  const char* trace_path = argc > 3 ? argv[3] : nullptr;

  // Bounded capacity: long runs keep the newest prefix and count drops.
  trace::Tracer tracer(1u << 18);
  const auto machine = topo::Machine::symmetric(2, 2, 1.0, 10.0);
  rt::Runtime producer(machine,
                       {.name = "producer", .tracer = trace_path ? &tracer : nullptr});
  rt::Runtime consumer(machine, {.name = "consumer"});

  agent::Channel producer_channel, consumer_channel;
  agent::RuntimeAdapter producer_adapter(producer, producer_channel);
  agent::RuntimeAdapter consumer_adapter(consumer, consumer_channel);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> produced{0};
  std::atomic<std::uint64_t> consumed{0};

  // Producer iterations are cheap, consumer iterations cost twice as much —
  // without coordination the producer floods the intermediate storage.
  std::function<void(rt::TaskContext&)> produce = [&](rt::TaskContext& ctx) {
    if (stop.load(std::memory_order_acquire)) return;
    item_work(1);
    produced.fetch_add(1, std::memory_order_relaxed);
    ctx.runtime.report_progress();
    ctx.runtime.spawn(produce);
  };
  std::function<void(rt::TaskContext&)> consume = [&](rt::TaskContext& ctx) {
    if (stop.load(std::memory_order_acquire)) return;
    if (consumed.load(std::memory_order_relaxed) <
        produced.load(std::memory_order_relaxed)) {
      item_work(2);
      consumed.fetch_add(1, std::memory_order_relaxed);
      ctx.runtime.report_progress();
    } else {
      std::this_thread::sleep_for(50us);
    }
    ctx.runtime.spawn(consume);
  };
  for (std::uint32_t i = 0; i < machine.core_count(); ++i) {
    producer.spawn(produce);
    consumer.spawn(consume);
  }

  agent::ProducerConsumerPolicy::Options policy_options;
  policy_options.min_lead = 2;
  policy_options.max_lead = max_lead;
  agent::Agent coordinator(machine,
                           std::make_unique<agent::ProducerConsumerPolicy>(policy_options),
                           {.period_us = 1000});
  coordinator.add_app("producer", producer_channel);
  coordinator.add_app("consumer", consumer_channel);
  producer_adapter.start(500);
  consumer_adapter.start(500);
  coordinator.start();

  std::printf("running the Figure-1 pipeline for %.1f s (lead band [2, %llu])...\n\n",
              seconds, static_cast<unsigned long long>(max_lead));
  std::printf("%8s %12s %12s %8s %16s\n", "t(ms)", "produced", "consumed", "lead",
              "threads P/C");
  const auto start = std::chrono::steady_clock::now();
  while (true) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (elapsed >= seconds) break;
    const auto p = produced.load(std::memory_order_relaxed);
    const auto c = consumed.load(std::memory_order_relaxed);
    std::printf("%8.0f %12llu %12llu %8lld %10u/%u\n", elapsed * 1e3,
                static_cast<unsigned long long>(p), static_cast<unsigned long long>(c),
                static_cast<long long>(p) - static_cast<long long>(c),
                producer.running_threads(), consumer.running_threads());
    std::this_thread::sleep_for(200ms);
  }

  stop.store(true, std::memory_order_release);
  coordinator.stop();
  producer_adapter.stop();
  consumer_adapter.stop();
  producer.wait_idle();
  consumer.wait_idle();

  const auto p = produced.load();
  const auto c = consumed.load();
  std::printf("\nfinal: produced %llu, consumed %llu, residual intermediate %lld\n",
              static_cast<unsigned long long>(p), static_cast<unsigned long long>(c),
              static_cast<long long>(p) - static_cast<long long>(c));
  std::printf("agent sent %llu commands, received %llu telemetry samples\n",
              static_cast<unsigned long long>(coordinator.commands_sent()),
              static_cast<unsigned long long>(coordinator.telemetry_received()));

  if (trace_path != nullptr) {
    if (tracer.write_chrome_json(trace_path)) {
      std::printf("\nwrote Chrome trace to %s (%llu dropped events)\n", trace_path,
                  static_cast<unsigned long long>(tracer.dropped()));
    }
    std::printf("\nproducer runtime timeline (t=task, b=blocked, !=control change):\n%s",
                tracer.ascii_timeline(72).c_str());
  }
  return 0;
}
