// Quickstart: the numashare public API in one file.
//
//   1. describe a machine (or discover the host),
//   2. run a task graph on the runtime,
//   3. place data on NUMA nodes through runtime-managed datablocks,
//   4. resize the worker pool while tasks are running (the paper's option 1),
//   5. ask the analytic model which allocation a mix of co-running
//      applications should get.
//
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <numeric>

#include "core/optimizer.hpp"
#include "core/roofline.hpp"
#include "runtime/runtime.hpp"
#include "topology/discovery.hpp"
#include "topology/presets.hpp"

using namespace numashare;

int main() {
  // --- 1. machine description -----------------------------------------
  // Virtual 2-node machine so the example behaves the same everywhere; use
  // topo::discover_host_or_flat() to bind to the real box instead.
  const auto machine = topo::Machine::symmetric(/*nodes=*/2, /*cores_per_node=*/2,
                                                /*core_peak_gflops=*/10.0,
                                                /*node_bandwidth=*/32.0,
                                                /*link_bandwidth=*/10.0, "quickstart");
  std::printf("%s\n", machine.describe().c_str());

  // --- 2. a task graph --------------------------------------------------
  rt::Runtime runtime(machine, {.name = "quickstart"});

  // Datablocks live on NUMA nodes; give each node one vector chunk.
  const std::size_t n = 1 << 16;
  auto left = runtime.create_datablock(n * sizeof(double), /*node=*/0);
  auto right = runtime.create_datablock(n * sizeof(double), /*node=*/1);

  // Fill both chunks in parallel, pinned to the data's node.
  auto fill_left = runtime.spawn(
      [&](rt::TaskContext&) {
        auto xs = left->as_span<double>();
        std::iota(xs.begin(), xs.end(), 0.0);
      },
      {}, left->node());
  auto fill_right = runtime.spawn(
      [&](rt::TaskContext&) {
        auto xs = right->as_span<double>();
        std::iota(xs.begin(), xs.end(), double(n));
      },
      {}, right->node());

  // Reduce once both fills are done (dependencies, OCR-style).
  double total = 0.0;
  auto reduce = runtime.spawn(
      [&](rt::TaskContext& ctx) {
        std::printf("reduce runs on worker %u (node %u)\n", ctx.worker_id, ctx.node);
        for (double x : left->as_span<double>()) total += x;
        for (double x : right->as_span<double>()) total += x;
      },
      {fill_left, fill_right});
  reduce->wait();

  // Or let the runtime derive dependencies from declared data accesses
  // (OCR's data-driven style): among spawn_with_data tasks, readers of a
  // block run in parallel and writers serialize automatically — no events
  // to wire by hand. The task is also affinity-hinted to the block's node.
  using DataAccess = rt::Runtime::DataAccess;
  auto scale1 = runtime.spawn_with_data(
      [&](rt::TaskContext&) {
        for (double& x : left->as_span<double>()) x *= 2.0;
      },
      {DataAccess::write(left)});
  auto scale2 = runtime.spawn_with_data(  // runs strictly after scale1
      [&](rt::TaskContext&) {
        for (double& x : left->as_span<double>()) x += 1.0;
      },
      {DataAccess::write(left)});
  scale2->wait();
  (void)scale1;
  std::printf("sum of 0..%zu = %.0f (expected %.0f)\n\n", 2 * n - 1, total,
              (2.0 * n - 1.0) * (2.0 * n) / 2.0);

  // --- 3. dynamic pool resizing (the agent's levers) -------------------
  std::printf("workers running: %u\n", runtime.running_threads());
  runtime.set_total_thread_target(1);  // option 1: shrink to one thread
  auto latch = runtime.create_latch(8);
  for (int i = 0; i < 8; ++i) {
    runtime.spawn([&](rt::TaskContext&) { latch->count_down(); });
  }
  latch->wait();
  std::printf("after set_total_thread_target(1): %u running, %u blocked "
              "(work still completed)\n",
              runtime.running_threads(), runtime.blocked_threads());
  runtime.set_node_thread_targets({2, 0});  // option 3: everything on node 0
  runtime.clear_thread_controls();
  runtime.wait_idle();

  // --- 4. ask the model ---------------------------------------------------
  const std::vector<model::AppSpec> apps{model::AppSpec::numa_perfect("stream", 0.25),
                                         model::AppSpec::numa_perfect("solver", 8.0)};
  const auto best = model::exhaustive_search(machine, apps, model::Objective::kTotalGflops,
                                             /*require_full=*/true,
                                             /*min_threads_per_app=*/1);
  std::printf("\nmodel-recommended allocation for {stream AI=0.25, solver AI=8}:\n  %s"
              "  -> %.1f GFLOPS predicted\n",
              best.allocation.to_string().c_str(), best.solution.total_gflops);
  const auto even = model::solve(machine, apps, model::Allocation::even(machine, 2));
  std::printf("  (even split would give %.1f GFLOPS)\n", even.total_gflops);
  return 0;
}
