#!/usr/bin/env python3
"""Validate the machine-readable bench artifacts.

Three schemas share a family:

  * numashare-bench-runtime/1 and /2 — emitted by bench_spawn (task
    lifecycle); rows are {name, workers, unit, value}. The /2 revision adds
    a `latency` array of full-percentile rows ({name, workers, unit:"ns",
    count, p50, p99, p999, max}, checked for p50 <= p99 <= p999 <= max) and
    a `gates` object: the histogram-recording overhead ratio must stay
    under its limit and the w=1 handoff p99 under its regression ceiling —
    both enforced on non-quick documents, so a committed BENCH_runtime.json
    with a regressed tail or a histogram hot-path that got expensive fails
    CI rather than shipping.
  * numashare-bench-model/1 — emitted by bench_alloc_scale (allocation-search
    scaling); rows are {name, nodes, cores_per_node, apps, unit, value} and
    the document carries a speedup `gate` object plus `peak_rss_kb`.
  * numashare-bench-foreign/1 — emitted by bench_foreign (foreign-workload
    arbitration, E19); rows are {name, scenario, unit, value} and the
    document carries an aware-vs-blind advantage `gate` object.
  * numashare-bench-memory/1 — emitted by bench_datablock (memory-side
    control, E21); rows are {name, scenario, unit, value} and the document
    carries two gates: the locality-aware vs locality-blind stealing
    advantage (deterministic virtual-time pricing, >= 1.3x on the bw_skew
    scenario, enforced in every run) and the steal-path p99 regression
    (real timing with a documented absolute noise floor, enforced only when
    the document says so — full unsanitized runs).
  * numashare-bench-daemon/1 — emitted by bench_daemon_scale (daemon
    tick-path scaling, E22); rows are {name, scenario, unit, value} with
    per-scenario tick-latency percentiles checked for monotonicity
    (p50 <= p99 <= p999 <= max). The gate object records the
    bitmap-vs-full-scan tick throughput ratio at 1024 slots / 32 active
    clients (>= 8x) and the loaded p99 tick latency at 1024 active clients
    against its documented bound; both are wall-time measurements, so they
    are replayed only on full (non-quick, non-sanitized) documents.

The schema is dispatched from the document itself. Checks cover the schema
tag, the required top-level fields, and that every result row is well-formed
(known unit, positive finite value, sane dimensions). For the model schema a
non-quick document must additionally have a measured, passing gate at the
canonical 8x64x8 configuration with bounded peak RSS — so a committed
BENCH_model.json that silently regressed the >=10x speedup (or started
materializing the candidate set) fails CI rather than shipping. The foreign
gate is pure model arithmetic (no timing involved), so it must pass in every
run, quick and sanitized included: foreign-aware placement must beat
foreign-blind by >= 1.3x on the gate scenario.

Usage: check_bench_json.py BENCH.json [--require NAME ...]
"""
import argparse
import json
import math
import sys

RUNTIME_SCHEMA = "numashare-bench-runtime/1"
RUNTIME_SCHEMA_V2 = "numashare-bench-runtime/2"
MODEL_SCHEMA = "numashare-bench-model/1"
FOREIGN_SCHEMA = "numashare-bench-foreign/1"
MEMORY_SCHEMA = "numashare-bench-memory/1"
DAEMON_SCHEMA = "numashare-bench-daemon/1"

RUNTIME_UNITS = {"tasks_per_sec", "ns_per_steal", "ns_median", "x"}
MODEL_UNITS = {"us_per_search", "us_per_solve", "evals", "kb", "x"}
FOREIGN_UNITS = {"gflops", "x", "us_per_search", "us_per_scan"}
MEMORY_UNITS = {"gbps", "x", "ns", "ms", "count"}
DAEMON_UNITS = {"ticks/s", "ns", "x"}

RUNTIME_DEFAULT_REQUIRE = ["spawn_retire_external", "spawn_retire_nested", "steal_drain",
                           "handoff_latency", "wait_idle_latency"]
# v2 latency rows that must be present on a full (non-quick) run; quick runs
# may legitimately miss e.g. steals when the trimmed churn never triggers one.
RUNTIME_LATENCY_REQUIRE = ["handoff", "steal", "wake", "enact_lag"]
MODEL_DEFAULT_REQUIRE = ["solve", "solve_into", "search_before", "search_after",
                         "search_speedup", "search_evals", "search_candidates",
                         "refine", "peak_rss"]
FOREIGN_DEFAULT_REQUIRE = ["blind", "aware", "advantage", "aware_search", "scan"]
MEMORY_DEFAULT_REQUIRE = ["blind", "aware", "advantage", "migrate_payoff"]
# Steal rows that must be present on a full (non-quick) run; a trimmed quick
# round may legitimately drain before any thief records a steal.
MEMORY_STEAL_REQUIRE = ["steal_p99_blind", "steal_p99_aware", "steal_p99_ratio"]
DAEMON_DEFAULT_REQUIRE = ["ticks_per_sec", "tick_p50", "tick_p99", "speedup"]
# Scenarios every document must report: the three scan modes of the gate
# phase and the loaded-tail sweep points.
DAEMON_REQUIRED_SCENARIOS = ["bitmap_1024cap_32active", "full_scan_1024cap_32active",
                             "sweep16_1024cap_32active", "active_32", "active_256",
                             "active_1024"]

FOREIGN_GATE_SCENARIO = "bw_shift"
MEMORY_GATE_SCENARIO = "bw_skew"

MODEL_GATE_CONFIG = {"nodes": 8, "cores_per_node": 64, "apps": 8}
# peak_rss_kb snapshots the streaming-only phase (the brute-force reference
# phase runs afterwards and may legitimately reach gigabytes): visiting
# ~5.5e8 candidates must not grow the process past a flat baseline.
MODEL_PEAK_RSS_LIMIT_KB = 512 * 1024


def fail(msg: str) -> None:
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_common(doc: dict) -> None:
    for field, kind in (("bench", str), ("quick", bool), ("sanitized", bool),
                        ("host_cpus", int), ("results", list)):
        if not isinstance(doc.get(field), kind):
            fail(f"field {field!r} missing or not a {kind.__name__}")
    if not doc["results"]:
        fail("results array is empty")


def check_row_value(where: str, row: dict) -> None:
    v = row.get("value")
    if not isinstance(v, (int, float)):
        fail(f"{where}: field 'value' missing or mistyped")
    if not math.isfinite(float(v)) or float(v) <= 0:
        fail(f"{where}: value {v} is not a positive finite number")


def check_runtime(doc: dict) -> set:
    names = set()
    for i, r in enumerate(doc["results"]):
        where = f"results[{i}]"
        for field, kind in (("name", str), ("workers", int), ("unit", str)):
            if not isinstance(r.get(field), kind):
                fail(f"{where}: field {field!r} missing or mistyped")
        if r["unit"] not in RUNTIME_UNITS:
            fail(f"{where}: unknown unit {r['unit']!r}")
        if not (0 < r["workers"] <= 1024):
            fail(f"{where}: implausible worker count {r['workers']}")
        check_row_value(where, r)
        names.add(r["name"])
    return names


def check_runtime_v2(doc: dict) -> None:
    """The /2 additions: percentile latency rows and the regression gates."""
    latency = doc.get("latency")
    if not isinstance(latency, list):
        fail("v2 document: 'latency' array missing")
    names = set()
    for i, r in enumerate(latency):
        where = f"latency[{i}]"
        for field, kind in (("name", str), ("workers", int), ("unit", str),
                            ("count", int)):
            if not isinstance(r.get(field), kind):
                fail(f"{where}: field {field!r} missing or mistyped")
        if r["unit"] != "ns":
            fail(f"{where}: latency rows must be in ns, got {r['unit']!r}")
        if not (0 < r["workers"] <= 1024):
            fail(f"{where}: implausible worker count {r['workers']}")
        if r["count"] <= 0:
            fail(f"{where}: empty distribution committed (count={r['count']})")
        quantiles = []
        for field in ("p50", "p99", "p999", "max"):
            v = r.get(field)
            if not isinstance(v, (int, float)) or not math.isfinite(float(v)) or v < 0:
                fail(f"{where}: field {field!r} missing or not a finite non-negative number")
            quantiles.append(float(v))
        if not (quantiles[0] <= quantiles[1] <= quantiles[2] <= quantiles[3]):
            fail(f"{where}: percentiles not monotone: p50={quantiles[0]} "
                 f"p99={quantiles[1]} p999={quantiles[2]} max={quantiles[3]}")
        names.add(r["name"])

    gates = doc.get("gates")
    if not isinstance(gates, dict):
        fail("v2 document: 'gates' object missing")
    for field in ("obs_overhead_x", "obs_limit_x", "handoff_p99_ns",
                  "handoff_p99_limit_ns"):
        v = gates.get(field)
        if not isinstance(v, (int, float)) or not math.isfinite(float(v)) or v < 0:
            fail(f"gates field {field!r} missing or not a finite non-negative number")
    for field in ("measured", "pass"):
        if not isinstance(gates.get(field), bool):
            fail(f"gates field {field!r} missing or not a bool")

    if doc["quick"]:
        return  # smoke runs validate plumbing, not tails measured in noise
    missing = [n for n in RUNTIME_LATENCY_REQUIRE if n not in names]
    if missing:
        fail(f"full run missing latency distributions: {', '.join(missing)}")
    if not gates["measured"]:
        fail("full run did not measure the observability gates")
    if gates["obs_overhead_x"] > gates["obs_limit_x"]:
        fail(f"histogram recording overhead {gates['obs_overhead_x']}x exceeds "
             f"limit {gates['obs_limit_x']}x")
    if gates["handoff_p99_ns"] > gates["handoff_p99_limit_ns"]:
        fail(f"handoff p99 {gates['handoff_p99_ns']} ns exceeds regression "
             f"ceiling {gates['handoff_p99_limit_ns']} ns")
    if not gates["pass"]:
        fail("gates pass flag is false on a full run")


def check_model(doc: dict) -> set:
    names = set()
    for i, r in enumerate(doc["results"]):
        where = f"results[{i}]"
        for field, kind in (("name", str), ("nodes", int), ("cores_per_node", int),
                            ("apps", int), ("unit", str)):
            if not isinstance(r.get(field), kind):
                fail(f"{where}: field {field!r} missing or mistyped")
        if r["unit"] not in MODEL_UNITS:
            fail(f"{where}: unknown unit {r['unit']!r}")
        for dim in ("nodes", "cores_per_node", "apps"):
            if not (0 < r[dim] <= 1024):
                fail(f"{where}: implausible {dim} {r[dim]}")
        check_row_value(where, r)
        names.add(r["name"])

    rss = doc.get("peak_rss_kb")
    if not isinstance(rss, (int, float)) or not math.isfinite(float(rss)) or rss <= 0:
        fail(f"peak_rss_kb {rss!r} is not a positive finite number")
    if rss > MODEL_PEAK_RSS_LIMIT_KB:
        fail(f"peak_rss_kb {rss} exceeds {MODEL_PEAK_RSS_LIMIT_KB} — the streaming "
             "search must not materialize the candidate set")
    full_rss = doc.get("peak_rss_full_kb")
    if full_rss is not None and (not isinstance(full_rss, (int, float))
                                 or not math.isfinite(float(full_rss)) or full_rss < rss):
        fail(f"peak_rss_full_kb {full_rss!r} invalid or below the streaming snapshot")

    gate = doc.get("gate")
    if not isinstance(gate, dict):
        fail("gate object missing")
    for field, kind in (("nodes", int), ("cores_per_node", int), ("apps", int),
                        ("measured", bool), ("before_us", (int, float)),
                        ("after_us", (int, float)), ("speedup_x", (int, float)),
                        ("required_x", (int, float)), ("before_estimated", bool),
                        ("pass", bool)):
        if not isinstance(gate.get(field), kind):
            fail(f"gate field {field!r} missing or mistyped")
    for dim, want in MODEL_GATE_CONFIG.items():
        if gate[dim] != want:
            fail(f"gate {dim} is {gate[dim]}, expected {want}")
    if not doc["quick"]:
        # A full (committed) run must actually clear the speedup gate.
        if not gate["measured"]:
            fail("full run did not measure the gate configuration")
        if not gate["pass"]:
            fail(f"gate failed: speedup {gate['speedup_x']}x < required {gate['required_x']}x")
        if gate["speedup_x"] < gate["required_x"]:
            fail(f"gate pass flag inconsistent with speedup {gate['speedup_x']}x")
    return names


def check_foreign(doc: dict) -> set:
    names = set()
    for i, r in enumerate(doc["results"]):
        where = f"results[{i}]"
        for field, kind in (("name", str), ("scenario", str), ("unit", str)):
            if not isinstance(r.get(field), kind):
                fail(f"{where}: field {field!r} missing or mistyped")
        if r["unit"] not in FOREIGN_UNITS:
            fail(f"{where}: unknown unit {r['unit']!r}")
        check_row_value(where, r)
        names.add(r["name"])

    gate = doc.get("gate")
    if not isinstance(gate, dict):
        fail("gate object missing")
    for field, kind in (("scenario", str), ("measured", bool),
                        ("blind_gflops", (int, float)), ("aware_gflops", (int, float)),
                        ("advantage_x", (int, float)), ("required_x", (int, float)),
                        ("pass", bool)):
        if not isinstance(gate.get(field), kind):
            fail(f"gate field {field!r} missing or mistyped")
    if gate["scenario"] != FOREIGN_GATE_SCENARIO:
        fail(f"gate scenario is {gate['scenario']!r}, expected {FOREIGN_GATE_SCENARIO!r}")
    # The advantage is deterministic model arithmetic — unlike the model
    # schema's timing gate there is no quick-mode exemption.
    if not gate["measured"]:
        fail("gate scenario was not measured")
    if not gate["pass"]:
        fail(f"gate failed: advantage {gate['advantage_x']}x < "
             f"required {gate['required_x']}x")
    if gate["advantage_x"] < gate["required_x"]:
        fail(f"gate pass flag inconsistent with advantage {gate['advantage_x']}x")
    if gate["blind_gflops"] > 0 and abs(
            gate["aware_gflops"] / gate["blind_gflops"] - gate["advantage_x"]) > 0.01:
        fail("gate advantage_x inconsistent with aware/blind gflops")
    return names


def check_memory(doc: dict) -> set:
    names = set()
    for i, r in enumerate(doc["results"]):
        where = f"results[{i}]"
        for field, kind in (("name", str), ("scenario", str), ("unit", str)):
            if not isinstance(r.get(field), kind):
                fail(f"{where}: field {field!r} missing or mistyped")
        if r["unit"] not in MEMORY_UNITS:
            fail(f"{where}: unknown unit {r['unit']!r}")
        check_row_value(where, r)
        names.add(r["name"])

    gate = doc.get("gate")
    if not isinstance(gate, dict):
        fail("gate object missing")
    for field, kind in (("scenario", str), ("measured", bool),
                        ("blind_gbps", (int, float)), ("aware_gbps", (int, float)),
                        ("advantage_x", (int, float)), ("required_x", (int, float)),
                        ("pass", bool)):
        if not isinstance(gate.get(field), kind):
            fail(f"gate field {field!r} missing or mistyped")
    if gate["scenario"] != MEMORY_GATE_SCENARIO:
        fail(f"gate scenario is {gate['scenario']!r}, expected {MEMORY_GATE_SCENARIO!r}")
    # The advantage is deterministic virtual-time pricing — no quick-mode or
    # sanitizer exemption: locality-aware stealing must beat blind >= 1.3x.
    if not gate["measured"]:
        fail("gate scenario was not measured")
    if not gate["pass"]:
        fail(f"gate failed: advantage {gate['advantage_x']}x < "
             f"required {gate['required_x']}x")
    if gate["advantage_x"] < gate["required_x"]:
        fail(f"gate pass flag inconsistent with advantage {gate['advantage_x']}x")
    if gate["blind_gbps"] > 0 and abs(
            gate["aware_gbps"] / gate["blind_gbps"] - gate["advantage_x"]) > 0.01:
        fail("gate advantage_x inconsistent with aware/blind gbps")

    steal = doc.get("steal_gate")
    if not isinstance(steal, dict):
        fail("steal_gate object missing")
    for field, kind in (("measured", bool), ("enforced", bool),
                        ("blind_p99_ns", (int, float)), ("aware_p99_ns", (int, float)),
                        ("ratio_x", (int, float)), ("limit_x", (int, float)),
                        ("floor_ns", (int, float)), ("pass", bool)):
        if not isinstance(steal.get(field), kind):
            fail(f"steal_gate field {field!r} missing or mistyped")
    if steal["enforced"]:
        if not steal["measured"]:
            fail("steal gate enforced but not measured")
        if not steal["pass"]:
            fail(f"steal gate failed: aware p99 {steal['aware_p99_ns']} ns vs "
                 f"blind {steal['blind_p99_ns']} ns (limit {steal['limit_x']}x "
                 f"+ {steal['floor_ns']} ns floor)")
        if steal["aware_p99_ns"] > (steal["blind_p99_ns"] * steal["limit_x"]
                                    + steal["floor_ns"]):
            fail("steal gate pass flag inconsistent with recorded p99s")
    # A full unsanitized run must actually enforce the timing gate — a
    # committed BENCH_memory.json that quietly skipped it fails here.
    if not doc["quick"] and not doc["sanitized"] and not steal["enforced"]:
        fail("full unsanitized run did not enforce the steal gate")
    if not doc["quick"]:
        missing = [n for n in MEMORY_STEAL_REQUIRE if n not in names]
        if missing:
            fail(f"full run missing steal rows: {', '.join(missing)}")
    return names


def check_daemon(doc: dict) -> set:
    names = set()
    scenarios = set()
    # Per-scenario percentile rows, re-assembled for the monotonicity check.
    quantiles = {}
    for i, r in enumerate(doc["results"]):
        where = f"results[{i}]"
        for field, kind in (("name", str), ("scenario", str), ("unit", str)):
            if not isinstance(r.get(field), kind):
                fail(f"{where}: field {field!r} missing or mistyped")
        if r["unit"] not in DAEMON_UNITS:
            fail(f"{where}: unknown unit {r['unit']!r}")
        check_row_value(where, r)
        names.add(r["name"])
        scenarios.add(r["scenario"])
        if r["name"] in ("tick_p50", "tick_p99", "tick_p999", "tick_max"):
            if r["unit"] != "ns":
                fail(f"{where}: percentile rows must be in ns, got {r['unit']!r}")
            quantiles.setdefault(r["scenario"], {})[r["name"]] = float(r["value"])
    for scenario, q in sorted(quantiles.items()):
        order = ["tick_p50", "tick_p99", "tick_p999", "tick_max"]
        missing = [n for n in order if n not in q]
        if missing:
            fail(f"scenario {scenario!r} missing percentile rows: {', '.join(missing)}")
        values = [q[n] for n in order]
        if not (values[0] <= values[1] <= values[2] <= values[3]):
            fail(f"scenario {scenario!r}: percentiles not monotone: "
                 f"p50={values[0]} p99={values[1]} p999={values[2]} max={values[3]}")
    missing = [s for s in DAEMON_REQUIRED_SCENARIOS if s not in scenarios]
    if missing:
        fail(f"required scenarios absent: {', '.join(missing)}")

    gate = doc.get("gate")
    if not isinstance(gate, dict):
        fail("gate object missing")
    for field, kind in (("clients", int), ("active", int), ("measured", bool),
                        ("bitmap_ticks_per_sec", (int, float)),
                        ("full_scan_ticks_per_sec", (int, float)),
                        ("speedup_x", (int, float)), ("required_x", (int, float)),
                        ("p99_tick_ns", (int, float)), ("p99_limit_ns", (int, float)),
                        ("pass", bool)):
        if not isinstance(gate.get(field), kind):
            fail(f"gate field {field!r} missing or mistyped")
    if gate["clients"] != 1024:
        fail(f"gate clients is {gate['clients']}, expected 1024 (registry v7 capacity)")
    if gate["full_scan_ticks_per_sec"] > 0 and abs(
            gate["bitmap_ticks_per_sec"] / gate["full_scan_ticks_per_sec"]
            - gate["speedup_x"]) > 0.01 * gate["speedup_x"]:
        fail("gate speedup_x inconsistent with bitmap/full_scan throughputs")
    # Both gates are wall-time measurements: replayed only on documents from
    # full, unsanitized runs (a committed BENCH_daemon.json is one).
    if not doc["quick"] and not doc["sanitized"]:
        if not gate["measured"]:
            fail("full run did not measure the scan-path gate")
        if gate["speedup_x"] < gate["required_x"]:
            fail(f"gate failed: bitmap/full-scan speedup {gate['speedup_x']}x < "
                 f"required {gate['required_x']}x")
        if gate["p99_tick_ns"] > gate["p99_limit_ns"]:
            fail(f"gate failed: loaded p99 tick {gate['p99_tick_ns']} ns exceeds "
                 f"bound {gate['p99_limit_ns']} ns")
        if not gate["pass"]:
            fail("gate pass flag is false on a full run")
    return names


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path")
    parser.add_argument(
        "--require", nargs="*", default=None,
        help="result names that must each appear at least once "
             "(defaults depend on the document's schema)",
    )
    args = parser.parse_args()

    try:
        with open(args.path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {args.path}: {e}")

    schema = doc.get("schema")
    if schema in (RUNTIME_SCHEMA, RUNTIME_SCHEMA_V2):
        check_common(doc)
        names = check_runtime(doc)
        if schema == RUNTIME_SCHEMA_V2:
            check_runtime_v2(doc)
        required = RUNTIME_DEFAULT_REQUIRE if args.require is None else args.require
    elif schema == MODEL_SCHEMA:
        check_common(doc)
        names = check_model(doc)
        required = MODEL_DEFAULT_REQUIRE if args.require is None else args.require
    elif schema == FOREIGN_SCHEMA:
        check_common(doc)
        names = check_foreign(doc)
        required = FOREIGN_DEFAULT_REQUIRE if args.require is None else args.require
    elif schema == MEMORY_SCHEMA:
        check_common(doc)
        names = check_memory(doc)
        required = MEMORY_DEFAULT_REQUIRE if args.require is None else args.require
    elif schema == DAEMON_SCHEMA:
        check_common(doc)
        names = check_daemon(doc)
        required = DAEMON_DEFAULT_REQUIRE if args.require is None else args.require
    else:
        fail(f"schema is {schema!r}, expected {RUNTIME_SCHEMA!r}, "
             f"{RUNTIME_SCHEMA_V2!r}, {MODEL_SCHEMA!r}, {FOREIGN_SCHEMA!r}, "
             f"{MEMORY_SCHEMA!r} or {DAEMON_SCHEMA!r}")

    missing = [n for n in required if n not in names]
    if missing:
        fail(f"required result names absent: {', '.join(missing)}")

    print(f"check_bench_json: OK: {args.path} "
          f"({len(doc['results'])} results, schema={schema}, quick={doc['quick']}, "
          f"sanitized={doc['sanitized']})")


if __name__ == "__main__":
    main()
