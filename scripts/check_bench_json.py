#!/usr/bin/env python3
"""Validate a BENCH_runtime.json emitted by bench_spawn.

Checks the schema tag, the required top-level fields, and that every result
row is well-formed (known unit, positive finite value, sane worker count).
Used by the CI bench-smoke job so a refactor that silently breaks the JSON
emitter fails the build rather than producing an unusable artifact.

Usage: check_bench_json.py BENCH_runtime.json [--require NAME ...]
"""
import argparse
import json
import math
import sys

SCHEMA = "numashare-bench-runtime/1"
KNOWN_UNITS = {"tasks_per_sec", "ns_per_steal", "ns_median"}


def fail(msg: str) -> None:
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path")
    parser.add_argument(
        "--require",
        nargs="*",
        default=["spawn_retire_external", "spawn_retire_nested", "steal_drain",
                 "handoff_latency", "wait_idle_latency"],
        help="result names that must each appear at least once",
    )
    args = parser.parse_args()

    try:
        with open(args.path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {args.path}: {e}")

    if doc.get("schema") != SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    for field, kind in (("bench", str), ("quick", bool), ("sanitized", bool),
                        ("host_cpus", int), ("results", list)):
        if not isinstance(doc.get(field), kind):
            fail(f"field {field!r} missing or not a {kind.__name__}")

    results = doc["results"]
    if not results:
        fail("results array is empty")
    names = set()
    for i, r in enumerate(results):
        where = f"results[{i}]"
        for field, kind in (("name", str), ("workers", int), ("unit", str),
                            ("value", (int, float))):
            if not isinstance(r.get(field), kind):
                fail(f"{where}: field {field!r} missing or mistyped")
        if r["unit"] not in KNOWN_UNITS:
            fail(f"{where}: unknown unit {r['unit']!r}")
        if not (0 < r["workers"] <= 1024):
            fail(f"{where}: implausible worker count {r['workers']}")
        v = float(r["value"])
        if not math.isfinite(v) or v <= 0:
            fail(f"{where}: value {r['value']} is not a positive finite number")
        names.add(r["name"])

    missing = [n for n in args.require if n not in names]
    if missing:
        fail(f"required result names absent: {', '.join(missing)}")

    print(f"check_bench_json: OK: {args.path} "
          f"({len(results)} results, quick={doc['quick']}, "
          f"sanitized={doc['sanitized']})")


if __name__ == "__main__":
    main()
