#!/usr/bin/env bash
# Build, test, and regenerate every paper experiment.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure

# Latency observability suite gets a dedicated serial pass (same shape as
# the CI sanitizer jobs): the allocation-free proof and the concurrent
# record/snapshot conservation test are the contracts the rest of this
# script's numbers stand on.
ctest --test-dir build --output-on-failure -L obs

# Memory tier (arenas, datablock accounting, locality-aware stealing) gets
# the same dedicated pass the CI sanitizer jobs run.
ctest --test-dir build --output-on-failure -L memory

# Daemon-loss survival: the kill/restart chaos harness (forked daemons,
# degraded-mode consensus, generation-fenced failback). Same dedicated pass
# the CI sanitizer jobs run.
ctest --test-dir build --output-on-failure -L failover

# Tick-path scaling (registry v7): 1024-client churn stress asserting the
# attention-bitmap and full-sweep paths converge to identical state. Same
# dedicated pass the CI sanitizer jobs run.
ctest --test-dir build --output-on-failure -L scale

echo
echo "=== experiment benches (every paper table & figure) ==="
for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  "$b"
done

# bench_spawn, bench_foreign and bench_datablock (run above) left their perf
# trajectories in BENCH_runtime.json / BENCH_foreign.json / BENCH_memory.json;
# validate them so a broken emitter (or a regressed arbitration or
# locality-stealing gate) is caught locally too.
python3 scripts/check_bench_json.py BENCH_runtime.json
python3 scripts/check_bench_json.py BENCH_foreign.json
python3 scripts/check_bench_json.py BENCH_memory.json
# bench_daemon_scale (E22) emits BENCH_daemon.json: the tick-path scaling
# gates (bitmap >= 8x full scan at 1024 slots, loaded p99 bound).
python3 scripts/check_bench_json.py BENCH_daemon.json

echo
echo "=== examples (quick passes) ==="
./build/examples/quickstart
./build/examples/partition_explorer numabad
./build/examples/composed_app 1
./build/tools/numashare_cli paper table3
