#!/usr/bin/env bash
# Build, test, and regenerate every paper experiment.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure

echo
echo "=== experiment benches (every paper table & figure) ==="
for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  "$b"
done

echo
echo "=== examples (quick passes) ==="
./build/examples/quickstart
./build/examples/partition_explorer numabad
./build/examples/composed_app 1
./build/tools/numashare_cli paper table3
