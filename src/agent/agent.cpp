#include "agent/agent.hpp"

#include <algorithm>
#include <chrono>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "common/threading.hpp"
#include "obs/histogram.hpp"

namespace numashare::agent {

Agent::Agent(topo::Machine machine, PolicyPtr policy, Options options)
    : machine_(std::move(machine)), policy_(std::move(policy)), options_(options) {
  NS_REQUIRE(policy_ != nullptr, "agent needs a policy");
  NS_REQUIRE(machine_.node_count() <= kMaxNodes, "machine exceeds protocol capacity");
}

Agent::~Agent() { stop(); }

std::size_t Agent::index_of_locked(const std::string& name) const {
  const auto it = index_by_name_.find(name);
  return it == index_by_name_.end() ? apps_.size() : it->second;
}

std::size_t Agent::add_app(std::string name, ChannelBase& channel) {
  std::lock_guard lock(membership_mutex_);
  // remove_app() is keyed by name; duplicates would make it ambiguous.
  NS_REQUIRE(index_by_name_.find(name) == index_by_name_.end(), "duplicate app name");
  ManagedApp app;
  app.name = name;
  app.channel = &channel;
  apps_.push_back(std::move(app));
  index_by_name_.emplace(name, apps_.size() - 1);
  AppView view;
  view.name = std::move(name);
  views_.push_back(std::move(view));
  generation_.fetch_add(1, std::memory_order_relaxed);
  policy_->on_membership_change();
  return apps_.size() - 1;
}

bool Agent::remove_app(const std::string& name) {
  std::lock_guard lock(membership_mutex_);
  const std::size_t a = index_of_locked(name);
  if (a == apps_.size()) return false;
  apps_.erase(apps_.begin() + static_cast<std::ptrdiff_t>(a));
  views_.erase(views_.begin() + static_cast<std::ptrdiff_t>(a));
  // Every app after the erased one shifted down an index.
  index_by_name_.erase(name);
  for (std::size_t i = a; i < apps_.size(); ++i) index_by_name_[apps_[i].name] = i;
  generation_.fetch_add(1, std::memory_order_relaxed);
  policy_->on_membership_change();
  NS_LOG_INFO("agent", "removed app '{}' ({} remain)", name, apps_.size());
  return true;
}

std::size_t Agent::find_app(const std::string& name) const {
  std::lock_guard lock(membership_mutex_);
  return index_of_locked(name);
}

std::size_t Agent::app_count() const {
  std::lock_guard lock(membership_mutex_);
  return apps_.size();
}

bool Agent::set_app_thread_cap(const std::string& name, std::uint32_t cap) {
  std::lock_guard lock(membership_mutex_);
  const std::size_t a = index_of_locked(name);
  if (a == apps_.size()) return false;
  if (apps_[a].thread_cap != cap) {
    apps_[a].thread_cap = cap;
    views_[a].thread_cap = cap;
    // The machine just gained/lost administratively grantable cores;
    // cached partitions are stale. Not a membership change, though.
    policy_->on_membership_change();
  }
  return true;
}

Agent::ComplianceState Agent::compliance(const std::string& name) const {
  std::lock_guard lock(membership_mutex_);
  const std::size_t a = index_of_locked(name);
  return compliance_locked(a);
}

void Agent::snapshot_compliance(std::vector<ComplianceState>& out) const {
  std::lock_guard lock(membership_mutex_);
  out.resize(apps_.size());
  for (std::size_t a = 0; a < apps_.size(); ++a) out[a] = compliance_locked(a);
}

Agent::ComplianceState Agent::compliance_locked(std::size_t a) const {
  if (a >= apps_.size()) return {};
  ComplianceState state;
  state.commanded_epoch = apps_[a].commanded_epoch;
  state.enacted_epoch = views_[a].enacted_epoch;
  state.enacted_target = views_[a].enacted_target;
  state.thread_cap = apps_[a].thread_cap;
  state.stalled_workers = views_[a].latest.stalled_workers;
  return state;
}

void Agent::send(std::size_t a, const Directive& directive) {
  ManagedApp& app = apps_[a];
  // No-op directive: nothing to build, nothing to send. The common steady
  // state at 1000+ clients is "no change for anyone", so return before the
  // (kMaxNodes-wide) Command below is even zero-initialized.
  if (directive.kind == Directive::Kind::kNone &&
      directive.suggested_data_home == kMaxNodes) {
    return;
  }
  // A data-home suggestion travels as its own command, independent of
  // whether a thread directive accompanies it.
  if (directive.suggested_data_home != kMaxNodes) {
    Command suggestion;
    suggestion.type = CommandType::kSuggestDataHome;
    suggestion.suggested_home = directive.suggested_data_home;
    suggestion.seq = ++app.command_seq;
    suggestion.arbiter_generation = arbiter_generation_.load(std::memory_order_relaxed);
    if (app.channel->push_command(suggestion)) {
      ++commands_sent_;
    } else {
      --app.command_seq;
    }
  }

  Command command;
  command.seq = ++app.command_seq;
  const std::uint32_t cap = app.thread_cap;
  switch (directive.kind) {
    case Directive::Kind::kNone:
      --app.command_seq;
      return;
    case Directive::Kind::kClear:
      if (cap != 0xffffffffu) {
        // A capped app must never be released to "unlimited": the clear
        // degrades to an explicit total at the cap until the watchdog
        // lifts it.
        command.type = CommandType::kSetTotalThreads;
        command.total_threads = cap;
      } else {
        command.type = CommandType::kClearControls;
      }
      break;
    case Directive::Kind::kTotalThreads:
      command.type = CommandType::kSetTotalThreads;
      command.total_threads = std::min(directive.total_threads, cap);
      break;
    case Directive::Kind::kNodeThreads: {
      NS_REQUIRE(directive.node_threads.size() == machine_.node_count(),
                 "directive node count mismatch");
      command.type = CommandType::kSetNodeThreads;
      command.node_count = static_cast<std::uint32_t>(directive.node_threads.size());
      std::uint32_t total = 0;
      for (std::size_t n = 0; n < directive.node_threads.size(); ++n) {
        command.node_threads[n] = directive.node_threads[n];
        total += directive.node_threads[n];
      }
      // Safety-net clamp for cap-unaware policies: shave surplus from the
      // highest node down, preserving the policy's placement preference for
      // the threads that survive.
      for (std::uint32_t n = command.node_count; total > cap && n > 0; --n) {
        const std::uint32_t cut = std::min(command.node_threads[n - 1], total - cap);
        command.node_threads[n - 1] -= cut;
        total -= cut;
      }
      break;
    }
  }
  // Every thread-target command carries a fresh compliance epoch; the
  // runtime acks the newest epoch it has fully enacted. The issue stamp is
  // the enactment-lag histogram's zero point.
  command.epoch = app.commanded_epoch + 1;
  command.issued_ns = obs::now_ns();
  command.arbiter_generation = arbiter_generation_.load(std::memory_order_relaxed);
  if (app.channel->push_command(command)) {
    ++commands_sent_;
    app.commanded_epoch = command.epoch;
    // The view mirror is maintained at the mutation site (here and in
    // set_app_thread_cap) instead of being refreshed every step: a clean
    // pass over 1000+ apps must not pay two stores per app for values that
    // only change when a command lands.
    views_[a].commanded_epoch = command.epoch;
  } else {
    // Backpressure: the runtime is not pumping. Dropping is deliberate — the
    // next tick recomputes a fresher command anyway. The epoch is not
    // consumed: an unpushed command can never be enacted, so counting it
    // commanded would mark the app non-compliant for our own drop.
    NS_LOG_WARN("agent", "command ring full for app '{}'", app.name);
    --app.command_seq;
  }
}

std::uint32_t Agent::step(double now) {
  std::lock_guard lock(membership_mutex_);
  // 1. Batched, sequence-coalesced ingest: one drain per channel consumes
  // the whole backlog and hands back only the newest sample (rates come
  // from deltas against our own previous newest, so the intermediate copies
  // were always discarded anyway). Apps with nothing queued are *clean* —
  // their view is left untouched and no per-sample work runs at all, which
  // is what keeps the daemon tick proportional to activity at 1000+
  // clients. Downstream, the model-guided policy's drift gates feed its
  // refine_search incremental path, so a quiet membership also skips the
  // full partition solve.
  Telemetry newest;  // hoisted: drain_newest overwrites it whole, and
                     // re-zeroing ~300 B per app would dominate a clean pass
  for (std::size_t a = 0; a < apps_.size(); ++a) {
    auto& app = apps_[a];
    auto& view = views_[a];
    // view.commanded_epoch / view.thread_cap are mirrored at their mutation
    // sites (send / set_app_thread_cap), not refreshed here — a clean pass
    // touches nothing but the channel cursor.
    const std::uint64_t drained = app.channel->drain_newest(newest);
    // Clean app: nothing arrived, and nothing can have been dropped either —
    // a drop needs a full ring, and a full ring means this drain returned
    // the whole backlog (drained >= capacity > 0). Skip all per-app work.
    if (drained == 0) continue;
    telemetry_received_ += drained;
    // Read the drop counter *after* the drain: a push that fails while we
    // advance the cursor lands in this tick's count instead of being
    // misattributed to the next tick's view.
    view.telemetry_dropped = app.channel->telemetry_dropped();
    // Acks only ratchet forward: a reordered stale sample (or one with the
    // ack stripped in transit) must not un-enact a previously-proven epoch.
    if (newest.enacted_epoch > view.enacted_epoch) {
      view.enacted_epoch = newest.enacted_epoch;
      view.enacted_target = newest.enacted_target;
    }
    if (app.have_prev) {
      const double dt = newest.timestamp - app.prev.timestamp;
      if (dt > 1e-9) {
        const double task_rate =
            static_cast<double>(newest.tasks_executed - app.prev.tasks_executed) / dt;
        const double progress_rate =
            static_cast<double>(newest.progress - app.prev.progress) / dt;
        const double alpha = options_.rate_alpha;
        view.task_rate = view.has_telemetry
                             ? alpha * task_rate + (1.0 - alpha) * view.task_rate
                             : task_rate;
        view.progress_rate = view.has_telemetry
                                 ? alpha * progress_rate + (1.0 - alpha) * view.progress_rate
                                 : progress_rate;
      }
    }
    app.prev = newest;
    app.have_prev = true;
    view.latest = newest;
    view.has_telemetry = true;
    view.last_update_s = now;
  }

  // 2. OS-side ground truth.
  if (options_.sample_os_load) {
    if (auto load = os_sampler_.sample()) {
      os_load_.store(*load, std::memory_order_relaxed);
    }
  }

  // 3. Decide and command.
  const auto before = commands_sent_;
  const auto directives = policy_->decide(machine_, views_);
  NS_REQUIRE(directives.size() == apps_.size(), "policy must answer one directive per app");
  for (std::size_t a = 0; a < apps_.size(); ++a) {
    send(a, directives[a]);
  }
  return static_cast<std::uint32_t>(commands_sent_ - before);
}

void Agent::start() {
  NS_REQUIRE(!running_.load(), "agent already running");
  running_.store(true);
  loop_thread_ = std::thread([this] {
    set_current_thread_name("ns-agent");
    while (running_.load(std::memory_order_acquire)) {
      step(monotonic_seconds());
      std::this_thread::sleep_for(std::chrono::microseconds(options_.period_us));
    }
  });
}

void Agent::stop() {
  if (!running_.exchange(false)) return;
  if (loop_thread_.joinable()) loop_thread_.join();
}

}  // namespace numashare::agent
