#include "agent/agent.hpp"

#include <algorithm>
#include <chrono>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "common/threading.hpp"
#include "obs/histogram.hpp"

namespace numashare::agent {

Agent::Agent(topo::Machine machine, PolicyPtr policy, Options options)
    : machine_(std::move(machine)), policy_(std::move(policy)), options_(options) {
  NS_REQUIRE(policy_ != nullptr, "agent needs a policy");
  NS_REQUIRE(machine_.node_count() <= kMaxNodes, "machine exceeds protocol capacity");
}

Agent::~Agent() { stop(); }

std::size_t Agent::add_app(std::string name, ChannelBase& channel) {
  std::lock_guard lock(membership_mutex_);
  for (const auto& existing : apps_) {
    // remove_app() is keyed by name; duplicates would make it ambiguous.
    NS_REQUIRE(existing.name != name, "duplicate app name");
  }
  ManagedApp app;
  app.name = name;
  app.channel = &channel;
  apps_.push_back(std::move(app));
  AppView view;
  view.name = std::move(name);
  views_.push_back(std::move(view));
  generation_.fetch_add(1, std::memory_order_relaxed);
  policy_->on_membership_change();
  return apps_.size() - 1;
}

bool Agent::remove_app(const std::string& name) {
  std::lock_guard lock(membership_mutex_);
  for (std::size_t a = 0; a < apps_.size(); ++a) {
    if (apps_[a].name != name) continue;
    apps_.erase(apps_.begin() + static_cast<std::ptrdiff_t>(a));
    views_.erase(views_.begin() + static_cast<std::ptrdiff_t>(a));
    generation_.fetch_add(1, std::memory_order_relaxed);
    policy_->on_membership_change();
    NS_LOG_INFO("agent", "removed app '{}' ({} remain)", name, apps_.size());
    return true;
  }
  return false;
}

std::size_t Agent::find_app(const std::string& name) const {
  std::lock_guard lock(membership_mutex_);
  for (std::size_t a = 0; a < apps_.size(); ++a) {
    if (apps_[a].name == name) return a;
  }
  return apps_.size();
}

std::size_t Agent::app_count() const {
  std::lock_guard lock(membership_mutex_);
  return apps_.size();
}

bool Agent::set_app_thread_cap(const std::string& name, std::uint32_t cap) {
  std::lock_guard lock(membership_mutex_);
  for (std::size_t a = 0; a < apps_.size(); ++a) {
    if (apps_[a].name != name) continue;
    if (apps_[a].thread_cap != cap) {
      apps_[a].thread_cap = cap;
      views_[a].thread_cap = cap;
      // The machine just gained/lost administratively grantable cores;
      // cached partitions are stale. Not a membership change, though.
      policy_->on_membership_change();
    }
    return true;
  }
  return false;
}

Agent::ComplianceState Agent::compliance(const std::string& name) const {
  std::lock_guard lock(membership_mutex_);
  for (std::size_t a = 0; a < apps_.size(); ++a) {
    if (apps_[a].name != name) continue;
    ComplianceState state;
    state.commanded_epoch = apps_[a].commanded_epoch;
    state.enacted_epoch = views_[a].enacted_epoch;
    state.enacted_target = views_[a].enacted_target;
    state.thread_cap = apps_[a].thread_cap;
    state.stalled_workers = views_[a].latest.stalled_workers;
    return state;
  }
  return {};
}

void Agent::send(ManagedApp& app, const Directive& directive) {
  // A data-home suggestion travels as its own command, independent of
  // whether a thread directive accompanies it.
  if (directive.suggested_data_home != kMaxNodes) {
    Command suggestion;
    suggestion.type = CommandType::kSuggestDataHome;
    suggestion.suggested_home = directive.suggested_data_home;
    suggestion.seq = ++app.command_seq;
    suggestion.arbiter_generation = arbiter_generation_.load(std::memory_order_relaxed);
    if (app.channel->push_command(suggestion)) {
      ++commands_sent_;
    } else {
      --app.command_seq;
    }
  }

  Command command;
  command.seq = ++app.command_seq;
  const std::uint32_t cap = app.thread_cap;
  switch (directive.kind) {
    case Directive::Kind::kNone:
      --app.command_seq;
      return;
    case Directive::Kind::kClear:
      if (cap != 0xffffffffu) {
        // A capped app must never be released to "unlimited": the clear
        // degrades to an explicit total at the cap until the watchdog
        // lifts it.
        command.type = CommandType::kSetTotalThreads;
        command.total_threads = cap;
      } else {
        command.type = CommandType::kClearControls;
      }
      break;
    case Directive::Kind::kTotalThreads:
      command.type = CommandType::kSetTotalThreads;
      command.total_threads = std::min(directive.total_threads, cap);
      break;
    case Directive::Kind::kNodeThreads: {
      NS_REQUIRE(directive.node_threads.size() == machine_.node_count(),
                 "directive node count mismatch");
      command.type = CommandType::kSetNodeThreads;
      command.node_count = static_cast<std::uint32_t>(directive.node_threads.size());
      std::uint32_t total = 0;
      for (std::size_t n = 0; n < directive.node_threads.size(); ++n) {
        command.node_threads[n] = directive.node_threads[n];
        total += directive.node_threads[n];
      }
      // Safety-net clamp for cap-unaware policies: shave surplus from the
      // highest node down, preserving the policy's placement preference for
      // the threads that survive.
      for (std::uint32_t n = command.node_count; total > cap && n > 0; --n) {
        const std::uint32_t cut = std::min(command.node_threads[n - 1], total - cap);
        command.node_threads[n - 1] -= cut;
        total -= cut;
      }
      break;
    }
  }
  // Every thread-target command carries a fresh compliance epoch; the
  // runtime acks the newest epoch it has fully enacted. The issue stamp is
  // the enactment-lag histogram's zero point.
  command.epoch = app.commanded_epoch + 1;
  command.issued_ns = obs::now_ns();
  command.arbiter_generation = arbiter_generation_.load(std::memory_order_relaxed);
  if (app.channel->push_command(command)) {
    ++commands_sent_;
    app.commanded_epoch = command.epoch;
  } else {
    // Backpressure: the runtime is not pumping. Dropping is deliberate — the
    // next tick recomputes a fresher command anyway. The epoch is not
    // consumed: an unpushed command can never be enacted, so counting it
    // commanded would mark the app non-compliant for our own drop.
    NS_LOG_WARN("agent", "command ring full for app '{}'", app.name);
    --app.command_seq;
  }
}

std::uint32_t Agent::step(double now) {
  std::lock_guard lock(membership_mutex_);
  // 1. Drain telemetry, keep the newest sample, update rates from deltas.
  for (std::size_t a = 0; a < apps_.size(); ++a) {
    auto& app = apps_[a];
    auto& view = views_[a];
    view.telemetry_dropped = app.channel->telemetry_dropped();
    view.commanded_epoch = app.commanded_epoch;
    view.thread_cap = app.thread_cap;
    std::optional<Telemetry> newest;
    while (auto t = app.channel->pop_telemetry()) {
      ++telemetry_received_;
      newest = *t;
    }
    if (!newest) continue;
    // Acks only ratchet forward: a reordered stale sample (or one with the
    // ack stripped in transit) must not un-enact a previously-proven epoch.
    if (newest->enacted_epoch > view.enacted_epoch) {
      view.enacted_epoch = newest->enacted_epoch;
      view.enacted_target = newest->enacted_target;
    }
    if (app.have_prev) {
      const double dt = newest->timestamp - app.prev.timestamp;
      if (dt > 1e-9) {
        const double task_rate =
            static_cast<double>(newest->tasks_executed - app.prev.tasks_executed) / dt;
        const double progress_rate =
            static_cast<double>(newest->progress - app.prev.progress) / dt;
        const double alpha = options_.rate_alpha;
        view.task_rate = view.has_telemetry
                             ? alpha * task_rate + (1.0 - alpha) * view.task_rate
                             : task_rate;
        view.progress_rate = view.has_telemetry
                                 ? alpha * progress_rate + (1.0 - alpha) * view.progress_rate
                                 : progress_rate;
      }
    }
    app.prev = *newest;
    app.have_prev = true;
    view.latest = *newest;
    view.has_telemetry = true;
  }

  // 2. OS-side ground truth.
  if (options_.sample_os_load) {
    if (auto load = os_sampler_.sample()) {
      os_load_.store(*load, std::memory_order_relaxed);
    }
  }

  // 3. Decide and command.
  const auto before = commands_sent_;
  const auto directives = policy_->decide(machine_, views_);
  NS_REQUIRE(directives.size() == apps_.size(), "policy must answer one directive per app");
  for (std::size_t a = 0; a < apps_.size(); ++a) {
    send(apps_[a], directives[a]);
  }
  (void)now;
  return static_cast<std::uint32_t>(commands_sent_ - before);
}

void Agent::start() {
  NS_REQUIRE(!running_.load(), "agent already running");
  running_.store(true);
  loop_thread_ = std::thread([this] {
    set_current_thread_name("ns-agent");
    while (running_.load(std::memory_order_acquire)) {
      step(monotonic_seconds());
      std::this_thread::sleep_for(std::chrono::microseconds(options_.period_us));
    }
  });
}

void Agent::stop() {
  if (!running_.exchange(false)) return;
  if (loop_thread_.joinable()) loop_thread_.join();
}

}  // namespace numashare::agent
