// The arbitration agent (paper Figure 1).
//
// One Agent manages N applications through their channels. Each tick it
// drains telemetry, refreshes per-app views (with EWMA task/progress rates),
// asks the policy for directives, and pushes the resulting commands. It can
// be stepped manually (deterministic tests) or run on its own thread. The
// agent also samples OS CPU load — the paper's "agent also periodically
// queries the operating system to check the actual CPU load".
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "agent/channel.hpp"
#include "agent/os_load.hpp"
#include "agent/policy.hpp"
#include "topology/machine.hpp"

namespace numashare::agent {

struct AgentOptions {
  /// Tick period for the background loop.
  std::int64_t period_us = 2000;
  /// EWMA smoothing for rates.
  double rate_alpha = 0.3;
  /// Sample /proc/stat load each tick (off in unit tests for determinism).
  bool sample_os_load = false;
};

class Agent {
 public:
  using Options = AgentOptions;

  Agent(topo::Machine machine, PolicyPtr policy, AgentOptions options = {});
  ~Agent();

  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;

  /// Register an application; the agent keeps a non-owning channel ref.
  /// Returns the app's index (the order policies see). Safe to call while
  /// the background loop runs; the membership change lands between steps.
  std::size_t add_app(std::string name, ChannelBase& channel);

  /// Deregister the named application (join's inverse). Later apps shift
  /// down one index; the policy is notified so it re-partitions. Returns
  /// false when no app has that name. Safe while the loop runs.
  bool remove_app(const std::string& name);

  /// Index of the named app, or app_count() when absent.
  std::size_t find_app(const std::string& name) const;

  /// Administrative thread cap for one app (compliance quarantine/laggard
  /// reclamation). UINT32_MAX lifts the cap. Policies see it via
  /// AppView::thread_cap and must not grant above it; send() additionally
  /// clamps outgoing thread targets. Notifies the policy on change so cached
  /// partitions are recomputed, but does NOT bump the membership generation
  /// (the app set is unchanged). Returns false when no app has that name.
  bool set_app_thread_cap(const std::string& name, std::uint32_t cap);

  /// Compliance ack state for one app as of the last step(); zeros/defaults
  /// when absent.
  struct ComplianceState {
    std::uint64_t commanded_epoch = 0;
    std::uint64_t enacted_epoch = 0;
    std::uint32_t enacted_target = kUnconstrained;
    std::uint32_t thread_cap = 0xffffffffu;
    /// Watchdog-reported workers the OS is not scheduling (latest
    /// telemetry): nonzero means "behind because starved, not defiant".
    std::uint32_t stalled_workers = 0;
  };
  ComplianceState compliance(const std::string& name) const;

  /// Bulk variant for the daemon watchdog: fills `out` (indexed by app
  /// index, resized to app_count) under a single lock. The watchdog asks
  /// once per client per tick, and at 1000+ clients per-name compliance()
  /// calls would cost a mutex acquisition and a string hash each. Rows stay
  /// valid until generation() changes.
  void snapshot_compliance(std::vector<ComplianceState>& out) const;

  std::size_t app_count() const;

  /// Membership generation: bumps on every add_app/remove_app. Lets
  /// observers (and the daemon's registry) tell allocations apart across
  /// membership changes.
  std::uint64_t generation() const { return generation_.load(std::memory_order_relaxed); }

  /// Daemon incarnation stamped into every outgoing Command
  /// (Command::arbiter_generation). The daemon sets it once at init from the
  /// registry header; 0 (the default) marks an in-process agent whose
  /// commands are never generation-fenced.
  void set_arbiter_generation(std::uint64_t generation) {
    arbiter_generation_.store(generation, std::memory_order_relaxed);
  }
  std::uint64_t arbiter_generation() const {
    return arbiter_generation_.load(std::memory_order_relaxed);
  }

  /// One decision cycle at the given timestamp (monotonic seconds). Returns
  /// the number of commands sent.
  std::uint32_t step(double now);

  /// Background loop control.
  void start();
  void stop();

  const std::vector<AppView>& views() const { return views_; }
  const topo::Machine& machine() const { return machine_; }
  Policy& policy() { return *policy_; }
  std::uint64_t commands_sent() const { return commands_sent_; }
  std::uint64_t telemetry_received() const { return telemetry_received_; }
  /// Last OS load sample in [0,1], or a negative value before the first one.
  double os_load() const { return os_load_.load(std::memory_order_relaxed); }

 private:
  struct ManagedApp {
    std::string name;
    ChannelBase* channel = nullptr;
    std::uint64_t command_seq = 0;
    /// Compliance epoch counter: bumped (and stamped into the command) on
    /// every thread-target command that actually reaches the ring.
    std::uint64_t commanded_epoch = 0;
    /// Administrative thread cap (UINT32_MAX = uncapped); see
    /// set_app_thread_cap().
    std::uint32_t thread_cap = 0xffffffffu;
    bool have_prev = false;
    Telemetry prev;
  };

  /// Build + push the command(s) for app index `a`, mirroring the resulting
  /// commanded_epoch into views_[a]. Caller holds membership_mutex_.
  void send(std::size_t a, const Directive& directive);
  /// Index of `name` in apps_, or apps_.size() when absent. Caller holds
  /// membership_mutex_.
  std::size_t index_of_locked(const std::string& name) const;

  /// Shared body of compliance()/compliance_at(); caller holds
  /// membership_mutex_.
  ComplianceState compliance_locked(std::size_t index) const;

  topo::Machine machine_;
  PolicyPtr policy_;
  Options options_;
  /// Guards apps_/views_ against concurrent step vs add/remove when the
  /// background loop is running (dynamic membership, daemon mode).
  mutable std::mutex membership_mutex_;
  std::vector<ManagedApp> apps_;
  std::vector<AppView> views_;
  /// Name -> index into apps_/views_. The daemon's compliance watchdog asks
  /// for every client by name every tick; a linear scan there is O(n^2)
  /// across the tick at 1000+ clients. Rebuilt on remove (indices shift).
  std::unordered_map<std::string, std::size_t> index_by_name_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint64_t> arbiter_generation_{0};
  std::uint64_t commands_sent_ = 0;
  std::uint64_t telemetry_received_ = 0;
  OsLoadSampler os_sampler_;
  std::atomic<double> os_load_{-1.0};

  std::atomic<bool> running_{false};
  std::thread loop_thread_;
};

}  // namespace numashare::agent
