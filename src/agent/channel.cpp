#include "agent/channel.hpp"

#include <algorithm>
#include <chrono>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "common/threading.hpp"
#include "core/placement.hpp"
#include "obs/histogram.hpp"
#include "topology/affinity.hpp"

namespace numashare::agent {

RuntimeAdapter::RuntimeAdapter(rt::Runtime& runtime, ChannelBase& channel, double app_ai,
                               std::uint32_t data_home_node)
    : runtime_(runtime), channel_(channel), ai_estimate_(app_ai),
      auto_ai_(app_ai <= 0.0), data_home_node_(data_home_node) {
  NS_REQUIRE(runtime_.machine().node_count() <= kMaxNodes,
             "machine exceeds protocol node capacity");
}

RuntimeAdapter::~RuntimeAdapter() { stop(); }

void RuntimeAdapter::apply(const Command& command) {
  last_seq_.store(command.seq, std::memory_order_relaxed);
  // Record the compliance target before touching the runtime, keyed on the
  // epoch so a reordered (delayed/duplicated) older command never regresses
  // the pending ack. kUnconstrained means "no running-thread ceiling".
  if (command.epoch > pending_epoch_) {
    std::uint32_t target = kUnconstrained;
    switch (command.type) {
      case CommandType::kSetTotalThreads:
        target = command.total_threads;
        break;
      case CommandType::kSetNodeThreads: {
        target = 0;
        for (std::uint32_t n = 0; n < command.node_count && n < kMaxNodes; ++n) {
          target += command.node_threads[n];
        }
        break;
      }
      case CommandType::kBlockCores: {
        std::uint32_t blocked = 0;
        for (std::uint32_t w = 0; w < kMaxCoreWords; ++w) {
          blocked += static_cast<std::uint32_t>(__builtin_popcountll(command.core_mask[w]));
        }
        const std::uint32_t cores = runtime_.machine().core_count();
        // An empty mask is "clear controls" below; a full one still leaves
        // target 0 — enactment then requires every worker parked.
        target = blocked == 0 || blocked >= cores ? (blocked == 0 ? kUnconstrained : 0)
                                                  : cores - blocked;
        break;
      }
      case CommandType::kClearControls:
        target = kUnconstrained;
        break;
      default:
        break;
    }
    pending_epoch_ = command.epoch;
    pending_target_ = target;
    pending_issue_ns_ = command.issued_ns != 0 ? command.issued_ns : obs::now_ns();
  }
  switch (command.type) {
    case CommandType::kSetTotalThreads:
      runtime_.set_total_thread_target(command.total_threads);
      break;
    case CommandType::kBlockCores: {
      topo::CpuSet cores;
      for (std::uint32_t w = 0; w < kMaxCoreWords; ++w) {
        std::uint64_t bits = command.core_mask[w];
        while (bits) {
          const int bit = __builtin_ctzll(bits);
          cores.set(w * 64 + static_cast<std::uint32_t>(bit));
          bits &= bits - 1;
        }
      }
      if (cores.empty()) {
        runtime_.clear_thread_controls();
      } else {
        runtime_.set_blocked_cores(cores);
      }
      break;
    }
    case CommandType::kSetNodeThreads: {
      NS_REQUIRE(command.node_count == runtime_.machine().node_count(),
                 "node count mismatch in command");
      std::vector<std::uint32_t> targets(command.node_threads,
                                         command.node_threads + command.node_count);
      runtime_.set_node_thread_targets(targets);
      // Reallocation tick: the agent moved this app's compute; chase it with
      // the hottest datablocks, but only when the placement actually changed
      // (a re-asserted identical allocation must not churn data).
      if (migrate_on_realloc_.load(std::memory_order_relaxed) &&
          targets != last_node_targets_) {
        runtime_.migrate_datablocks_toward(targets);
      }
      last_node_targets_ = std::move(targets);
      break;
    }
    case CommandType::kClearControls:
      runtime_.clear_thread_controls();
      break;
    case CommandType::kSuggestDataHome:
      // Advisory only: the app's handler decides. No handler = ignored.
      if (home_handler_ && command.suggested_home < runtime_.machine().node_count()) {
        home_handler_(command.suggested_home);
      }
      break;
  }
  commands_applied_.fetch_add(1, std::memory_order_relaxed);
}

std::uint32_t RuntimeAdapter::pump() {
  std::uint32_t applied = 0;
  while (auto command = channel_.pop_command()) {
    apply(*command);
    ++applied;
  }

  const auto stats = runtime_.stats();
  // Promote the pending epoch to enacted once the runtime has genuinely
  // complied: growth and clears count immediately, a shrink only when the
  // surplus workers have actually parked (running at or under the target).
  if (pending_epoch_ > enacted_epoch_ &&
      (pending_target_ == kUnconstrained || stats.running_threads <= pending_target_)) {
    enacted_epoch_ = pending_epoch_;
    enacted_target_ = pending_target_;
    enacted_epoch_pub_.store(enacted_epoch_, std::memory_order_relaxed);
    enacted_target_pub_.store(enacted_target_, std::memory_order_relaxed);
    // The epoch's full issue -> enactment-ack interval, daemon clock to
    // here: the command-enactment-lag histogram the bench gates on.
    if (pending_issue_ns_ != 0) {
      const std::uint64_t now = obs::now_ns();
      runtime_.record_enactment_lag(now > pending_issue_ns_ ? now - pending_issue_ns_
                                                            : 0);
      pending_issue_ns_ = 0;
    }
  }
  if (auto_ai_) {
    // Derive the arithmetic intensity from the application's accounted
    // work/traffic since the previous pump, smoothed; capped so a
    // traffic-free (pure compute) app reads as "very compute-bound" rather
    // than infinite.
    const double delta_gflop = stats.gflop_done - prev_gflop_;
    const double delta_gbytes = stats.gbytes_moved - prev_gbytes_;
    prev_gflop_ = stats.gflop_done;
    prev_gbytes_ = stats.gbytes_moved;
    if (delta_gflop > 0.0) {
      constexpr double kAiCap = 1024.0;
      const double ai =
          delta_gbytes > 1e-12 ? std::min(delta_gflop / delta_gbytes, kAiCap) : kAiCap;
      ai_ewma_.add(ai);
      ai_estimate_.store(ai_ewma_.value(), std::memory_order_relaxed);
    }
  }
  if (auto_data_home_.load(std::memory_order_relaxed)) {
    // Advertise where the data actually lives: plurality residency across
    // the registry's per-node byte totals, kMaxNodes when no node holds a
    // meaningful share (spread data has no home worth reporting).
    auto& registry = runtime_.datablocks();
    std::vector<std::uint64_t> resident(registry.node_count());
    for (std::uint32_t n = 0; n < registry.node_count(); ++n) {
      resident[n] = registry.bytes_on_node(n);
    }
    const std::uint32_t home = model::dominant_residency(resident, auto_home_min_fraction_);
    data_home_node_.store(home < registry.node_count() ? home : kMaxNodes,
                          std::memory_order_relaxed);
  }
  Telemetry t;
  t.seq = ++telemetry_seq_;
  t.timestamp = monotonic_seconds();
  t.tasks_executed = stats.tasks_executed;
  t.tasks_spawned = stats.tasks_spawned;
  t.progress = stats.progress;
  t.total_workers = stats.total_workers;
  t.running_threads = stats.running_threads;
  t.blocked_threads = stats.blocked_threads;
  t.node_count = runtime_.machine().node_count();
  for (std::uint32_t n = 0; n < t.node_count; ++n) {
    t.running_per_node[n] = stats.running_per_node[n];
  }
  t.ready_queue_depth = stats.ready_queue_depth;
  t.outstanding_tasks = stats.outstanding_tasks;
  t.gflop_done = stats.gflop_done;
  t.gbytes_moved = stats.gbytes_moved;
  t.ai_estimate = ai_estimate_.load(std::memory_order_relaxed);
  t.data_home_node = data_home_node_.load(std::memory_order_relaxed);
  t.enacted_epoch = enacted_epoch_;
  t.enacted_target = enacted_target_;
  t.stalled_workers = stats.stalled_workers;
  t.blocks_migrated = stats.blocks_migrated;
  t.bytes_migrated = stats.bytes_migrated;
  // Telemetry is lossy by design: a full ring means the agent is behind and
  // stale samples are better dropped than blocking the runtime.
  channel_.push_telemetry(t);
  return applied;
}

void RuntimeAdapter::start(std::int64_t period_us) {
  NS_REQUIRE(!running_.load(), "adapter already running");
  running_.store(true);
  pump_thread_ = std::thread([this, period_us] {
    set_current_thread_name("ns-adapter");
    while (running_.load(std::memory_order_acquire)) {
      pump();
      std::this_thread::sleep_for(std::chrono::microseconds(period_us));
    }
  });
}

void RuntimeAdapter::stop() {
  if (!running_.exchange(false)) return;
  if (pump_thread_.joinable()) pump_thread_.join();
}

}  // namespace numashare::agent
