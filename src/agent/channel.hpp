// Transport between the agent and one runtime, plus the runtime-side pump.
//
// A Channel is a pair of SPSC rings (commands in, telemetry out) — the
// in-process stand-in for the shared-memory/socket link a separate agent
// process would use. RuntimeAdapter is the runtime-side endpoint: it applies
// arriving commands to the Runtime's control surface and publishes periodic
// telemetry snapshots, either pumped manually (tests) or from a background
// thread (examples, benches).
#pragma once

#include <atomic>
#include <memory>
#include <thread>

#include <functional>

#include "agent/protocol.hpp"
#include "common/spsc_ring.hpp"
#include "common/stats.hpp"
#include "runtime/runtime.hpp"

namespace numashare::agent {

/// Transport abstraction: the agent pushes commands / pops telemetry, the
/// runtime adapter does the reverse. Two implementations: the in-process
/// Channel below and agent::ShmChannel (shm_channel.hpp), which carries the
/// same POD messages through a POSIX shared-memory segment between real
/// processes — the paper's actual deployment shape.
class ChannelBase {
 public:
  virtual ~ChannelBase() = default;
  // Agent side.
  virtual bool push_command(const Command& command) = 0;
  virtual std::optional<Telemetry> pop_telemetry() = 0;
  // Runtime side.
  virtual std::optional<Command> pop_command() = 0;
  virtual bool push_telemetry(const Telemetry& telemetry) = 0;
  /// Agent-side batched ingest: consume every queued telemetry sample,
  /// leaving the newest in `out` and returning how many were consumed
  /// (0 = nothing queued, `out` untouched). The agent only needs the newest
  /// sample per tick — rates come from deltas against its own previous
  /// newest — so transports are free to skip the intermediate copies. The
  /// default pops serially; ring-backed transports override with an O(1)
  /// cursor advance (ShmChannel::drain_newest).
  virtual std::uint64_t drain_newest(Telemetry& out) {
    std::uint64_t drained = 0;
    while (auto t = pop_telemetry()) {
      out = *t;
      ++drained;
    }
    return drained;
  }
  // Drop accounting: cumulative try_push failures on full rings, visible
  // from both ends so the agent can tell "quiet app" from "losing samples".
  virtual std::uint64_t commands_dropped() const { return 0; }
  virtual std::uint64_t telemetry_dropped() const { return 0; }
};

struct Channel final : ChannelBase {
  SpscRing<Command> commands{64};      // agent -> runtime
  SpscRing<Telemetry> telemetry{256};  // runtime -> agent

  bool push_command(const Command& command) override {
    if (commands.try_push(command)) return true;
    commands_dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::optional<Command> pop_command() override { return commands.try_pop(); }
  bool push_telemetry(const Telemetry& t) override {
    if (telemetry.try_push(t)) return true;
    telemetry_dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::optional<Telemetry> pop_telemetry() override { return telemetry.try_pop(); }
  std::uint64_t commands_dropped() const override {
    return commands_dropped_.load(std::memory_order_relaxed);
  }
  std::uint64_t telemetry_dropped() const override {
    return telemetry_dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> commands_dropped_{0};
  std::atomic<std::uint64_t> telemetry_dropped_{0};
};

class RuntimeAdapter {
 public:
  /// `app_ai` / `data_home` seed the optional self-description fields in
  /// telemetry. An app that knows its arithmetic intensity passes it; with
  /// app_ai = 0 the adapter *derives* the AI from the runtime's
  /// report_work() counters (EWMA of delta-GFLOP / delta-GB per pump) —
  /// §III.A's access-pattern detection.
  RuntimeAdapter(rt::Runtime& runtime, ChannelBase& channel, double app_ai = 0.0,
                 std::uint32_t data_home_node = kMaxNodes);
  ~RuntimeAdapter();

  RuntimeAdapter(const RuntimeAdapter&) = delete;
  RuntimeAdapter& operator=(const RuntimeAdapter&) = delete;

  /// Apply all pending commands and publish one telemetry sample.
  /// Returns the number of commands applied.
  std::uint32_t pump();

  /// Start/stop a background pump at the given period.
  void start(std::int64_t period_us = 1000);
  void stop();

  std::uint64_t commands_applied() const {
    return commands_applied_.load(std::memory_order_relaxed);
  }
  std::uint64_t last_command_seq() const {
    return last_seq_.load(std::memory_order_relaxed);
  }

  /// Compliance ack state: the newest command epoch whose thread target the
  /// runtime has fully enacted (surplus threads actually blocked), and that
  /// target (kUnconstrained = no active constraint). Published in telemetry.
  std::uint64_t enacted_epoch() const { return enacted_epoch_pub_.load(std::memory_order_relaxed); }
  std::uint32_t enacted_target() const {
    return enacted_target_pub_.load(std::memory_order_relaxed);
  }

  void set_ai_estimate(double ai) { ai_estimate_.store(ai, std::memory_order_relaxed); }

  /// Application hook for kSuggestDataHome: the app decides whether to
  /// migrate (e.g. Datablock::move_to at a phase boundary) and then calls
  /// set_data_home() so subsequent telemetry advertises the new placement.
  /// Invoked from the pump thread.
  void set_data_home_handler(std::function<void(topo::NodeId)> handler) {
    home_handler_ = std::move(handler);
  }
  void set_data_home(std::uint32_t node) {
    data_home_node_.store(node, std::memory_order_relaxed);
  }
  std::uint32_t data_home() const { return data_home_node_.load(std::memory_order_relaxed); }

  /// Derive the advertised data home from the datablock registry's per-node
  /// residency each pump (model::dominant_residency) instead of a static
  /// declaration — §III.A's access-pattern detection applied to placement.
  /// An app that calls set_data_home() later overrides the derivation until
  /// re-enabled.
  void enable_auto_data_home(double min_fraction = 0.5) {
    auto_home_min_fraction_ = min_fraction;
    auto_data_home_.store(true, std::memory_order_relaxed);
  }
  void disable_auto_data_home() { auto_data_home_.store(false, std::memory_order_relaxed); }

  /// Reallocation-tick migration (on by default): when a kSetNodeThreads
  /// command *changes* the per-node targets, nudge the hottest datablocks
  /// toward the new placement (Runtime::migrate_datablocks_toward, bounded
  /// by RuntimeOptions::migration_budget_bytes). Off = threads move, data
  /// stays — the paper's baseline behaviour.
  void set_migrate_on_realloc(bool enabled) {
    migrate_on_realloc_.store(enabled, std::memory_order_relaxed);
  }
  bool migrate_on_realloc() const {
    return migrate_on_realloc_.load(std::memory_order_relaxed);
  }

 private:
  void apply(const Command& command);

  rt::Runtime& runtime_;
  ChannelBase& channel_;
  std::atomic<double> ai_estimate_;
  /// Auto-derivation state (pump-thread only).
  bool auto_ai_ = false;
  double prev_gflop_ = 0.0;
  double prev_gbytes_ = 0.0;
  Ewma ai_ewma_{0.3};
  std::atomic<std::uint32_t> data_home_node_;
  std::function<void(topo::NodeId)> home_handler_;
  std::atomic<bool> auto_data_home_{false};
  double auto_home_min_fraction_ = 0.5;
  std::atomic<bool> migrate_on_realloc_{true};
  /// Last per-node targets applied (pump-thread only); migration fires only
  /// when a kSetNodeThreads command actually *changes* them, so a policy
  /// that re-asserts the same allocation every tick never churns data.
  std::vector<std::uint32_t> last_node_targets_;
  std::atomic<std::uint64_t> commands_applied_{0};
  std::atomic<std::uint64_t> last_seq_{0};
  /// Enactment tracking (pump-thread only): the newest thread-target epoch
  /// applied to the runtime and its total-thread target. The epoch is
  /// "enacted" once the runtime's running thread count is at or under the
  /// target — growth enacts immediately, a shrink only once the surplus
  /// workers have genuinely parked.
  std::uint64_t pending_epoch_ = 0;
  std::uint32_t pending_target_ = kUnconstrained;
  /// Issue stamp of the pending epoch (Command::issued_ns, or our receipt
  /// time when the sender did not stamp); consumed into the runtime's
  /// enactment-lag histogram when the epoch is promoted to enacted.
  std::uint64_t pending_issue_ns_ = 0;
  std::uint64_t enacted_epoch_ = 0;
  std::uint32_t enacted_target_ = kUnconstrained;
  /// Mirrors of the enacted pair for cross-thread accessors.
  std::atomic<std::uint64_t> enacted_epoch_pub_{0};
  std::atomic<std::uint32_t> enacted_target_pub_{kUnconstrained};
  std::uint64_t telemetry_seq_ = 0;
  std::atomic<bool> running_{false};
  std::thread pump_thread_;
};

}  // namespace numashare::agent
