#include "agent/consensus.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace numashare::agent {

model::Allocation arbitrate(const topo::Machine& machine,
                            const std::vector<Proposal>& proposals) {
  NS_REQUIRE(!proposals.empty(), "consensus needs at least one proposal");
  const auto apps = static_cast<std::uint32_t>(proposals.size());
  for (std::uint32_t a = 0; a < apps; ++a) {
    NS_REQUIRE(proposals[a].app == a, "proposals must be dense and ordered by app");
    NS_REQUIRE(proposals[a].desired_per_node.size() == machine.node_count(),
               "proposal must name every node");
  }

  model::Allocation allocation(apps, machine.node_count());
  std::vector<std::uint32_t> free_cores(machine.node_count());
  for (topo::NodeId n = 0; n < machine.node_count(); ++n) {
    free_cores[n] = machine.cores_in_node(n);
  }
  std::vector<std::vector<std::uint32_t>> wanted(apps);
  for (std::uint32_t a = 0; a < apps; ++a) wanted[a] = proposals[a].desired_per_node;

  // Spread the apps' starting nodes: with apps <= nodes every app begins the
  // scan at a different node (the anti-"everyone picks node 0" rule).
  const std::uint32_t stride =
      std::max(1u, machine.node_count() / std::max(1u, std::min(apps, machine.node_count())));

  bool granted_any = true;
  while (granted_any) {
    granted_any = false;
    for (std::uint32_t a = 0; a < apps; ++a) {
      const topo::NodeId start = (a * stride) % machine.node_count();
      for (std::uint32_t k = 0; k < machine.node_count(); ++k) {
        const topo::NodeId n = (start + k) % machine.node_count();
        if (wanted[a][n] == 0 || free_cores[n] == 0) continue;
        allocation.set_threads(a, n, allocation.threads(a, n) + 1);
        --wanted[a][n];
        --free_cores[n];
        granted_any = true;
        break;  // one thread per app per round
      }
    }
  }
  NS_ASSERT(allocation.validate(machine));
  return allocation;
}

Proposal fair_proposal(const topo::Machine& machine, std::uint32_t app,
                       std::uint32_t participants) {
  NS_REQUIRE(participants > 0, "need at least one participant");
  Proposal p;
  p.app = app;
  p.desired_per_node.resize(machine.node_count());
  for (topo::NodeId n = 0; n < machine.node_count(); ++n) {
    p.desired_per_node[n] = machine.cores_in_node(n) / participants;
  }
  return p;
}

}  // namespace numashare::agent
