#include "agent/consensus.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace numashare::agent {

model::Allocation arbitrate(const topo::Machine& machine,
                            const std::vector<Proposal>& proposals) {
  NS_REQUIRE(!proposals.empty(), "consensus needs at least one proposal");
  const auto apps = static_cast<std::uint32_t>(proposals.size());
  for (std::uint32_t a = 0; a < apps; ++a) {
    NS_REQUIRE(proposals[a].app == a, "proposals must be dense and ordered by app");
    NS_REQUIRE(proposals[a].desired_per_node.size() == machine.node_count(),
               "proposal must name every node");
  }

  model::Allocation allocation(apps, machine.node_count());
  std::vector<std::uint32_t> free_cores(machine.node_count());
  for (topo::NodeId n = 0; n < machine.node_count(); ++n) {
    free_cores[n] = machine.cores_in_node(n);
  }
  std::vector<std::vector<std::uint32_t>> wanted(apps);
  for (std::uint32_t a = 0; a < apps; ++a) wanted[a] = proposals[a].desired_per_node;

  // Spread the apps' starting nodes: with apps <= nodes every app begins the
  // scan at a different node (the anti-"everyone picks node 0" rule).
  const std::uint32_t stride =
      std::max(1u, machine.node_count() / std::max(1u, std::min(apps, machine.node_count())));

  bool granted_any = true;
  while (granted_any) {
    granted_any = false;
    for (std::uint32_t a = 0; a < apps; ++a) {
      const topo::NodeId start = (a * stride) % machine.node_count();
      for (std::uint32_t k = 0; k < machine.node_count(); ++k) {
        const topo::NodeId n = (start + k) % machine.node_count();
        if (wanted[a][n] == 0 || free_cores[n] == 0) continue;
        allocation.set_threads(a, n, allocation.threads(a, n) + 1);
        --wanted[a][n];
        --free_cores[n];
        granted_any = true;
        break;  // one thread per app per round
      }
    }
  }
  NS_ASSERT(allocation.validate(machine));
  return allocation;
}

Proposal fair_proposal(const topo::Machine& machine, std::uint32_t app,
                       std::uint32_t participants) {
  NS_REQUIRE(participants > 0, "need at least one participant");
  Proposal p;
  p.app = app;
  p.desired_per_node.resize(machine.node_count());
  for (topo::NodeId n = 0; n < machine.node_count(); ++n) {
    p.desired_per_node[n] = machine.cores_in_node(n) / participants;
  }
  return p;
}

std::vector<std::uint32_t> SlotAllocation::threads_for(std::uint32_t slot) const {
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i] != slot) continue;
    std::vector<std::uint32_t> out(allocation.node_count());
    for (topo::NodeId n = 0; n < allocation.node_count(); ++n) {
      out[n] = allocation.threads(static_cast<model::AppId>(i), n);
    }
    return out;
  }
  return {};
}

SlotAllocation arbitrate_slots(const topo::Machine& machine,
                               std::vector<SlotProposal> proposals) {
  NS_REQUIRE(!proposals.empty(), "consensus needs at least one proposal");
  // Canonicalize: ascending slot order, then densify. Every survivor sorts
  // the same *set* into the same sequence, so the gather order (which
  // differs per survivor — each scans from its own position at its own
  // time) cannot influence the outcome.
  std::sort(proposals.begin(), proposals.end(),
            [](const SlotProposal& a, const SlotProposal& b) { return a.slot < b.slot; });
  for (std::size_t i = 1; i < proposals.size(); ++i) {
    NS_REQUIRE(proposals[i].slot != proposals[i - 1].slot, "duplicate slot proposal");
  }
  SlotAllocation out;
  out.slots.reserve(proposals.size());
  std::vector<Proposal> dense(proposals.size());
  for (std::size_t i = 0; i < proposals.size(); ++i) {
    out.slots.push_back(proposals[i].slot);
    dense[i].app = static_cast<std::uint32_t>(i);
    dense[i].desired_per_node = std::move(proposals[i].desired_per_node);
  }
  out.allocation = arbitrate(machine, dense);
  return out;
}

std::vector<std::uint32_t> conservative_desired(const topo::Machine& machine,
                                                std::uint32_t participants,
                                                const std::vector<std::uint32_t>& last_granted) {
  const auto fair = fair_proposal(machine, 0, std::max(1u, participants)).desired_per_node;
  std::vector<std::uint32_t> out(machine.node_count());
  for (topo::NodeId n = 0; n < machine.node_count(); ++n) {
    // At least one thread somewhere is always sought (node 0 as the anchor
    // when the fair share rounds to zero); the last-granted clamp still
    // applies so a capped app cannot grow through a daemon crash.
    std::uint32_t want = fair[n];
    if (n == 0 && want == 0) want = 1;
    if (n < last_granted.size()) want = std::min(want, last_granted[n]);
    out[n] = want;
  }
  return out;
}

}  // namespace numashare::agent
