// Decentralized core-allocation consensus — the paper's agent-free variant:
// "it would also be possible to have the different runtime systems
// cooperatively come to an agreement."
//
// Every participant runs arbitrate() over the same set of proposals and, the
// function being deterministic, lands on the identical allocation with no
// coordinator. The grant order rotates each participant's starting node by
// its own index, which is exactly the symmetry-breaking the paper warns is
// needed: "we would not want all runtime systems to decide that … they will
// all use node 0."
#pragma once

#include <cstdint>
#include <vector>

#include "core/allocation.hpp"
#include "topology/machine.hpp"

namespace numashare::agent {

struct Proposal {
  std::uint32_t app = 0;  // participant index; must be dense and unique
  /// Threads the app would like on each node (its ideal placement).
  std::vector<std::uint32_t> desired_per_node;
};

/// Deterministically reconcile proposals into a no-oversubscription
/// allocation:
///  1. grants proceed round-robin over apps, one thread per turn;
///  2. app `a` tries nodes starting at (a * stride) % node_count, where
///     stride spreads the apps' preferred starting nodes apart;
///  3. a turn grants the first node that still has a free core *and* where
///     the app still wants a thread; an app with nothing left to want (or no
///     feasible node) passes; arbitration ends when every app passes.
model::Allocation arbitrate(const topo::Machine& machine,
                            const std::vector<Proposal>& proposals);

/// The fair-share proposal an app with no better information submits:
/// cores_in_node / participants on every node.
Proposal fair_proposal(const topo::Machine& machine, std::uint32_t app,
                       std::uint32_t participants);

/// A proposal keyed by a registry slot index instead of a dense app index —
/// the form degraded-mode survivors exchange through the orphaned registry
/// segment, where membership is a sparse set of surviving slots.
struct SlotProposal {
  std::uint32_t slot = 0;  ///< registry slot; must be unique within a set
  std::vector<std::uint32_t> desired_per_node;
};

/// arbitrate() over slot-keyed proposals. The result row for each slot is
/// independent of the *order* proposals were gathered in: the set is sorted
/// by slot and densified before arbitration, so every survivor that snapshots
/// the same proposal set computes the bitwise-identical allocation — the
/// whole point of arbiter-free degraded mode.
struct SlotAllocation {
  std::vector<std::uint32_t> slots;  ///< ascending; row i of allocation = slots[i]
  model::Allocation allocation;
  /// Per-node threads granted to `slot`; empty when the slot proposed
  /// nothing in this round.
  std::vector<std::uint32_t> threads_for(std::uint32_t slot) const;
};
SlotAllocation arbitrate_slots(const topo::Machine& machine,
                               std::vector<SlotProposal> proposals);

/// The conservative degraded-mode proposal: the fair share, additionally
/// clamped elementwise to `last_granted` (per-node threads the dead daemon
/// last granted this app) when that is known. Survivors arbitrating only
/// such proposals can never oversubscribe beyond the last daemon-sanctioned
/// state, no matter how membership churns.
std::vector<std::uint32_t> conservative_desired(const topo::Machine& machine,
                                                std::uint32_t participants,
                                                const std::vector<std::uint32_t>& last_granted);

}  // namespace numashare::agent
