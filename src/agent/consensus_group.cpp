#include "agent/consensus_group.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace numashare::agent {

ConsensusGroup::ConsensusGroup(const topo::Machine& machine) : machine_(machine) {}

std::uint32_t ConsensusGroup::join(rt::Runtime& runtime,
                                   std::vector<std::uint32_t> desired_per_node) {
  NS_REQUIRE(desired_per_node.size() == machine_.node_count(),
             "proposal must name every node");
  const auto id = static_cast<std::uint32_t>(members_.size());
  members_.push_back({&runtime});
  Proposal proposal;
  proposal.app = id;
  proposal.desired_per_node = std::move(desired_per_node);
  proposals_.push_back(std::move(proposal));
  return id;
}

std::uint32_t ConsensusGroup::join_with_ai(rt::Runtime& runtime, ArithmeticIntensity ai) {
  NS_REQUIRE(ai > 0.0, "arithmetic intensity must be positive");
  // The app's self-interested ideal: enough threads per node that its
  // aggregate demand meets the node's bandwidth, but no more (extra threads
  // of a memory-bound code only split the same bytes); compute-bound codes
  // (demand below a fair share at saturation) ask for everything.
  std::vector<std::uint32_t> desired(machine_.node_count());
  for (topo::NodeId n = 0; n < machine_.node_count(); ++n) {
    const auto cores = machine_.cores_in_node(n);
    const GFlops peak = machine_.core(machine_.node(n).cores.front()).peak_gflops;
    const GBps per_thread = demand_gbps(peak, ai);
    const GBps node_bw = machine_.node(n).memory_bandwidth;
    const double saturating = per_thread > 0.0 ? node_bw / per_thread : cores;
    desired[n] = std::min<std::uint32_t>(
        cores, static_cast<std::uint32_t>(std::ceil(std::max(1.0, saturating))));
  }
  return join(runtime, std::move(desired));
}

void ConsensusGroup::update_proposal(std::uint32_t participant,
                                     std::vector<std::uint32_t> desired_per_node) {
  NS_REQUIRE(participant < proposals_.size(), "unknown participant");
  NS_REQUIRE(desired_per_node.size() == machine_.node_count(),
             "proposal must name every node");
  proposals_[participant].desired_per_node = std::move(desired_per_node);
}

model::Allocation ConsensusGroup::agree() const {
  NS_REQUIRE(!members_.empty(), "no participants");
  return arbitrate(machine_, proposals_);
}

model::Allocation ConsensusGroup::apply() {
  const auto allocation = agree();
  for (std::uint32_t member = 0; member < members_.size(); ++member) {
    std::vector<std::uint32_t> targets(machine_.node_count());
    for (topo::NodeId n = 0; n < machine_.node_count(); ++n) {
      targets[n] = allocation.threads(member, n);
    }
    members_[member].runtime->set_node_thread_targets(targets);
  }
  return allocation;
}

}  // namespace numashare::agent
