// Agentless coordination: live runtimes agree on a partition without any
// central process (paper §II: "it would also be possible to have the
// different runtime systems cooperatively come to an agreement").
//
// Each participant contributes a Proposal (its ideal per-node thread
// counts — typically derived from its own arithmetic intensity via the
// model). Every participant independently evaluates the same deterministic
// arbitrate() function over the full proposal set and applies its own row
// with option-3 controls; no messages beyond sharing the proposals, no
// arbiter, and the rotation rule breaks the all-pick-node-0 symmetry the
// paper warns about.
//
// ConsensusGroup is the in-process embodiment: it holds the shared proposal
// board and lets each runtime (re)apply the agreement. In a multi-process
// deployment the board would live in shared memory; the arbitration logic
// is already pure.
#pragma once

#include <cstdint>
#include <vector>

#include "agent/consensus.hpp"
#include "core/app_spec.hpp"
#include "runtime/runtime.hpp"

namespace numashare::agent {

class ConsensusGroup {
 public:
  explicit ConsensusGroup(const topo::Machine& machine);

  /// Join with an explicit desired allocation. Returns the participant id.
  std::uint32_t join(rt::Runtime& runtime, std::vector<std::uint32_t> desired_per_node);

  /// Join with a model-derived proposal: the app states its arithmetic
  /// intensity; its ideal is as many threads as fit its bandwidth appetite
  /// (memory-bound apps ask for few threads per node, compute-bound for
  /// many), computed from the machine's roofline parameters.
  std::uint32_t join_with_ai(rt::Runtime& runtime, ArithmeticIntensity ai);

  /// Re-state a participant's desire (e.g. on a phase change).
  void update_proposal(std::uint32_t participant, std::vector<std::uint32_t> desired_per_node);

  std::uint32_t participants() const { return static_cast<std::uint32_t>(members_.size()); }

  /// The agreement every participant would compute.
  model::Allocation agree() const;

  /// Compute the agreement and have every participant apply its own row
  /// (option-3 per-node targets). Returns the applied allocation.
  model::Allocation apply();

 private:
  struct Member {
    rt::Runtime* runtime = nullptr;
  };

  const topo::Machine& machine_;
  std::vector<Member> members_;
  std::vector<Proposal> proposals_;
};

}  // namespace numashare::agent
