#include "agent/os_load.hpp"

#include <fstream>
#include <sstream>

namespace numashare::agent {

OsLoadSampler::OsLoadSampler(std::string stat_path) : stat_path_(std::move(stat_path)) {}

std::optional<OsLoadSampler::Counters> OsLoadSampler::read() const {
  std::ifstream in(stat_path_);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  std::istringstream fields(line);
  std::string cpu;
  fields >> cpu;
  if (cpu != "cpu") return std::nullopt;
  // user nice system idle iowait irq softirq steal [guest guest_nice]
  std::uint64_t value = 0;
  Counters counters;
  int index = 0;
  while (fields >> value && index < 8) {
    counters.total += value;
    if (index == 3 || index == 4) counters.idle += value;  // idle + iowait
    ++index;
  }
  if (index < 4) return std::nullopt;
  return counters;
}

std::optional<double> OsLoadSampler::sample() {
  const auto current = read();
  if (!current) return std::nullopt;
  if (!have_prev_) {
    prev_ = *current;
    have_prev_ = true;
    return std::nullopt;
  }
  // /proc/stat counters can regress on some kernels (CPU hotplug, vCPU
  // steal-time accounting fixes); a plain subtraction would wrap to a huge
  // unsigned delta and report ~100% busy. Re-baseline on regression and
  // report no sample — the next delta is taken from the new floor.
  if (current->total < prev_.total || current->idle < prev_.idle) {
    prev_ = *current;
    return std::nullopt;
  }
  const auto total_delta = current->total - prev_.total;
  const auto idle_delta = current->idle - prev_.idle;
  prev_ = *current;
  if (total_delta == 0) return std::nullopt;
  const double busy =
      1.0 - static_cast<double>(idle_delta) / static_cast<double>(total_delta);
  return busy < 0.0 ? 0.0 : (busy > 1.0 ? 1.0 : busy);
}

}  // namespace numashare::agent
