#include "agent/policies.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "core/app_spec.hpp"
#include "core/placement.hpp"

namespace numashare::agent {

std::vector<Directive> OversubscribedPolicy::decide(const topo::Machine&,
                                                    const std::vector<AppView>& views) {
  std::vector<Directive> out(views.size(), Directive::none());
  if (!cleared_) {
    for (auto& d : out) d = Directive::clear();
    cleared_ = true;
  }
  return out;
}

std::vector<Directive> FairSharePolicy::decide(const topo::Machine& machine,
                                               const std::vector<AppView>& views) {
  std::vector<Directive> out(views.size(), Directive::none());
  if (views.empty()) return out;
  if (issued_ && last_app_count_ == views.size()) return out;

  const auto apps = static_cast<std::uint32_t>(views.size());
  // Round-robin waterfill honouring per-app caps (AppView::thread_cap, set by
  // the compliance watchdog). With everyone uncapped this yields exactly the
  // classic fair split — core_count/apps with the remainder to the first
  // apps — while a capped app's unreachable share flows to its peers instead
  // of idling.
  std::vector<std::uint32_t> totals(apps, 0);
  const auto waterfill = [&](std::uint32_t budget, auto&& grant) {
    while (budget > 0) {
      bool granted = false;
      for (std::uint32_t a = 0; a < apps && budget > 0; ++a) {
        if (totals[a] >= views[a].thread_cap) continue;
        grant(a);
        ++totals[a];
        --budget;
        granted = true;
      }
      if (!granted) break;  // every app capped out; leftover cores idle
    }
  };
  if (flavor_ == Flavor::kTotalThreads) {
    waterfill(machine.core_count(), [](std::uint32_t) {});
    for (std::uint32_t a = 0; a < apps; ++a) {
      out[a] = Directive::total(totals[a]);
    }
  } else {
    std::vector<std::vector<std::uint32_t>> per_node(apps,
                                                     std::vector<std::uint32_t>(machine.node_count()));
    for (topo::NodeId n = 0; n < machine.node_count(); ++n) {
      waterfill(machine.cores_in_node(n), [&](std::uint32_t a) { ++per_node[a][n]; });
    }
    for (std::uint32_t a = 0; a < apps; ++a) {
      out[a] = Directive::per_node(std::move(per_node[a]));
    }
  }
  issued_ = true;
  last_app_count_ = views.size();
  return out;
}

std::vector<Directive> StaticPartitionPolicy::decide(const topo::Machine& machine,
                                                     const std::vector<AppView>& views) {
  NS_REQUIRE(targets_.size() == views.size(), "one target row per app");
  std::vector<Directive> out(views.size(), Directive::none());
  if (issued_) return out;
  for (std::size_t a = 0; a < views.size(); ++a) {
    NS_REQUIRE(targets_[a].size() == machine.node_count(), "one target per node");
    out[a] = Directive::per_node(targets_[a]);
  }
  issued_ = true;
  return out;
}

std::vector<Directive> ProducerConsumerPolicy::decide(const topo::Machine& machine,
                                                      const std::vector<AppView>& views) {
  NS_REQUIRE(options_.producer < views.size() && options_.consumer < views.size(),
             "producer/consumer indices out of range");
  NS_REQUIRE(options_.producer != options_.consumer, "producer must differ from consumer");
  std::vector<Directive> out(views.size(), Directive::none());

  const auto& producer = views[options_.producer];
  const auto& consumer = views[options_.consumer];
  if (!producer.has_telemetry || !consumer.has_telemetry) return out;

  const std::uint32_t cores = machine.core_count();
  if (!initialized_) {
    producer_threads_ = cores / 2;
    consumer_threads_ = cores - producer_threads_;
    initialized_ = true;
    out[options_.producer] = Directive::total(producer_threads_);
    out[options_.consumer] = Directive::total(consumer_threads_);
    return out;
  }

  // The paper's [10] controller: keep the producer "only ahead by a small
  // number of iterations". Shift one thread per tick toward whichever side
  // is falling out of the band — gentle moves favour stability (§V).
  const std::uint64_t produced = producer.latest.progress;
  const std::uint64_t consumed = consumer.latest.progress;
  const std::uint64_t lead = produced > consumed ? produced - consumed : 0;

  std::int32_t shift = 0;  // positive = toward the consumer
  if (lead > options_.max_lead) shift = 1;
  else if (lead < options_.min_lead) shift = -1;
  if (shift == 0) return out;

  const std::uint32_t min_threads = options_.min_threads;
  if (shift > 0 && producer_threads_ > min_threads) {
    --producer_threads_;
    ++consumer_threads_;
  } else if (shift < 0 && consumer_threads_ > min_threads) {
    ++producer_threads_;
    --consumer_threads_;
  } else {
    return out;
  }
  NS_LOG_DEBUG("agent", "producer-consumer lead={} -> producer={} consumer={}", lead,
               producer_threads_, consumer_threads_);
  out[options_.producer] = Directive::total(producer_threads_);
  out[options_.consumer] = Directive::total(consumer_threads_);
  return out;
}

void ModelGuidedPolicy::on_foreign_load(const model::ForeignLoad& load) {
  foreign_ = load;
  // Drift gate vs the load priced into the *last decision* (not the last
  // report): slow creep eventually crosses the threshold and re-searches.
  const auto at = [](const std::vector<double>& v, std::size_t i) {
    return i < v.size() ? v[i] : 0.0;
  };
  const std::size_t nodes = std::max(
      std::max(foreign_.busy_cores.size(), decided_foreign_.busy_cores.size()),
      std::max(foreign_.bandwidth.size(), decided_foreign_.bandwidth.size()));
  for (std::size_t n = 0; n < nodes; ++n) {
    if (std::abs(at(foreign_.busy_cores, n) - at(decided_foreign_.busy_cores, n)) >
            options_.foreign_core_drift ||
        std::abs(at(foreign_.bandwidth, n) - at(decided_foreign_.bandwidth, n)) >
            options_.foreign_bw_drift) {
      foreign_dirty_ = true;
      return;
    }
  }
}

std::vector<Directive> ModelGuidedPolicy::decide(const topo::Machine& machine,
                                                 const std::vector<AppView>& views) {
  std::vector<Directive> out(views.size(), Directive::none());
  // Zero apps is a legal state under dynamic membership (daemon with no
  // clients yet); the optimizer has nothing to do.
  if (views.empty()) return out;

  std::vector<double> ai(views.size(), 0.0);
  for (std::size_t a = 0; a < views.size(); ++a) {
    if (!views[a].has_telemetry || views[a].latest.ai_estimate <= 0.0) {
      return out;  // wait until every app has advertised an AI
    }
    ai[a] = views[a].latest.ai_estimate;
  }

  if (!last_ai_.empty() && last_ai_.size() == ai.size() && !foreign_dirty_) {
    bool drifted = false;
    for (std::size_t a = 0; a < ai.size(); ++a) {
      if (std::abs(ai[a] - last_ai_[a]) > options_.ai_drift_threshold * last_ai_[a]) {
        drifted = true;
        break;
      }
    }
    if (!drifted) return out;
  }

  std::vector<model::AppSpec> specs;
  specs.reserve(views.size());
  std::vector<std::uint32_t> homes(views.size(), kMaxNodes);
  for (std::size_t a = 0; a < views.size(); ++a) {
    const auto home = views[a].latest.data_home_node;
    if (home < machine.node_count()) {
      specs.push_back(model::AppSpec::numa_bad(views[a].name, ai[a], home));
      homes[a] = home;
    } else {
      specs.push_back(model::AppSpec::numa_perfect(views[a].name, ai[a]));
    }
  }

  // Administrative caps from the compliance watchdog. When any client is
  // capped the data-placement advisor is bypassed: a quarantined client is a
  // transient state, not worth migrating data over, and the capped
  // exhaustive search already re-grants the reclaimed cores.
  std::vector<std::uint32_t> caps;
  for (const auto& view : views) {
    if (view.thread_cap != 0xffffffffu) {
      caps.assign(views.size(), 0xffffffffu);
      for (std::size_t a = 0; a < views.size(); ++a) caps[a] = views[a].thread_cap;
      break;
    }
  }

  // A tick is "non-structural" when the problem only moved a little: same
  // membership (enforced by on_membership_change), same advertised homes, no
  // administrative caps or placement co-optimization, and every AI within
  // the structural-drift band of the last *full* search. Those ticks refine
  // the previous allocation with a seeded hill-climb instead of re-running
  // the full pruned enumeration.
  // A foreign-load change is always structural: the whole point of pricing
  // it is to potentially vacate a node, which a seeded local climb from the
  // pre-foreign allocation may not find.
  bool refine = options_.incremental_refine && last_allocation_.has_value() &&
                caps.empty() && !options_.advise_data_placement && !foreign_dirty_ &&
                last_homes_ == homes && last_full_ai_.size() == ai.size() &&
                last_allocation_->app_count() == views.size() &&
                last_allocation_->node_count() == machine.node_count();
  if (refine) {
    for (std::size_t a = 0; a < ai.size(); ++a) {
      if (std::abs(ai[a] - last_full_ai_[a]) >
          options_.structural_ai_drift * last_full_ai_[a]) {
        refine = false;
        break;
      }
    }
  }

  model::Allocation allocation;
  double predicted = 0.0;
  std::vector<std::uint32_t> suggested_home(views.size(), kMaxNodes);
  if (refine) {
    model::RefineOptions refine_options;
    refine_options.objective = options_.objective;
    refine_options.churn_penalty = options_.churn_penalty;
    refine_options.min_threads_per_app = options_.min_threads_per_app;
    refine_options.foreign = foreign_;
    auto result = model::refine_search(machine, specs, *last_allocation_, refine_options);
    allocation = result.allocation;
    predicted = result.solution.total_gflops;
    last_search_kind_ = SearchKind::kRefine;
  } else if (options_.advise_data_placement && caps.empty() && !foreign_.any()) {
    auto joint = model::advise_joint(machine, specs, options_.objective,
                                     options_.min_threads_per_app);
    allocation = joint.allocation;
    predicted = joint.solution.total_gflops;
    for (std::size_t a = 0; a < views.size(); ++a) {
      if (joint.apps[a].placement == model::Placement::kNumaBad &&
          joint.apps[a].home_node != specs[a].home_node) {
        suggested_home[a] = joint.apps[a].home_node;
      }
    }
    last_full_ai_ = ai;
    last_search_kind_ = SearchKind::kFull;
  } else {
    auto result = model::exhaustive_search(machine, specs, options_.objective,
                                           /*require_full=*/true,
                                           options_.min_threads_per_app, caps, foreign_);
    allocation = result.allocation;
    predicted = result.solution.total_gflops;
    if (foreign_.any() && caps.empty()) {
      // Polish: the uniform candidate family cannot express "vacate one
      // node" (every app runs the same count on every node it uses), which
      // is precisely the right answer when a foreign hog occupies a node.
      // A hill-climb seeded from the full-search winner can drop/shift
      // threads off the hogged node; keep it only when it actually wins.
      model::RefineOptions polish;
      polish.objective = options_.objective;
      polish.min_threads_per_app = options_.min_threads_per_app;
      polish.foreign = foreign_;
      auto polished = model::refine_search(machine, specs, allocation, polish);
      if (polished.objective_value > result.objective_value) {
        allocation = polished.allocation;
        predicted = polished.solution.total_gflops;
      }
    }
    last_full_ai_ = ai;
    last_search_kind_ = SearchKind::kFull;
  }
  last_ai_ = ai;
  last_homes_ = homes;
  last_allocation_ = allocation;
  decided_foreign_ = foreign_;
  foreign_dirty_ = false;
  NS_LOG_INFO("agent", "model-guided allocation: {} ({} GFLOPS predicted)",
              allocation.to_string(), predicted);
  for (std::size_t a = 0; a < views.size(); ++a) {
    std::vector<std::uint32_t> per_node(machine.node_count());
    for (topo::NodeId n = 0; n < machine.node_count(); ++n) {
      per_node[n] = allocation.threads(static_cast<model::AppId>(a), n);
    }
    out[a] = Directive::per_node(std::move(per_node));
    out[a].suggested_data_home = suggested_home[a];
  }
  return out;
}

}  // namespace numashare::agent
