// The concrete allocation policies the paper discusses.
//
//  * OversubscribedPolicy — the baseline: no control at all, every app runs
//    as many threads as there are cores and the OS sorts it out. This is the
//    configuration the paper's §II argues creates "significant
//    over-subscription".
//  * FairSharePolicy — "a simple core allocation strategy would be to give
//    each application a fair share of the cores, so that the total number of
//    worker threads across all applications is equal to the total number of
//    available CPU cores." Option-1 (total counts) or option-3 (per-node)
//    flavours.
//  * StaticPartitionPolicy — fixed per-node targets, never revisited.
//  * ProducerConsumerPolicy — the paper's [10] experiment: keep the producer
//    "only ahead by a small number of iterations" by shifting threads
//    between the two applications based on their progress counters.
//  * ModelGuidedPolicy — the NUMA-aware brain of §III: feed per-app
//    arithmetic intensities (self-advertised in telemetry) to the roofline
//    model's optimizer and issue per-node thread targets.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "agent/policy.hpp"
#include "core/optimizer.hpp"

namespace numashare::agent {

class OversubscribedPolicy final : public Policy {
 public:
  const char* name() const override { return "oversubscribed"; }
  std::vector<Directive> decide(const topo::Machine&,
                                const std::vector<AppView>& views) override;

 private:
  bool cleared_ = false;
};

class FairSharePolicy final : public Policy {
 public:
  enum class Flavor { kTotalThreads, kPerNode };
  explicit FairSharePolicy(Flavor flavor = Flavor::kPerNode) : flavor_(flavor) {}

  const char* name() const override { return "fair-share"; }
  std::vector<Directive> decide(const topo::Machine& machine,
                                const std::vector<AppView>& views) override;
  void on_membership_change() override { issued_ = false; }

 private:
  Flavor flavor_;
  bool issued_ = false;
  std::size_t last_app_count_ = 0;
};

class StaticPartitionPolicy final : public Policy {
 public:
  /// targets[app][node]
  explicit StaticPartitionPolicy(std::vector<std::vector<std::uint32_t>> targets)
      : targets_(std::move(targets)) {}

  const char* name() const override { return "static-partition"; }
  std::vector<Directive> decide(const topo::Machine& machine,
                                const std::vector<AppView>& views) override;

 private:
  std::vector<std::vector<std::uint32_t>> targets_;
  bool issued_ = false;
};

struct ProducerConsumerOptions {
  std::size_t producer = 0;  // index into the agent's app list
  std::size_t consumer = 1;
  /// Keep producer progress ahead of consumer progress within this band.
  std::uint64_t min_lead = 2;
  std::uint64_t max_lead = 8;
  /// Each app always keeps at least this many threads.
  std::uint32_t min_threads = 1;
};

class ProducerConsumerPolicy final : public Policy {
 public:
  using Options = ProducerConsumerOptions;
  explicit ProducerConsumerPolicy(ProducerConsumerOptions options = {}) : options_(options) {}

  const char* name() const override { return "producer-consumer"; }
  std::vector<Directive> decide(const topo::Machine& machine,
                                const std::vector<AppView>& views) override;
  void on_membership_change() override { initialized_ = false; }

  std::uint32_t producer_threads() const { return producer_threads_; }

 private:
  ProducerConsumerOptions options_;
  bool initialized_ = false;
  std::uint32_t producer_threads_ = 0;
  std::uint32_t consumer_threads_ = 0;
};

struct ModelGuidedOptions {
  model::Objective objective = model::Objective::kTotalGflops;
  std::uint32_t min_threads_per_app = 1;
  /// Re-run the optimizer when an AI estimate drifts by this fraction.
  double ai_drift_threshold = 0.10;
  /// Also co-optimize data placement (core/placement.hpp) and attach
  /// kSuggestDataHome suggestions for NUMA-bad apps whose advertised home
  /// differs from the recommended one.
  bool advise_data_placement = false;
  /// Incremental re-optimization: on a non-structural tick (same membership
  /// and advertised data homes, no administrative caps, no placement
  /// co-optimization, and every AI within structural_ai_drift of the last
  /// full search) seed model::refine_search from the previous allocation
  /// instead of re-running the full pruned search. Off by default — the full
  /// search is the reference behavior; large machines turn this on to keep
  /// the steady-state tick near the cost of a single hill-climb.
  bool incremental_refine = false;
  /// Relative AI drift (vs the AI vector of the last *full* search) beyond
  /// which a tick counts as structural and falls back to the full search.
  double structural_ai_drift = 0.5;
  /// Churn penalty handed to refine_search (relative to the seed objective):
  /// biases incremental moves toward staying near the enacted allocation.
  double churn_penalty = 0.0;
  /// Foreign-load drift gates: re-optimize when any node's foreign busy
  /// cores move by more than this many cores, or its foreign bandwidth by
  /// more than this many GB/s, since the load priced into the last decision.
  /// Small wobble below both thresholds is absorbed without a re-search.
  double foreign_core_drift = 0.25;
  double foreign_bw_drift = 2.0;
};

class ModelGuidedPolicy final : public Policy {
 public:
  using Options = ModelGuidedOptions;
  /// Which engine produced the last issued directives (observability for
  /// tests and status tooling).
  enum class SearchKind { kNone, kFull, kRefine };

  explicit ModelGuidedPolicy(ModelGuidedOptions options = {}) : options_(options) {}

  const char* name() const override { return "model-guided"; }
  std::vector<Directive> decide(const topo::Machine& machine,
                                const std::vector<AppView>& views) override;
  void on_membership_change() override {
    last_ai_.clear();
    last_full_ai_.clear();
    last_homes_.clear();
    last_allocation_.reset();
    last_search_kind_ = SearchKind::kNone;
  }
  /// Price opaque background consumers into every subsequent search. A
  /// change beyond the foreign drift gates forces a full re-search on the
  /// next decide() even when app AIs are steady.
  void on_foreign_load(const model::ForeignLoad& load) override;

  /// The allocation behind the last issued directives (empty before then).
  const std::optional<model::Allocation>& last_allocation() const { return last_allocation_; }
  SearchKind last_search_kind() const { return last_search_kind_; }

 private:
  ModelGuidedOptions options_;
  std::vector<double> last_ai_;
  std::vector<double> last_full_ai_;          // AI vector at the last full search
  std::vector<std::uint32_t> last_homes_;     // advertised homes behind the last decision
  std::optional<model::Allocation> last_allocation_;
  SearchKind last_search_kind_ = SearchKind::kNone;
  model::ForeignLoad foreign_;          // latest reported load
  model::ForeignLoad decided_foreign_;  // load priced into the last decision
  bool foreign_dirty_ = false;          // drifted past the gates since then
};

}  // namespace numashare::agent
