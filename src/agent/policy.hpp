// Policy interface: the decision brain the agent runs on each tick.
//
// A policy sees one AppView per managed application (latest telemetry plus
// smoothed rates) and answers with one Directive per application. Directives
// map one-to-one onto the paper's thread-blocking options.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "agent/protocol.hpp"
#include "core/roofline.hpp"
#include "topology/machine.hpp"

namespace numashare::agent {

struct AppView {
  std::string name;
  bool has_telemetry = false;
  Telemetry latest;
  /// EWMA rates, per second of agent time.
  double task_rate = 0.0;
  double progress_rate = 0.0;
  /// Telemetry samples the app failed to push because the ring was full
  /// (cumulative, from the channel's drop counter).
  std::uint64_t telemetry_dropped = 0;
  /// Agent-clock time (monotonic seconds) of the last step() that ingested
  /// fresh telemetry for this app; < 0 before the first sample. Lets
  /// policies and tools tell a quiet app from a chatty one without touching
  /// the channel.
  double last_update_s = -1.0;
  /// Compliance bookkeeping, mirrored by the agent each step: the newest
  /// thread-target epoch commanded to this app, the newest epoch the app has
  /// reported enacted, and the target it enacted (kUnconstrained = no active
  /// ceiling). commanded_epoch > enacted_epoch means the app has not yet
  /// proven compliance with the latest command.
  std::uint64_t commanded_epoch = 0;
  std::uint64_t enacted_epoch = 0;
  std::uint32_t enacted_target = kUnconstrained;
  /// Administrative thread cap imposed by the compliance watchdog
  /// (UINT32_MAX = uncapped). Policies must not grant more total threads
  /// than this; the agent clamps outgoing directives as a safety net.
  std::uint32_t thread_cap = 0xffffffffu;
};

struct Directive {
  enum class Kind : std::uint8_t { kNone, kTotalThreads, kNodeThreads, kClear };
  Kind kind = Kind::kNone;
  std::uint32_t total_threads = 0;
  std::vector<std::uint32_t> node_threads;
  /// Optional data-placement suggestion riding along with (or without) a
  /// thread directive; kMaxNodes = none. Sent as a kSuggestDataHome command.
  std::uint32_t suggested_data_home = kMaxNodes;

  static Directive none() { return {}; }
  static Directive clear() {
    Directive d;
    d.kind = Kind::kClear;
    return d;
  }
  static Directive total(std::uint32_t threads) {
    Directive d;
    d.kind = Kind::kTotalThreads;
    d.total_threads = threads;
    return d;
  }
  static Directive per_node(std::vector<std::uint32_t> threads) {
    Directive d;
    d.kind = Kind::kNodeThreads;
    d.node_threads = std::move(threads);
    return d;
  }

  bool operator==(const Directive& other) const = default;
};

class Policy {
 public:
  virtual ~Policy() = default;
  virtual const char* name() const = 0;
  /// One directive per app (same order as `views`); kNone = leave alone.
  virtual std::vector<Directive> decide(const topo::Machine& machine,
                                        const std::vector<AppView>& views) = 0;
  /// The agent's app set changed (join or leave). Stateful policies drop
  /// their issued/drift caches here so the next decide() re-partitions the
  /// machine for the new membership.
  virtual void on_membership_change() {}
  /// Latest estimate of non-participant (foreign) load, from the daemon's
  /// ForeignMonitor. Default: ignore — only model-aware policies can price
  /// opaque consumers. An empty load (any() == false) means "machine clean".
  virtual void on_foreign_load(const model::ForeignLoad& load) { (void)load; }
};

using PolicyPtr = std::unique_ptr<Policy>;

}  // namespace numashare::agent
