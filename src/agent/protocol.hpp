// The agent <-> runtime wire protocol (paper Figure 1).
//
// The agent "receives information about the execution from the runtimes
// (number of tasks executed, number of running threads, etc.) and it issues
// commands instructing the runtimes to use a specified number of threads."
//
// Both message types are trivially copyable PODs with fixed-size payloads so
// the very same structs could live in a shared-memory segment between real
// processes; the in-process build moves them through lock-free SPSC rings.
#pragma once

#include <cstdint>
#include <type_traits>

namespace numashare::agent {

inline constexpr std::uint32_t kMaxNodes = 16;
inline constexpr std::uint32_t kMaxCoreWords = 4;  // 256 cores

enum class CommandType : std::uint32_t {
  kSetTotalThreads = 1,  // option 1
  kBlockCores = 2,       // option 2
  kSetNodeThreads = 3,   // option 3
  kClearControls = 4,
  /// §III.A: "there should be a way to ... influence where the application
  /// stores its data". The agent *suggests*; the application decides whether
  /// and when to migrate (it alone knows its phase boundaries).
  kSuggestDataHome = 5,
};

struct Command {
  CommandType type = CommandType::kClearControls;
  std::uint32_t total_threads = 0;
  std::uint32_t node_count = 0;
  std::uint32_t node_threads[kMaxNodes] = {};
  std::uint64_t core_mask[kMaxCoreWords] = {};
  /// kSuggestDataHome payload (kMaxNodes = no suggestion).
  std::uint32_t suggested_home = kMaxNodes;
  /// Monotonic per-channel sequence; lets the runtime detect gaps.
  std::uint64_t seq = 0;
  /// Compliance epoch: monotonically increasing per app, stamped on every
  /// thread-target command (kSetTotalThreads / kSetNodeThreads /
  /// kBlockCores / kClearControls). The runtime echoes the newest epoch it
  /// has *fully enacted* (all surplus threads actually blocked) back in
  /// Telemetry::enacted_epoch, which is what lets the arbiter distinguish a
  /// slow-but-cooperating client from one that ignores commands. 0 on
  /// non-thread-target commands (kSuggestDataHome is advisory).
  std::uint64_t epoch = 0;
  /// Issue timestamp: obs::now_ns() (CLOCK_MONOTONIC ns — comparable across
  /// processes on one machine) at the moment the sender stamped the epoch.
  /// The runtime adapter measures issue -> enactment-ack against it, the
  /// command-enactment-lag histogram. 0 = sender did not stamp (the adapter
  /// then falls back to its own receipt time).
  std::uint64_t issued_ns = 0;
  /// Daemon incarnation that issued this command (registry header's
  /// arbiter_generation). A client that has observed a newer incarnation
  /// discards commands stamped with an older one — the fence that keeps a
  /// pre-crash grant from ever being enacted after failback. 0 = sender is
  /// not generation-aware (in-process agent); always accepted.
  std::uint64_t arbiter_generation = 0;
};
static_assert(std::is_trivially_copyable_v<Command>);

/// Telemetry::enacted_target when no thread-target command has constrained
/// the runtime (or the newest one lifted all controls): "uncontrolled".
inline constexpr std::uint32_t kUnconstrained = 0xffffffffu;

struct Telemetry {
  std::uint64_t seq = 0;
  double timestamp = 0.0;  // sender's monotonic seconds
  std::uint64_t tasks_executed = 0;
  std::uint64_t tasks_spawned = 0;
  /// Application-defined progress units (e.g. iterations).
  std::uint64_t progress = 0;
  std::uint32_t total_workers = 0;
  std::uint32_t running_threads = 0;
  std::uint32_t blocked_threads = 0;
  std::uint32_t node_count = 0;
  std::uint32_t running_per_node[kMaxNodes] = {};
  std::uint64_t ready_queue_depth = 0;
  std::uint64_t outstanding_tasks = 0;
  /// Cumulative application-accounted work and traffic (report_work).
  double gflop_done = 0.0;
  double gbytes_moved = 0.0;
  /// Arithmetic intensity estimate (FLOPs/byte): either app-declared or
  /// derived by the adapter from the work/traffic counters; 0 = unknown.
  /// Feeds the model-guided policy.
  double ai_estimate = 0.0;
  /// Optional NUMA-bad home node (kMaxNodes = "NUMA-perfect / unknown").
  std::uint32_t data_home_node = kMaxNodes;
  /// Command-compliance ack: the newest Command::epoch whose thread target
  /// the runtime has fully enacted (running threads at or under the target),
  /// and that target itself (kUnconstrained = no active constraint). 0 =
  /// nothing enacted yet. The daemon compares this against the epoch it
  /// last commanded and quarantines clients that stay behind past the
  /// enactment deadline.
  std::uint64_t enacted_epoch = 0;
  std::uint32_t enacted_target = kUnconstrained;
  /// Scheduler-latency watchdog report: commanded-online workers whose
  /// heartbeat is silent past the deadline — the OS is not scheduling them.
  /// Nonzero tells the daemon "this app is behind because it is *starved*,
  /// not because it ignores commands", and compliance escalation holds off.
  /// 0 when the watchdog is disabled or all workers are being scheduled.
  std::uint32_t stalled_workers = 0;
  /// Cumulative datablock migration traffic (reallocation-tick moves plus
  /// explicit move_to calls): how much the runtime has actually shifted data
  /// chasing the allocation. Lets the daemon weigh placement churn against
  /// the throughput it buys.
  std::uint64_t blocks_migrated = 0;
  std::uint64_t bytes_migrated = 0;
};
static_assert(std::is_trivially_copyable_v<Telemetry>);

}  // namespace numashare::agent
