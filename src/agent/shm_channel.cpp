#include "agent/shm_channel.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/format.hpp"
#include "inject/fault.hpp"

namespace numashare::agent {

namespace {
constexpr std::uint64_t kMagic = 0x6e756d6173686172ull;  // "numashar"
// v2: added cross-process drop counters after the rings.
// v3: Command carries a compliance epoch; Telemetry carries the enacted
//     epoch/target ack (message sizes changed).
// v4: Telemetry carries cumulative datablock migration counters
//     (blocks_migrated / bytes_migrated; message size changed).
// v5: Command carries the issuing daemon's arbiter_generation (failback
//     fencing; message size changed).
constexpr std::uint32_t kVersion = 5;
}  // namespace

struct ShmChannel::Layout {
  std::atomic<std::uint64_t> magic;
  std::uint32_t version;
  ShmRing<Command, kCommandSlots> commands;
  ShmRing<Telemetry, kTelemetrySlots> telemetry;
  std::atomic<std::uint64_t> commands_dropped;
  std::atomic<std::uint64_t> telemetry_dropped;
};

ShmChannel::ShmChannel(std::string name, Layout* layout, bool creator)
    : name_(std::move(name)), layout_(layout), creator_(creator) {}

std::unique_ptr<ShmChannel> ShmChannel::create(const std::string& name, std::string* error) {
  const auto fail = [&](const std::string& what) -> std::unique_ptr<ShmChannel> {
    if (error) *error = ns_format("{}: {}", what, std::strerror(errno));
    return nullptr;
  };
  const int fd = shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) return fail("shm_open(create)");
  if (ftruncate(fd, sizeof(Layout)) != 0) {
    close(fd);
    shm_unlink(name.c_str());
    return fail("ftruncate");
  }
  void* mapped = mmap(nullptr, sizeof(Layout), PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  close(fd);
  if (mapped == MAP_FAILED) {
    shm_unlink(name.c_str());
    return fail("mmap");
  }
  auto* layout = new (mapped) Layout;
  layout->version = kVersion;
  layout->commands.init();
  layout->telemetry.init();
  layout->commands_dropped.store(0, std::memory_order_relaxed);
  layout->telemetry_dropped.store(0, std::memory_order_relaxed);
  // Publish the magic last: an attacher seeing it can trust the rest.
  layout->magic.store(kMagic, std::memory_order_release);
  return std::unique_ptr<ShmChannel>(new ShmChannel(name, layout, /*creator=*/true));
}

std::unique_ptr<ShmChannel> ShmChannel::attach(const std::string& name, std::string* error) {
  const auto fail = [&](const std::string& what,
                        bool use_errno = true) -> std::unique_ptr<ShmChannel> {
    if (error) {
      *error = use_errno ? ns_format("{}: {}", what, std::strerror(errno)) : what;
    }
    return nullptr;
  };
  const int fd = shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) return fail("shm_open(attach)");
  struct stat st{};
  if (fstat(fd, &st) != 0 || static_cast<std::size_t>(st.st_size) < sizeof(Layout)) {
    close(fd);
    return fail("segment too small for protocol layout", false);
  }
  void* mapped = mmap(nullptr, sizeof(Layout), PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  close(fd);
  if (mapped == MAP_FAILED) return fail("mmap");
  auto* layout = static_cast<Layout*>(mapped);
  if (layout->magic.load(std::memory_order_acquire) != kMagic ||
      layout->version != kVersion) {
    munmap(mapped, sizeof(Layout));
    return fail("magic/version mismatch (not a numashare channel?)", false);
  }
  return std::unique_ptr<ShmChannel>(new ShmChannel(name, layout, /*creator=*/false));
}

ShmChannel::~ShmChannel() {
  if (layout_ != nullptr) {
    munmap(layout_, sizeof(Layout));
  }
  if (creator_) {
    shm_unlink(name_.c_str());
  }
}

bool ShmChannel::push_command(const Command& command) {
#if NS_FAULT_ENABLED
  // In-transit loss: report success to the sender and do NOT bump the drop
  // counter — the receiver must detect the gap from seq alone.
  if (inject::fire("shm.cmd.drop", command.seq)) return true;
  if (inject::hold("shm.cmd.delay", command.seq, &command, sizeof(command))) return true;
  if (inject::fire("shm.cmd.dup", command.seq)) {
    if (layout_->commands.try_push(command)) {
      // fall through: push the original below for the duplicate delivery
    } else {
      layout_->commands_dropped.fetch_add(1, std::memory_order_relaxed);
    }
  }
  const bool pushed = layout_->commands.try_push(command);
  if (!pushed) layout_->commands_dropped.fetch_add(1, std::memory_order_relaxed);
  // A held message whose delay expired is re-injected AFTER the current
  // push — with ticks=1 the two genuinely swap order on the wire.
  inject::delay_tick("shm.cmd.delay");
  Command held{};
  while (inject::take_ready("shm.cmd.delay", &held, sizeof(held))) {
    if (!layout_->commands.try_push(held)) {
      layout_->commands_dropped.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return pushed;
#else
  if (layout_->commands.try_push(command)) return true;
  layout_->commands_dropped.fetch_add(1, std::memory_order_relaxed);
  return false;
#endif
}

std::optional<Command> ShmChannel::pop_command() {
#if NS_FAULT_ENABLED
  // Enactment stall: the runtime side takes this long to get around to the
  // next command — the laggard the compliance watchdog exists to catch. The
  // command is delayed, not lost (a stalled app eventually complies).
  inject::fire_pause("client.enact.stall", nullptr);
#endif
  return layout_->commands.try_pop();
}

bool ShmChannel::push_telemetry(const Telemetry& telemetry) {
#if NS_FAULT_ENABLED
  // Ack suppression: telemetry still flows, but the compliance ack fields
  // are wiped — the runtime looks alive yet never reports enactment.
  if (inject::fire("client.ack.suppress", telemetry.seq)) {
    Telemetry stripped = telemetry;
    stripped.enacted_epoch = 0;
    stripped.enacted_target = kUnconstrained;
    return push_telemetry_impl(stripped);
  }
#endif
  return push_telemetry_impl(telemetry);
}

bool ShmChannel::push_telemetry_impl(const Telemetry& telemetry) {
#if NS_FAULT_ENABLED
  if (inject::fire("shm.tel.drop", telemetry.seq)) return true;
  if (inject::hold("shm.tel.delay", telemetry.seq, &telemetry, sizeof(telemetry))) return true;
  if (inject::fire("shm.tel.dup", telemetry.seq)) {
    if (!layout_->telemetry.try_push(telemetry)) {
      layout_->telemetry_dropped.fetch_add(1, std::memory_order_relaxed);
    }
  }
  const bool pushed = layout_->telemetry.try_push(telemetry);
  if (!pushed) layout_->telemetry_dropped.fetch_add(1, std::memory_order_relaxed);
  inject::delay_tick("shm.tel.delay");
  Telemetry held{};
  while (inject::take_ready("shm.tel.delay", &held, sizeof(held))) {
    if (!layout_->telemetry.try_push(held)) {
      layout_->telemetry_dropped.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return pushed;
#else
  if (layout_->telemetry.try_push(telemetry)) return true;
  layout_->telemetry_dropped.fetch_add(1, std::memory_order_relaxed);
  return false;
#endif
}

std::optional<Telemetry> ShmChannel::pop_telemetry() {
  return layout_->telemetry.try_pop();
}

std::uint64_t ShmChannel::drain_newest(Telemetry& out) {
  return layout_->telemetry.drain_to_newest(out);
}

std::uint64_t ShmChannel::commands_dropped() const {
  return layout_->commands_dropped.load(std::memory_order_relaxed);
}

std::uint64_t ShmChannel::telemetry_dropped() const {
  return layout_->telemetry_dropped.load(std::memory_order_relaxed);
}

std::uint64_t ShmChannel::commands_queued() const { return layout_->commands.size(); }

std::uint64_t ShmChannel::telemetry_queued() const { return layout_->telemetry.size(); }

std::size_t cleanup_stale_segments(const std::string& prefix, std::string* error) {
  // POSIX shm names live as files under /dev/shm on Linux, minus the
  // leading '/'. Scanning the directory is the only portable-enough way to
  // enumerate them; shm_open offers no listing API.
  std::string want = prefix;
  if (!want.empty() && want.front() == '/') want.erase(0, 1);
  if (want.empty()) {
    if (error) *error = "refusing to cleanup with an empty prefix";
    return 0;
  }
  DIR* dir = opendir("/dev/shm");
  if (dir == nullptr) {
    if (error) *error = ns_format("opendir(/dev/shm): {}", std::strerror(errno));
    return 0;
  }
  std::size_t removed = 0;
  while (const dirent* entry = readdir(dir)) {
    const std::string file = entry->d_name;
    if (file.rfind(want, 0) != 0) continue;
    const std::string shm_name = "/" + file;
    if (shm_unlink(shm_name.c_str()) == 0) ++removed;
  }
  closedir(dir);
  return removed;
}

}  // namespace numashare::agent
