#include "agent/shm_channel.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/format.hpp"

namespace numashare::agent {

namespace {
constexpr std::uint64_t kMagic = 0x6e756d6173686172ull;  // "numashar"
constexpr std::uint32_t kVersion = 1;
}  // namespace

struct ShmChannel::Layout {
  std::atomic<std::uint64_t> magic;
  std::uint32_t version;
  ShmRing<Command, kCommandSlots> commands;
  ShmRing<Telemetry, kTelemetrySlots> telemetry;
};

ShmChannel::ShmChannel(std::string name, Layout* layout, bool creator)
    : name_(std::move(name)), layout_(layout), creator_(creator) {}

std::unique_ptr<ShmChannel> ShmChannel::create(const std::string& name, std::string* error) {
  const auto fail = [&](const std::string& what) -> std::unique_ptr<ShmChannel> {
    if (error) *error = ns_format("{}: {}", what, std::strerror(errno));
    return nullptr;
  };
  const int fd = shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) return fail("shm_open(create)");
  if (ftruncate(fd, sizeof(Layout)) != 0) {
    close(fd);
    shm_unlink(name.c_str());
    return fail("ftruncate");
  }
  void* mapped = mmap(nullptr, sizeof(Layout), PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  close(fd);
  if (mapped == MAP_FAILED) {
    shm_unlink(name.c_str());
    return fail("mmap");
  }
  auto* layout = new (mapped) Layout;
  layout->version = kVersion;
  layout->commands.init();
  layout->telemetry.init();
  // Publish the magic last: an attacher seeing it can trust the rest.
  layout->magic.store(kMagic, std::memory_order_release);
  return std::unique_ptr<ShmChannel>(new ShmChannel(name, layout, /*creator=*/true));
}

std::unique_ptr<ShmChannel> ShmChannel::attach(const std::string& name, std::string* error) {
  const auto fail = [&](const std::string& what,
                        bool use_errno = true) -> std::unique_ptr<ShmChannel> {
    if (error) {
      *error = use_errno ? ns_format("{}: {}", what, std::strerror(errno)) : what;
    }
    return nullptr;
  };
  const int fd = shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) return fail("shm_open(attach)");
  struct stat st{};
  if (fstat(fd, &st) != 0 || static_cast<std::size_t>(st.st_size) < sizeof(Layout)) {
    close(fd);
    return fail("segment too small for protocol layout", false);
  }
  void* mapped = mmap(nullptr, sizeof(Layout), PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  close(fd);
  if (mapped == MAP_FAILED) return fail("mmap");
  auto* layout = static_cast<Layout*>(mapped);
  if (layout->magic.load(std::memory_order_acquire) != kMagic ||
      layout->version != kVersion) {
    munmap(mapped, sizeof(Layout));
    return fail("magic/version mismatch (not a numashare channel?)", false);
  }
  return std::unique_ptr<ShmChannel>(new ShmChannel(name, layout, /*creator=*/false));
}

ShmChannel::~ShmChannel() {
  if (layout_ != nullptr) {
    munmap(layout_, sizeof(Layout));
  }
  if (creator_) {
    shm_unlink(name_.c_str());
  }
}

bool ShmChannel::push_command(const Command& command) {
  return layout_->commands.try_push(command);
}

std::optional<Command> ShmChannel::pop_command() { return layout_->commands.try_pop(); }

bool ShmChannel::push_telemetry(const Telemetry& telemetry) {
  return layout_->telemetry.try_push(telemetry);
}

std::optional<Telemetry> ShmChannel::pop_telemetry() {
  return layout_->telemetry.try_pop();
}

std::uint64_t ShmChannel::commands_queued() const { return layout_->commands.size(); }

std::uint64_t ShmChannel::telemetry_queued() const { return layout_->telemetry.size(); }

}  // namespace numashare::agent
