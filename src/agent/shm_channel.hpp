// POSIX shared-memory transport: the agent as a real separate process.
//
// The paper's Figure 1 runs the agent outside the applications. This
// transport carries exactly the same POD Command/Telemetry messages as the
// in-process Channel, but through a shm_open/mmap segment containing two
// fixed-capacity lock-free SPSC rings built from address-free atomics —
// legal across process boundaries on every platform we target.
//
// Roles: the agent create()s the segment (and unlinks it on destruction);
// each application attach()es by name. One segment per (agent, app) pair,
// preserving the SPSC discipline per ring.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <string>

#include "agent/channel.hpp"
#include "agent/protocol.hpp"

namespace numashare::agent {

/// Fixed-capacity POD SPSC ring suitable for shared memory: no pointers, no
/// heap, only address-free atomics and trivially-copyable slots.
template <typename T, std::size_t N>
class ShmRing {
  static_assert((N & (N - 1)) == 0 && N >= 2, "capacity must be a power of two");
  static_assert(std::is_trivially_copyable_v<T>, "slots must be trivially copyable");

 public:
  void init() {
    head_.store(0, std::memory_order_relaxed);
    tail_.store(0, std::memory_order_relaxed);
  }

  bool try_push(const T& value) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= N) return false;
    slots_[head & (N - 1)] = value;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  std::optional<T> try_pop() {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return std::nullopt;
    T value = slots_[tail & (N - 1)];
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  std::uint64_t size() const {
    return head_.load(std::memory_order_acquire) - tail_.load(std::memory_order_acquire);
  }

  /// Consumer-side batch drain in O(1): copy the NEWEST committed slot into
  /// `out` and advance the cursor past everything queued, returning how many
  /// entries were consumed (0 = empty, `out` untouched). Safe against a
  /// concurrent producer: slot head-1 is committed (its release store of
  /// head happens-before our acquire load), and the producer cannot reuse
  /// that cell until position head-1+N becomes writable, which needs the
  /// tail — which only we advance — to move past head-1 first.
  std::uint64_t drain_to_newest(T& out) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return 0;
    out = slots_[(head - 1) & (N - 1)];
    tail_.store(head, std::memory_order_release);
    return head - tail;
  }

 private:
  alignas(64) std::atomic<std::uint64_t> head_;
  alignas(64) std::atomic<std::uint64_t> tail_;
  T slots_[N];
};

class ShmChannel final : public ChannelBase {
 public:
  static constexpr std::size_t kCommandSlots = 64;
  static constexpr std::size_t kTelemetrySlots = 256;

  /// Agent side: create (exclusively) and initialize the segment. The
  /// creating ShmChannel unlinks the name on destruction.
  static std::unique_ptr<ShmChannel> create(const std::string& name, std::string* error = nullptr);
  /// Application side: attach to an existing segment. Validates the magic
  /// and protocol version before use.
  static std::unique_ptr<ShmChannel> attach(const std::string& name, std::string* error = nullptr);

  ~ShmChannel() override;

  ShmChannel(const ShmChannel&) = delete;
  ShmChannel& operator=(const ShmChannel&) = delete;

  const std::string& name() const { return name_; }
  bool is_creator() const { return creator_; }

  // ChannelBase.
  bool push_command(const Command& command) override;
  std::optional<Command> pop_command() override;
  bool push_telemetry(const Telemetry& telemetry) override;
  std::optional<Telemetry> pop_telemetry() override;
  /// O(1) sequence-coalesced drain (ShmRing::drain_to_newest): one cursor
  /// store consumes the whole backlog instead of 256 serial pops.
  std::uint64_t drain_newest(Telemetry& out) override;
  /// Drop counters live in the segment itself, so either end sees losses
  /// regardless of which process suffered the full ring.
  std::uint64_t commands_dropped() const override;
  std::uint64_t telemetry_dropped() const override;

  std::uint64_t commands_queued() const;
  std::uint64_t telemetry_queued() const;

 private:
  struct Layout;

  ShmChannel(std::string name, Layout* layout, bool creator);

  /// The actual ring push, behind the ack-suppression fault hook.
  bool push_telemetry_impl(const Telemetry& telemetry);

  std::string name_;
  Layout* layout_ = nullptr;
  bool creator_ = false;
};

/// Unlink every POSIX shm segment whose name starts with `prefix` (leading
/// '/' optional, as in shm_open). Returns the number of segments removed.
///
/// A crashed agent or application leaves its segments behind — only the
/// creator's destructor unlinks, and a SIGKILL never runs it. The daemon
/// calls this on startup with its channel prefix to reclaim /dev/shm litter
/// from a previous incarnation before creating fresh segments.
std::size_t cleanup_stale_segments(const std::string& prefix, std::string* error = nullptr);

}  // namespace numashare::agent
