#include "apps/matmul.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace numashare::apps {

Matmul::Matmul(rt::Runtime& runtime, MatmulConfig config)
    : runtime_(runtime), config_(config) {
  NS_REQUIRE(config_.tile > 0 && config_.n > 0, "empty matmul");
  NS_REQUIRE(config_.n % config_.tile == 0, "n must be a multiple of tile");
  tiles_ = config_.n / config_.tile;

  const std::uint32_t nodes = runtime_.machine().node_count();
  const std::size_t tile_bytes =
      static_cast<std::size_t>(config_.tile) * config_.tile * sizeof(double);
  const auto make_grid = [&](TileGrid& grid) {
    grid.reserve(std::size_t(tiles_) * tiles_);
    for (std::uint32_t t = 0; t < tiles_ * tiles_; ++t) {
      grid.push_back(runtime_.create_datablock(tile_bytes, t % nodes));
    }
  };
  make_grid(a_);
  make_grid(b_);
  make_grid(c_);
  initialize();
}

rt::DatablockPtr& Matmul::tile(TileGrid& grid, std::uint32_t ti, std::uint32_t tj) {
  return grid[std::size_t(ti) * tiles_ + tj];
}

const rt::DatablockPtr& Matmul::tile(const TileGrid& grid, std::uint32_t ti,
                                     std::uint32_t tj) const {
  return grid[std::size_t(ti) * tiles_ + tj];
}

void Matmul::initialize() {
  for (std::uint32_t ti = 0; ti < tiles_; ++ti) {
    for (std::uint32_t tj = 0; tj < tiles_; ++tj) {
      auto as = tile(a_, ti, tj)->as_span<double>();
      auto bs = tile(b_, ti, tj)->as_span<double>();
      auto cs = tile(c_, ti, tj)->as_span<double>();
      for (std::uint32_t r = 0; r < config_.tile; ++r) {
        for (std::uint32_t col = 0; col < config_.tile; ++col) {
          const std::uint32_t gr = ti * config_.tile + r;
          const std::uint32_t gc = tj * config_.tile + col;
          const std::size_t idx = std::size_t(r) * config_.tile + col;
          // Small deterministic values keeping products well-conditioned.
          as[idx] = 0.01 * ((gr * 31 + gc * 17) % 13) - 0.06;
          bs[idx] = 0.01 * ((gr * 7 + gc * 29) % 11) - 0.05;
          cs[idx] = 0.0;
        }
      }
    }
  }
}

void Matmul::run() {
  auto latch = runtime_.create_latch(tiles_ * tiles_);
  for (std::uint32_t ti = 0; ti < tiles_; ++ti) {
    for (std::uint32_t tj = 0; tj < tiles_; ++tj) {
      // Chain over k: each step accumulates A(ti,k) * B(k,tj) into C(ti,tj).
      rt::EventPtr previous;
      for (std::uint32_t k = 0; k < tiles_; ++k) {
        std::vector<rt::EventPtr> deps;
        if (previous) deps.push_back(previous);
        const bool last = k + 1 == tiles_;
        previous = runtime_.spawn(
            [this, ti, tj, k, last, latch](rt::TaskContext&) {
              const auto a_span = tile(a_, ti, k)->as_span<double>();
              const auto b_span = tile(b_, k, tj)->as_span<double>();
              auto c_span = tile(c_, ti, tj)->as_span<double>();
              const std::uint32_t t = config_.tile;
              for (std::uint32_t r = 0; r < t; ++r) {
                for (std::uint32_t kk = 0; kk < t; ++kk) {
                  const double av = a_span[std::size_t(r) * t + kk];
                  const double* brow = b_span.data() + std::size_t(kk) * t;
                  double* crow = c_span.data() + std::size_t(r) * t;
                  for (std::uint32_t col = 0; col < t; ++col) {
                    crow[col] += av * brow[col];
                  }
                }
              }
              if (last) latch->count_down();
            },
            deps, tile(c_, ti, tj)->node());
      }
    }
  }
  latch->wait();
  runtime_.report_progress();
  // tiles^3 tile-multiplies, each 2*T^3 FLOPs over ~3*T^2 doubles of tile
  // traffic (the AI the class advertises via ai_estimate()).
  const double t = config_.tile;
  const double multiplies = static_cast<double>(tiles_) * tiles_ * tiles_;
  runtime_.report_work(multiplies * 2.0 * t * t * t / 1e9,
                       multiplies * 3.0 * t * t * 8.0 / 1e9);
}

double Matmul::at(const TileGrid& grid, std::uint32_t r, std::uint32_t c) const {
  NS_REQUIRE(r < config_.n && c < config_.n, "index out of range");
  const auto& block = tile(grid, r / config_.tile, c / config_.tile);
  return block->as_span<double>()[std::size_t(r % config_.tile) * config_.tile +
                                  (c % config_.tile)];
}

double Matmul::verify_sample(std::uint32_t samples) const {
  double max_error = 0.0;
  // Deterministic sample positions (diagonal-ish sweep) or full check for
  // small matrices.
  const bool full = config_.n <= 64;
  const std::uint32_t count = full ? config_.n * config_.n : samples;
  for (std::uint32_t s = 0; s < count; ++s) {
    const std::uint32_t r = full ? s / config_.n : (s * 37) % config_.n;
    const std::uint32_t col = full ? s % config_.n : (s * 61 + 13) % config_.n;
    double expected = 0.0;
    for (std::uint32_t k = 0; k < config_.n; ++k) expected += a(r, k) * b(k, col);
    max_error = std::max(max_error, std::abs(expected - c(r, col)));
  }
  return max_error;
}

}  // namespace numashare::apps
