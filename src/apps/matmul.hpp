// Blocked dense matrix multiply on the task runtime — the compute-bound
// component application. C = A * B with square tiles; each (i,j) output
// tile is a dependency chain over k (the accumulation order), tiles of all
// three matrices live in runtime-managed datablocks spread across NUMA
// nodes, and tasks are affinity-hinted to their C tile's node.
//
// The arithmetic intensity grows with the tile size (2*T^3 FLOPs over
// ~3*T^2 doubles of traffic), which is exactly the knob the agent's model
// wants advertised: ai_estimate() reports it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "runtime/runtime.hpp"

namespace numashare::apps {

struct MatmulConfig {
  /// Matrix dimension; must be a multiple of tile.
  std::uint32_t n = 128;
  std::uint32_t tile = 32;
};

class Matmul {
 public:
  Matmul(rt::Runtime& runtime, MatmulConfig config = {});

  /// Fill A and B with deterministic pseudo-values and zero C.
  void initialize();

  /// Execute C = A * B to completion.
  void run();

  double a(std::uint32_t r, std::uint32_t c) const { return at(a_, r, c); }
  double b(std::uint32_t r, std::uint32_t c) const { return at(b_, r, c); }
  double c(std::uint32_t r, std::uint32_t c) const { return at(c_, r, c); }

  /// Reference check against a straightforward triple loop over a sample of
  /// entries (full check for small n). Returns the max absolute error.
  double verify_sample(std::uint32_t samples = 64) const;

  double gflop_total() const {
    const double n = config_.n;
    return 2.0 * n * n * n / 1e9;
  }
  /// 2*T^3 FLOPs per tile-multiply over 3*T^2 * 8 bytes of tile traffic.
  ArithmeticIntensity ai_estimate() const {
    return (2.0 * config_.tile) / (3.0 * 8.0);
  }

 private:
  using TileGrid = std::vector<rt::DatablockPtr>;  // row-major tiles

  double at(const TileGrid& grid, std::uint32_t r, std::uint32_t c) const;
  rt::DatablockPtr& tile(TileGrid& grid, std::uint32_t ti, std::uint32_t tj);
  const rt::DatablockPtr& tile(const TileGrid& grid, std::uint32_t ti,
                               std::uint32_t tj) const;

  rt::Runtime& runtime_;
  MatmulConfig config_;
  std::uint32_t tiles_ = 0;  // per dimension
  TileGrid a_;
  TileGrid b_;
  TileGrid c_;
};

}  // namespace numashare::apps
