#include "apps/montecarlo.hpp"

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace numashare::apps {

MonteCarlo::MonteCarlo(rt::Runtime& runtime, MonteCarloConfig config)
    : runtime_(runtime), config_(config) {
  NS_REQUIRE(config_.samples_per_task > 0 && config_.tasks > 0, "empty workload");
}

double MonteCarlo::run() {
  auto latch = runtime_.create_latch(config_.tasks);
  for (std::uint32_t t = 0; t < config_.tasks; ++t) {
    runtime_.spawn([this, t, latch](rt::TaskContext&) {
      // Deterministic per-task substream: result independent of scheduling.
      Xoshiro256 rng(config_.seed + 0x9e3779b97f4a7c15ull * (t + 1));
      std::uint64_t local_hits = 0;
      for (std::uint64_t s = 0; s < config_.samples_per_task; ++s) {
        const double x = rng.uniform();
        const double y = rng.uniform();
        if (x * x + y * y <= 1.0) ++local_hits;
      }
      hits_.fetch_add(local_hits, std::memory_order_relaxed);
      samples_done_.fetch_add(config_.samples_per_task, std::memory_order_relaxed);
      latch->count_down();
    });
  }
  latch->wait();
  runtime_.report_progress(config_.tasks);
  // ~10 FLOPs per sample, no streamed memory traffic to speak of.
  const double samples = static_cast<double>(config_.tasks) *
                         static_cast<double>(config_.samples_per_task);
  runtime_.report_work(10.0 * samples / 1e9, 0.0);
  return estimate();
}

double MonteCarlo::estimate() const {
  const auto samples = samples_done_.load(std::memory_order_relaxed);
  if (samples == 0) return 0.0;
  return 4.0 * static_cast<double>(hits_.load(std::memory_order_relaxed)) /
         static_cast<double>(samples);
}

}  // namespace numashare::apps
