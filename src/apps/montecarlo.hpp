// Monte Carlo pi estimation — the embarrassingly parallel, purely compute-
// bound component application (arithmetic intensity effectively unbounded:
// no memory streaming at all). Each task draws a deterministic per-task
// substream, so results are reproducible regardless of scheduling.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/units.hpp"
#include "runtime/runtime.hpp"

namespace numashare::apps {

struct MonteCarloConfig {
  std::uint64_t samples_per_task = 1u << 14;
  std::uint32_t tasks = 64;
  std::uint64_t seed = 0x314159ull;
};

class MonteCarlo {
 public:
  MonteCarlo(rt::Runtime& runtime, MonteCarloConfig config = {});

  /// Run all tasks to completion; returns the pi estimate.
  double run();

  double estimate() const;
  std::uint64_t samples_done() const { return samples_done_.load(std::memory_order_relaxed); }
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }

  /// ~10 FLOPs per sample over zero streamed bytes; advertise a large AI.
  ArithmeticIntensity ai_estimate() const { return 64.0; }

 private:
  rt::Runtime& runtime_;
  MonteCarloConfig config_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> samples_done_{0};
};

}  // namespace numashare::apps
