#include "apps/stencil.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace numashare::apps {

Stencil::Stencil(rt::Runtime& runtime, StencilConfig config)
    : runtime_(runtime), config_(config) {
  NS_REQUIRE(config_.rows >= 3 && config_.cols >= 3, "grid too small for a 5-point stencil");
  NS_REQUIRE(config_.row_blocks >= 1 && config_.row_blocks <= config_.rows,
             "row_blocks must be in [1, rows]");

  const std::uint32_t nodes = runtime_.machine().node_count();
  const std::uint32_t base = config_.rows / config_.row_blocks;
  std::uint32_t assigned = 0;
  for (std::uint32_t b = 0; b < config_.row_blocks; ++b) {
    Block block;
    block.first_row = assigned;
    block.rows = base + (b < config_.rows % config_.row_blocks ? 1 : 0);
    block.node = b % nodes;
    const std::size_t bytes =
        static_cast<std::size_t>(block.rows) * config_.cols * sizeof(double);
    block.current = runtime_.create_datablock(bytes, block.node);
    block.next = runtime_.create_datablock(bytes, block.node);
    assigned += block.rows;
    blocks_.push_back(std::move(block));
  }
  NS_ASSERT(assigned == config_.rows);

  // Initialize: boundary ring at `boundary`, interior at `interior`.
  for (auto& block : blocks_) {
    for (std::uint32_t lr = 0; lr < block.rows; ++lr) {
      const std::uint32_t r = block.first_row + lr;
      double* row = block.current->as_span<double>().data() + std::size_t(lr) * config_.cols;
      double* next_row = block.next->as_span<double>().data() + std::size_t(lr) * config_.cols;
      for (std::uint32_t c = 0; c < config_.cols; ++c) {
        const bool edge = r == 0 || r == config_.rows - 1 || c == 0 || c == config_.cols - 1;
        row[c] = edge ? config_.boundary : config_.interior;
        next_row[c] = row[c];
      }
    }
  }
}

void Stencil::run(std::uint32_t sweeps) {
  NS_REQUIRE(sweeps > 0, "need at least one sweep");

  // Per-sweep completion events per block; sweep s of block b depends on
  // sweep s-1 of blocks b-1, b, b+1 (flow *and* anti dependencies — a
  // neighbour's previous-sweep task must also have finished *reading* our
  // parity buffer before we overwrite it).
  std::vector<rt::EventPtr> previous(blocks_.size());
  std::vector<rt::EventPtr> current(blocks_.size());

  for (std::uint32_t s = 0; s < sweeps; ++s) {
    const std::uint32_t parity = (sweeps_done_ + s) % 2;
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      std::vector<rt::EventPtr> deps;
      if (s > 0) {
        if (b > 0) deps.push_back(previous[b - 1]);
        deps.push_back(previous[b]);
        if (b + 1 < blocks_.size()) deps.push_back(previous[b + 1]);
      }
      current[b] = runtime_.spawn(
          [this, b, parity](rt::TaskContext&) {
            // Row pointer tables across all blocks for this parity: the
            // block's edge rows read into the neighbouring blocks' buffers,
            // which the dependency structure has made safe.
            std::vector<const double*> read_rows(config_.rows);
            std::vector<double*> write_rows(config_.rows);
            for (auto& other : blocks_) {
              auto read_span = (parity == 0 ? other.current : other.next)->as_span<double>();
              auto write_span = (parity == 0 ? other.next : other.current)->as_span<double>();
              for (std::uint32_t lr = 0; lr < other.rows; ++lr) {
                read_rows[other.first_row + lr] =
                    read_span.data() + std::size_t(lr) * config_.cols;
                write_rows[other.first_row + lr] =
                    write_span.data() + std::size_t(lr) * config_.cols;
              }
            }
            const auto& block = blocks_[b];
            for (std::uint32_t lr = 0; lr < block.rows; ++lr) {
              const std::uint32_t r = block.first_row + lr;
              double* out = write_rows[r];
              if (r == 0 || r == config_.rows - 1) {
                std::copy(read_rows[r], read_rows[r] + config_.cols, out);
                continue;
              }
              const double* up = read_rows[r - 1];
              const double* down = read_rows[r + 1];
              const double* self = read_rows[r];
              out[0] = self[0];
              out[config_.cols - 1] = self[config_.cols - 1];
              for (std::uint32_t c = 1; c + 1 < config_.cols; ++c) {
                out[c] = 0.25 * (up[c] + down[c] + self[c - 1] + self[c + 1]);
              }
            }
          },
          deps, blocks_[b].node);
    }
    previous = current;
  }
  // Wait for the final sweep across all blocks.
  auto latch = runtime_.create_latch(static_cast<std::uint32_t>(blocks_.size()));
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    runtime_.spawn([latch](rt::TaskContext&) { latch->count_down(); }, {current[b]});
  }
  latch->wait();

  sweeps_done_ += sweeps;
  const std::uint64_t interior =
      static_cast<std::uint64_t>(config_.rows - 2) * (config_.cols - 2);
  cells_updated_ += static_cast<std::uint64_t>(sweeps) * interior;
  runtime_.report_progress(sweeps);
  // 4 FLOPs and ~16 streamed bytes per interior cell per sweep.
  const double cells = static_cast<double>(sweeps) * static_cast<double>(interior);
  runtime_.report_work(4.0 * cells / 1e9, 16.0 * cells / 1e9);
}

double Stencil::at(std::uint32_t r, std::uint32_t c) const {
  NS_REQUIRE(r < config_.rows && c < config_.cols, "cell out of range");
  for (const auto& block : blocks_) {
    if (r >= block.first_row && r < block.first_row + block.rows) {
      const auto& buffer = (sweeps_done_ % 2 == 0) ? block.current : block.next;
      return buffer->as_span<double>()[std::size_t(r - block.first_row) * config_.cols + c];
    }
  }
  NS_ASSERT_MSG(false, "unreachable: row not covered by any block");
  return 0.0;
}

double Stencil::checksum() const {
  double total = 0.0;
  for (std::uint32_t r = 0; r < config_.rows; ++r) {
    for (std::uint32_t c = 0; c < config_.cols; ++c) total += at(r, c);
  }
  return total;
}

}  // namespace numashare::apps
