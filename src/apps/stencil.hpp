// 2D Jacobi 5-point stencil on the task runtime — the canonical memory-bound
// "component application" of the paper's composition story.
//
// The grid is split into horizontal block-rows, each held in a runtime-
// managed Datablock placed round-robin across NUMA nodes; every sweep spawns
// one task per block with dependencies on the neighbouring blocks' previous
// sweep (a proper wavefront-free Jacobi graph, not a barrier loop). Tasks
// carry the owning block's node as their affinity hint, so data and
// compute stay together — the NUMA-perfect pattern of §III.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "runtime/runtime.hpp"

namespace numashare::apps {

struct StencilConfig {
  std::uint32_t rows = 128;
  std::uint32_t cols = 128;
  /// Horizontal blocking; each block-row is one datablock + one task/sweep.
  std::uint32_t row_blocks = 4;
  /// Fixed boundary value (Dirichlet).
  double boundary = 1.0;
  double interior = 0.0;
};

class Stencil {
 public:
  Stencil(rt::Runtime& runtime, StencilConfig config = {});

  /// Run `sweeps` Jacobi iterations to completion (blocking call; the
  /// internal task graph pipelines across sweeps).
  void run(std::uint32_t sweeps);

  /// Grid value at (r, c) — for verification; call only between run()s.
  double at(std::uint32_t r, std::uint32_t c) const;
  double checksum() const;

  std::uint64_t cells_updated() const { return cells_updated_; }
  std::uint32_t sweeps_done() const { return sweeps_done_; }

  /// The kernel's nominal arithmetic intensity: 4 FLOPs per cell over
  /// ~2 doubles of streamed traffic (read-mostly 5-point + one write).
  ArithmeticIntensity ai_estimate() const { return 4.0 / 16.0; }
  /// Work performed so far, GFLOP.
  double gflop_done() const { return 4.0 * static_cast<double>(cells_updated_) / 1e9; }

 private:
  struct Block {
    rt::DatablockPtr current;
    rt::DatablockPtr next;
    std::uint32_t first_row = 0;  // global index of the block's first row
    std::uint32_t rows = 0;
    topo::NodeId node = 0;
  };

  rt::Runtime& runtime_;
  StencilConfig config_;
  std::vector<Block> blocks_;
  std::uint64_t cells_updated_ = 0;
  std::uint32_t sweeps_done_ = 0;
};

}  // namespace numashare::apps
