// Assertion macros used across numashare.
//
// NS_ASSERT is active in all build types: the invariants it guards are cheap
// relative to the work they protect (allocation solvers, schedulers), and a
// silently-wrong resource arbiter is worse than an aborted one.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace numashare::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "numashare assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg ? msg : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace numashare::detail

#define NS_ASSERT(expr)                                                       \
  do {                                                                        \
    if (!(expr)) ::numashare::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define NS_ASSERT_MSG(expr, msg)                                              \
  do {                                                                        \
    if (!(expr)) ::numashare::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

// For conditions that indicate caller error rather than internal corruption.
#define NS_REQUIRE(expr, msg) NS_ASSERT_MSG(expr, msg)
