#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/format.hpp"

namespace numashare {

namespace {

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

}  // namespace

std::optional<Config> Config::parse(const std::string& text, std::string* error) {
  Config config;
  std::istringstream in(text);
  std::string line;
  std::string section;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto comment = line.find_first_of("#;");
    if (comment != std::string::npos) line.erase(comment);
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        if (error) *error = ns_format("line {}: unterminated section header", line_number);
        return std::nullopt;
      }
      section = trim(line.substr(1, line.size() - 2));
      if (section.empty()) {
        if (error) *error = ns_format("line {}: empty section name", line_number);
        return std::nullopt;
      }
      config.sections_.push_back(section);
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      if (error) *error = ns_format("line {}: expected key = value", line_number);
      return std::nullopt;
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      if (error) *error = ns_format("line {}: empty key", line_number);
      return std::nullopt;
    }
    const std::string full_key = section.empty() ? key : section + "." + key;
    config.values_[full_key] = value;
  }
  return config;
}

std::optional<Config> Config::load(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = ns_format("cannot open '{}'", path);
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str(), error);
}

bool Config::has(const std::string& key) const { return values_.count(key) > 0; }

std::optional<std::string> Config::get(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::int64_t> Config::get_int(const std::string& key) const {
  auto value = get(key);
  if (!value) return std::nullopt;
  char* end = nullptr;
  const long long parsed = std::strtoll(value->c_str(), &end, 0);
  if (end == value->c_str() || *end != '\0') return std::nullopt;
  return parsed;
}

std::optional<double> Config::get_double(const std::string& key) const {
  auto value = get(key);
  if (!value) return std::nullopt;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  if (end == value->c_str() || *end != '\0') return std::nullopt;
  return parsed;
}

std::optional<bool> Config::get_bool(const std::string& key) const {
  auto value = get(key);
  if (!value) return std::nullopt;
  std::string v = *value;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return std::nullopt;
}

std::optional<std::vector<double>> Config::get_doubles(const std::string& key) const {
  auto value = get(key);
  if (!value) return std::nullopt;
  std::vector<double> out;
  std::istringstream in(*value);
  std::string item;
  while (std::getline(in, item, ',')) {
    item = trim(item);
    if (item.empty()) return std::nullopt;
    char* end = nullptr;
    const double parsed = std::strtod(item.c_str(), &end);
    if (end == item.c_str() || *end != '\0') return std::nullopt;
    out.push_back(parsed);
  }
  return out;
}

std::string Config::get_or(const std::string& key, const std::string& fallback) const {
  return get(key).value_or(fallback);
}

std::int64_t Config::get_int_or(const std::string& key, std::int64_t fallback) const {
  return get_int(key).value_or(fallback);
}

double Config::get_double_or(const std::string& key, double fallback) const {
  return get_double(key).value_or(fallback);
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, _] : values_) out.push_back(key);
  return out;
}

void Config::set(const std::string& key, const std::string& value) { values_[key] = value; }

}  // namespace numashare
