// Minimal INI-style configuration: "key = value" lines, optional [sections],
// '#'/';' comments. Used by the examples to describe machines and app mixes
// without recompiling.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace numashare {

class Config {
 public:
  /// Parse text; returns std::nullopt plus an error message on malformed input.
  static std::optional<Config> parse(const std::string& text, std::string* error = nullptr);
  static std::optional<Config> load(const std::string& path, std::string* error = nullptr);

  /// Keys are addressed "section.key"; keys before any section are "key".
  bool has(const std::string& key) const;
  std::optional<std::string> get(const std::string& key) const;
  std::optional<std::int64_t> get_int(const std::string& key) const;
  std::optional<double> get_double(const std::string& key) const;
  std::optional<bool> get_bool(const std::string& key) const;
  /// Comma-separated list of doubles, e.g. "1, 2.5, 3".
  std::optional<std::vector<double>> get_doubles(const std::string& key) const;

  std::string get_or(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int_or(const std::string& key, std::int64_t fallback) const;
  double get_double_or(const std::string& key, double fallback) const;

  std::vector<std::string> keys() const;
  /// All section names that appeared in the file, in order of appearance.
  const std::vector<std::string>& sections() const { return sections_; }

  void set(const std::string& key, const std::string& value);

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> sections_;
};

}  // namespace numashare
