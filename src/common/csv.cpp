#include "common/csv.hpp"

#include "common/assert.hpp"

namespace numashare {

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::emit(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  NS_REQUIRE(!header_written_, "CSV header already written");
  columns_ = columns.size();
  header_written_ = true;
  emit(columns);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  NS_REQUIRE(header_written_, "write the CSV header first");
  NS_REQUIRE(cells.size() == columns_, "CSV row width must match header");
  emit(cells);
}

}  // namespace numashare
