// CSV emission for machine-readable experiment output.
//
// Each bench writes its series to stdout as a table and optionally to a .csv
// so plots can be regenerated without re-running.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace numashare {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void header(const std::vector<std::string>& columns);
  void row(const std::vector<std::string>& cells);

  /// RFC-4180 quoting: wrap in quotes when the cell contains , " or newline.
  static std::string escape(const std::string& cell);

 private:
  void emit(const std::vector<std::string>& cells);

  std::ostream& os_;
  std::size_t columns_ = 0;
  bool header_written_ = false;
};

}  // namespace numashare
