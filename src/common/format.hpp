// Minimal "{}" formatting (libstdc++ 12 ships no <format>).
//
// ns_format("x={} y={}", 1, 2.5) -> "x=1 y=2.5"
// Numeric helpers fmt_fixed / fmt_sig give the fixed-point / significant-digit
// renderings the paper's tables use.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>

namespace numashare {

namespace detail {

inline void format_value(std::ostream& os) { (void)os; }

template <typename T>
void append_one(std::ostream& os, const T& v) {
  os << v;
}

inline void format_rec(std::ostream& os, std::string_view fmt) {
  // No arguments left: emit the remainder verbatim (any "{}" left is a bug in
  // the call site, surfaced literally rather than by UB).
  os << fmt;
}

template <typename T, typename... Rest>
void format_rec(std::ostream& os, std::string_view fmt, const T& first, const Rest&... rest) {
  const auto pos = fmt.find("{}");
  if (pos == std::string_view::npos) {
    os << fmt;  // more args than placeholders; extra args ignored
    return;
  }
  os << fmt.substr(0, pos);
  append_one(os, first);
  format_rec(os, fmt.substr(pos + 2), rest...);
}

}  // namespace detail

template <typename... Args>
std::string ns_format(std::string_view fmt, const Args&... args) {
  std::ostringstream os;
  detail::format_rec(os, fmt, args...);
  return os.str();
}

/// Fixed-point rendering, e.g. fmt_fixed(63.5, 2) == "63.50".
inline std::string fmt_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// Compact rendering: fixed with trailing zeros trimmed ("63.5", "254", "4.53").
inline std::string fmt_compact(double v, int max_precision = 6) {
  std::string s = fmt_fixed(v, max_precision);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace numashare
