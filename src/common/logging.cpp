#include "common/logging.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace numashare {

double monotonic_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point origin = clock::now();
  return std::chrono::duration<double>(clock::now() - origin).count();
}

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("NUMASHARE_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "trace") == 0) return LogLevel::kTrace;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() : level_(level_from_env()), start_seconds_(monotonic_seconds()) {}

void Logger::set_level(LogLevel level) { level_ = level; }

void Logger::log(LogLevel level, std::string_view component, std::string_view message) {
  const double t = monotonic_seconds() - start_seconds_;
  std::scoped_lock lock(mutex_);
  std::fprintf(stderr, "[%10.4f] %s [%.*s] %.*s\n", t, level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace numashare
