// Thread-safe leveled logger.
//
// Components log through NS_LOG_* macros; the level is process-global and can
// be raised by tests/benches that want quiet output. Messages carry a
// monotonic timestamp (seconds since logger construction) and the logical
// component name, which matters for reading agent/runtime interleavings.
#pragma once

#include <mutex>
#include <string>
#include <string_view>

#include "common/format.hpp"

namespace numashare {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const { return level_; }

  bool enabled(LogLevel level) const { return level >= level_; }

  void log(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger();

  std::mutex mutex_;
  LogLevel level_;
  double start_seconds_ = 0.0;
};

/// Current monotonic time in seconds (steady clock).
double monotonic_seconds();

}  // namespace numashare

#define NS_LOG(level, component, ...)                                          \
  do {                                                                         \
    auto& ns_logger_ = ::numashare::Logger::instance();                        \
    if (ns_logger_.enabled(level)) {                                           \
      ns_logger_.log(level, component, ::numashare::ns_format(__VA_ARGS__));   \
    }                                                                          \
  } while (0)

#define NS_LOG_TRACE(component, ...) NS_LOG(::numashare::LogLevel::kTrace, component, __VA_ARGS__)
#define NS_LOG_DEBUG(component, ...) NS_LOG(::numashare::LogLevel::kDebug, component, __VA_ARGS__)
#define NS_LOG_INFO(component, ...) NS_LOG(::numashare::LogLevel::kInfo, component, __VA_ARGS__)
#define NS_LOG_WARN(component, ...) NS_LOG(::numashare::LogLevel::kWarn, component, __VA_ARGS__)
#define NS_LOG_ERROR(component, ...) NS_LOG(::numashare::LogLevel::kError, component, __VA_ARGS__)
