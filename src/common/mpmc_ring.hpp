// Bounded lock-free multi-producer multi-consumer ring (Vyukov's bounded
// MPMC queue: per-cell sequence numbers instead of a shared lock).
//
// The generalization of SpscRing the runtime's injection queues need: any
// thread may submit a task to a node (producers = every worker + external
// threads), and any worker of — or poaching from — that node may consume.
// Each cell carries a sequence counter that encodes whether it is empty,
// full, or in transit for the current lap; producers and consumers claim
// cells with one CAS on their respective position counters and then operate
// on disjoint cells without further coordination.
//
// Like SpscRing this is shared-memory-compatible in spirit (fixed slab,
// per-cell state), but it is used in-process only.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <utility>

#include "common/assert.hpp"

namespace numashare {

template <typename T>
class MpmcRing {
 public:
  /// Capacity must be a power of two (index masking).
  explicit MpmcRing(std::size_t capacity)
      : mask_(capacity - 1), cells_(std::make_unique<Cell[]>(capacity)) {
    NS_REQUIRE(capacity >= 2 && (capacity & (capacity - 1)) == 0,
               "MpmcRing capacity must be a power of two >= 2");
    for (std::size_t i = 0; i < capacity; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  /// Any thread. Returns false when full (caller handles overflow).
  bool try_push(T value) {
    Cell* cell;
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t diff =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // cell still holds last lap's value: ring is full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Any thread.
  std::optional<T> try_pop() {
    Cell* cell;
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t diff =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return std::nullopt;  // cell not yet published: ring is empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    T value = std::move(cell->value);
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return value;
  }

  /// Approximate (racy) size; telemetry only.
  std::size_t size_approx() const {
    const std::size_t head = enqueue_pos_.load(std::memory_order_acquire);
    const std::size_t tail = dequeue_pos_.load(std::memory_order_acquire);
    return head > tail ? head - tail : 0;
  }

  bool empty_approx() const { return size_approx() == 0; }
  std::size_t capacity() const { return mask_ + 1; }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  const std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace numashare
