// Deterministic PRNG: xoshiro256** seeded through splitmix64.
//
// Used by the simulator's noise model and by randomized tests; never by
// anything security-relevant. A fixed seed reproduces a run bit-for-bit,
// which the experiment harness relies on.
#pragma once

#include <cstdint>

#include "common/assert.hpp"

namespace numashare {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9ull) {
    SplitMix64 mix(seed);
    for (auto& s : s_) s = mix.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_u64(std::uint64_t n) {
    NS_ASSERT(n > 0);
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Symmetric multiplicative jitter: uniform in [1-amp, 1+amp].
  double jitter(double amp) { return 1.0 + uniform(-amp, amp); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t s_[4];
};

}  // namespace numashare
