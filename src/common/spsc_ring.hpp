// Single-producer single-consumer lock-free ring buffer.
//
// This is the agent <-> runtime transport (one ring per direction per
// runtime). It deliberately has shared-memory-compatible semantics: only the
// producer writes head_, only the consumer writes tail_, values are moved
// through a fixed-size slab — so the same code would work across a process
// boundary with T restricted to trivially-copyable messages.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace numashare {

template <typename T>
class SpscRing {
 public:
  /// Capacity must be a power of two (index masking).
  explicit SpscRing(std::size_t capacity) : mask_(capacity - 1), slots_(capacity) {
    NS_REQUIRE(capacity >= 2 && (capacity & (capacity - 1)) == 0,
               "SpscRing capacity must be a power of two >= 2");
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when full (message dropped by caller's
  /// choice — the agent treats a full ring as backpressure).
  bool try_push(T value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= slots_.size()) return false;
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.
  std::optional<T> try_pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return std::nullopt;
    T value = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  /// Approximate size; exact when called from either endpoint's thread.
  std::size_t size() const {
    return head_.load(std::memory_order_acquire) - tail_.load(std::memory_order_acquire);
  }

  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return slots_.size(); }

 private:
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::size_t mask_;
  std::vector<T> slots_;
};

}  // namespace numashare
