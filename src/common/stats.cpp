#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/format.hpp"

namespace numashare {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::string RunningStats::summary() const {
  return ns_format("n={} mean={} sd={} min={} max={}", count_, fmt_compact(mean(), 4),
                   fmt_compact(stddev(), 4), fmt_compact(min(), 4), fmt_compact(max(), 4));
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  NS_REQUIRE(hi > lo, "histogram range must be non-empty");
  NS_REQUIRE(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<long>((x - lo_) / width);
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i + 1);
}

double Histogram::percentile(double p) const {
  NS_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  if (total_ == 0) return lo_;
  const double target = p / 100.0 * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      if (counts_[i] == 0) return bucket_lo(i);
      const double frac = (target - cumulative) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * (bucket_hi(i) - bucket_lo(i));
    }
    cumulative = next;
  }
  return hi_;
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[i] * width / peak;
    out += ns_format("[{}, {}) {} {}\n", fmt_compact(bucket_lo(i), 3),
                     fmt_compact(bucket_hi(i), 3), std::string(bar, '#'), counts_[i]);
  }
  return out;
}

}  // namespace numashare
