// Streaming statistics used by the telemetry, benches and the simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace numashare {

/// Welford online mean/variance plus min/max. O(1) memory.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  std::string summary() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples go to the edge
/// buckets. Supports percentile queries by linear interpolation within a
/// bucket, which is plenty for latency telemetry.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t count() const { return total_; }
  double percentile(double p) const;  // p in [0, 100]
  std::string ascii(std::size_t width = 40) const;

  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;
  std::size_t bucket_count(std::size_t i) const { return counts_[i]; }
  std::size_t buckets() const { return counts_.size(); }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Exponentially-weighted moving average; the agent's telemetry smoother.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void add(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
  }

  bool initialized() const { return initialized_; }
  double value() const { return value_; }
  void reset() { initialized_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace numashare
