#include "common/table.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace numashare {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  NS_REQUIRE(!headers_.empty(), "table needs at least one column");
  aligns_.assign(headers_.size(), Align::kRight);
  aligns_[0] = Align::kLeft;
}

void TextTable::set_align(std::size_t column, Align align) {
  NS_REQUIRE(column < aligns_.size(), "column out of range");
  aligns_[column] = align;
}

void TextTable::add_row(std::vector<std::string> cells) {
  NS_REQUIRE(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(Row{false, std::move(cells)});
}

void TextTable::add_separator() { rows_.push_back(Row{true, {}}); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto pad = [&](const std::string& s, std::size_t width, Align align) {
    std::string out;
    const std::size_t fill = width - std::min(width, s.size());
    if (align == Align::kRight) out.append(fill, ' ');
    out += s;
    if (align == Align::kLeft) out.append(fill, ' ');
    return out;
  };

  const auto rule = [&] {
    std::string line = "+";
    for (auto w : widths) {
      line.append(w + 2, '-');
      line += "+";
    }
    line += "\n";
    return line;
  };

  const auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += " " + pad(cells[c], widths[c], aligns_[c]) + " |";
    }
    line += "\n";
    return line;
  };

  std::string out = rule();
  out += render_row(headers_);
  out += rule();
  for (const auto& row : rows_) {
    out += row.separator ? rule() : render_row(row.cells);
  }
  out += rule();
  return out;
}

}  // namespace numashare
