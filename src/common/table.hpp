// ASCII table rendering for the experiment harness.
//
// The paper reports results as tables (Table I-III); every bench prints its
// reproduction through this class so output stays diffable run to run.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace numashare {

class TextTable {
 public:
  enum class Align { kLeft, kRight };

  explicit TextTable(std::vector<std::string> headers);

  /// Default alignment is left for column 0, right for the rest (the usual
  /// label-then-numbers layout); override per column if needed.
  void set_align(std::size_t column, Align align);

  void add_row(std::vector<std::string> cells);
  /// A horizontal rule between row groups.
  void add_separator();

  std::size_t rows() const { return rows_.size(); }

  std::string render() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

}  // namespace numashare
