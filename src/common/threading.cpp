#include "common/threading.hpp"

#include <chrono>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#endif

namespace numashare {

void Parker::park() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] { return permit_; });
  permit_ = false;
}

bool Parker::park_for_us(std::int64_t timeout_us) {
  std::unique_lock lock(mutex_);
  const bool woken =
      cv_.wait_for(lock, std::chrono::microseconds(timeout_us), [&] { return permit_; });
  if (woken) permit_ = false;
  return woken;
}

void Parker::unpark() {
  {
    std::scoped_lock lock(mutex_);
    // A pending permit means an earlier unpark already woke (or will wake)
    // the sleeper; skip the redundant notify. This makes repeated unparks of
    // a not-yet-rescheduled thread cost a mutex round-trip, not a futex wake
    // — the submit path hits exactly that case under oversubscription.
    if (permit_) return;
    permit_ = true;
  }
  cv_.notify_one();
}

void set_current_thread_name(const std::string& name) {
#if defined(__linux__)
  // The kernel limit is 15 characters + NUL.
  std::string truncated = name.substr(0, 15);
  pthread_setname_np(pthread_self(), truncated.c_str());
#else
  (void)name;
#endif
}

void Backoff::pause() {
  if (count_ < 6) {
    for (unsigned i = 0; i < (1u << count_); ++i) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#else
      std::this_thread::yield();
#endif
    }
    ++count_;
  } else {
    std::this_thread::yield();
  }
}

}  // namespace numashare
