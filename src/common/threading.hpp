// Thread parking and naming primitives shared by the runtime's worker pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

namespace numashare {

/// One-slot park/unpark, with the "permit" semantics of LockSupport: an
/// unpark delivered before the park makes the next park return immediately,
/// so the waker/sleeper race is benign. This is what makes the paper's
/// "unblocking ... is also nearly immediate" property hold in our runtime.
class Parker {
 public:
  /// Blocks until unparked (or returns immediately if a permit is pending).
  void park();

  /// Blocks at most `timeout_us` microseconds. Returns true if unparked,
  /// false on timeout.
  bool park_for_us(std::int64_t timeout_us);

  /// Wake the parked thread (or store a permit).
  void unpark();

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool permit_ = false;
};

/// Set the calling thread's name (visible in /proc and debuggers).
void set_current_thread_name(const std::string& name);

/// Exponential spin-then-yield backoff for contended retry loops.
class Backoff {
 public:
  void pause();
  void reset() { count_ = 0; }

 private:
  unsigned count_ = 0;
};

}  // namespace numashare
