// The quantities the paper's model is written in, as plain doubles with
// named accessors rather than heavy strong types: the solver does enough
// arithmetic that wrapper types would obscure it, but the *names* keep
// GB/s and GFLOPS from being crossed accidentally at API boundaries.
#pragma once

namespace numashare {

/// Gigabytes per second (memory bandwidth).
using GBps = double;
/// Giga floating-point operations per second.
using GFlops = double;
/// FLOPs per byte moved to/from memory (the roofline's x axis).
using ArithmeticIntensity = double;

/// peak demand rule from the paper (assumption 3): a core running code with
/// arithmetic intensity `ai` at peak `gflops` wants gflops/ai GB/s.
inline GBps demand_gbps(GFlops peak_gflops, ArithmeticIntensity ai) {
  return peak_gflops / ai;
}

/// Achieved performance from achieved bandwidth (memory-bound leg of the
/// roofline), capped at the compute peak.
inline GFlops achieved_gflops(GBps bandwidth, ArithmeticIntensity ai, GFlops peak_gflops) {
  const GFlops mem_limited = bandwidth * ai;
  return mem_limited < peak_gflops ? mem_limited : peak_gflops;
}

inline constexpr double kBytesPerGB = 1e9;
inline constexpr double kFlopsPerGFlop = 1e9;

}  // namespace numashare
