#include "core/allocation.hpp"

#include <numeric>

#include "common/assert.hpp"
#include "common/format.hpp"

namespace numashare::model {

Allocation::Allocation(std::uint32_t apps, std::uint32_t nodes)
    : threads_(apps, std::vector<std::uint32_t>(nodes, 0)) {}

Allocation Allocation::from_matrix(std::vector<std::vector<std::uint32_t>> threads) {
  NS_REQUIRE(!threads.empty(), "allocation needs at least one app");
  const std::size_t nodes = threads.front().size();
  for (const auto& row : threads) {
    NS_REQUIRE(row.size() == nodes, "ragged allocation matrix");
  }
  Allocation allocation;
  allocation.threads_ = std::move(threads);
  return allocation;
}

Allocation Allocation::even(const topo::Machine& machine, std::uint32_t apps) {
  NS_REQUIRE(apps > 0, "need at least one app");
  Allocation allocation(apps, machine.node_count());
  for (topo::NodeId n = 0; n < machine.node_count(); ++n) {
    const std::uint32_t share = machine.cores_in_node(n) / apps;
    for (AppId a = 0; a < apps; ++a) allocation.set_threads(a, n, share);
  }
  return allocation;
}

Allocation Allocation::uniform_per_node(const topo::Machine& machine,
                                        std::vector<std::uint32_t> per_node_counts) {
  NS_REQUIRE(!per_node_counts.empty(), "need at least one app");
  Allocation allocation(static_cast<std::uint32_t>(per_node_counts.size()),
                        machine.node_count());
  for (AppId a = 0; a < per_node_counts.size(); ++a) {
    for (topo::NodeId n = 0; n < machine.node_count(); ++n) {
      allocation.set_threads(a, n, per_node_counts[a]);
    }
  }
  return allocation;
}

Allocation Allocation::node_per_app(const topo::Machine& machine,
                                    std::vector<topo::NodeId> order) {
  NS_REQUIRE(order.size() == machine.node_count(),
             "node_per_app needs exactly one node per app");
  Allocation allocation(static_cast<std::uint32_t>(order.size()), machine.node_count());
  for (AppId a = 0; a < order.size(); ++a) {
    const topo::NodeId n = order[a];
    allocation.set_threads(a, n, machine.cores_in_node(n));
  }
  return allocation;
}

std::uint32_t Allocation::threads(AppId app, topo::NodeId node) const {
  NS_REQUIRE(app < threads_.size(), "app id out of range");
  NS_REQUIRE(node < threads_[app].size(), "node id out of range");
  return threads_[app][node];
}

void Allocation::set_threads(AppId app, topo::NodeId node, std::uint32_t count) {
  NS_REQUIRE(app < threads_.size(), "app id out of range");
  NS_REQUIRE(node < threads_[app].size(), "node id out of range");
  threads_[app][node] = count;
}

std::uint32_t Allocation::app_total(AppId app) const {
  NS_REQUIRE(app < threads_.size(), "app id out of range");
  return std::accumulate(threads_[app].begin(), threads_[app].end(), 0u);
}

std::uint32_t Allocation::node_total(topo::NodeId node) const {
  std::uint32_t total = 0;
  for (const auto& row : threads_) {
    NS_REQUIRE(node < row.size(), "node id out of range");
    total += row[node];
  }
  return total;
}

std::uint32_t Allocation::total() const {
  std::uint32_t total = 0;
  for (AppId a = 0; a < app_count(); ++a) total += app_total(a);
  return total;
}

bool Allocation::validate(const topo::Machine& machine, std::string* error) const {
  const auto fail = [&](std::string message) {
    if (error) *error = std::move(message);
    return false;
  };
  if (threads_.empty()) return fail("no apps in allocation");
  if (node_count() != machine.node_count()) {
    return fail(ns_format("allocation has {} nodes, machine has {}", node_count(),
                          machine.node_count()));
  }
  for (topo::NodeId n = 0; n < machine.node_count(); ++n) {
    const std::uint32_t used = node_total(n);
    const std::uint32_t cores = machine.cores_in_node(n);
    if (used > cores) {
      return fail(ns_format("node {} oversubscribed: {} threads on {} cores", n, used, cores));
    }
  }
  return true;
}

std::string Allocation::to_string() const {
  std::string out;
  for (AppId a = 0; a < app_count(); ++a) {
    if (a) out += " ";
    out += ns_format("app{}:[", a);
    for (topo::NodeId n = 0; n < node_count(); ++n) {
      if (n) out += " ";
      out += ns_format("{}", threads_[a][n]);
    }
    out += "]";
  }
  return out;
}

}  // namespace numashare::model
