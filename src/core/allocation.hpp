// Thread allocations: how many threads each application runs on each NUMA
// node (the paper's option-3 vocabulary, which subsumes the examples given
// for options 1 and 2 at the model level).
//
// The model-level invariant from §III: no over-subscription — on every node
// the threads of all applications together never exceed the node's core
// count. validate() enforces it; the runtime's oversubscribed baseline (E8)
// deliberately lives outside this type.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/app_spec.hpp"
#include "topology/machine.hpp"

namespace numashare::model {

class Allocation {
 public:
  Allocation() = default;
  Allocation(std::uint32_t apps, std::uint32_t nodes);

  /// threads[app][node]
  static Allocation from_matrix(std::vector<std::vector<std::uint32_t>> threads);

  /// Every app gets the same count on every node: cores_per_node / apps
  /// (remainder cores left idle — the paper's even scenarios divide exactly).
  static Allocation even(const topo::Machine& machine, std::uint32_t apps);

  /// Same count for every node, but per-app counts differ:
  /// per_node_counts[app] threads of `app` on each node (Figure 2a).
  static Allocation uniform_per_node(const topo::Machine& machine,
                                     std::vector<std::uint32_t> per_node_counts);

  /// App i gets all cores of node order[i] (Figure 2c). order.size() must
  /// equal the node count; apps == nodes.
  static Allocation node_per_app(const topo::Machine& machine,
                                 std::vector<topo::NodeId> order);

  std::uint32_t app_count() const { return static_cast<std::uint32_t>(threads_.size()); }
  std::uint32_t node_count() const {
    return threads_.empty() ? 0 : static_cast<std::uint32_t>(threads_.front().size());
  }

  std::uint32_t threads(AppId app, topo::NodeId node) const;
  void set_threads(AppId app, topo::NodeId node, std::uint32_t count);

  std::uint32_t app_total(AppId app) const;
  std::uint32_t node_total(topo::NodeId node) const;
  std::uint32_t total() const;

  /// No-oversubscription check against `machine`, plus shape checks.
  bool validate(const topo::Machine& machine, std::string* error = nullptr) const;

  /// "app0:[1 1 1 1] app1:[5 5 5 5]" style rendering.
  std::string to_string() const;

  bool operator==(const Allocation& other) const { return threads_ == other.threads_; }

 private:
  std::vector<std::vector<std::uint32_t>> threads_;
};

}  // namespace numashare::model
