// Application specifications for the allocation model (paper §III.A).
//
// The model characterizes an application by a single arithmetic intensity
// and by how its data is placed: "NUMA-perfect" applications only touch the
// memory of the node each thread runs on; the "NUMA-bad" worst case stores
// all data on one home node and every thread reaches across to it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "topology/machine.hpp"

namespace numashare::model {

enum class Placement : std::uint8_t {
  /// Each thread accesses only the memory of the node it executes on.
  kNumaPerfect,
  /// All data lives on `home_node`; threads elsewhere access it remotely.
  kNumaBad,
};

struct AppSpec {
  std::string name;
  ArithmeticIntensity ai = 1.0;
  Placement placement = Placement::kNumaPerfect;
  /// Only meaningful for kNumaBad.
  topo::NodeId home_node = 0;
  /// Amdahl serial fraction in [0, 1): 0 = perfectly parallel. Captures the
  /// paper's §II scenario of sub-linear scaling — "the application's
  /// performance might increase with any extra thread, but the scaling is
  /// not linear" — as a cap on the app's aggregate throughput:
  /// effective parallelism of T threads = 1 / (serial + (1-serial)/T).
  double serial_fraction = 0.0;

  static AppSpec numa_perfect(std::string name, ArithmeticIntensity ai) {
    return AppSpec{std::move(name), ai, Placement::kNumaPerfect, 0, 0.0};
  }
  static AppSpec numa_bad(std::string name, ArithmeticIntensity ai, topo::NodeId home) {
    return AppSpec{std::move(name), ai, Placement::kNumaBad, home, 0.0};
  }
  AppSpec with_serial_fraction(double serial) const {
    AppSpec out = *this;
    out.serial_fraction = serial;
    return out;
  }
  /// Effective thread count of T real threads under Amdahl's law.
  double effective_threads(std::uint32_t threads) const {
    if (threads == 0) return 0.0;
    if (serial_fraction <= 0.0) return threads;
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / threads);
  }

  /// The memory node a thread of this app touches when executing on `exec`.
  topo::NodeId memory_node(topo::NodeId exec) const {
    return placement == Placement::kNumaPerfect ? exec : home_node;
  }

  bool is_remote_on(topo::NodeId exec) const {
    return placement == Placement::kNumaBad && exec != home_node;
  }
};

using AppId = std::uint32_t;

/// The canonical mixes the paper evaluates.
namespace mixes {

/// Tables I/II & Figure 2: three memory-bound (AI = 0.5) + one compute-bound
/// (AI = 10) application, all NUMA-perfect.
std::vector<AppSpec> inline three_mem_one_compute() {
  return {AppSpec::numa_perfect("mem-bound-1", 0.5), AppSpec::numa_perfect("mem-bound-2", 0.5),
          AppSpec::numa_perfect("mem-bound-3", 0.5), AppSpec::numa_perfect("compute-bound", 10.0)};
}

/// Figure 3: three NUMA-perfect memory-bound (AI = 0.5) + one NUMA-bad
/// (AI = 1) storing all data on `bad_home`.
std::vector<AppSpec> inline three_perfect_one_bad(topo::NodeId bad_home) {
  return {AppSpec::numa_perfect("perfect-1", 0.5), AppSpec::numa_perfect("perfect-2", 0.5),
          AppSpec::numa_perfect("perfect-3", 0.5), AppSpec::numa_bad("numa-bad", 1.0, bad_home)};
}

/// Table III rows 1-3: three memory-bound AI = 1/32 + one compute-bound AI = 1.
std::vector<AppSpec> inline skylake_mem_compute() {
  return {AppSpec::numa_perfect("mem-bound-1", 1.0 / 32.0),
          AppSpec::numa_perfect("mem-bound-2", 1.0 / 32.0),
          AppSpec::numa_perfect("mem-bound-3", 1.0 / 32.0),
          AppSpec::numa_perfect("compute-bound", 1.0)};
}

/// Table III rows 4-5: three NUMA-perfect AI = 1/32 + one NUMA-bad AI = 1/16.
std::vector<AppSpec> inline skylake_perfect_bad(topo::NodeId bad_home) {
  return {AppSpec::numa_perfect("perfect-1", 1.0 / 32.0),
          AppSpec::numa_perfect("perfect-2", 1.0 / 32.0),
          AppSpec::numa_perfect("perfect-3", 1.0 / 32.0),
          AppSpec::numa_bad("numa-bad", 1.0 / 16.0, bad_home)};
}

}  // namespace mixes

}  // namespace numashare::model
