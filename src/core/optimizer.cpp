#include "core/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/assert.hpp"

namespace numashare::model {

double score(const Solution& solution, Objective objective) {
  switch (objective) {
    case Objective::kTotalGflops:
      return solution.total_gflops;
    case Objective::kMinAppGflops: {
      double worst = std::numeric_limits<double>::infinity();
      for (auto g : solution.app_gflops) worst = std::min(worst, g);
      return solution.app_gflops.empty() ? 0.0 : worst;
    }
    case Objective::kProportionalFairness: {
      double total = 0.0;
      for (auto g : solution.app_gflops) {
        // An app at zero would dominate everything; floor far below any real
        // throughput so such allocations rank last but stay comparable.
        total += std::log(std::max(g, 1e-12));
      }
      return total;
    }
  }
  NS_ASSERT_MSG(false, "unknown objective");
  return 0.0;
}

const char* to_string(Objective objective) {
  switch (objective) {
    case Objective::kTotalGflops: return "total-gflops";
    case Objective::kMinAppGflops: return "min-app-gflops";
    case Objective::kProportionalFairness: return "proportional-fairness";
  }
  return "?";
}

namespace {

GFlops node_core_peak(const topo::Machine& machine, topo::NodeId node) {
  const auto& n = machine.node(node);
  NS_ASSERT(!n.cores.empty());
  return machine.core(n.cores.front()).peak_gflops;
}

GBps foreign_node_bw(const ForeignLoad& foreign, topo::NodeId node) {
  return node < foreign.bandwidth.size() ? std::max(0.0, foreign.bandwidth[node]) : 0.0;
}

double foreign_node_cores(const topo::Machine& machine, const ForeignLoad& foreign,
                          topo::NodeId node) {
  if (node >= foreign.busy_cores.size()) return 0.0;
  const double cores = machine.cores_in_node(node);
  return std::min(std::max(0.0, foreign.busy_cores[node]), cores);
}

void require_foreign_shape(const topo::Machine& machine, const ForeignLoad& foreign) {
  NS_REQUIRE(foreign.busy_cores.empty() || foreign.busy_cores.size() == machine.node_count(),
             "foreign busy_cores must be empty or one entry per node");
  NS_REQUIRE(foreign.bandwidth.empty() || foreign.bandwidth.size() == machine.node_count(),
             "foreign bandwidth must be empty or one entry per node");
}

void compose(std::uint32_t apps_left, std::uint32_t budget, bool require_full,
             std::uint32_t min_per_app, std::vector<std::uint32_t>& current,
             std::vector<std::vector<std::uint32_t>>& out) {
  if (apps_left == 1) {
    if (require_full) {
      if (budget >= min_per_app) {
        current.push_back(budget);
        out.push_back(current);
        current.pop_back();
      }
    } else {
      for (std::uint32_t c = min_per_app; c <= budget; ++c) {
        current.push_back(c);
        out.push_back(current);
        current.pop_back();
      }
    }
    return;
  }
  for (std::uint32_t c = min_per_app; c <= budget; ++c) {
    current.push_back(c);
    compose(apps_left - 1, budget - c, require_full, min_per_app, current, out);
    current.pop_back();
  }
}

/// Enforce per-app total-thread caps on a candidate: shave capped apps from
/// the last node down, then re-grant exactly the freed capacity (same nodes)
/// to apps still under their caps, round-robin. Keeps the per-node core
/// budget intact and leaves cores idle only when *every* app is capped out.
/// Per-app totals are computed once up front and maintained through the
/// shave and re-grant passes (they used to be recomputed O(nodes) inside the
/// grant loops, which was quadratic in the machine size).
void apply_caps(const topo::Machine& machine, Allocation& alloc,
                const std::vector<std::uint32_t>& caps, std::vector<std::uint32_t>& totals,
                std::vector<std::uint32_t>& freed) {
  const auto apps_n = static_cast<AppId>(caps.size());
  const auto nodes_n = machine.node_count();
  totals.assign(apps_n, 0);
  for (AppId a = 0; a < apps_n; ++a) {
    for (topo::NodeId n = 0; n < nodes_n; ++n) totals[a] += alloc.threads(a, n);
  }
  freed.assign(nodes_n, 0);
  for (AppId a = 0; a < apps_n; ++a) {
    for (topo::NodeId n = nodes_n; totals[a] > caps[a] && n > 0; --n) {
      const std::uint32_t cut = std::min(alloc.threads(a, n - 1), totals[a] - caps[a]);
      alloc.set_threads(a, n - 1, alloc.threads(a, n - 1) - cut);
      freed[n - 1] += cut;
      totals[a] -= cut;
    }
  }
  for (topo::NodeId n = 0; n < nodes_n; ++n) {
    while (freed[n] > 0) {
      bool granted = false;
      for (AppId a = 0; a < apps_n && freed[n] > 0; ++a) {
        if (totals[a] >= caps[a]) continue;
        alloc.set_threads(a, n, alloc.threads(a, n) + 1);
        ++totals[a];
        --freed[n];
        granted = true;
      }
      if (!granted) break;  // everyone capped out: the cores idle, by design
    }
  }
}

void apply_caps(const topo::Machine& machine, Allocation& alloc,
                const std::vector<std::uint32_t>& caps) {
  std::vector<std::uint32_t> totals;
  std::vector<std::uint32_t> freed;
  apply_caps(machine, alloc, caps, totals, freed);
}

std::uint32_t smallest_node_cores(const topo::Machine& machine) {
  std::uint32_t min_cores = machine.cores_in_node(0);
  for (topo::NodeId n = 1; n < machine.node_count(); ++n) {
    min_cores = std::min(min_cores, machine.cores_in_node(n));
  }
  return min_cores;
}

std::uint64_t saturating_mul(std::uint64_t a, std::uint64_t b) {
  if (a != 0 && b > std::numeric_limits<std::uint64_t>::max() / a) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return a * b;
}

/// C(n, k), saturating at UINT64_MAX. Exact while the running product fits:
/// r * (n - k + i) is computed before the exact division by i.
std::uint64_t binomial_capped(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::uint64_t r = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    const std::uint64_t factor = n - k + i;
    if (r > std::numeric_limits<std::uint64_t>::max() / factor) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    r = r * factor / i;
  }
  return r;
}

/// Admissible per-app upper bounds for the uniform family (see
/// docs/MODEL.md "Search cost and pruning"). With uniform count c an app's
/// GFLOPS cannot exceed min(c * slope, flat[a]) where
///   slope   = sum over nodes of the per-core compute peak (every app shares
///             the same slope because the peak is a node property), and
///   flat[a] = the app's bandwidth roofline (all controllers for
///             NUMA-perfect placement, the home controller for NUMA-bad)
///             intersected with its Amdahl ceiling when it has a serial
///             fraction.
struct SearchBounds {
  double slope = 0.0;
  std::vector<double> flat;
  std::vector<double> suffix_flat;  // suffix sums of flat, size apps + 1
};

SearchBounds make_search_bounds(const topo::Machine& machine, const std::vector<AppSpec>& apps,
                                const ForeignLoad& foreign) {
  SearchBounds b;
  const auto nodes_n = machine.node_count();
  // Foreign load tightens (never loosens) both axes of the bound: the slope
  // uses the compute left after foreign busy cores — a thread on node m gets
  // a share min(1, (C-F)/T) <= min(1, C-F) of a core — and the bandwidth
  // roofline uses the post-foreign effective controller bandwidth, since the
  // solver serves foreign draw off the top. With no foreign load both reduce
  // bitwise to the PR-5 bounds.
  double total_bw = 0.0;
  for (topo::NodeId m = 0; m < nodes_n; ++m) {
    const double avail =
        std::max(0.0, machine.cores_in_node(m) - foreign_node_cores(machine, foreign, m));
    b.slope += node_core_peak(machine, m) * std::min(1.0, avail);
    total_bw += std::max(0.0, machine.node(m).memory_bandwidth - foreign_node_bw(foreign, m));
  }
  b.flat.resize(apps.size());
  b.suffix_flat.assign(apps.size() + 1, 0.0);
  for (std::size_t a = 0; a < apps.size(); ++a) {
    const auto& app = apps[a];
    if (app.placement == Placement::kNumaBad) {
      NS_REQUIRE(app.home_node < nodes_n, "NUMA-bad home node out of range");
    }
    const double home_bw =
        app.placement == Placement::kNumaBad
            ? std::max(0.0, machine.node(app.home_node).memory_bandwidth -
                                foreign_node_bw(foreign, app.home_node))
            : 0.0;
    double f = app.placement == Placement::kNumaBad ? home_bw * app.ai : total_bw * app.ai;
    if (app.serial_fraction > 0.0) {
      // Amdahl: capped at thread-weighted mean peak x effective threads;
      // for uniform counts the mean is slope / nodes and eff(T) < 1/sigma.
      f = std::min(f, (b.slope / nodes_n) / app.serial_fraction);
    }
    b.flat[a] = f;
  }
  for (std::size_t a = apps.size(); a-- > 0;) {
    b.suffix_flat[a] = b.suffix_flat[a + 1] + b.flat[a];
  }
  return b;
}

/// Streaming branch-and-bound over the uniform family plus node
/// permutations. Candidates are visited in exactly the order the reference
/// enumeration materializes them (counts ascending per app; permutations in
/// std::next_permutation order after the uniform family) and the incumbent
/// is replaced only on strict improvement, so any subtree cut by an
/// *admissible* bound cannot change the winner: the two engines return
/// bitwise-identical objective values and allocations.
struct StreamSearch {
  const topo::Machine& machine;
  const std::vector<AppSpec>& apps;
  Objective objective;
  bool require_full;
  std::uint32_t min_per_app;
  const std::vector<std::uint32_t>& caps;
  /// Carries the foreign load into every candidate (and bound) solve.
  SolveOptions solve_options;

  std::uint32_t apps_n = 0;
  std::uint32_t nodes_n = 0;
  std::uint32_t budget = 0;
  /// Caps disable pruning: the post-cap re-grant can hand a candidate's
  /// shaved threads to a *different* app, so pre-cap per-app bounds are not
  /// admissible for the capped allocation. The enumeration still streams
  /// (nothing is materialized) and evaluates every candidate, which is what
  /// the reference engine does too.
  bool prune_enabled = true;

  SearchBounds bounds;
  Allocation workspace;  // the uniform candidate under construction, mutated in place
  Allocation capped;     // caps-applied copy of the workspace
  std::vector<std::uint32_t> cap_totals;
  std::vector<std::uint32_t> cap_freed;
  SolveScratch eval_scratch;   // full candidate evaluations
  SolveScratch bound_scratch;  // partial-prefix bound solves

  SearchResult best;

  StreamSearch(const topo::Machine& machine_, const std::vector<AppSpec>& apps_,
               Objective objective_, bool require_full_, std::uint32_t min_per_app_,
               const std::vector<std::uint32_t>& caps_, const ForeignLoad& foreign_)
      : machine(machine_),
        apps(apps_),
        objective(objective_),
        require_full(require_full_),
        min_per_app(min_per_app_),
        caps(caps_) {
    solve_options.foreign = foreign_;
    apps_n = static_cast<std::uint32_t>(apps.size());
    nodes_n = machine.node_count();
    budget = smallest_node_cores(machine);
    prune_enabled = caps.empty();
    if (prune_enabled) bounds = make_search_bounds(machine, apps, foreign_);
    workspace = Allocation(apps_n, nodes_n);
    best.objective_value = -std::numeric_limits<double>::infinity();
  }

  double app_ub(std::uint32_t a, std::uint32_t c) const {
    return std::min(static_cast<double>(c) * bounds.slope, bounds.flat[a]);
  }

  /// Admissible upper bound on every completion once apps [0, next_app) are
  /// assigned, from the prefix accumulators (pt: sum, pm: min, pl: log-sum
  /// — each already a valid bound on the assigned apps' final throughput)
  /// plus a fractional-relaxation bound on the unassigned tail sharing the
  /// `remaining` per-node budget.
  double combine_bound(double pt, double pm, double pl, std::uint32_t next_app,
                       std::uint32_t remaining) const {
    const std::uint32_t tail_n = apps_n - next_app;
    switch (objective) {
      case Objective::kTotalGflops:
        return pt + (tail_n == 0 ? 0.0
                                 : std::min(static_cast<double>(remaining) * bounds.slope,
                                            bounds.suffix_flat[next_app]));
      case Objective::kMinAppGflops:
        // Tail apps can only lower the minimum, never raise it.
        return pm;
      case Objective::kProportionalFairness: {
        double out = pl;
        if (tail_n > 0) {
          // Any single tail app can take at most the remaining budget minus
          // the minima its peers still need.
          const double cmax = static_cast<double>(remaining) -
                              static_cast<double>(min_per_app) * (tail_n - 1);
          for (std::uint32_t b = next_app; b < apps_n; ++b) {
            out += std::log(std::max(std::min(cmax * bounds.slope, bounds.flat[b]), 1e-12));
          }
        }
        return out;
      }
    }
    NS_ASSERT_MSG(false, "unknown objective");
    return std::numeric_limits<double>::infinity();
  }

  /// True when the (admissible) bound proves nothing in the subtree can
  /// strictly beat the incumbent. The margin absorbs floating-point noise in
  /// the bound arithmetic — pruning must never fire on a rounding hair.
  bool cuttable(double bound) const {
    return bound + 1e-9 * std::abs(bound) + 1e-12 <= best.objective_value;
  }

  void set_row(std::uint32_t a, std::uint32_t c) {
    for (topo::NodeId n = 0; n < nodes_n; ++n) workspace.set_threads(a, n, c);
  }

  void evaluate_current() {
    const Allocation* candidate = &workspace;
    if (!caps.empty()) {
      capped = workspace;
      apply_caps(machine, capped, caps, cap_totals, cap_freed);
      candidate = &capped;
    }
    const Solution& solution = solve_into(machine, apps, *candidate, eval_scratch, solve_options);
    ++best.evaluated;
    const double value = score(solution, objective);
    if (value > best.objective_value) {
      best.objective_value = value;
      best.allocation = *candidate;
      best.solution = solution;
    }
  }

  void leaf(std::uint32_t remaining, double pt, double pm, double pl) {
    const std::uint32_t a = apps_n - 1;
    if (remaining < min_per_app) return;
    const std::uint32_t c_lo = require_full ? remaining : min_per_app;
    for (std::uint32_t c = c_lo; c <= remaining; ++c) {
      ++best.visited;
      if (prune_enabled) {
        const double ub = app_ub(a, c);
        double bound = 0.0;
        switch (objective) {
          case Objective::kTotalGflops: bound = pt + ub; break;
          case Objective::kMinAppGflops: bound = std::min(pm, ub); break;
          case Objective::kProportionalFairness:
            bound = pl + std::log(std::max(ub, 1e-12));
            break;
        }
        if (cuttable(bound)) {
          ++best.pruned;
          continue;
        }
      }
      set_row(a, c);
      evaluate_current();
      set_row(a, 0);
    }
  }

  void descend(std::uint32_t a, std::uint32_t remaining, double pt, double pm, double pl) {
    if (a + 1 == apps_n) {
      leaf(remaining, pt, pm, pl);
      return;
    }
    const std::uint32_t tail_after = apps_n - a - 1;  // apps assigned after this one
    for (std::uint32_t c = min_per_app; c <= remaining; ++c) {
      const std::uint32_t rem_after = remaining - c;
      // Subtrees whose tail cannot reach min_per_app each contain no
      // candidates; counts only grow with c, so stop the scan here.
      if (static_cast<std::uint64_t>(min_per_app) * tail_after > rem_after) break;
      double cpt = 0.0;
      double cpm = 0.0;
      double cpl = 0.0;
      if (prune_enabled) {
        const double ub = app_ub(a, c);
        cpt = pt + ub;
        cpm = std::min(pm, ub);
        cpl = pl + std::log(std::max(ub, 1e-12));
        if (cuttable(combine_bound(cpt, cpm, cpl, a + 1, rem_after))) {
          ++best.pruned;
          continue;
        }
      }
      set_row(a, c);
      if (prune_enabled && tail_after >= 2) {
        // Tighten the prefix accumulators with an exact partial solve: the
        // model run on the prefix alone (tail rows zero). Removing apps only
        // frees bandwidth for the ones that remain, so each assigned app's
        // partial throughput upper-bounds its throughput in any completion.
        const Solution& partial =
            solve_into(machine, apps, workspace, bound_scratch, solve_options);
        ++best.bound_solves;
        double p_total = partial.total_gflops;
        double p_min = std::numeric_limits<double>::infinity();
        double p_log = 0.0;
        for (std::uint32_t p = 0; p <= a; ++p) {
          p_min = std::min(p_min, partial.app_gflops[p]);
          p_log += std::log(std::max(partial.app_gflops[p], 1e-12));
        }
        cpt = std::min(cpt, p_total);
        cpm = std::min(cpm, p_min);
        cpl = std::min(cpl, p_log);
        if (cuttable(combine_bound(cpt, cpm, cpl, a + 1, rem_after))) {
          ++best.pruned;
          set_row(a, 0);
          continue;
        }
      }
      descend(a + 1, rem_after, cpt, cpm, cpl);
      set_row(a, 0);
    }
  }

  void permutations() {
    std::vector<topo::NodeId> order(nodes_n);
    std::iota(order.begin(), order.end(), 0u);
    do {
      ++best.visited;
      // A node-per-app allocation duplicates a uniform-family candidate iff
      // every app's row is node-constant. With >= 1 core per node that
      // requires a single-node machine; the general check keeps the dedup
      // exact either way (the uniform family always contains the single-node
      // whole-machine candidate).
      bool duplicate = true;
      for (std::uint32_t a = 0; a < apps_n && duplicate; ++a) {
        const std::uint32_t first =
            order[a] == 0 ? machine.cores_in_node(order[a]) : 0;
        for (topo::NodeId n = 1; n < nodes_n; ++n) {
          const std::uint32_t cell = order[a] == n ? machine.cores_in_node(order[a]) : 0;
          if (cell != first) {
            duplicate = false;
            break;
          }
        }
      }
      if (duplicate && nodes_n >= 1) {
        ++best.deduped;
        continue;
      }
      for (std::uint32_t a = 0; a < apps_n; ++a) {
        workspace.set_threads(a, order[a], machine.cores_in_node(order[a]));
      }
      evaluate_current();
      for (std::uint32_t a = 0; a < apps_n; ++a) {
        workspace.set_threads(a, order[a], 0);
      }
    } while (std::next_permutation(order.begin(), order.end()));
  }

  SearchResult run() {
    descend(0, budget, 0.0, std::numeric_limits<double>::infinity(), 0.0);
    // Node permutations hand each app a full node, so they satisfy any
    // per-app minimum and are always admissible when counts line up.
    if (apps_n == nodes_n) permutations();
    NS_REQUIRE(best.evaluated > 0, "no candidate allocations");
    return std::move(best);
  }
};

SearchResult climb(const topo::Machine& machine, const std::vector<AppSpec>& apps,
                   const Allocation& start, Objective objective, std::uint32_t max_rounds,
                   double min_relative_gain, double churn_penalty_rel,
                   const Allocation* churn_seed, std::uint32_t min_app_total,
                   const ForeignLoad& foreign) {
  SolveScratch eval;
  SolveOptions solve_options;
  solve_options.foreign = foreign;
  SearchResult best;
  best.allocation = start;
  best.solution = solve_into(machine, apps, start, eval, solve_options);
  best.evaluated = 1;
  best.objective_value = score(best.solution, objective);

  const auto apps_n = static_cast<AppId>(apps.size());
  const auto nodes_n = machine.node_count();

  Allocation current = start;  // mutated per candidate move, restored after
  std::vector<std::uint32_t> totals(apps_n, 0);
  for (AppId a = 0; a < apps_n; ++a) {
    for (topo::NodeId n = 0; n < nodes_n; ++n) totals[a] += current.threads(a, n);
  }

  const bool penalized = churn_seed != nullptr && churn_penalty_rel > 0.0;
  const double per_unit = penalized ? churn_penalty_rel * std::abs(best.objective_value) : 0.0;
  std::int64_t churn = 0;  // L1 distance of the incumbent from the seed
  if (penalized) {
    for (AppId a = 0; a < apps_n; ++a) {
      for (topo::NodeId n = 0; n < nodes_n; ++n) {
        churn += std::abs(static_cast<std::int64_t>(current.threads(a, n)) -
                          static_cast<std::int64_t>(churn_seed->threads(a, n)));
      }
    }
  }
  double incumbent_ranked =
      best.objective_value - per_unit * static_cast<double>(churn);

  struct Move {
    enum class Kind : std::uint8_t { kAdd, kDrop, kShift };
    Kind kind = Kind::kAdd;
    AppId a = 0;
    AppId b = 0;  // shift target
    topo::NodeId n = 0;
  };

  const auto cell_delta = [&](AppId a, topo::NodeId n, std::int32_t d) -> std::int64_t {
    const auto cur = static_cast<std::int64_t>(current.threads(a, n));
    const auto seed = static_cast<std::int64_t>(churn_seed->threads(a, n));
    return std::abs(cur + d - seed) - std::abs(cur - seed);
  };
  const auto move_delta = [&](const Move& m) -> std::int64_t {
    if (!penalized) return 0;
    switch (m.kind) {
      case Move::Kind::kAdd: return cell_delta(m.a, m.n, +1);
      case Move::Kind::kDrop: return cell_delta(m.a, m.n, -1);
      case Move::Kind::kShift: return cell_delta(m.a, m.n, -1) + cell_delta(m.b, m.n, +1);
    }
    return 0;
  };
  const auto do_move = [&](const Move& m) {
    switch (m.kind) {
      case Move::Kind::kAdd:
        current.set_threads(m.a, m.n, current.threads(m.a, m.n) + 1);
        ++totals[m.a];
        break;
      case Move::Kind::kDrop:
        current.set_threads(m.a, m.n, current.threads(m.a, m.n) - 1);
        --totals[m.a];
        break;
      case Move::Kind::kShift:
        current.set_threads(m.a, m.n, current.threads(m.a, m.n) - 1);
        current.set_threads(m.b, m.n, current.threads(m.b, m.n) + 1);
        --totals[m.a];
        ++totals[m.b];
        break;
    }
  };
  const auto undo_move = [&](const Move& m) {
    switch (m.kind) {
      case Move::Kind::kAdd:
        current.set_threads(m.a, m.n, current.threads(m.a, m.n) - 1);
        --totals[m.a];
        break;
      case Move::Kind::kDrop:
        current.set_threads(m.a, m.n, current.threads(m.a, m.n) + 1);
        ++totals[m.a];
        break;
      case Move::Kind::kShift:
        current.set_threads(m.a, m.n, current.threads(m.a, m.n) + 1);
        current.set_threads(m.b, m.n, current.threads(m.b, m.n) - 1);
        ++totals[m.a];
        --totals[m.b];
        break;
    }
  };

  Solution round_best_solution;
  for (std::uint32_t round = 0; round < max_rounds; ++round) {
    double round_best_ranked = incumbent_ranked;
    double round_best_raw = best.objective_value;
    Move round_best_move;
    std::int64_t round_best_delta = 0;
    bool improved = false;

    const auto consider = [&](const Move& m) {
      const std::int64_t delta = move_delta(m);
      do_move(m);
      const Solution& solution = solve_into(machine, apps, current, eval, solve_options);
      ++best.evaluated;
      const double raw = score(solution, objective);
      const double ranked = penalized ? raw - per_unit * static_cast<double>(churn + delta) : raw;
      const double threshold =
          round_best_ranked + std::abs(round_best_ranked) * min_relative_gain + 1e-15;
      if (ranked > threshold) {
        round_best_ranked = ranked;
        round_best_raw = raw;
        round_best_move = m;
        round_best_delta = delta;
        round_best_solution = solution;
        improved = true;
      }
      undo_move(m);
    };

    for (topo::NodeId n = 0; n < nodes_n; ++n) {
      const std::uint32_t used = current.node_total(n);
      for (AppId a = 0; a < apps_n; ++a) {
        const std::uint32_t have = current.threads(a, n);
        // Add a thread on a free core.
        if (used < machine.cores_in_node(n)) {
          consider({Move::Kind::kAdd, a, a, n});
        }
        if (have == 0) continue;
        const bool may_shrink = totals[a] > min_app_total;
        // Drop a thread (helps sub-linear-scaling mixes).
        if (may_shrink) {
          consider({Move::Kind::kDrop, a, a, n});
        }
        // Shift a thread to another app on the same node.
        if (may_shrink) {
          for (AppId b = 0; b < apps_n; ++b) {
            if (b == a) continue;
            consider({Move::Kind::kShift, a, b, n});
          }
        }
      }
    }

    if (!improved) break;
    do_move(round_best_move);
    churn += round_best_delta;
    incumbent_ranked = round_best_ranked;
    best.allocation = current;
    best.solution = round_best_solution;
    best.objective_value = round_best_raw;
  }
  return best;
}

}  // namespace

std::vector<Allocation> enumerate_uniform(const topo::Machine& machine, std::uint32_t apps,
                                          bool require_full,
                                          std::uint32_t min_threads_per_app) {
  NS_REQUIRE(apps > 0, "need at least one app");
  const std::uint32_t min_cores = smallest_node_cores(machine);
  NS_REQUIRE(min_threads_per_app * apps <= min_cores,
             "min_threads_per_app infeasible on the smallest node");
  std::vector<std::vector<std::uint32_t>> compositions;
  std::vector<std::uint32_t> current;
  compose(apps, min_cores, require_full, min_threads_per_app, current, compositions);

  std::vector<Allocation> out;
  out.reserve(compositions.size());
  for (auto& counts : compositions) {
    out.push_back(Allocation::uniform_per_node(machine, counts));
  }
  return out;
}

std::vector<Allocation> enumerate_node_permutations(const topo::Machine& machine) {
  std::vector<topo::NodeId> order(machine.node_count());
  std::iota(order.begin(), order.end(), 0u);
  std::vector<Allocation> out;
  do {
    out.push_back(Allocation::node_per_app(machine, order));
  } while (std::next_permutation(order.begin(), order.end()));
  return out;
}

std::uint64_t count_candidates(const topo::Machine& machine, std::uint32_t apps,
                               bool require_full, std::uint32_t min_threads_per_app) {
  NS_REQUIRE(apps > 0, "need at least one app");
  const std::uint32_t budget = smallest_node_cores(machine);
  min_threads_per_app = std::min(min_threads_per_app, budget / apps);
  // Stars and bars on the slack left after every app takes its minimum:
  // compositions summing exactly to the budget (require_full) or to at most
  // the budget (one extra "idle" bin).
  const std::uint64_t slack = budget - static_cast<std::uint64_t>(min_threads_per_app) * apps;
  std::uint64_t n = require_full ? binomial_capped(slack + apps - 1, apps - 1)
                                 : binomial_capped(slack + apps, apps);
  if (apps == machine.node_count()) {
    std::uint64_t perms = 1;
    for (std::uint32_t k = 2; k <= machine.node_count(); ++k) {
      perms = saturating_mul(perms, k);
    }
    n += perms;  // node-permutation family
    if (n < perms) n = std::numeric_limits<std::uint64_t>::max();
  }
  return n;
}

SearchResult exhaustive_search(const topo::Machine& machine, const std::vector<AppSpec>& apps,
                               Objective objective, bool require_full,
                               std::uint32_t min_threads_per_app,
                               const std::vector<std::uint32_t>& caps,
                               const ForeignLoad& foreign) {
  NS_REQUIRE(!apps.empty(), "need at least one app");
  NS_REQUIRE(caps.empty() || caps.size() == apps.size(),
             "caps must be empty or one per app");
  require_foreign_shape(machine, foreign);
  // Clamp an infeasible per-app minimum (more apps than cores per node)
  // rather than refusing: policies run against whatever machine they find.
  const std::uint32_t min_cores = smallest_node_cores(machine);
  const auto apps_n = static_cast<std::uint32_t>(apps.size());
  min_threads_per_app = std::min(min_threads_per_app, min_cores / std::max(1u, apps_n));
  StreamSearch search(machine, apps, objective, require_full, min_threads_per_app, caps,
                      foreign);
  return search.run();
}

SearchResult exhaustive_search_reference(const topo::Machine& machine,
                                         const std::vector<AppSpec>& apps, Objective objective,
                                         bool require_full, std::uint32_t min_threads_per_app,
                                         const std::vector<std::uint32_t>& caps,
                                         const ForeignLoad& foreign) {
  NS_REQUIRE(caps.empty() || caps.size() == apps.size(),
             "caps must be empty or one per app");
  require_foreign_shape(machine, foreign);
  const std::uint32_t min_cores = smallest_node_cores(machine);
  const auto apps_n = static_cast<std::uint32_t>(apps.size());
  min_threads_per_app = std::min(min_threads_per_app, min_cores / std::max(1u, apps_n));
  auto candidates = enumerate_uniform(machine, apps_n, require_full, min_threads_per_app);
  if (apps.size() == machine.node_count()) {
    auto perms = enumerate_node_permutations(machine);
    candidates.insert(candidates.end(), perms.begin(), perms.end());
  }
  NS_REQUIRE(!candidates.empty(), "no candidate allocations");
  if (!caps.empty()) {
    for (auto& candidate : candidates) apply_caps(machine, candidate, caps);
  }
  SolveOptions solve_options;
  solve_options.foreign = foreign;

  SearchResult best;
  best.objective_value = -std::numeric_limits<double>::infinity();
  for (const auto& candidate : candidates) {
    Solution solution = solve(machine, apps, candidate, solve_options);
    ++best.evaluated;
    ++best.visited;
    const double value = score(solution, objective);
    if (value > best.objective_value) {
      best.objective_value = value;
      best.allocation = candidate;
      best.solution = std::move(solution);
    }
  }
  return best;
}

SearchResult greedy_search(const topo::Machine& machine, const std::vector<AppSpec>& apps,
                           const Allocation& start, const GreedyOptions& options) {
  std::string error;
  NS_REQUIRE(start.validate(machine, &error), error.c_str());
  require_foreign_shape(machine, options.foreign);
  return climb(machine, apps, start, options.objective, options.max_rounds,
               options.min_relative_gain, /*churn_penalty_rel=*/0.0, /*churn_seed=*/nullptr,
               /*min_app_total=*/0, options.foreign);
}

SearchResult refine_search(const topo::Machine& machine, const std::vector<AppSpec>& apps,
                           const Allocation& seed, const RefineOptions& options) {
  std::string error;
  NS_REQUIRE(seed.validate(machine, &error), error.c_str());
  require_foreign_shape(machine, options.foreign);
  return climb(machine, apps, seed, options.objective, options.max_rounds,
               options.min_relative_gain, options.churn_penalty, &seed,
               options.min_threads_per_app, options.foreign);
}

}  // namespace numashare::model
