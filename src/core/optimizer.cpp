#include "core/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/assert.hpp"

namespace numashare::model {

double score(const Solution& solution, Objective objective) {
  switch (objective) {
    case Objective::kTotalGflops:
      return solution.total_gflops;
    case Objective::kMinAppGflops: {
      double worst = std::numeric_limits<double>::infinity();
      for (auto g : solution.app_gflops) worst = std::min(worst, g);
      return solution.app_gflops.empty() ? 0.0 : worst;
    }
    case Objective::kProportionalFairness: {
      double total = 0.0;
      for (auto g : solution.app_gflops) {
        // An app at zero would dominate everything; floor far below any real
        // throughput so such allocations rank last but stay comparable.
        total += std::log(std::max(g, 1e-12));
      }
      return total;
    }
  }
  NS_ASSERT_MSG(false, "unknown objective");
  return 0.0;
}

const char* to_string(Objective objective) {
  switch (objective) {
    case Objective::kTotalGflops: return "total-gflops";
    case Objective::kMinAppGflops: return "min-app-gflops";
    case Objective::kProportionalFairness: return "proportional-fairness";
  }
  return "?";
}

namespace {

void compose(std::uint32_t apps_left, std::uint32_t budget, bool require_full,
             std::uint32_t min_per_app, std::vector<std::uint32_t>& current,
             std::vector<std::vector<std::uint32_t>>& out) {
  if (apps_left == 1) {
    if (require_full) {
      if (budget >= min_per_app) {
        current.push_back(budget);
        out.push_back(current);
        current.pop_back();
      }
    } else {
      for (std::uint32_t c = min_per_app; c <= budget; ++c) {
        current.push_back(c);
        out.push_back(current);
        current.pop_back();
      }
    }
    return;
  }
  for (std::uint32_t c = min_per_app; c <= budget; ++c) {
    current.push_back(c);
    compose(apps_left - 1, budget - c, require_full, min_per_app, current, out);
    current.pop_back();
  }
}

/// Enforce per-app total-thread caps on a candidate: shave capped apps from
/// the last node down, then re-grant exactly the freed capacity (same nodes)
/// to apps still under their caps, round-robin. Keeps the per-node core
/// budget intact and leaves cores idle only when *every* app is capped out.
void apply_caps(const topo::Machine& machine, Allocation& alloc,
                const std::vector<std::uint32_t>& caps) {
  const auto apps_n = static_cast<AppId>(caps.size());
  const auto app_total = [&](AppId a) {
    std::uint32_t total = 0;
    for (topo::NodeId n = 0; n < machine.node_count(); ++n) total += alloc.threads(a, n);
    return total;
  };
  std::vector<std::uint32_t> freed(machine.node_count(), 0);
  for (AppId a = 0; a < apps_n; ++a) {
    std::uint32_t total = app_total(a);
    for (topo::NodeId n = machine.node_count(); total > caps[a] && n > 0; --n) {
      const std::uint32_t cut = std::min(alloc.threads(a, n - 1), total - caps[a]);
      alloc.set_threads(a, n - 1, alloc.threads(a, n - 1) - cut);
      freed[n - 1] += cut;
      total -= cut;
    }
  }
  for (topo::NodeId n = 0; n < machine.node_count(); ++n) {
    while (freed[n] > 0) {
      bool granted = false;
      for (AppId a = 0; a < apps_n && freed[n] > 0; ++a) {
        if (app_total(a) >= caps[a]) continue;
        alloc.set_threads(a, n, alloc.threads(a, n) + 1);
        --freed[n];
        granted = true;
      }
      if (!granted) break;  // everyone capped out: the cores idle, by design
    }
  }
}

}  // namespace

std::vector<Allocation> enumerate_uniform(const topo::Machine& machine, std::uint32_t apps,
                                          bool require_full,
                                          std::uint32_t min_threads_per_app) {
  NS_REQUIRE(apps > 0, "need at least one app");
  std::uint32_t min_cores = machine.cores_in_node(0);
  for (topo::NodeId n = 1; n < machine.node_count(); ++n) {
    min_cores = std::min(min_cores, machine.cores_in_node(n));
  }
  NS_REQUIRE(min_threads_per_app * apps <= min_cores,
             "min_threads_per_app infeasible on the smallest node");
  std::vector<std::vector<std::uint32_t>> compositions;
  std::vector<std::uint32_t> current;
  compose(apps, min_cores, require_full, min_threads_per_app, current, compositions);

  std::vector<Allocation> out;
  out.reserve(compositions.size());
  for (auto& counts : compositions) {
    out.push_back(Allocation::uniform_per_node(machine, counts));
  }
  return out;
}

std::vector<Allocation> enumerate_node_permutations(const topo::Machine& machine) {
  std::vector<topo::NodeId> order(machine.node_count());
  std::iota(order.begin(), order.end(), 0u);
  std::vector<Allocation> out;
  do {
    out.push_back(Allocation::node_per_app(machine, order));
  } while (std::next_permutation(order.begin(), order.end()));
  return out;
}

SearchResult exhaustive_search(const topo::Machine& machine, const std::vector<AppSpec>& apps,
                               Objective objective, bool require_full,
                               std::uint32_t min_threads_per_app,
                               const std::vector<std::uint32_t>& caps) {
  NS_REQUIRE(caps.empty() || caps.size() == apps.size(),
             "caps must be empty or one per app");
  // Clamp an infeasible per-app minimum (more apps than cores per node)
  // rather than refusing: policies run against whatever machine they find.
  std::uint32_t min_cores = machine.cores_in_node(0);
  for (topo::NodeId n = 1; n < machine.node_count(); ++n) {
    min_cores = std::min(min_cores, machine.cores_in_node(n));
  }
  const auto apps_n = static_cast<std::uint32_t>(apps.size());
  min_threads_per_app = std::min(min_threads_per_app, min_cores / std::max(1u, apps_n));
  auto candidates = enumerate_uniform(machine, apps_n, require_full, min_threads_per_app);
  // Node permutations hand each app a full node, so they satisfy any
  // per-app minimum and are always admissible when counts line up.
  if (apps.size() == machine.node_count()) {
    auto perms = enumerate_node_permutations(machine);
    candidates.insert(candidates.end(), perms.begin(), perms.end());
  }
  NS_REQUIRE(!candidates.empty(), "no candidate allocations");
  if (!caps.empty()) {
    for (auto& candidate : candidates) apply_caps(machine, candidate, caps);
  }

  SearchResult best;
  best.objective_value = -std::numeric_limits<double>::infinity();
  for (const auto& candidate : candidates) {
    Solution solution = solve(machine, apps, candidate);
    ++best.evaluated;
    const double value = score(solution, objective);
    if (value > best.objective_value) {
      best.objective_value = value;
      best.allocation = candidate;
      best.solution = std::move(solution);
    }
  }
  return best;
}

SearchResult greedy_search(const topo::Machine& machine, const std::vector<AppSpec>& apps,
                           const Allocation& start, const GreedyOptions& options) {
  std::string error;
  NS_REQUIRE(start.validate(machine, &error), error.c_str());

  SearchResult best;
  best.allocation = start;
  best.solution = solve(machine, apps, start);
  best.evaluated = 1;
  best.objective_value = score(best.solution, options.objective);

  const auto apps_n = static_cast<AppId>(apps.size());
  for (std::uint32_t round = 0; round < options.max_rounds; ++round) {
    Allocation round_best_alloc = best.allocation;
    Solution round_best_solution;
    double round_best_value = best.objective_value;
    bool improved = false;

    const auto consider = [&](Allocation candidate) {
      if (!candidate.validate(machine)) return;
      Solution solution = solve(machine, apps, candidate);
      ++best.evaluated;
      const double value = score(solution, options.objective);
      const double threshold =
          round_best_value + std::abs(round_best_value) * options.min_relative_gain + 1e-15;
      if (value > threshold) {
        round_best_value = value;
        round_best_alloc = std::move(candidate);
        round_best_solution = std::move(solution);
        improved = true;
      }
    };

    for (topo::NodeId n = 0; n < machine.node_count(); ++n) {
      const std::uint32_t used = best.allocation.node_total(n);
      for (AppId a = 0; a < apps_n; ++a) {
        const std::uint32_t have = best.allocation.threads(a, n);
        // Add a thread on a free core.
        if (used < machine.cores_in_node(n)) {
          Allocation candidate = best.allocation;
          candidate.set_threads(a, n, have + 1);
          consider(std::move(candidate));
        }
        if (have == 0) continue;
        // Drop a thread (helps sub-linear-scaling mixes).
        {
          Allocation candidate = best.allocation;
          candidate.set_threads(a, n, have - 1);
          consider(std::move(candidate));
        }
        // Shift a thread to another app on the same node.
        for (AppId b = 0; b < apps_n; ++b) {
          if (b == a) continue;
          Allocation candidate = best.allocation;
          candidate.set_threads(a, n, have - 1);
          candidate.set_threads(b, n, candidate.threads(b, n) + 1);
          consider(std::move(candidate));
        }
      }
    }

    if (!improved) break;
    best.allocation = std::move(round_best_alloc);
    best.solution = std::move(round_best_solution);
    best.objective_value = round_best_value;
  }
  return best;
}

}  // namespace numashare::model
