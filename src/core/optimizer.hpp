// Allocation search over the model — what a model-guided agent runs to pick
// per-node thread counts (paper §III: "we need to be aware of the NUMA
// architecture and also of the way memory is used by the application").
//
// Three engines:
//  * exhaustive_search — streaming branch-and-bound over the
//    restricted-but-expressive families the paper discusses
//    (uniform-per-node counts; node-permutation assignments). Candidates are
//    visited via an in-place enumerator (nothing is materialized) and
//    subtrees are cut with admissible upper bounds, so it provably returns
//    the same winner as brute force at a fraction of the solves
//    (docs/MODEL.md "Search cost and pruning");
//  * greedy_search / refine_search — hill-climbing over single-thread moves
//    for general machines and for incremental re-optimization between
//    structural ticks;
//  * exhaustive_search_reference — the original materialize-then-evaluate
//    brute force, kept for equivalence tests and before/after benchmarks.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/allocation.hpp"
#include "core/roofline.hpp"

namespace numashare::model {

enum class Objective {
  /// Maximize machine throughput (the paper's comparison metric).
  kTotalGflops,
  /// Maximize the slowest application (egalitarian fairness).
  kMinAppGflops,
  /// Maximize sum of log(app GFLOPS) (proportional fairness).
  kProportionalFairness,
};

double score(const Solution& solution, Objective objective);
const char* to_string(Objective objective);

struct SearchResult {
  Allocation allocation;
  Solution solution;
  double objective_value = 0.0;
  std::uint64_t evaluated = 0;  // full model solves on candidate allocations
  /// Streaming-engine accounting (zero for the reference/greedy engines
  /// where not meaningful): candidates reached by the enumerator, subtrees
  /// and leaves cut by the admissible bounds, partial-prefix model solves
  /// spent computing those bounds, and node-permutation candidates skipped
  /// as duplicates of the uniform family.
  std::uint64_t visited = 0;
  std::uint64_t pruned = 0;
  std::uint64_t bound_solves = 0;
  std::uint64_t deduped = 0;
};

/// All allocations where app `a` runs counts[a] threads on *every* node, the
/// per-node sum not exceeding the core count. `require_full` keeps only
/// allocations using every core (the paper's no-idle-cores scenarios).
/// `min_threads_per_app` excludes allocations that starve an application
/// below that per-node count — the paper's scenarios implicitly keep every
/// app running, without which pure-throughput search degenerates to handing
/// the whole machine to the most compute-bound code.
std::vector<Allocation> enumerate_uniform(const topo::Machine& machine, std::uint32_t apps,
                                          bool require_full,
                                          std::uint32_t min_threads_per_app = 0);

/// All assignments of whole nodes to apps (apps == node_count), i.e. every
/// permutation in Figure 2c style. Distinguishable only when some app is
/// NUMA-bad or the machine is asymmetric.
std::vector<Allocation> enumerate_node_permutations(const topo::Machine& machine);

/// Exhaustive search over the union of the two families above.
///
/// `caps` (empty = uncapped) bounds each app's *total* thread count — the
/// compliance layer's administrative ceiling on quarantined/laggard clients.
/// Candidates are clamped to respect the caps and the capacity a cap frees
/// up is re-granted to apps with headroom, so reclaimed cores stay grantable
/// instead of idling.
///
/// `foreign` (empty = none) injects opaque background consumers into every
/// candidate solve, so the search prices foreign contention and steers
/// cooperating apps away from occupied nodes. Foreign load can only lower a
/// candidate's true score, so the branch-and-bound ceilings stay admissible;
/// they are additionally *tightened* with the post-foreign effective
/// bandwidth and compute (never loosened — see docs/FOREIGN.md).
SearchResult exhaustive_search(const topo::Machine& machine, const std::vector<AppSpec>& apps,
                               Objective objective, bool require_full = false,
                               std::uint32_t min_threads_per_app = 0,
                               const std::vector<std::uint32_t>& caps = {},
                               const ForeignLoad& foreign = {});

/// The original materialize-then-evaluate brute force over the same
/// candidate families (including the historical double evaluation of
/// node-permutation candidates on single-node machines). Test/bench-only:
/// O(candidates) resident memory and one allocating solve per candidate.
/// exhaustive_search must select the same allocation with the same objective
/// value — tests/core/search_equivalence_test.cpp holds the two engines to
/// that on randomized problems.
SearchResult exhaustive_search_reference(const topo::Machine& machine,
                                         const std::vector<AppSpec>& apps, Objective objective,
                                         bool require_full = false,
                                         std::uint32_t min_threads_per_app = 0,
                                         const std::vector<std::uint32_t>& caps = {},
                                         const ForeignLoad& foreign = {});

/// Closed-form size of the candidate set exhaustive_search ranges over
/// (uniform family + node permutations when apps == node_count), after the
/// same min_threads_per_app clamping the search applies. Saturates at
/// UINT64_MAX. Lets benches and callers reason about search cost without
/// enumerating anything.
std::uint64_t count_candidates(const topo::Machine& machine, std::uint32_t apps,
                               bool require_full, std::uint32_t min_threads_per_app = 0);

struct GreedyOptions {
  Objective objective = Objective::kTotalGflops;
  std::uint32_t max_rounds = 1000;
  /// Improvements smaller than this (relative) do not count, preventing
  /// floating-point ping-pong.
  double min_relative_gain = 1e-9;
  /// Opaque background consumers priced into every candidate solve (empty =
  /// none). The hill-climb's drop moves are what let a policy *vacate* a
  /// foreign-occupied node — the uniform exhaustive family cannot express
  /// per-node asymmetry, so foreign-aware policies polish the full-search
  /// winner with a greedy pass.
  ForeignLoad foreign;
};

/// Hill-climb from `start` using single-thread moves: remove a thread,
/// add one on a free core, or shift one between apps on the same node.
/// Terminates at a local optimum.
SearchResult greedy_search(const topo::Machine& machine, const std::vector<AppSpec>& apps,
                           const Allocation& start, const GreedyOptions& options = {});

struct RefineOptions {
  Objective objective = Objective::kTotalGflops;
  std::uint32_t max_rounds = 1000;
  double min_relative_gain = 1e-9;
  /// Churn penalty: each unit of L1 distance between a candidate and the
  /// seed allocation costs this fraction of the seed's |objective value|
  /// when ranking moves. 0 disables — pure hill-climbing from the seed.
  /// The returned objective_value is always the raw (unpenalized) score of
  /// the final allocation.
  double churn_penalty = 0.0;
  /// No move may push an app's *total* thread count below this floor (the
  /// incremental analogue of exhaustive_search's per-node minimum: it keeps
  /// every app running between full searches).
  std::uint32_t min_threads_per_app = 0;
  /// Opaque background consumers priced into every candidate solve (empty =
  /// none); see GreedyOptions::foreign.
  ForeignLoad foreign;
};

/// Incremental re-optimization for non-structural ticks: hill-climb from the
/// previous decision's allocation instead of re-running the full search.
/// Shares greedy_search's move set and acceptance rule, plus an optional
/// churn penalty that biases the climb toward staying near the seed — thread
/// moves are not free for the runtimes enacting them (paper §V favours
/// gentle moves). Caps are not supported here; callers with administrative
/// caps fall back to the full search.
SearchResult refine_search(const topo::Machine& machine, const std::vector<AppSpec>& apps,
                           const Allocation& seed, const RefineOptions& options = {});

}  // namespace numashare::model
