// Allocation search over the model — what a model-guided agent runs to pick
// per-node thread counts (paper §III: "we need to be aware of the NUMA
// architecture and also of the way memory is used by the application").
//
// Two engines:
//  * exhaustive enumeration over restricted-but-expressive families
//    (uniform-per-node counts; node-permutation assignments), matching the
//    shapes the paper discusses, and
//  * greedy hill-climbing over single-thread moves for general machines,
//    where full enumeration is combinatorial.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/allocation.hpp"
#include "core/roofline.hpp"

namespace numashare::model {

enum class Objective {
  /// Maximize machine throughput (the paper's comparison metric).
  kTotalGflops,
  /// Maximize the slowest application (egalitarian fairness).
  kMinAppGflops,
  /// Maximize sum of log(app GFLOPS) (proportional fairness).
  kProportionalFairness,
};

double score(const Solution& solution, Objective objective);
const char* to_string(Objective objective);

struct SearchResult {
  Allocation allocation;
  Solution solution;
  double objective_value = 0.0;
  std::uint64_t evaluated = 0;  // model solves performed
};

/// All allocations where app `a` runs counts[a] threads on *every* node, the
/// per-node sum not exceeding the core count. `require_full` keeps only
/// allocations using every core (the paper's no-idle-cores scenarios).
/// `min_threads_per_app` excludes allocations that starve an application
/// below that per-node count — the paper's scenarios implicitly keep every
/// app running, without which pure-throughput search degenerates to handing
/// the whole machine to the most compute-bound code.
std::vector<Allocation> enumerate_uniform(const topo::Machine& machine, std::uint32_t apps,
                                          bool require_full,
                                          std::uint32_t min_threads_per_app = 0);

/// All assignments of whole nodes to apps (apps == node_count), i.e. every
/// permutation in Figure 2c style. Distinguishable only when some app is
/// NUMA-bad or the machine is asymmetric.
std::vector<Allocation> enumerate_node_permutations(const topo::Machine& machine);

/// Exhaustive search over the union of the two families above.
///
/// `caps` (empty = uncapped) bounds each app's *total* thread count — the
/// compliance layer's administrative ceiling on quarantined/laggard clients.
/// Candidates are clamped to respect the caps and the capacity a cap frees
/// up is re-granted to apps with headroom, so reclaimed cores stay grantable
/// instead of idling.
SearchResult exhaustive_search(const topo::Machine& machine, const std::vector<AppSpec>& apps,
                               Objective objective, bool require_full = false,
                               std::uint32_t min_threads_per_app = 0,
                               const std::vector<std::uint32_t>& caps = {});

struct GreedyOptions {
  Objective objective = Objective::kTotalGflops;
  std::uint32_t max_rounds = 1000;
  /// Improvements smaller than this (relative) do not count, preventing
  /// floating-point ping-pong.
  double min_relative_gain = 1e-9;
};

/// Hill-climb from `start` using single-thread moves: remove a thread,
/// add one on a free core, or shift one between apps on the same node.
/// Terminates at a local optimum.
SearchResult greedy_search(const topo::Machine& machine, const std::vector<AppSpec>& apps,
                           const Allocation& start, const GreedyOptions& options = {});

}  // namespace numashare::model
