#include "core/paper_scenarios.hpp"

#include "topology/presets.hpp"

namespace numashare::model::paper {

Scenario table1() {
  Scenario s;
  s.id = "table1";
  s.description = "uneven allocation (1,1,1,5), 3x memory-bound AI=0.5 + compute-bound AI=10";
  s.machine = topo::paper_model_machine();
  s.apps = mixes::three_mem_one_compute();
  s.allocation = Allocation::uniform_per_node(s.machine, {1, 1, 1, 5});
  s.paper_model_gflops = 254.0;
  return s;
}

Scenario table2() {
  Scenario s;
  s.id = "table2";
  s.description = "even allocation (2,2,2,2), 3x memory-bound AI=0.5 + compute-bound AI=10";
  s.machine = topo::paper_model_machine();
  s.apps = mixes::three_mem_one_compute();
  s.allocation = Allocation::uniform_per_node(s.machine, {2, 2, 2, 2});
  s.paper_model_gflops = 140.0;
  return s;
}

Scenario fig2_node_per_app() {
  Scenario s;
  s.id = "fig2c";
  s.description = "one NUMA node per application";
  s.machine = topo::paper_model_machine();
  s.apps = mixes::three_mem_one_compute();
  s.allocation = Allocation::node_per_app(s.machine, {0, 1, 2, 3});
  s.paper_model_gflops = 128.0;
  return s;
}

std::vector<Scenario> fig2() {
  auto a = table1();
  a.id = "fig2a";
  auto b = table2();
  b.id = "fig2b";
  return {a, b, fig2_node_per_app()};
}

Scenario fig3_even() {
  Scenario s;
  s.id = "fig3-even";
  s.description = "NUMA-bad mix, even allocation (2,2,2,2); bad app homes on node 0";
  s.machine = topo::paper_numabad_machine();
  s.apps = mixes::three_perfect_one_bad(/*bad_home=*/0);
  s.allocation = Allocation::uniform_per_node(s.machine, {2, 2, 2, 2});
  // The paper prints 138; the exact model value is 138.75 (see DESIGN.md §3).
  s.paper_model_gflops = 138.0;
  return s;
}

Scenario fig3_node_per_app() {
  Scenario s;
  s.id = "fig3-wholenode";
  s.description = "NUMA-bad mix, one node per app, bad app on its data node";
  s.machine = topo::paper_numabad_machine();
  s.apps = mixes::three_perfect_one_bad(/*bad_home=*/0);
  // Bad app is index 3; give it node 0 (its data node) and spread the others.
  s.allocation = Allocation::node_per_app(s.machine, {1, 2, 3, 0});
  s.paper_model_gflops = 150.0;
  return s;
}

std::vector<Scenario> table3() {
  std::vector<Scenario> rows;
  const auto machine = topo::paper_skylake_machine();

  {
    Scenario s;
    s.id = "table3-row1";
    s.description = "uneven thread allocation (3,3,3,11)";
    s.machine = machine;
    s.apps = mixes::skylake_mem_compute();
    s.allocation = Allocation::uniform_per_node(s.machine, {3, 3, 3, 11});
    s.paper_model_gflops = 23.20;
    s.paper_real_gflops = 22.82;
    rows.push_back(std::move(s));
  }
  {
    Scenario s;
    s.id = "table3-row2";
    s.description = "even thread allocation (5,5,5,5) [model calibration case]";
    s.machine = machine;
    s.apps = mixes::skylake_mem_compute();
    s.allocation = Allocation::uniform_per_node(s.machine, {5, 5, 5, 5});
    s.paper_model_gflops = 18.12;
    s.paper_real_gflops = 18.14;
    rows.push_back(std::move(s));
  }
  {
    Scenario s;
    s.id = "table3-row3";
    s.description = "one NUMA node per application";
    s.machine = machine;
    s.apps = mixes::skylake_mem_compute();
    s.allocation = Allocation::node_per_app(s.machine, {0, 1, 2, 3});
    s.paper_model_gflops = 15.18;
    s.paper_real_gflops = 15.28;
    rows.push_back(std::move(s));
  }
  {
    Scenario s;
    s.id = "table3-row4";
    s.description = "NUMA-bad mix, even allocation (cross-node)";
    s.machine = machine;
    s.apps = mixes::skylake_perfect_bad(/*bad_home=*/0);
    s.allocation = Allocation::uniform_per_node(s.machine, {5, 5, 5, 5});
    s.paper_model_gflops = 13.98;
    s.paper_real_gflops = 13.25;
    rows.push_back(std::move(s));
  }
  {
    Scenario s;
    s.id = "table3-row5";
    s.description = "NUMA-bad mix, one node per app, bad app on its data node (on-node)";
    s.machine = machine;
    s.apps = mixes::skylake_perfect_bad(/*bad_home=*/0);
    s.allocation = Allocation::node_per_app(s.machine, {1, 2, 3, 0});
    s.paper_model_gflops = 15.18;
    s.paper_real_gflops = 14.52;
    rows.push_back(std::move(s));
  }
  return rows;
}

}  // namespace numashare::model::paper
