// The paper's experiments as named, runnable scenario definitions.
//
// Benches and tests build every table/figure from this registry so the
// parameters live in exactly one place (and DESIGN.md §3 documents how the
// unstated ones were recovered).
#pragma once

#include <string>
#include <vector>

#include "core/allocation.hpp"
#include "core/app_spec.hpp"
#include "topology/machine.hpp"

namespace numashare::model::paper {

struct Scenario {
  std::string id;           // e.g. "table1", "table3-row4"
  std::string description;  // what the paper calls it
  topo::Machine machine;
  std::vector<AppSpec> apps;
  Allocation allocation;
  /// The GFLOPS value printed in the paper for this scenario (model column),
  /// or a negative value when the paper prints none.
  double paper_model_gflops = -1.0;
  /// The measured value the paper reports ("real GFLOPS"), when present.
  double paper_real_gflops = -1.0;
};

/// Table I: uneven allocation (1,1,1,5) on the 4x8 model machine -> 254.
Scenario table1();
/// Table II: even allocation (2,2,2,2) -> 140.
Scenario table2();
/// Figure 2 scenario c: one NUMA node per application -> 128.
Scenario fig2_node_per_app();
/// All three Figure 2 scenarios, in the figure's order (a, b, c).
std::vector<Scenario> fig2();

/// Figure 3 / the NUMA-bad model example: even allocation -> 138(.75) and
/// whole-node allocation with the bad app on its data node -> 150.
Scenario fig3_even();
Scenario fig3_node_per_app();

/// Table III rows 1-5 (model column values: 23.20 / 18.12 / 15.18 / 13.98 /
/// 15.18, real column: 22.82 / 18.14 / 15.28 / 13.25 / 14.52).
std::vector<Scenario> table3();

}  // namespace numashare::model::paper
