#include "core/placement.hpp"

#include <limits>

#include "common/assert.hpp"

namespace numashare::model {

std::vector<PlacementAdvice> advise_placement(const topo::Machine& machine,
                                              const std::vector<AppSpec>& apps,
                                              const Allocation& allocation,
                                              const PlacementOptions& options) {
  std::string error;
  NS_REQUIRE(allocation.validate(machine, &error), error.c_str());
  NS_REQUIRE(apps.size() == allocation.app_count(), "apps must index-match allocation");

  std::vector<PlacementAdvice> advice;
  const Solution baseline = solve(machine, apps, allocation);

  // One mutated-and-restored spec vector plus a reused solver scratch: the
  // per-candidate-home solves are the advisor's hot loop and used to copy
  // the whole spec vector and allocate a fresh Solution per candidate.
  SolveScratch scratch;
  std::vector<AppSpec> variant = apps;

  for (AppId a = 0; a < apps.size(); ++a) {
    if (apps[a].placement != Placement::kNumaBad) continue;

    PlacementAdvice entry;
    entry.app = a;
    entry.current_home = apps[a].home_node;
    entry.recommended_home = apps[a].home_node;
    entry.current_gflops = baseline.total_gflops;
    entry.predicted_gflops = baseline.total_gflops;

    for (topo::NodeId candidate = 0; candidate < machine.node_count(); ++candidate) {
      if (candidate == apps[a].home_node) continue;
      variant[a].home_node = candidate;
      const Solution& moved = solve_into(machine, variant, allocation, scratch);
      if (moved.total_gflops > entry.predicted_gflops) {
        entry.predicted_gflops = moved.total_gflops;
        entry.recommended_home = candidate;
      }
    }
    variant[a].home_node = apps[a].home_node;

    const double gain = entry.predicted_gflops - entry.current_gflops;
    if (gain <= options.min_relative_gain * entry.current_gflops) {
      entry.recommended_home = entry.current_home;
      entry.predicted_gflops = entry.current_gflops;
    }
    if (entry.move_recommended() && options.data_gb > 0.0) {
      const GBps link =
          machine.link_bandwidth(entry.current_home, entry.recommended_home);
      entry.move_seconds = link > 0.0 ? options.data_gb / link
                                      : std::numeric_limits<double>::infinity();
      // Payback: the move costs move_seconds of one link; afterwards the
      // machine gains `gain` GFLOP per second. Work lost during the move is
      // approximated as the app's own current rate (it stalls while moving).
      const double stall_gflop = entry.move_seconds * baseline.app_gflops[a];
      entry.payback_seconds = gain > 0.0
                                  ? stall_gflop / gain
                                  : std::numeric_limits<double>::infinity();
    }
    advice.push_back(entry);
  }
  return advice;
}

JointResult advise_joint(const topo::Machine& machine, std::vector<AppSpec> apps,
                         Objective objective, std::uint32_t min_threads_per_app) {
  JointResult result;
  result.apps = std::move(apps);

  for (std::uint32_t round = 0; round < 16; ++round) {
    // 1. best allocation for the current homes.
    auto search = exhaustive_search(machine, result.apps, objective,
                                    /*require_full=*/true, min_threads_per_app);
    // 2. best single home move for that allocation. Each advice entry is
    //    computed with the *other* homes fixed, so only one move per round
    //    may be applied — applying several at once can oscillate (two bad
    //    apps sharing a home would hop together forever). One exact move
    //    strictly improves the score, which guarantees termination.
    bool moved = false;
    const auto advice = advise_placement(machine, result.apps, search.allocation);
    const PlacementAdvice* best_move = nullptr;
    for (const auto& entry : advice) {
      if (!entry.move_recommended()) continue;
      if (best_move == nullptr ||
          entry.predicted_gflops - entry.current_gflops >
              best_move->predicted_gflops - best_move->current_gflops) {
        best_move = &entry;
      }
    }
    if (best_move != nullptr) {
      result.apps[best_move->app].home_node = best_move->recommended_home;
      moved = true;
    }
    // 3. Lookahead when the simple alternation is at a fixed point: a home
    //    move may only pay off *together with* a different allocation (e.g.
    //    two NUMA-bad apps sharing a home tie every allocation, so neither
    //    single step improves). Try each (app, home) jointly with a fresh
    //    allocation search and take the best strict improvement.
    if (!moved) {
      double best_value = score(search.solution, objective);
      AppId best_app = 0;
      topo::NodeId best_home = 0;
      bool found = false;
      std::vector<AppSpec> variant = result.apps;  // mutated per (app, home), restored
      for (AppId a = 0; a < result.apps.size(); ++a) {
        if (result.apps[a].placement != Placement::kNumaBad) continue;
        for (topo::NodeId home = 0; home < machine.node_count(); ++home) {
          if (home == result.apps[a].home_node) continue;
          variant[a].home_node = home;
          const auto rehomed =
              exhaustive_search(machine, variant, objective, true, min_threads_per_app);
          const double value = score(rehomed.solution, objective);
          if (value > best_value + 1e-12) {
            best_value = value;
            best_app = a;
            best_home = home;
            found = true;
          }
        }
        variant[a].home_node = result.apps[a].home_node;
      }
      if (found) {
        result.apps[best_app].home_node = best_home;
        moved = true;
      }
    }
    if (moved) {
      // Re-solve with the new homes so the recorded solution is consistent.
      search = exhaustive_search(machine, result.apps, objective, true,
                                 min_threads_per_app);
    }
    result.allocation = search.allocation;
    result.solution = std::move(search.solution);
    result.placement_rounds = round + 1;
    if (!moved) break;
  }
  return result;
}

std::uint32_t dominant_residency(const std::vector<std::uint64_t>& bytes_per_node,
                                 double min_fraction) {
  const std::uint32_t none = static_cast<std::uint32_t>(bytes_per_node.size());
  std::uint64_t total = 0;
  std::uint64_t best_bytes = 0;
  std::uint64_t second_bytes = 0;
  std::uint32_t best = none;
  for (std::uint32_t n = 0; n < bytes_per_node.size(); ++n) {
    total += bytes_per_node[n];
    if (bytes_per_node[n] > best_bytes) {
      second_bytes = best_bytes;
      best_bytes = bytes_per_node[n];
      best = n;
    } else if (bytes_per_node[n] > second_bytes) {
      second_bytes = bytes_per_node[n];
    }
  }
  if (total == 0) return none;
  // A tie is not dominance: an exactly even split has no home worth
  // advertising (and picking the lower index would steer the model wrong
  // half the time).
  if (best_bytes == second_bytes) return none;
  if (static_cast<double>(best_bytes) < min_fraction * static_cast<double>(total)) {
    return none;
  }
  return best;
}

}  // namespace numashare::model
