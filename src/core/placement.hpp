// Data-placement advice — the §III.A corollary the paper points at but does
// not build:
//
//   "Preferably, there should be a way to not only figure out the access
//    patterns, but also to influence where the application stores its data.
//    In the ideal case, the application should be able to move the data to a
//    different NUMA node. This would easily be possible in OCR, where the
//    runtime system is also in charge of managing the data."
//
// Given a machine, an app mix and an allocation, the advisor evaluates every
// feasible home node for each NUMA-bad application and recommends moves,
// including a payback analysis: moving B gigabytes across a link of capacity
// L costs ~B/L seconds, and the move pays off after cost / gained-GFLOP-rate
// seconds of subsequent execution.
//
// advise_joint() additionally co-optimizes placement *and* allocation, the
// fixed point of "best homes for this allocation" / "best allocation for
// these homes" — which recovers the paper's 150-GFLOPS configuration even
// from a pessimal start.
#pragma once

#include <cstdint>
#include <vector>

#include "core/allocation.hpp"
#include "core/optimizer.hpp"
#include "core/roofline.hpp"

namespace numashare::model {

struct PlacementAdvice {
  AppId app = 0;
  topo::NodeId current_home = 0;
  topo::NodeId recommended_home = 0;
  GFlops current_gflops = 0.0;    // machine total with the current home
  GFlops predicted_gflops = 0.0;  // machine total with the recommended home
  /// Seconds to move `data_gb` across the slowest link on the path (0 when
  /// no move is recommended or the caller passed data_gb = 0).
  double move_seconds = 0.0;
  /// Seconds of post-move execution after which the move has paid for
  /// itself (infinity if the move never pays off; 0 if no move).
  double payback_seconds = 0.0;

  bool move_recommended() const { return recommended_home != current_home; }
};

struct PlacementOptions {
  /// Gigabytes of application data to move (for cost/payback estimates).
  double data_gb = 0.0;
  /// Only recommend a move when it improves machine throughput by at least
  /// this relative margin (hysteresis against churn).
  double min_relative_gain = 1e-6;
};

/// Advice for every NUMA-bad app in `apps`, holding the allocation fixed.
/// NUMA-perfect apps get no entries (nothing to move).
std::vector<PlacementAdvice> advise_placement(const topo::Machine& machine,
                                              const std::vector<AppSpec>& apps,
                                              const Allocation& allocation,
                                              const PlacementOptions& options = {});

struct JointResult {
  std::vector<AppSpec> apps;  // with re-homed NUMA-bad apps
  Allocation allocation;
  Solution solution;
  std::uint32_t placement_rounds = 0;  // alternations until the fixed point
};

/// Alternate allocation search and placement advice until neither improves.
/// `min_threads_per_app` keeps every app alive during the allocation step.
JointResult advise_joint(const topo::Machine& machine, std::vector<AppSpec> apps,
                         Objective objective = Objective::kTotalGflops,
                         std::uint32_t min_threads_per_app = 1);

/// The node holding the *unique* plurality of `bytes_per_node`, provided it
/// holds at least `min_fraction` of the total; bytes_per_node.size() ("no
/// dominant node") otherwise, including when the total is zero or the top
/// two nodes tie. This is how a runtime
/// turns its datablock registry's residency accounting into the NUMA-bad
/// home node it advertises in telemetry — measured placement instead of an
/// app-declared constant — which then feeds the model's bandwidth pricing.
std::uint32_t dominant_residency(const std::vector<std::uint64_t>& bytes_per_node,
                                 double min_fraction = 0.5);

}  // namespace numashare::model
