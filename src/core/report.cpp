#include "core/report.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/format.hpp"
#include "common/table.hpp"

namespace numashare::model {

std::vector<DerivationClass> classes_from(const std::vector<AppSpec>& apps,
                                          const std::vector<std::uint32_t>& per_node_counts) {
  NS_REQUIRE(apps.size() == per_node_counts.size(),
             "one per-node thread count per app");
  std::vector<DerivationClass> classes;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    NS_REQUIRE(apps[i].placement == Placement::kNumaPerfect,
               "derivation tables cover NUMA-perfect apps only");
    auto it = std::find_if(classes.begin(), classes.end(), [&](const DerivationClass& c) {
      return c.ai == apps[i].ai && c.threads_per_node == per_node_counts[i];
    });
    if (it != classes.end()) {
      ++it->instances;
    } else {
      DerivationClass c;
      c.label = apps[i].name;
      c.ai = apps[i].ai;
      c.instances = 1;
      c.threads_per_node = per_node_counts[i];
      classes.push_back(c);
    }
  }
  return classes;
}

Derivation derive(const topo::Machine& machine, std::vector<DerivationClass> classes) {
  NS_REQUIRE(machine.is_symmetric(), "derivation requires a symmetric machine");
  NS_REQUIRE(!classes.empty(), "need at least one app class");

  const GBps node_bw = machine.node(0).memory_bandwidth;
  const auto cores = static_cast<double>(machine.cores_in_node(0));
  const GFlops core_peak = machine.core(machine.node(0).cores.front()).peak_gflops;

  std::uint32_t threads_used = 0;
  for (const auto& c : classes) threads_used += c.instances * c.threads_per_node;
  NS_REQUIRE(threads_used <= machine.cores_in_node(0), "node oversubscribed");

  Derivation d;
  d.classes = std::move(classes);

  // Rows 4-6: per-thread / per-instance / all-instances peak demand.
  for (auto& c : d.classes) {
    c.peak_bw_per_thread = demand_gbps(core_peak, c.ai);
    c.peak_bw_per_instance = c.peak_bw_per_thread * c.threads_per_node;
    c.total_bw_all_instances = c.peak_bw_per_instance * c.instances;
    d.total_required_bw += c.total_bw_all_instances;
  }

  // Rows 7-9: baseline grants. The paper divides the *full* node bandwidth by
  // the core count even when some cores sit idle.
  d.baseline_per_thread = node_bw / cores;
  for (auto& c : d.classes) {
    c.allocated_baseline_per_thread = std::min(c.peak_bw_per_thread, d.baseline_per_thread);
    d.allocated_node_bw +=
        c.instances * c.threads_per_node * c.allocated_baseline_per_thread;
  }
  d.remaining_node_bw = node_bw - d.allocated_node_bw;

  // Rows 10-12: unmet demand and the proportional remainder. The paper's
  // split is proportional to the per-thread deficit; with equal deficits it
  // degenerates to remaining / unsatisfied-thread-count, which is how the
  // tables phrase it.
  double weighted_deficit = 0.0;
  for (auto& c : d.classes) {
    c.still_required_per_thread = c.peak_bw_per_thread - c.allocated_baseline_per_thread;
    d.still_required_total += c.instances * c.threads_per_node * c.still_required_per_thread;
    weighted_deficit += c.instances * c.threads_per_node * c.still_required_per_thread;
  }
  for (auto& c : d.classes) {
    if (weighted_deficit > 0.0 && c.still_required_per_thread > 0.0) {
      const GBps share =
          d.remaining_node_bw * c.still_required_per_thread / weighted_deficit;
      c.remainder_per_thread = std::min(c.still_required_per_thread, share);
    } else {
      c.remainder_per_thread = 0.0;
    }
    c.total_per_thread = c.allocated_baseline_per_thread + c.remainder_per_thread;
  }

  // Rows 13-16: the roofline conversion and totals.
  for (auto& c : d.classes) {
    c.gflops_per_thread = achieved_gflops(c.total_per_thread, c.ai, core_peak);
    c.gflops_per_app = c.gflops_per_thread * c.threads_per_node;
    d.gflops_per_node += c.gflops_per_app * c.instances;
  }
  d.total_gflops = d.gflops_per_node * machine.node_count();
  return d;
}

std::string Derivation::render() const {
  std::vector<std::string> headers{"row"};
  for (const auto& c : classes) headers.push_back(c.label);
  TextTable table(std::move(headers));

  const auto per_class = [&](const std::string& label, auto getter, int precision = 6) {
    std::vector<std::string> row{label};
    for (const auto& c : classes) row.push_back(fmt_compact(getter(c), precision));
    table.add_row(std::move(row));
  };
  const auto spanned = [&](const std::string& label, double value) {
    std::vector<std::string> row{label};
    row.push_back(fmt_compact(value));
    for (std::size_t i = 1; i < classes.size(); ++i) row.push_back("\"");
    table.add_row(std::move(row));
  };

  per_class("arithmetic intensity (AI)", [](const auto& c) { return c.ai; });
  per_class("number of instances", [](const auto& c) { return double(c.instances); });
  per_class("threads per NUMA node", [](const auto& c) { return double(c.threads_per_node); });
  per_class("peak memory bandwidth per thread",
            [](const auto& c) { return c.peak_bw_per_thread; });
  per_class("peak memory bandwidth per instance",
            [](const auto& c) { return c.peak_bw_per_instance; });
  per_class("total memory bandwidth of all instances",
            [](const auto& c) { return c.total_bw_all_instances; });
  spanned("total required bandwidth", total_required_bw);
  spanned("baseline GB/s per thread", baseline_per_thread);
  per_class("allocated baseline per thread",
            [](const auto& c) { return c.allocated_baseline_per_thread; });
  spanned("allocated node GB/s", allocated_node_bw);
  spanned("remaining node GB/s", remaining_node_bw);
  per_class("still required GB/s per thread",
            [](const auto& c) { return c.still_required_per_thread; });
  spanned("still required GB/s", still_required_total);
  per_class("remainder given to a thread",
            [](const auto& c) { return c.remainder_per_thread; });
  per_class("total allocated to each thread", [](const auto& c) { return c.total_per_thread; });
  per_class("GFLOPS per thread", [](const auto& c) { return c.gflops_per_thread; });
  per_class("GFLOPS per application", [](const auto& c) { return c.gflops_per_app; });
  spanned("total GFLOPS per node", gflops_per_node);
  spanned("total GFLOPS", total_gflops);
  return table.render();
}

}  // namespace numashare::model
