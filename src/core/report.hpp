// Derivation reports mirroring the paper's Tables I and II.
//
// For a symmetric machine where every app is NUMA-perfect and runs the same
// thread count on every node, the whole model reduces to one node's
// arithmetic; the paper's tables walk that arithmetic row by row. This
// module reproduces exactly those rows (same labels, same order) so the
// bench output can be compared against the paper side by side. Tests assert
// the derivation is consistent with the general solver.
#pragma once

#include <string>
#include <vector>

#include "core/app_spec.hpp"
#include "core/roofline.hpp"
#include "topology/machine.hpp"

namespace numashare::model {

/// One column of the paper's tables: a class of identical applications.
struct DerivationClass {
  std::string label;         // e.g. "memory-bound"
  ArithmeticIntensity ai = 0;
  std::uint32_t instances = 0;
  std::uint32_t threads_per_node = 0;

  // Filled in by derive():
  GBps peak_bw_per_thread = 0;
  GBps peak_bw_per_instance = 0;
  GBps total_bw_all_instances = 0;
  GBps allocated_baseline_per_thread = 0;
  GBps still_required_per_thread = 0;
  GBps remainder_per_thread = 0;
  GBps total_per_thread = 0;
  GFlops gflops_per_thread = 0;
  GFlops gflops_per_app = 0;  // per node, as in the paper
};

struct Derivation {
  std::vector<DerivationClass> classes;
  GBps total_required_bw = 0;
  GBps baseline_per_thread = 0;   // node_bw / cores ("baseline GB/s per thread")
  GBps allocated_node_bw = 0;     // after baseline grants
  GBps remaining_node_bw = 0;
  GBps still_required_total = 0;
  GFlops gflops_per_node = 0;
  GFlops total_gflops = 0;        // gflops_per_node * node_count

  /// Rendered with the paper's row labels.
  std::string render() const;
};

/// Compute the derivation. Requirements (asserted): symmetric machine, all
/// apps NUMA-perfect, every class running `threads_per_node` on each node.
/// The classes' instances/threads must not oversubscribe a node.
Derivation derive(const topo::Machine& machine, std::vector<DerivationClass> classes);

/// Convenience: build classes from specs + uniform per-node counts, grouping
/// apps with identical (ai, count) into one class like the paper does.
std::vector<DerivationClass> classes_from(const std::vector<AppSpec>& apps,
                                          const std::vector<std::uint32_t>& per_node_counts);

}  // namespace numashare::model
