#include "core/roofline.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/format.hpp"

namespace numashare::model {

namespace {

constexpr double kEps = 1e-12;

GFlops core_peak_on_node(const topo::Machine& machine, topo::NodeId node) {
  const auto& n = machine.node(node);
  NS_ASSERT(!n.cores.empty());
  return machine.core(n.cores.front()).peak_gflops;
}

}  // namespace

const GroupResult* Solution::find_group(AppId app, topo::NodeId exec_node) const {
  for (const auto& g : groups) {
    if (g.app == app && g.exec_node == exec_node) return &g;
  }
  return nullptr;
}

std::string Solution::describe(const std::vector<AppSpec>& apps) const {
  std::string out;
  for (AppId a = 0; a < app_gflops.size(); ++a) {
    const std::string& name = a < apps.size() ? apps[a].name : "app";
    out += ns_format("  {} ({}): {} GFLOPS\n", name, a, fmt_compact(app_gflops[a], 4));
  }
  out += ns_format("  total: {} GFLOPS\n", fmt_compact(total_gflops, 4));
  return out;
}

Solution solve(const topo::Machine& machine, const std::vector<AppSpec>& apps,
               const Allocation& allocation, const SolveOptions& options) {
  std::string error;
  NS_REQUIRE(machine.validate(&error), error.c_str());
  NS_REQUIRE(allocation.validate(machine, &error), error.c_str());
  SolveScratch scratch;
  solve_into(machine, apps, allocation, scratch, options);
  return std::move(scratch.solution);
}

const Solution& solve_into(const topo::Machine& machine, const std::vector<AppSpec>& apps,
                           const Allocation& allocation, SolveScratch& scratch,
                           const SolveOptions& options) {
  NS_REQUIRE(apps.size() == allocation.app_count(),
             "app specs must index-match the allocation");
  for (const auto& app : apps) {
    NS_REQUIRE(app.ai > 0.0, "arithmetic intensity must be positive");
    if (app.placement == Placement::kNumaBad) {
      NS_REQUIRE(app.home_node < machine.node_count(), "NUMA-bad home node out of range");
    }
  }
  const ForeignLoad& foreign = options.foreign;
  const bool has_foreign = !foreign.busy_cores.empty() || !foreign.bandwidth.empty();
  if (!foreign.busy_cores.empty()) {
    NS_REQUIRE(foreign.busy_cores.size() == machine.node_count(),
               "foreign busy_cores must have one entry per node");
  }
  if (!foreign.bandwidth.empty()) {
    NS_REQUIRE(foreign.bandwidth.size() == machine.node_count(),
               "foreign bandwidth must have one entry per node");
  }
  const auto foreign_bw = [&](topo::NodeId m) -> GBps {
    return m < foreign.bandwidth.size() ? std::max(0.0, foreign.bandwidth[m]) : 0.0;
  };
  const auto foreign_cores = [&](topo::NodeId m) -> double {
    if (m >= foreign.busy_cores.size()) return 0.0;
    const double cores = machine.cores_in_node(m);
    return std::min(std::max(0.0, foreign.busy_cores[m]), cores);
  };

  Solution& solution = scratch.solution;
  solution.groups.clear();
  solution.app_gflops.assign(apps.size(), 0.0);
  solution.nodes.assign(machine.node_count(), NodeBreakdown{});
  solution.total_gflops = 0.0;

  // 1. Build homogeneous thread groups.
  for (AppId a = 0; a < apps.size(); ++a) {
    for (topo::NodeId n = 0; n < machine.node_count(); ++n) {
      const std::uint32_t t = allocation.threads(a, n);
      if (t == 0) continue;
      GroupResult group;
      group.app = a;
      group.exec_node = n;
      group.memory_node = apps[a].memory_node(n);
      group.threads = t;
      group.per_thread_demand = demand_gbps(core_peak_on_node(machine, n), apps[a].ai);
      solution.groups.push_back(group);
    }
  }

  // 1b. Bucket groups by memory controller (CSR): one counting pass, one
  //     scatter. Group order is preserved within each bucket, so the
  //     controller loops below visit groups in exactly the order the old
  //     filter-into-pointer-vectors code did.
  const std::uint32_t group_count = static_cast<std::uint32_t>(solution.groups.size());
  scratch.bucket_offset.assign(machine.node_count() + 1, 0);
  for (const auto& g : solution.groups) ++scratch.bucket_offset[g.memory_node + 1];
  for (topo::NodeId m = 0; m < machine.node_count(); ++m) {
    scratch.bucket_offset[m + 1] += scratch.bucket_offset[m];
  }
  scratch.bucket_cursor.assign(scratch.bucket_offset.begin(),
                               scratch.bucket_offset.end() - 1);
  scratch.bucket_groups.resize(group_count);
  for (std::uint32_t i = 0; i < group_count; ++i) {
    scratch.bucket_groups[scratch.bucket_cursor[solution.groups[i].memory_node]++] = i;
  }

  // 2. Solve each memory controller independently (the model couples nodes
  //    only through the static link caps, so controllers are separable).
  for (topo::NodeId m = 0; m < machine.node_count(); ++m) {
    auto& breakdown = solution.nodes[m];
    breakdown.node = m;
    breakdown.bandwidth = machine.node(m).memory_bandwidth;
    // Opaque foreign consumers are served off the top: they are running
    // regardless of what the allocator decides, so cooperating flows compete
    // for only what they leave behind.
    breakdown.foreign_granted = std::min(foreign_bw(m), breakdown.bandwidth);
    const GBps coop_bandwidth = breakdown.bandwidth - breakdown.foreign_granted;
    const std::uint32_t begin = scratch.bucket_offset[m];
    const std::uint32_t end = scratch.bucket_offset[m + 1];

    // 2a. Remote flows first, each capped by its directed link. The flow
    //     grant (whole-group GB/s) is stashed in per_thread_granted until
    //     the optional proportional rescale, then converted to per-thread.
    GBps remote_total = 0.0;
    for (std::uint32_t i = begin; i < end; ++i) {
      auto& g = solution.groups[scratch.bucket_groups[i]];
      if (g.exec_node == m) continue;
      const GBps flow_demand = g.per_thread_demand * g.threads;
      const GBps link = machine.link_bandwidth(g.exec_node, m);
      g.per_thread_granted = std::min(flow_demand, link);
      breakdown.remote_demand += flow_demand;
      remote_total += g.per_thread_granted;
    }
    // The paper does not say what happens when the links together exceed the
    // controller; we scale the flows proportionally so the controller's peak
    // is never exceeded.
    double remote_scale = 1.0;
    if (remote_total > coop_bandwidth + kEps) {
      remote_scale = coop_bandwidth / remote_total;
      remote_total = coop_bandwidth;
    }
    breakdown.remote_granted = remote_total;
    for (std::uint32_t i = begin; i < end; ++i) {
      auto& g = solution.groups[scratch.bucket_groups[i]];
      if (g.exec_node == m) continue;
      if (remote_scale != 1.0) g.per_thread_granted *= remote_scale;
      g.per_thread_granted /= g.threads;
    }

    // 2b. Locals split the remainder: equal per-core baseline ...
    const GBps remaining = std::max(0.0, coop_bandwidth - remote_total);
    const double cores = machine.cores_in_node(m);
    breakdown.baseline_per_core = remaining / cores;
    GBps pool = remaining;
    for (std::uint32_t i = begin; i < end; ++i) {
      auto& g = solution.groups[scratch.bucket_groups[i]];
      if (g.exec_node != m) continue;
      breakdown.local_demand += g.per_thread_demand * g.threads;
      g.per_thread_granted = std::min(g.per_thread_demand, breakdown.baseline_per_core);
      pool -= g.per_thread_granted * g.threads;
      breakdown.local_baseline_granted += g.per_thread_granted * g.threads;
    }

    // 2c. ... then the leftover, proportional to unmet demand (water-fill).
    for (std::uint32_t round = 0; round < options.max_waterfill_rounds; ++round) {
      if (pool <= kEps) break;
      double weighted_deficit = 0.0;
      for (std::uint32_t i = begin; i < end; ++i) {
        const auto& g = solution.groups[scratch.bucket_groups[i]];
        if (g.exec_node != m) continue;
        weighted_deficit += (g.per_thread_demand - g.per_thread_granted) * g.threads;
      }
      if (weighted_deficit <= kEps) break;
      GBps distributed = 0.0;
      for (std::uint32_t i = begin; i < end; ++i) {
        auto& g = solution.groups[scratch.bucket_groups[i]];
        if (g.exec_node != m) continue;
        const GBps deficit = g.per_thread_demand - g.per_thread_granted;
        if (deficit <= kEps) continue;
        const GBps share_per_thread = pool * deficit / weighted_deficit;
        const GBps take = std::min(deficit, share_per_thread);
        g.per_thread_granted += take;
        distributed += take * g.threads;
      }
      breakdown.local_remainder_granted += distributed;
      pool -= distributed;
      if (options.single_shot_remainder) break;
      if (distributed <= kEps) break;
    }
    breakdown.total_granted = breakdown.foreign_granted + breakdown.remote_granted +
                              breakdown.local_baseline_granted +
                              breakdown.local_remainder_granted;
    NS_ASSERT(breakdown.total_granted <= breakdown.bandwidth * (1.0 + 1e-9) + kEps);
  }

  // 3. Roofline: bandwidth -> GFLOPS, capped at the compute peak. Foreign
  //    busy cores timeshare the node: with F foreign cores busy out of C and
  //    T cooperating threads placed there, each cooperating thread can hold
  //    at most min(1, (C - F) / T) of a core, derating its compute peak.
  //    (Bandwidth demand is left at the full-peak figure: a timeshared
  //    thread still issues the same stream when scheduled, and keeping
  //    demand fixed preserves the paper's split arithmetic.)
  if (has_foreign) {
    scratch.node_threads.assign(machine.node_count(), 0);
    for (const auto& g : solution.groups) scratch.node_threads[g.exec_node] += g.threads;
  }
  const auto compute_share = [&](topo::NodeId n) -> double {
    if (!has_foreign) return 1.0;
    const double fc = foreign_cores(n);
    if (fc <= 0.0) return 1.0;
    const double threads = scratch.node_threads[n];
    if (threads <= 0.0) return 1.0;
    const double avail = std::max(0.0, machine.cores_in_node(n) - fc);
    return std::min(1.0, avail / threads);
  };
  for (auto& g : solution.groups) {
    const GFlops peak = core_peak_on_node(machine, g.exec_node) * compute_share(g.exec_node);
    g.per_thread_gflops = achieved_gflops(g.per_thread_granted, apps[g.app].ai, peak);
  }

  // 3b. Sub-linear scaling (paper §II): an app with a serial fraction cannot
  //     exceed (mean per-thread peak) x Amdahl-effective-threads regardless
  //     of bandwidth; when the cap binds, every group of that app is derated
  //     proportionally (the stalled time is spread over its threads). The
  //     mean is thread-weighted so an app spanning nodes with different core
  //     peaks is capped by the compute it actually has, not by its single
  //     fastest node.
  for (AppId a = 0; a < apps.size(); ++a) {
    if (apps[a].serial_fraction <= 0.0) continue;
    NS_REQUIRE(apps[a].serial_fraction < 1.0, "serial fraction must be in [0, 1)");
    GFlops raw = 0.0;
    GFlops thread_peak_sum = 0.0;  // sum over threads of their core's peak
    std::uint32_t threads = 0;
    for (const auto& g : solution.groups) {
      if (g.app != a) continue;
      raw += g.group_gflops();
      threads += g.threads;
      thread_peak_sum +=
          g.threads * core_peak_on_node(machine, g.exec_node) * compute_share(g.exec_node);
    }
    if (threads == 0 || raw <= 0.0) continue;
    const GFlops cap = (thread_peak_sum / threads) * apps[a].effective_threads(threads);
    if (raw <= cap) continue;
    const double derate = cap / raw;
    for (auto& g : solution.groups) {
      if (g.app == a) g.per_thread_gflops *= derate;
    }
  }

  for (auto& g : solution.groups) {
    solution.app_gflops[g.app] += g.group_gflops();
    solution.nodes[g.exec_node].node_gflops += g.group_gflops();
    solution.total_gflops += g.group_gflops();
  }
  return solution;
}

}  // namespace numashare::model
