#include "core/roofline.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/format.hpp"

namespace numashare::model {

namespace {

constexpr double kEps = 1e-12;

GFlops core_peak_on_node(const topo::Machine& machine, topo::NodeId node) {
  const auto& n = machine.node(node);
  NS_ASSERT(!n.cores.empty());
  return machine.core(n.cores.front()).peak_gflops;
}

}  // namespace

const GroupResult* Solution::find_group(AppId app, topo::NodeId exec_node) const {
  for (const auto& g : groups) {
    if (g.app == app && g.exec_node == exec_node) return &g;
  }
  return nullptr;
}

std::string Solution::describe(const std::vector<AppSpec>& apps) const {
  std::string out;
  for (AppId a = 0; a < app_gflops.size(); ++a) {
    const std::string& name = a < apps.size() ? apps[a].name : "app";
    out += ns_format("  {} ({}): {} GFLOPS\n", name, a, fmt_compact(app_gflops[a], 4));
  }
  out += ns_format("  total: {} GFLOPS\n", fmt_compact(total_gflops, 4));
  return out;
}

Solution solve(const topo::Machine& machine, const std::vector<AppSpec>& apps,
               const Allocation& allocation, const SolveOptions& options) {
  std::string error;
  NS_REQUIRE(machine.validate(&error), error.c_str());
  NS_REQUIRE(apps.size() == allocation.app_count(),
             "app specs must index-match the allocation");
  NS_REQUIRE(allocation.validate(machine, &error), error.c_str());
  for (const auto& app : apps) {
    NS_REQUIRE(app.ai > 0.0, "arithmetic intensity must be positive");
    if (app.placement == Placement::kNumaBad) {
      NS_REQUIRE(app.home_node < machine.node_count(), "NUMA-bad home node out of range");
    }
  }

  Solution solution;
  solution.app_gflops.assign(apps.size(), 0.0);
  solution.nodes.resize(machine.node_count());

  // 1. Build homogeneous thread groups.
  for (AppId a = 0; a < apps.size(); ++a) {
    for (topo::NodeId n = 0; n < machine.node_count(); ++n) {
      const std::uint32_t t = allocation.threads(a, n);
      if (t == 0) continue;
      GroupResult group;
      group.app = a;
      group.exec_node = n;
      group.memory_node = apps[a].memory_node(n);
      group.threads = t;
      group.per_thread_demand = demand_gbps(core_peak_on_node(machine, n), apps[a].ai);
      solution.groups.push_back(group);
    }
  }

  // 2. Solve each memory controller independently (the model couples nodes
  //    only through the static link caps, so controllers are separable).
  for (topo::NodeId m = 0; m < machine.node_count(); ++m) {
    auto& breakdown = solution.nodes[m];
    breakdown.node = m;
    breakdown.bandwidth = machine.node(m).memory_bandwidth;

    std::vector<GroupResult*> remote_groups;
    std::vector<GroupResult*> local_groups;
    for (auto& g : solution.groups) {
      if (g.memory_node != m) continue;
      (g.exec_node == m ? local_groups : remote_groups).push_back(&g);
    }

    // 2a. Remote flows first, each capped by its directed link.
    std::vector<GBps> flow_grant(remote_groups.size(), 0.0);
    GBps remote_total = 0.0;
    for (std::size_t i = 0; i < remote_groups.size(); ++i) {
      const auto& g = *remote_groups[i];
      const GBps flow_demand = g.per_thread_demand * g.threads;
      const GBps link = machine.link_bandwidth(g.exec_node, m);
      flow_grant[i] = std::min(flow_demand, link);
      breakdown.remote_demand += flow_demand;
      remote_total += flow_grant[i];
    }
    // The paper does not say what happens when the links together exceed the
    // controller; we scale the flows proportionally so the controller's peak
    // is never exceeded.
    if (remote_total > breakdown.bandwidth + kEps) {
      const double scale = breakdown.bandwidth / remote_total;
      for (auto& grant : flow_grant) grant *= scale;
      remote_total = breakdown.bandwidth;
    }
    breakdown.remote_granted = remote_total;
    for (std::size_t i = 0; i < remote_groups.size(); ++i) {
      remote_groups[i]->per_thread_granted = flow_grant[i] / remote_groups[i]->threads;
    }

    // 2b. Locals split the remainder: equal per-core baseline ...
    const GBps remaining = std::max(0.0, breakdown.bandwidth - remote_total);
    const double cores = machine.cores_in_node(m);
    breakdown.baseline_per_core = remaining / cores;
    GBps pool = remaining;
    for (auto* g : local_groups) {
      breakdown.local_demand += g->per_thread_demand * g->threads;
      g->per_thread_granted = std::min(g->per_thread_demand, breakdown.baseline_per_core);
      pool -= g->per_thread_granted * g->threads;
      breakdown.local_baseline_granted += g->per_thread_granted * g->threads;
    }

    // 2c. ... then the leftover, proportional to unmet demand (water-fill).
    for (std::uint32_t round = 0; round < options.max_waterfill_rounds; ++round) {
      if (pool <= kEps) break;
      double weighted_deficit = 0.0;
      for (auto* g : local_groups) {
        weighted_deficit += (g->per_thread_demand - g->per_thread_granted) * g->threads;
      }
      if (weighted_deficit <= kEps) break;
      GBps distributed = 0.0;
      for (auto* g : local_groups) {
        const GBps deficit = g->per_thread_demand - g->per_thread_granted;
        if (deficit <= kEps) continue;
        const GBps share_per_thread = pool * deficit / weighted_deficit;
        const GBps take = std::min(deficit, share_per_thread);
        g->per_thread_granted += take;
        distributed += take * g->threads;
      }
      breakdown.local_remainder_granted += distributed;
      pool -= distributed;
      if (options.single_shot_remainder) break;
      if (distributed <= kEps) break;
    }
    breakdown.total_granted = breakdown.remote_granted + breakdown.local_baseline_granted +
                              breakdown.local_remainder_granted;
    NS_ASSERT(breakdown.total_granted <= breakdown.bandwidth * (1.0 + 1e-9) + kEps);
  }

  // 3. Roofline: bandwidth -> GFLOPS, capped at the compute peak.
  for (auto& g : solution.groups) {
    const GFlops peak = core_peak_on_node(machine, g.exec_node);
    g.per_thread_gflops = achieved_gflops(g.per_thread_granted, apps[g.app].ai, peak);
  }

  // 3b. Sub-linear scaling (paper §II): an app with a serial fraction cannot
  //     exceed peak x Amdahl-effective-threads regardless of bandwidth; when
  //     the cap binds, every group of that app is derated proportionally
  //     (the stalled time is spread over its threads).
  for (AppId a = 0; a < apps.size(); ++a) {
    if (apps[a].serial_fraction <= 0.0) continue;
    NS_REQUIRE(apps[a].serial_fraction < 1.0, "serial fraction must be in [0, 1)");
    GFlops raw = 0.0;
    GFlops peak_sum = 0.0;
    std::uint32_t threads = 0;
    for (const auto& g : solution.groups) {
      if (g.app != a) continue;
      raw += g.group_gflops();
      threads += g.threads;
      peak_sum = std::max(peak_sum, core_peak_on_node(machine, g.exec_node));
    }
    if (threads == 0 || raw <= 0.0) continue;
    const GFlops cap = peak_sum * apps[a].effective_threads(threads);
    if (raw <= cap) continue;
    const double derate = cap / raw;
    for (auto& g : solution.groups) {
      if (g.app == a) g.per_thread_gflops *= derate;
    }
  }

  for (auto& g : solution.groups) {
    solution.app_gflops[g.app] += g.group_gflops();
    solution.nodes[g.exec_node].node_gflops += g.group_gflops();
    solution.total_gflops += g.group_gflops();
  }
  return solution;
}

}  // namespace numashare::model
