// The paper's roofline-based NUMA bandwidth-sharing model (§III.A).
//
// Given a machine, a set of application specs and a thread allocation, the
// solver predicts per-thread achieved bandwidth and GFLOPS using the paper's
// five assumptions plus its remote-access extension:
//
//   1. every thread demands peak_gflops / AI  GB/s;
//   2. a node's memory first serves requests arriving from *other* nodes,
//      each directed flow capped by that pair's link bandwidth (and the sum
//      capped by the node bandwidth, shared proportionally when links
//      oversubscribe the controller — the paper leaves this corner open);
//   3. the remaining bandwidth is split among locally-accessing threads:
//      every core is guaranteed an equal baseline share
//      (remaining / cores_in_node), each thread takes
//      min(demand, baseline), and the leftover is distributed proportionally
//      to the still-unmet demand, water-filling until a fixed point;
//   4. achieved GFLOPS = min(granted_bandwidth * AI, peak_gflops).
//
// On the paper's examples (all unmet demands equal) step 3 reduces to the
// single proportional split the tables show; the iteration only matters for
// heterogeneous mixes and is covered by tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/allocation.hpp"
#include "core/app_spec.hpp"
#include "topology/machine.hpp"

namespace numashare::model {

/// Fixed background consumers per node: processes the allocator cannot
/// command (legacy jobs, batch noise) but must price. The foreign subsystem
/// (src/foreign/) estimates these from OS polling; the solver treats them as
/// opaque: their bandwidth draw is served off each controller's top before
/// any cooperating flow, and their compute share timeshares the node's cores
/// against cooperating threads. Foreign load can only *lower* cooperating
/// throughput, which is what keeps the search bounds admissible
/// (docs/FOREIGN.md "Modeling").
struct ForeignLoad {
  /// Cores consumed per node (fractional; clamped to [0, cores] by the
  /// solver). Empty means no foreign compute anywhere.
  std::vector<double> busy_cores;
  /// Bandwidth drawn at each node's memory controller, GB/s. Empty means no
  /// foreign bandwidth anywhere.
  std::vector<GBps> bandwidth;

  bool any() const {
    for (double c : busy_cores) {
      if (c > 0.0) return true;
    }
    for (GBps b : bandwidth) {
      if (b > 0.0) return true;
    }
    return false;
  }
  void clear() {
    busy_cores.clear();
    bandwidth.clear();
  }
};

struct SolveOptions {
  /// Stop water-filling after this many rounds (each round either exhausts
  /// the pool or satisfies at least one thread group, so node_count rounds
  /// always suffice; the cap is a safety net).
  std::uint32_t max_waterfill_rounds = 64;
  /// When true, the remainder is handed out in one proportional shot with no
  /// re-distribution of overshoot — the paper's literal Table I/II procedure.
  /// Identical to water-filling whenever no thread's demand is exceeded.
  bool single_shot_remainder = false;
  /// Opaque background consumers (empty vectors = none, the default). When
  /// non-empty each vector must have one entry per machine node.
  ForeignLoad foreign;
};

/// One homogeneous group of threads: all threads of `app` executing on
/// `exec_node` (they are interchangeable under the model's assumptions).
struct GroupResult {
  AppId app = 0;
  topo::NodeId exec_node = 0;
  topo::NodeId memory_node = 0;  // == exec_node unless the app is NUMA-bad
  std::uint32_t threads = 0;
  GBps per_thread_demand = 0.0;
  GBps per_thread_granted = 0.0;
  GFlops per_thread_gflops = 0.0;

  bool remote() const { return exec_node != memory_node; }
  GBps group_granted() const { return per_thread_granted * threads; }
  GFlops group_gflops() const { return per_thread_gflops * threads; }
};

/// Per-memory-controller accounting, retained for the derivation reports.
struct NodeBreakdown {
  topo::NodeId node = 0;
  GBps bandwidth = 0.0;            // the controller's peak
  GBps foreign_granted = 0.0;      // served to opaque foreign consumers, off the top
  GBps remote_demand = 0.0;        // requested by threads on other nodes
  GBps remote_granted = 0.0;       // served to them (first, link-capped)
  GBps local_demand = 0.0;         // requested by locally-running threads
  GBps baseline_per_core = 0.0;    // (bandwidth - remote_granted) / cores
  GBps local_baseline_granted = 0.0;
  GBps local_remainder_granted = 0.0;
  GBps total_granted = 0.0;        // remote + local grants
  GFlops node_gflops = 0.0;        // by *execution* node, the paper's per-node rows
};

struct Solution {
  std::vector<GroupResult> groups;
  std::vector<NodeBreakdown> nodes;
  std::vector<GFlops> app_gflops;  // indexed by AppId
  GFlops total_gflops = 0.0;

  const GroupResult* find_group(AppId app, topo::NodeId exec_node) const;
  std::string describe(const std::vector<AppSpec>& apps) const;
};

/// Reusable solver workspace. The allocation search calls the model once per
/// candidate — tens of thousands to hundreds of millions of times per
/// decision — so the solver must not touch the heap in steady state. A
/// SolveScratch owns the Solution plus the solver's internal bucketing
/// arrays; after the first call with a given problem shape, every subsequent
/// solve_into() through the same scratch performs zero heap allocations
/// (verified by tests/core/solve_scratch_test.cpp under ASan).
struct SolveScratch {
  Solution solution;

  /// Internal CSR bucketing of group indices by memory node, rebuilt per
  /// call: bucket_groups[bucket_offset[m] .. bucket_offset[m+1]) lists the
  /// groups whose memory lives on controller m, in group order.
  std::vector<std::uint32_t> bucket_cursor;
  std::vector<std::uint32_t> bucket_offset;
  std::vector<std::uint32_t> bucket_groups;

  /// Cooperating threads per execution node, used to timeshare compute
  /// against foreign busy cores. Only populated when the solve options carry
  /// a ForeignLoad; untouched (and unallocated) otherwise.
  std::vector<std::uint32_t> node_threads;
};

/// Solve the model. `allocation` must validate against `machine`; app specs
/// index-match the allocation's rows.
Solution solve(const topo::Machine& machine, const std::vector<AppSpec>& apps,
               const Allocation& allocation, const SolveOptions& options = {});

/// Hot-path variant: solve into `scratch` and return a reference to
/// scratch.solution (valid until the next call with the same scratch).
/// Performs no heap allocations once the scratch has warmed up.
///
/// Precondition (unchecked here, asserted by the public solve() wrapper):
/// `machine` and `allocation` validate — Machine::validate() itself
/// allocates, so revalidating per candidate would defeat the purpose. The
/// cheap shape checks (spec/allocation index match, positive AI, home node
/// in range) are still enforced.
const Solution& solve_into(const topo::Machine& machine, const std::vector<AppSpec>& apps,
                           const Allocation& allocation, SolveScratch& scratch,
                           const SolveOptions& options = {});

}  // namespace numashare::model
