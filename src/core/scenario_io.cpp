#include "core/scenario_io.hpp"

#include <cstdlib>
#include <numeric>
#include <sstream>

#include "common/format.hpp"

namespace numashare::model {

std::optional<ScenarioDescription> scenario_from_config(const Config& config,
                                                        std::string* error) {
  const auto fail = [&](std::string message) -> std::optional<ScenarioDescription> {
    if (error) *error = std::move(message);
    return std::nullopt;
  };

  const auto nodes = config.get_int_or("machine.nodes", 0);
  const auto cores = config.get_int_or("machine.cores_per_node", 0);
  if (nodes <= 0 || cores <= 0) {
    return fail("missing or invalid [machine] nodes / cores_per_node");
  }
  const double gflops = config.get_double_or("machine.core_gflops", 0.0);
  const double bandwidth = config.get_double_or("machine.node_bandwidth", 0.0);
  if (gflops <= 0.0 || bandwidth <= 0.0) {
    return fail("missing or invalid [machine] core_gflops / node_bandwidth");
  }

  ScenarioDescription scenario;
  scenario.machine = topo::Machine::symmetric(
      static_cast<std::uint32_t>(nodes), static_cast<std::uint32_t>(cores), gflops,
      bandwidth, config.get_double_or("machine.link_bandwidth", 0.0),
      config.get_or("machine.name", "ini-machine"));

  for (const auto& section : config.sections()) {
    if (section.rfind("app.", 0) != 0) continue;
    const std::string name = section.substr(4);
    if (name.empty()) return fail("empty app name in [app.] section");
    const auto ai = config.get_double(section + ".ai");
    if (!ai || *ai <= 0.0) {
      return fail(ns_format("app '{}': missing or invalid ai", name));
    }
    const std::string placement = config.get_or(section + ".placement", "perfect");
    AppSpec spec;
    if (placement == "bad") {
      const auto home = config.get_int_or(section + ".home", 0);
      if (home < 0 || home >= nodes) {
        return fail(ns_format("app '{}': home node {} out of range", name, home));
      }
      spec = AppSpec::numa_bad(name, *ai, static_cast<topo::NodeId>(home));
    } else if (placement == "perfect") {
      spec = AppSpec::numa_perfect(name, *ai);
    } else {
      return fail(ns_format("app '{}': unknown placement '{}'", name, placement));
    }
    const double serial = config.get_double_or(section + ".serial", 0.0);
    if (serial < 0.0 || serial >= 1.0) {
      return fail(ns_format("app '{}': serial fraction must be in [0, 1)", name));
    }
    scenario.apps.push_back(spec.with_serial_fraction(serial));
  }
  if (scenario.apps.empty()) return fail("no [app.*] sections found");
  return scenario;
}

std::optional<ScenarioDescription> load_scenario(const std::string& path,
                                                 std::string* error) {
  const auto config = Config::load(path, error);
  if (!config) return std::nullopt;
  return scenario_from_config(*config, error);
}

std::optional<Allocation> parse_allocation(const std::string& spec,
                                           const ScenarioDescription& scenario,
                                           std::string* error) {
  const auto fail = [&](std::string message) -> std::optional<Allocation> {
    if (error) *error = std::move(message);
    return std::nullopt;
  };
  const auto apps = static_cast<std::uint32_t>(scenario.apps.size());

  if (spec == "even") return Allocation::even(scenario.machine, apps);
  if (spec == "nodeperapp") {
    if (apps != scenario.machine.node_count()) {
      return fail("nodeperapp needs exactly one app per node");
    }
    std::vector<topo::NodeId> order(apps);
    std::iota(order.begin(), order.end(), 0u);
    return Allocation::node_per_app(scenario.machine, order);
  }
  if (spec.rfind("uniform:", 0) == 0) {
    std::vector<std::uint32_t> counts;
    std::istringstream in(spec.substr(8));
    std::string item;
    while (std::getline(in, item, ',')) {
      char* end = nullptr;
      const long parsed = std::strtol(item.c_str(), &end, 10);
      if (end == item.c_str() || *end != '\0' || parsed < 0) {
        return fail(ns_format("bad count '{}' in allocation spec", item));
      }
      counts.push_back(static_cast<std::uint32_t>(parsed));
    }
    if (counts.size() != apps) {
      return fail(ns_format("allocation spec names {} apps, scenario has {}",
                            counts.size(), apps));
    }
    auto allocation = Allocation::uniform_per_node(scenario.machine, counts);
    std::string validation;
    if (!allocation.validate(scenario.machine, &validation)) return fail(validation);
    return allocation;
  }
  return fail(ns_format("unknown allocation spec '{}'", spec));
}

std::string scenario_to_ini(const ScenarioDescription& scenario) {
  const auto& machine = scenario.machine;
  std::string out = "[machine]\n";
  out += ns_format("name = {}\n", machine.name());
  out += ns_format("nodes = {}\n", machine.node_count());
  out += ns_format("cores_per_node = {}\n", machine.cores_in_node(0));
  out += ns_format("core_gflops = {}\n", fmt_compact(machine.core(0).peak_gflops, 6));
  out += ns_format("node_bandwidth = {}\n",
                   fmt_compact(machine.node(0).memory_bandwidth, 6));
  out += ns_format(
      "link_bandwidth = {}\n",
      fmt_compact(machine.node_count() > 1 ? machine.link_bandwidth(0, 1) : 0.0, 6));
  for (const auto& app : scenario.apps) {
    out += ns_format("\n[app.{}]\n", app.name);
    out += ns_format("ai = {}\n", fmt_compact(app.ai, 9));
    if (app.placement == Placement::kNumaBad) {
      out += "placement = bad\n";
      out += ns_format("home = {}\n", app.home_node);
    } else {
      out += "placement = perfect\n";
    }
    if (app.serial_fraction > 0.0) {
      out += ns_format("serial = {}\n", fmt_compact(app.serial_fraction, 6));
    }
  }
  return out;
}

}  // namespace numashare::model
