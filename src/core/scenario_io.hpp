// Loading machines and application mixes from INI descriptions — the
// interchange format of the command-line tools and examples.
//
//   [machine]
//   nodes = 4
//   cores_per_node = 8
//   core_gflops = 10
//   node_bandwidth = 32
//   link_bandwidth = 10
//   name = my-box            ; optional
//
//   [app.stream]             ; one section per app; the suffix is the name
//   ai = 0.5
//   placement = perfect      ; or: bad
//   home = 0                 ; only for placement = bad
//
// Allocation specs (for the CLI's --alloc flag):
//   "even"            -> Allocation::even
//   "nodeperapp"      -> node i to app i (apps == nodes)
//   "uniform:1,1,1,5" -> per-app per-node counts
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/allocation.hpp"
#include "core/app_spec.hpp"
#include "topology/machine.hpp"

namespace numashare::model {

struct ScenarioDescription {
  topo::Machine machine;
  std::vector<AppSpec> apps;
};

/// Parse from preloaded config; std::nullopt + error message on bad input.
std::optional<ScenarioDescription> scenario_from_config(const Config& config,
                                                        std::string* error = nullptr);

/// Load and parse an INI file.
std::optional<ScenarioDescription> load_scenario(const std::string& path,
                                                 std::string* error = nullptr);

/// Parse an allocation spec string (see header comment) against a scenario.
std::optional<Allocation> parse_allocation(const std::string& spec,
                                           const ScenarioDescription& scenario,
                                           std::string* error = nullptr);

/// Render a scenario back to INI text (round-trips through the parser).
std::string scenario_to_ini(const ScenarioDescription& scenario);

}  // namespace numashare::model
