#include "daemon/client.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/assert.hpp"
#include "common/format.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/threading.hpp"
#include "inject/fault.hpp"

namespace numashare::nsd {

DaemonClient::DaemonClient(std::string app_name, ClientConnectOptions options)
    : app_name_(std::move(app_name)), options_(std::move(options)) {}

DaemonClient::~DaemonClient() {
  stop_heartbeat();
  disconnect();
}

bool DaemonClient::try_join_once(std::string* error) {
  if (NS_FAULT_AT("client.connect.fail")) {
    if (error) *error = "injected connect failure";
    return false;
  }
  registry_ = Registry::open(options_.registry_name, error);
  if (registry_ == nullptr) return false;
  if (!registry_->daemon_alive()) {
    if (error) *error = "registry exists but its daemon is dead";
    registry_.reset();
    return false;
  }
  const auto claimed = registry_->claim_slot(app_name_, options_.advertised_ai,
                                             options_.data_home);
  if (!claimed) {
    if (error) *error = "registry full";
    registry_.reset();
    return false;
  }
  const std::uint32_t index = claimed->index;
  auto& slot = registry_->slot(index);
  NS_FAULT_DIE("client.die", "post_claim", 45);

  // Wait for the daemon to mint our channel. The daemon activates exactly
  // our published word, so the one word we must see is its successor; any
  // OTHER word means the claim was reclaimed/recycled and the slot is no
  // longer ours to touch.
  std::uint64_t word = claimed->joining_word;
  const std::uint64_t activated = next_word(word, SlotState::kActive);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(static_cast<std::int64_t>(options_.activation_timeout_s * 1e6));
  for (;;) {
    const std::uint64_t seen = slot.state_word.load(std::memory_order_acquire);
    if (seen == activated) break;
    if (seen != word) {
      if (error) *error = "lost the claimed slot before activation";
      registry_.reset();
      return false;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      // Abandon the claim — unless the daemon activates concurrently, in
      // which case the CAS fails and we re-check (attach proceeds above).
      if (slot.try_transition(word, SlotState::kFree)) {
        if (error) *error = "daemon did not activate the slot in time";
        registry_.reset();
        return false;
      }
      continue;  // the state changed under us; re-evaluate
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  NS_FAULT_DIE("client.die", "pre_attach", 46);

  const std::string channel_name(slot.channel_name,
                                 strnlen(slot.channel_name, sizeof(slot.channel_name)));
  channel_ = agent::ShmChannel::attach(channel_name, error);
  if (channel_ == nullptr) {
    registry_.reset();
    return false;
  }
  NS_FAULT_DIE("client.die", "post_attach", 47);
  slot_index_ = index;
  generation_ = slot.generation.load(std::memory_order_relaxed);
  active_word_ = activated;
  daemon_lost_.store(false, std::memory_order_release);
  connected_.store(true, std::memory_order_release);
  NS_LOG_INFO("daemon-client", "'{}' joined: slot {} channel '{}' generation {}", app_name_,
              index, channel_name, generation_);
  return true;
}

bool DaemonClient::connect(std::string* error) {
  // Decorrelated jitter (sleep = uniform[initial, 3 * previous], clamped):
  // survivors of a daemon restart all reconnect at once, and identical
  // backoff schedules would have their claim CASes collide round after
  // round. Each client drawing its own schedule spreads the herd.
  Xoshiro256 rng(options_.backoff_seed != 0
                     ? options_.backoff_seed
                     : (static_cast<std::uint64_t>(::getpid()) << 32) ^
                           static_cast<std::uint64_t>(
                               std::chrono::steady_clock::now().time_since_epoch().count()));
  std::int64_t backoff_us = options_.initial_backoff_us;
  std::string last_error;
  for (std::uint32_t attempt = 0; attempt < options_.max_attempts; ++attempt) {
    ++connect_attempts_;
    if (try_join_once(&last_error)) return true;
    NS_LOG_DEBUG("daemon-client", "'{}' connect attempt {} failed: {} (backoff {} us)",
                 app_name_, attempt + 1, last_error, backoff_us);
    std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    if (options_.decorrelated_jitter) {
      const std::int64_t lo = std::max<std::int64_t>(1, options_.initial_backoff_us);
      const std::int64_t hi =
          std::min<std::int64_t>(std::max(backoff_us * 3, lo), options_.max_backoff_us);
      backoff_us = lo + static_cast<std::int64_t>(
                            rng.uniform_u64(static_cast<std::uint64_t>(hi - lo) + 1));
    } else {
      backoff_us = std::min<std::int64_t>(backoff_us * 2, options_.max_backoff_us);
    }
  }
  if (error) {
    *error = ns_format("gave up after {} attempts: {}", options_.max_attempts, last_error);
  }
  return false;
}

topo::Machine DaemonClient::arbitration_machine() const {
  NS_REQUIRE(registry_ != nullptr, "arbitration_machine() requires a connection");
  const auto& header = registry_->header();
  const auto nodes = header.node_count.load(std::memory_order_acquire);
  NS_REQUIRE(nodes >= 1 && nodes <= agent::kMaxNodes, "registry carries no machine shape");
  topo::Machine machine;
  machine.set_name("arbitrated");
  for (std::uint32_t n = 0; n < nodes; ++n) {
    machine.add_node(header.node_cores[n].load(std::memory_order_relaxed),
                     /*core_peak_gflops=*/1.0, /*node_bandwidth=*/10.0);
  }
  return machine;
}

void DaemonClient::heartbeat() {
  if (NS_FAULT_AT("client.heartbeat.suppress")) return;
  if (registry_ == nullptr || slot_index_ >= kMaxClients) return;
  registry_->slot(slot_index_).heartbeat.fetch_add(1, std::memory_order_relaxed);
}

void DaemonClient::start_heartbeat() {
  if (heartbeat_running_.exchange(true)) return;
  heartbeat_thread_ = std::thread([this] {
    set_current_thread_name("ns-heartbeat");
    while (heartbeat_running_.load(std::memory_order_acquire)) {
      heartbeat();
      std::this_thread::sleep_for(std::chrono::microseconds(options_.heartbeat_period_us));
    }
  });
}

void DaemonClient::stop_heartbeat() {
  if (!heartbeat_running_.exchange(false)) return;
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
}

bool DaemonClient::check_connection() {
  if (!connected()) return false;
  // One acquire load answers "still our incarnation?": the slot word moves
  // on (nonce bump) the moment anyone evicts, frees, or re-claims the slot.
  const bool still_ours =
      registry_->slot(slot_index_).state_word.load(std::memory_order_acquire) == active_word_;
  if (still_ours && registry_->daemon_alive()) {
    daemon_lost_.store(false, std::memory_order_release);
    return true;
  }
  if (still_ours && options_.hold_slot_on_daemon_loss) {
    // The arbiter died but nobody evicted us: the slot word is untouched.
    // Hold every mapping — the orphaned registry is about to become the
    // degraded-mode proposal bus — and surface the loss as a flag.
    if (!daemon_lost_.exchange(true, std::memory_order_acq_rel)) {
      NS_LOG_WARN("daemon-client", "'{}' daemon died; holding slot {} for degraded mode",
                  app_name_, slot_index_);
    }
    return true;
  }
  NS_LOG_WARN("daemon-client", "'{}' lost its slot (evicted or daemon restarted)", app_name_);
  drop_connection();
  return false;
}

void DaemonClient::drop_connection() {
  connected_.store(false, std::memory_order_release);
  daemon_lost_.store(false, std::memory_order_release);
  channel_.reset();
  registry_.reset();
  slot_index_ = kMaxClients;
  generation_ = 0;
  active_word_ = 0;
}

void DaemonClient::disconnect() {
  if (!connected()) return;
  // Only our exact incarnation may be flipped to kLeaving; if the word
  // moved on (eviction, daemon restart) the CAS fails harmlessly.
  std::uint64_t expected = active_word_;
  if (registry_->slot(slot_index_).try_transition(expected, SlotState::kLeaving)) {
    raise_attention(registry_->header(), slot_index_);
  }
  drop_connection();
}

bool DaemonClient::reconnect(std::string* error) {
  disconnect();
  return connect(error);
}

}  // namespace numashare::nsd
