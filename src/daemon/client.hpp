// Client-side connector: how an application joins a running ns_daemon.
//
// A DaemonClient hides the whole registry dance — open the registry, claim
// a slot, publish identity, wait for the daemon to mint a ShmChannel, and
// attach to it. connect() retries each stage with bounded exponential
// backoff, so an app started moments before the daemon (or across a daemon
// restart) still gets in. While connected, the app's duties are: pump its
// RuntimeAdapter on the channel, and heartbeat() — manually or via the
// background thread.
//
// Eviction and daemon restart are visible through check_connection():
// the slot no longer carries our PID/generation (the daemon recycled it)
// or the registry vanished. reconnect() then re-runs the join dance.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "agent/shm_channel.hpp"
#include "daemon/registry.hpp"
#include "topology/machine.hpp"

namespace numashare::nsd {

struct ClientConnectOptions {
  std::string registry_name = kDefaultRegistryName;
  /// Advertised arithmetic intensity (0 = unknown; the daemon's policy then
  /// waits for telemetry-derived AI).
  double advertised_ai = 0.0;
  /// Advertised NUMA-bad data home (agent::kMaxNodes = perfect/unknown).
  std::uint32_t data_home = agent::kMaxNodes;

  /// Bounded exponential backoff for connect()/reconnect(): sleep
  /// initial_backoff_us, double each failed attempt, clamp at
  /// max_backoff_us, give up after max_attempts attempts.
  std::uint32_t max_attempts = 12;
  std::int64_t initial_backoff_us = 2'000;
  std::int64_t max_backoff_us = 500'000;
  /// Decorrelated jitter on that backoff: each failed attempt sleeps a
  /// uniform draw from [initial, 3 * previous_sleep], clamped at max. A
  /// restarted daemon then sees the survivors' re-join CAS attempts spread
  /// out instead of a thundering herd hitting the fresh registry in
  /// lockstep. Off = the deterministic doubling above.
  bool decorrelated_jitter = true;
  /// Jitter RNG seed; 0 derives one from pid + monotonic clock.
  std::uint64_t backoff_seed = 0;
  /// Keep the slot, registry, and channel mappings when the daemon dies
  /// while the slot word is still ours (nobody evicted us — the arbiter is
  /// simply gone). check_connection() then keeps returning true with
  /// daemon_lost() raised, which is what degraded mode (FailoverClient)
  /// runs on. Off = the classic behavior: daemon death drops the
  /// connection immediately.
  bool hold_slot_on_daemon_loss = false;
  /// How long one attempt waits for the daemon to activate a claimed slot.
  double activation_timeout_s = 2.0;
  /// Background heartbeat period (start_heartbeat()).
  std::int64_t heartbeat_period_us = 100'000;
};

class DaemonClient {
 public:
  explicit DaemonClient(std::string app_name, ClientConnectOptions options = {});
  /// Leaves gracefully (kLeaving) when still connected.
  ~DaemonClient();

  DaemonClient(const DaemonClient&) = delete;
  DaemonClient& operator=(const DaemonClient&) = delete;

  /// Join the daemon: registry open + slot claim + activation wait +
  /// channel attach, with bounded exponential backoff across attempts.
  bool connect(std::string* error = nullptr);

  /// True after a successful connect() and before disconnect()/eviction.
  /// Safe to poll from any thread while connect() runs on another.
  bool connected() const { return connected_.load(std::memory_order_acquire); }

  /// Bump the registry heartbeat (call from the app's progress loop).
  void heartbeat();

  /// Background heartbeat thread at options().heartbeat_period_us.
  void start_heartbeat();
  void stop_heartbeat();

  /// Still the owner of our slot? False after eviction, slot recycling, or
  /// daemon restart. Cheap; safe to call every pump. With
  /// hold_slot_on_daemon_loss, daemon death keeps this true (the slot is
  /// still ours) and raises daemon_lost() instead.
  bool check_connection();

  /// The daemon died while we held our slot (only ever true under
  /// hold_slot_on_daemon_loss). Cleared by a successful (re)connect.
  bool daemon_lost() const { return daemon_lost_.load(std::memory_order_acquire); }

  /// The mapped registry segment (null before connect()). In degraded mode
  /// this is the *orphaned* segment every survivor still maps — the
  /// proposal bus for consensus arbitration.
  Registry* registry() { return registry_.get(); }
  const Registry* registry() const { return registry_.get(); }

  /// Graceful goodbye: publish kLeaving and drop the channel.
  void disconnect();

  /// Tear down whatever connection state remains and connect() again.
  bool reconnect(std::string* error = nullptr);

  /// The app side of the pair's channel (attach RuntimeAdapter here).
  /// Null before connect().
  agent::ChannelBase* channel() { return channel_.get(); }

  /// The arbitrated machine's node layout, as published in the registry —
  /// build the local runtime over this shape so the daemon's per-node
  /// thread commands line up with the runtime's pools. Speeds are
  /// placeholders (the client side never evaluates the model). Requires a
  /// live connection.
  topo::Machine arbitration_machine() const;

  const std::string& app_name() const { return app_name_; }
  const ClientConnectOptions& options() const { return options_; }
  std::uint32_t slot_index() const { return slot_index_; }
  /// Agent generation at our activation (identifies this incarnation).
  std::uint64_t generation() const { return generation_; }
  std::uint32_t connect_attempts() const { return connect_attempts_; }

 private:
  bool try_join_once(std::string* error);
  void drop_connection();

  std::string app_name_;
  ClientConnectOptions options_;
  std::unique_ptr<Registry> registry_;
  std::unique_ptr<agent::ShmChannel> channel_;
  std::uint32_t slot_index_ = kMaxClients;
  std::uint64_t generation_ = 0;
  /// The slot's exact {kActive, nonce} word for our incarnation. Ownership
  /// test is a single word compare — no torn pid/generation reads.
  std::uint64_t active_word_ = 0;
  std::atomic<bool> connected_{false};
  std::atomic<bool> daemon_lost_{false};
  std::uint32_t connect_attempts_ = 0;

  std::atomic<bool> heartbeat_running_{false};
  std::thread heartbeat_thread_;
};

}  // namespace numashare::nsd
