#include "daemon/daemon.hpp"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "agent/policies.hpp"
#include "common/assert.hpp"
#include "common/format.hpp"
#include "common/logging.hpp"
#include "common/threading.hpp"
#include "inject/fault.hpp"

namespace numashare::nsd {

namespace {

bool pid_is_dead(std::uint32_t pid) {
  if (pid == 0) return true;
  return ::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH;
}

std::string slot_client_name(const ClientSlot& slot) {
  return std::string(slot.name, strnlen(slot.name, sizeof(slot.name)));
}

}  // namespace

std::vector<agent::Directive> AdvertisedAiPolicy::decide(
    const topo::Machine& machine, const std::vector<agent::AppView>& views) {
  std::vector<agent::AppView> patched = views;
  for (auto& view : patched) {
    if (view.has_telemetry && view.latest.ai_estimate > 0.0) continue;
    const double ai = advertised_(view.name);
    if (ai <= 0.0) continue;
    view.latest.ai_estimate = ai;
    view.has_telemetry = true;
  }
  return inner_->decide(machine, patched);
}

Daemon::Daemon(topo::Machine machine, agent::PolicyPtr policy, DaemonOptions options)
    : machine_(std::move(machine)), options_(std::move(options)) {
  NS_REQUIRE(policy != nullptr, "daemon needs a policy");
  auto lookup = [this](const std::string& app_name) -> double {
    for (const auto& client : clients_) {
      if (client.used && client.app_name == app_name) return client.advertised_ai;
    }
    return 0.0;
  };
  auto wrapped = std::make_unique<AdvertisedAiPolicy>(std::move(policy), std::move(lookup));
  agent::AgentOptions agent_options = options_.agent;
  agent_ = std::make_unique<agent::Agent>(machine_, std::move(wrapped), agent_options);
  for (auto& seen : claim_first_seen_s_) seen = -1.0;
}

Daemon::~Daemon() {
  stop();
  if (registry_ != nullptr) {
    const double now = monotonic_seconds();
    for (std::uint32_t i = 0; i < kMaxClients; ++i) {
      if (clients_[i].used) retire(i, "daemon-shutdown", now);
    }
    journal_.record(now, "daemon-stop",
                    {{"ticks", jnum(stats_.ticks)},
                     {"joins", jnum(stats_.joins)},
                     {"evictions", jnum(stats_.evictions)}});
  }
}

bool Daemon::init(std::string* error) {
  NS_REQUIRE(registry_ == nullptr, "daemon already initialized");
  // A previous incarnation that crashed leaves its registry (and channel
  // segments) behind. Reclaim them — but never rip the registry out from
  // under a daemon that is still alive.
  if (auto existing = Registry::open(options_.registry_name)) {
    if (existing->daemon_alive()) {
      if (error) {
        *error = ns_format("registry '{}' is owned by live daemon pid {}",
                           options_.registry_name,
                           existing->header().daemon_pid.load(std::memory_order_relaxed));
      }
      return false;
    }
  }
  stats_.stale_segments_cleaned = agent::cleanup_stale_segments(options_.registry_name);
  if (stats_.stale_segments_cleaned > 0) {
    NS_LOG_INFO("daemon", "startup cleanup removed {} stale shm segment(s)",
                stats_.stale_segments_cleaned);
  }
  registry_ = Registry::create(options_.registry_name, error);
  if (registry_ == nullptr) return false;
  // Publish the arbitrated machine's shape so clients can build their
  // runtime over the same node layout as the per-node commands.
  auto& header = registry_->header();
  for (topo::NodeId n = 0; n < machine_.node_count(); ++n) {
    header.node_cores[n].store(machine_.cores_in_node(n), std::memory_order_relaxed);
  }
  header.node_count.store(machine_.node_count(), std::memory_order_release);
  if (!options_.journal_path.empty() && !journal_.open(options_.journal_path)) {
    if (error) *error = ns_format("cannot open journal '{}'", options_.journal_path);
    registry_.reset();
    return false;
  }
  journal_.record(monotonic_seconds(), "daemon-start",
                  {{"registry", jstr(options_.registry_name)},
                   {"pid", jnum(static_cast<std::uint64_t>(::getpid()))},
                   {"machine", jstr(machine_.name())},
                   {"nodes", jnum(machine_.node_count())},
                   {"cores", jnum(machine_.core_count())},
                   {"policy", jstr(agent_->policy().name())},
                   {"cleaned_segments", jnum(static_cast<std::uint64_t>(
                                            stats_.stale_segments_cleaned))}});
  return true;
}

void Daemon::admit(std::uint32_t index, std::uint64_t joining_word, double now) {
  auto& slot = registry_->slot(index);
  std::uint64_t word = joining_word;
  const auto pid = slot.pid.load(std::memory_order_relaxed);
  if (pid_is_dead(pid)) {
    // The client crashed between claiming and our tick; recycle silently
    // (CAS: the dying claimant's abandon path may race us).
    slot.try_transition(word, SlotState::kFree);
    return;
  }
  const std::uint64_t join_seq = ++join_seq_;
  const std::string channel_name =
      ns_format("{}-chan-{}-{}", options_.registry_name, index, join_seq);
  std::string error;
  auto channel = agent::ShmChannel::create(channel_name, &error);
  if (channel == nullptr) {
    NS_LOG_ERROR("daemon", "cannot create channel '{}': {}", channel_name, error);
    journal_.record(now, "join-failed",
                    {{"slot", jnum(index)}, {"error", jstr(error)}});
    slot.try_transition(word, SlotState::kFree);
    return;
  }
  const std::string base = slot_client_name(slot);
  const std::string app_name = ns_format("{}#{}.{}", base.empty() ? "app" : base, index, join_seq);
  agent_->add_app(app_name, *channel);

  auto& client = clients_[index];
  client.used = true;
  client.app_name = app_name;
  client.pid = pid;
  // Sanitize the hint: a torn/hostile advertisement must never poison the
  // policy (NaN propagates through the whole roofline solve).
  const double ai = slot.advertised_ai.load(std::memory_order_relaxed);
  client.advertised_ai = (ai >= 0.0 && ai <= 1e9) ? ai : 0.0;
  client.channel = std::move(channel);
  client.last_heartbeat = slot.heartbeat.load(std::memory_order_relaxed);
  client.last_heartbeat_change_s = now;

  slot.generation.store(agent_->generation(), std::memory_order_relaxed);
  std::memset(slot.channel_name, 0, sizeof(slot.channel_name));
  std::strncpy(slot.channel_name, channel_name.c_str(), sizeof(slot.channel_name) - 1);

  // Write-ahead: journal the join, then activate. A crash between the two
  // leaves a journaled join with no active slot — recovery semantics the
  // replay invariant (and the daemon.die fault site) pin down.
  journal_.record(now, "join",
                  {{"client", jstr(app_name)},
                   {"pid", jnum(static_cast<std::uint64_t>(client.pid))},
                   {"slot", jnum(index)},
                   {"ai", jnum(client.advertised_ai)},
                   {"channel", jstr(channel_name)},
                   {"generation", jnum(agent_->generation())}});
  NS_FAULT_DIE("daemon.die", "post_journal_join", 48);
  NS_FAULT_PAUSE("daemon.pause", "admit_pre_activate");

  // Activation is a CAS on the exact word the client published: if the
  // client abandoned the claim while we were admitting (activation
  // timeout), the CAS fails and the whole join rolls back — the old code's
  // blind store would have resurrected the abandoned slot and stomped any
  // newer claimant that had already re-claimed it.
  if (!slot.try_transition(word, SlotState::kActive)) {
    agent_->remove_app(app_name);
    client.channel.reset();
    client = Client{};
    ++stats_.joins_abandoned;
    NS_LOG_WARN("daemon", "join rolled back: '{}' abandoned slot {} during activation",
                app_name, index);
    journal_.record(now, "join-abandoned",
                    {{"client", jstr(app_name)},
                     {"slot", jnum(index)},
                     {"generation", jnum(agent_->generation())}});
    return;
  }
  registry_->header().generation.store(agent_->generation(), std::memory_order_relaxed);

  ++stats_.joins;
  NS_LOG_INFO("daemon", "join: '{}' pid {} slot {} (ai={})", app_name, client.pid, index,
              client.advertised_ai);
}

void Daemon::retire(std::uint32_t index, const char* reason, double now) {
  auto& client = clients_[index];
  agent_->remove_app(client.app_name);
  const bool eviction = std::strcmp(reason, "leave") != 0;
  if (eviction) ++stats_.evictions;
  else ++stats_.leaves;
  NS_LOG_INFO("daemon", "{}: '{}' pid {} slot {} ({})", eviction ? "evict" : "leave",
              client.app_name, client.pid, index, reason);
  journal_.record(now, eviction ? "evict" : "leave",
                  {{"client", jstr(client.app_name)},
                   {"pid", jnum(static_cast<std::uint64_t>(client.pid))},
                   {"slot", jnum(index)},
                   {"reason", jstr(reason)},
                   {"generation", jnum(agent_->generation())}});
  client.channel.reset();  // creator side: unlinks the segment
  client = Client{};
  auto& slot = registry_->slot(index);
  registry_->header().generation.store(agent_->generation(), std::memory_order_relaxed);
  // CAS-loop to kFree: the nonce bump invalidates the departing client's
  // active word, so a late heartbeat/disconnect cannot resurrect the slot.
  std::uint64_t word = slot.state_word.load(std::memory_order_acquire);
  while (state_of(word) != SlotState::kFree && !slot.try_transition(word, SlotState::kFree)) {
  }
}

void Daemon::check_liveness(std::uint32_t index, double now) {
  auto& slot = registry_->slot(index);
  auto& client = clients_[index];
  const std::uint64_t beat = slot.heartbeat.load(std::memory_order_relaxed);
  if (beat != client.last_heartbeat) {
    client.last_heartbeat = beat;
    client.last_heartbeat_change_s = now;
    return;
  }
  if (pid_is_dead(client.pid)) {
    retire(index, "dead-pid", now);
    return;
  }
  if (now - client.last_heartbeat_change_s > options_.heartbeat_timeout_s) {
    retire(index, "heartbeat-timeout", now);
  }
}

std::uint32_t Daemon::tick(double now) {
  NS_REQUIRE(registry_ != nullptr, "Daemon::init() must succeed before tick()");
  if (NS_FAULT_AT("daemon.tick.skip")) return 0;
  for (std::uint32_t i = 0; i < kMaxClients; ++i) {
    auto& slot = registry_->slot(i);
    std::uint64_t word = slot.state_word.load(std::memory_order_acquire);
    const SlotState state = state_of(word);
    if (state != SlotState::kClaiming) claim_first_seen_s_[i] = -1.0;
    switch (state) {
      case SlotState::kJoining:
        admit(i, word, now);
        break;
      case SlotState::kLeaving:
        if (clients_[i].used) {
          retire(i, "leave", now);
        } else {
          slot.try_transition(word, SlotState::kFree);
        }
        break;
      case SlotState::kActive:
        if (clients_[i].used) {
          check_liveness(i, now);
        } else {
          // Active slot we know nothing about: impossible after a clean
          // startup (cleanup removed the old registry); recycle defensively.
          slot.try_transition(word, SlotState::kFree);
        }
        break;
      case SlotState::kClaiming:
        // A claimant that dies (or stalls) here leaks the slot forever: no
        // other claimant can take it and the daemon never sees kJoining.
        // Bound the window: reclaim after claim_timeout_s. The nonce bump
        // makes a late publish by a merely-stalled claimant fail its CAS.
        if (claim_first_seen_s_[i] < 0.0) {
          claim_first_seen_s_[i] = now;
        } else if (now - claim_first_seen_s_[i] > options_.claim_timeout_s) {
          if (slot.try_transition(word, SlotState::kFree)) {
            ++stats_.claims_reclaimed;
            NS_LOG_WARN("daemon", "reclaimed slot {} stuck in claiming past {}s", i,
                        options_.claim_timeout_s);
            journal_.record(now, "claim-reclaimed", {{"slot", jnum(i)}});
          }
          claim_first_seen_s_[i] = -1.0;
        }
        break;
      case SlotState::kFree:
        break;
    }
  }

  const std::uint32_t sent = agent_->step(now);
  ++stats_.ticks;
  registry_->header().tick.fetch_add(1, std::memory_order_release);
  if (sent > 0) {
    ++stats_.reallocations;
    journal_allocation(now);
  }
  if (options_.snapshot_every_ticks > 0 &&
      stats_.ticks % options_.snapshot_every_ticks == 0) {
    journal_snapshot(now);
  }
  return sent;
}

void Daemon::journal_allocation(double now) {
  if (!journal_.ok()) return;
  // When the (possibly wrapped) policy is model-guided, attach the actual
  // per-node allocation behind the directives; otherwise names only.
  agent::Policy* policy = &agent_->policy();
  if (auto* wrapper = dynamic_cast<AdvertisedAiPolicy*>(policy)) policy = &wrapper->inner();
  const model::Allocation* allocation = nullptr;
  if (auto* model_guided = dynamic_cast<agent::ModelGuidedPolicy*>(policy)) {
    if (model_guided->last_allocation()) allocation = &*model_guided->last_allocation();
  }
  const auto& views = agent_->views();
  std::string apps = "[";
  for (std::size_t a = 0; a < views.size(); ++a) {
    if (a > 0) apps += ",";
    apps += "{\"name\":" + jstr(views[a].name);
    if (allocation != nullptr && a < allocation->app_count()) {
      apps += ",\"node_threads\":[";
      for (topo::NodeId n = 0; n < allocation->node_count(); ++n) {
        if (n > 0) apps += ",";
        apps += jnum(allocation->threads(static_cast<model::AppId>(a), n));
      }
      apps += "]";
    }
    apps += "}";
  }
  apps += "]";
  journal_.record(now, "reallocate",
                  {{"generation", jnum(agent_->generation())},
                   {"apps", std::move(apps)}});
}

void Daemon::journal_snapshot(double now) {
  if (!journal_.ok()) return;
  const auto& views = agent_->views();
  std::string apps = "[";
  for (std::size_t a = 0; a < views.size(); ++a) {
    if (a > 0) apps += ",";
    const auto& view = views[a];
    apps += "{\"name\":" + jstr(view.name) + ",\"task_rate\":" + jnum(view.task_rate) +
            ",\"ai\":" + jnum(view.latest.ai_estimate) +
            ",\"running_threads\":" + jnum(view.latest.running_threads) +
            ",\"telemetry_dropped\":" + jnum(view.telemetry_dropped) + "}";
  }
  apps += "]";
  journal_.record(now, "snapshot",
                  {{"tick", jnum(stats_.ticks)},
                   {"generation", jnum(agent_->generation())},
                   {"clients", jnum(static_cast<std::uint64_t>(client_count()))},
                   {"commands_sent", jnum(agent_->commands_sent())},
                   {"telemetry_received", jnum(agent_->telemetry_received())},
                   {"apps", std::move(apps)}});
}

void Daemon::start() {
  NS_REQUIRE(registry_ != nullptr, "Daemon::init() must succeed before start()");
  NS_REQUIRE(!running_.load(), "daemon already running");
  running_.store(true);
  loop_thread_ = std::thread([this] {
    set_current_thread_name("ns-daemon");
    while (running_.load(std::memory_order_acquire)) {
      tick(monotonic_seconds());
      std::this_thread::sleep_for(std::chrono::microseconds(options_.period_us));
    }
  });
}

void Daemon::stop() {
  if (!running_.exchange(false)) return;
  if (loop_thread_.joinable()) loop_thread_.join();
}

std::size_t Daemon::client_count() const {
  std::size_t used = 0;
  for (const auto& client : clients_) used += client.used ? 1 : 0;
  return used;
}

}  // namespace numashare::nsd
