#include "daemon/daemon.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <unordered_set>

#include "agent/policies.hpp"
#include "common/assert.hpp"
#include "common/format.hpp"
#include "common/logging.hpp"
#include "common/threading.hpp"
#include "inject/fault.hpp"

namespace numashare::nsd {

namespace {

/// How often (in ticks) the per-client channel drop counters are mirrored
/// into the registry slots for daemon-status.
constexpr std::uint64_t kDropMirrorEveryTicks = 16;

bool pid_is_dead(std::uint32_t pid) {
  if (pid == 0) return true;
  return ::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH;
}

std::string slot_client_name(const ClientSlot& slot) {
  return std::string(slot.name, strnlen(slot.name, sizeof(slot.name)));
}

}  // namespace

std::vector<agent::Directive> AdvertisedAiPolicy::decide(
    const topo::Machine& machine, const std::vector<agent::AppView>& views) {
  // Zero-copy fast path: only copy the view vector when some view actually
  // needs its AI substituted. At 1000+ clients the wholesale copy would
  // dominate an otherwise idle tick; when no client advertises at all, even
  // the per-view lookups are skipped.
  if (any_advertised_ && !any_advertised_()) return inner_->decide(machine, views);
  bool needs_patch = false;
  for (const auto& view : views) {
    if (view.has_telemetry && view.latest.ai_estimate > 0.0) continue;
    if (advertised_(view.name) > 0.0) {
      needs_patch = true;
      break;
    }
  }
  if (!needs_patch) return inner_->decide(machine, views);
  std::vector<agent::AppView> patched = views;
  for (auto& view : patched) {
    if (view.has_telemetry && view.latest.ai_estimate > 0.0) continue;
    const double ai = advertised_(view.name);
    if (ai <= 0.0) continue;
    view.latest.ai_estimate = ai;
    view.has_telemetry = true;
  }
  return inner_->decide(machine, patched);
}

Daemon::Daemon(topo::Machine machine, agent::PolicyPtr policy, DaemonOptions options)
    : machine_(std::move(machine)),
      options_(std::move(options)),
      clients_(kMaxClients),
      claim_first_seen_s_(kMaxClients, -1.0) {
  NS_REQUIRE(policy != nullptr, "daemon needs a policy");
  auto lookup = [this](const std::string& app_name) -> double {
    // Only clients advertising a usable AI are in the map, so when none do
    // (the common steady state once telemetry flows) the per-view lookup in
    // AdvertisedAiPolicy::decide costs a branch, not a string hash.
    if (advertised_ai_by_name_.empty()) return 0.0;
    const auto it = advertised_ai_by_name_.find(app_name);
    return it == advertised_ai_by_name_.end() ? 0.0 : it->second;
  };
  auto wrapped = std::make_unique<AdvertisedAiPolicy>(
      std::move(policy), std::move(lookup),
      [this] { return !advertised_ai_by_name_.empty(); });
  agent::AgentOptions agent_options = options_.agent;
  agent_ = std::make_unique<agent::Agent>(machine_, std::move(wrapped), agent_options);
  if (options_.foreign_enabled) {
    foreign_ = std::make_unique<foreign::ForeignMonitor>(machine_, options_.foreign);
  }
}

Daemon::~Daemon() { shutdown(); }

void Daemon::shutdown() {
  stop();
  if (shut_down_) return;
  shut_down_ = true;
  if (registry_ == nullptr) return;
  const double now = monotonic_seconds();
  if (foreign_ != nullptr) {
    // Leave no foreign process pinned by a daemon that no longer arbitrates.
    journal_foreign_events(foreign_->release_all(), now);
  }
  for (std::uint32_t i = 0; i < kMaxClients; ++i) {
    if (clients_[i].used) retire(i, "daemon-shutdown", now);
  }
  if (journal_.ok()) {
    // Final checkpoint first: a restart recovers the (now empty) registry
    // state from it without replaying history, then sees daemon-stop and
    // knows the shutdown was orderly.
    journal_checkpoint(now);
    journal_.record(now, "daemon-stop",
                    {{"ticks", jnum(stats_.ticks)},
                     {"joins", jnum(stats_.joins)},
                     {"evictions", jnum(stats_.evictions)},
                     {"checkpoints", jnum(stats_.checkpoints)}});
    journal_.sync(/*force=*/true);
  }
}

bool Daemon::init(std::string* error) {
  NS_REQUIRE(registry_ == nullptr, "daemon already initialized");
  // Chaos-harness knob: stretch the window between a daemon death and its
  // successor coming up (`daemon.restart.delay@ms=N` in the restarted
  // process), so degraded-mode behavior is observable for a bounded-but-
  // controllable interval.
  NS_FAULT_PAUSE("daemon.restart.delay", "init");
  // A previous incarnation that crashed leaves its registry (and channel
  // segments) behind. Reclaim them — but never rip the registry out from
  // under a daemon that is still alive.
  if (auto existing = Registry::open(options_.registry_name)) {
    if (existing->daemon_alive()) {
      if (error) {
        *error = ns_format("registry '{}' is owned by live daemon pid {}",
                           options_.registry_name,
                           existing->header().daemon_pid.load(std::memory_order_relaxed));
      }
      return false;
    }
  }
  stats_.stale_segments_cleaned = agent::cleanup_stale_segments(options_.registry_name);
  if (stats_.stale_segments_cleaned > 0) {
    NS_LOG_INFO("daemon", "startup cleanup removed {} stale shm segment(s)",
                stats_.stale_segments_cleaned);
  }
  registry_ = Registry::create(options_.registry_name, error);
  if (registry_ == nullptr) return false;
  // Publish the arbitrated machine's shape so clients can build their
  // runtime over the same node layout as the per-node commands.
  auto& header = registry_->header();
  for (topo::NodeId n = 0; n < machine_.node_count(); ++n) {
    header.node_cores[n].store(machine_.cores_in_node(n), std::memory_order_relaxed);
  }
  header.node_count.store(machine_.node_count(), std::memory_order_release);
  if (!options_.journal_path.empty() && !journal_.open(options_.journal_path)) {
    if (error) *error = ns_format("cannot open journal '{}'", options_.journal_path);
    registry_.reset();
    return false;
  }
  journal_.set_fsync_policy(options_.fsync_policy);
  // Recover from the previous incarnation's checkpoint + tail before this
  // incarnation writes anything (the append-mode open left the file intact).
  recover_from_journal();
  // Publish this incarnation: clients that survived the previous daemon in
  // degraded mode watch for a *higher* generation under this registry name
  // as their failback signal, and every command the agent sends from now on
  // carries it as the staleness fence.
  header.arbiter_generation.store(arbiter_generation_, std::memory_order_release);
  header.daemon_heartbeat.store(1, std::memory_order_release);
  agent_->set_arbiter_generation(arbiter_generation_);
  journal_.record(monotonic_seconds(), "daemon-start",
                  {{"registry", jstr(options_.registry_name)},
                   {"pid", jnum(static_cast<std::uint64_t>(::getpid()))},
                   {"machine", jstr(machine_.name())},
                   {"nodes", jnum(machine_.node_count())},
                   {"cores", jnum(machine_.core_count())},
                   {"policy", jstr(agent_->policy().name())},
                   {"arbiter_gen", jnum(arbiter_generation_)},
                   {"cleaned_segments", jnum(static_cast<std::uint64_t>(
                                            stats_.stale_segments_cleaned))}});
  return true;
}

void Daemon::admit(std::uint32_t index, std::uint64_t joining_word, double now) {
  auto& slot = registry_->slot(index);
  std::uint64_t word = joining_word;
  const auto pid = slot.pid.load(std::memory_order_relaxed);
  if (pid_is_dead(pid)) {
    // The client crashed between claiming and our tick; recycle silently
    // (CAS: the dying claimant's abandon path may race us).
    slot.try_transition(word, SlotState::kFree);
    return;
  }
  const std::uint64_t join_seq = ++join_seq_;
  const std::string channel_name =
      ns_format("{}-chan-{}-{}", options_.registry_name, index, join_seq);
  std::string error;
  auto channel = agent::ShmChannel::create(channel_name, &error);
  if (channel == nullptr) {
    NS_LOG_ERROR("daemon", "cannot create channel '{}': {}", channel_name, error);
    journal_.record(now, "join-failed",
                    {{"slot", jnum(index)}, {"error", jstr(error)}});
    slot.try_transition(word, SlotState::kFree);
    return;
  }
  const std::string base = slot_client_name(slot);
  const std::string app_name = ns_format("{}#{}.{}", base.empty() ? "app" : base, index, join_seq);
  const std::size_t agent_index = agent_->add_app(app_name, *channel);

  auto& client = clients_[index];
  client.agent_index = agent_index;
  client.agent_index_generation = agent_->generation();
  client.used = true;
  client.app_name = app_name;
  client.pid = pid;
  // Sanitize the hint: a torn/hostile advertisement must never poison the
  // policy (NaN propagates through the whole roofline solve).
  const double ai = slot.advertised_ai.load(std::memory_order_relaxed);
  client.advertised_ai = (ai >= 0.0 && ai <= 1e9) ? ai : 0.0;
  client.channel = std::move(channel);
  client.last_heartbeat = slot.heartbeat.load(std::memory_order_relaxed);
  client.last_heartbeat_change_s = now;

  slot.generation.store(agent_->generation(), std::memory_order_relaxed);
  std::memset(slot.channel_name, 0, sizeof(slot.channel_name));
  std::strncpy(slot.channel_name, channel_name.c_str(), sizeof(slot.channel_name) - 1);
  // Fresh compliance mirrors: the slot may be reused and still carry the
  // previous occupant's watchdog state.
  slot.health.store(static_cast<std::uint32_t>(ClientHealth::kHealthy),
                    std::memory_order_relaxed);
  slot.commanded_epoch.store(0, std::memory_order_relaxed);
  slot.enacted_epoch.store(0, std::memory_order_relaxed);
  slot.commands_dropped.store(0, std::memory_order_relaxed);
  slot.telemetry_dropped.store(0, std::memory_order_relaxed);

  // Write-ahead: journal the join, then activate. A crash between the two
  // leaves a journaled join with no active slot — recovery semantics the
  // replay invariant (and the daemon.die fault site) pin down.
  journal_.record(now, "join",
                  {{"client", jstr(app_name)},
                   {"pid", jnum(static_cast<std::uint64_t>(client.pid))},
                   {"slot", jnum(index)},
                   {"ai", jnum(client.advertised_ai)},
                   {"channel", jstr(channel_name)},
                   {"generation", jnum(agent_->generation())}});
  NS_FAULT_DIE("daemon.die", "post_journal_join", 48);
  NS_FAULT_PAUSE("daemon.pause", "admit_pre_activate");

  // Activation is a CAS on the exact word the client published: if the
  // client abandoned the claim while we were admitting (activation
  // timeout), the CAS fails and the whole join rolls back — the old code's
  // blind store would have resurrected the abandoned slot and stomped any
  // newer claimant that had already re-claimed it.
  if (!slot.try_transition(word, SlotState::kActive)) {
    agent_->remove_app(app_name);
    client.channel.reset();
    client = Client{};
    ++stats_.joins_abandoned;
    NS_LOG_WARN("daemon", "join rolled back: '{}' abandoned slot {} during activation",
                app_name, index);
    journal_.record(now, "join-abandoned",
                    {{"client", jstr(app_name)},
                     {"slot", jnum(index)},
                     {"generation", jnum(agent_->generation())}});
    return;
  }
  registry_->header().generation.store(agent_->generation(), std::memory_order_relaxed);
  used_bits_[index / kSlotsPerShard] |= std::uint64_t{1} << (index % kSlotsPerShard);
  // Sparse map: only advertisements the policy could actually substitute.
  // lookup() above then short-circuits on empty() in the steady state.
  if (client.advertised_ai > 0.0) advertised_ai_by_name_[app_name] = client.advertised_ai;

  ++stats_.joins;
  NS_LOG_INFO("daemon", "join: '{}' pid {} slot {} (ai={})", app_name, client.pid, index,
              client.advertised_ai);
}

void Daemon::retire(std::uint32_t index, const char* reason, double now) {
  auto& client = clients_[index];
  agent_->remove_app(client.app_name);
  const bool eviction = std::strcmp(reason, "leave") != 0;
  if (eviction) ++stats_.evictions;
  else ++stats_.leaves;
  // Compliance evictions get their own event type so the journal makes the
  // watchdog's terminal verdict greppable without parsing reasons.
  const char* event = !eviction                                  ? "leave"
                      : std::strcmp(reason, "compliance-evict") == 0 ? "compliance-evict"
                                                                    : "evict";
  NS_LOG_INFO("daemon", "{}: '{}' pid {} slot {} ({})", eviction ? "evict" : "leave",
              client.app_name, client.pid, index, reason);
  journal_.record(now, event,
                  {{"client", jstr(client.app_name)},
                   {"pid", jnum(static_cast<std::uint64_t>(client.pid))},
                   {"slot", jnum(index)},
                   {"reason", jstr(reason)},
                   {"generation", jnum(agent_->generation())}});
  client.channel.reset();  // creator side: unlinks the segment
  advertised_ai_by_name_.erase(client.app_name);
  client = Client{};
  used_bits_[index / kSlotsPerShard] &= ~(std::uint64_t{1} << (index % kSlotsPerShard));
  auto& slot = registry_->slot(index);
  registry_->header().generation.store(agent_->generation(), std::memory_order_relaxed);
  // CAS-loop to kFree: the nonce bump invalidates the departing client's
  // active word, so a late heartbeat/disconnect cannot resurrect the slot.
  std::uint64_t word = slot.state_word.load(std::memory_order_acquire);
  while (state_of(word) != SlotState::kFree && !slot.try_transition(word, SlotState::kFree)) {
  }
}

void Daemon::check_liveness(std::uint32_t index, double now) {
  auto& slot = registry_->slot(index);
  auto& client = clients_[index];
  const std::uint64_t beat = slot.heartbeat.load(std::memory_order_relaxed);
  if (beat != client.last_heartbeat) {
    client.last_heartbeat = beat;
    client.last_heartbeat_change_s = now;
    return;
  }
  if (pid_is_dead(client.pid)) {
    retire(index, "dead-pid", now);
    return;
  }
  if (now - client.last_heartbeat_change_s > options_.heartbeat_timeout_s) {
    retire(index, "heartbeat-timeout", now);
  }
}

void Daemon::process_slot(std::uint32_t index, double now) {
  auto& slot = registry_->slot(index);
  std::uint64_t word = slot.state_word.load(std::memory_order_acquire);
  const SlotState state = state_of(word);
  const std::uint64_t bit = std::uint64_t{1} << (index % kSlotsPerShard);
  if (state != SlotState::kClaiming) {
    claim_first_seen_s_[index] = -1.0;
    claiming_bits_[index / kSlotsPerShard] &= ~bit;
  }
  switch (state) {
    case SlotState::kJoining:
      admit(index, word, now);
      break;
    case SlotState::kLeaving:
      if (clients_[index].used) {
        retire(index, "leave", now);
      } else {
        slot.try_transition(word, SlotState::kFree);
      }
      break;
    case SlotState::kActive:
      if (!clients_[index].used) {
        // Active slot we know nothing about: impossible after a clean
        // startup (cleanup removed the old registry); recycle defensively.
        // Admitted clients are handled by the liveness pass over used_bits_.
        slot.try_transition(word, SlotState::kFree);
      }
      break;
    case SlotState::kClaiming:
      // A claimant that dies (or stalls) here leaks the slot forever: no
      // other claimant can take it and the daemon never sees kJoining.
      // Bound the window: reclaim after claim_timeout_s. The nonce bump
      // makes a late publish by a merely-stalled claimant fail its CAS.
      // claiming_bits_ keeps the slot on this tick-by-tick watch after its
      // attention bit (consumed on first sight) is gone.
      if (claim_first_seen_s_[index] < 0.0) {
        claim_first_seen_s_[index] = now;
        claiming_bits_[index / kSlotsPerShard] |= bit;
      } else if (now - claim_first_seen_s_[index] > options_.claim_timeout_s) {
        if (slot.try_transition(word, SlotState::kFree)) {
          ++stats_.claims_reclaimed;
          NS_LOG_WARN("daemon", "reclaimed slot {} stuck in claiming past {}s", index,
                      options_.claim_timeout_s);
          journal_.record(now, "claim-reclaimed", {{"slot", jnum(index)}});
        }
        claim_first_seen_s_[index] = -1.0;
        claiming_bits_[index / kSlotsPerShard] &= ~bit;
      }
      break;
    case SlotState::kFree:
      break;
  }
}

std::uint32_t Daemon::tick(double now) {
  NS_REQUIRE(registry_ != nullptr, "Daemon::init() must succeed before tick()");
  if (NS_FAULT_AT("daemon.tick.skip")) return 0;
  // SIGKILL stand-in for the kill/restart chaos harness: `daemon.die@
  // site=tick,after=N` murders the daemon mid-service on the N+1-th tick.
  NS_FAULT_DIE("daemon.die", "tick", 52);

  // 1. Attention-driven servicing: one exchange drains a whole shard's
  // bitmap, then only flagged slots are visited — tick cost is proportional
  // to activity, not to the 1024-slot capacity.
  auto& header = registry_->header();
  for (std::uint32_t shard = 0; shard < kRegistryShards; ++shard) {
    // Cheap load first: an idle shard costs a read, not an atomic RMW. A
    // bit raised between the load and the next tick's load is simply seen
    // then — no different from one raised just after an unconditional
    // exchange.
    if (header.attention[shard].load(std::memory_order_relaxed) == 0) continue;
    std::uint64_t bits = header.attention[shard].exchange(0, std::memory_order_acquire);
    for (; bits != 0; bits &= bits - 1) {
      ++stats_.attention_visits;
      process_slot(shard * kSlotsPerShard +
                       static_cast<std::uint32_t>(std::countr_zero(bits)),
                   now);
    }
  }
  // 2. Claim-timeout watch: slots seen claiming keep getting re-checked
  // every tick (their attention bit was consumed when first seen).
  for (std::uint32_t shard = 0; shard < kRegistryShards; ++shard) {
    std::uint64_t bits = claiming_bits_[shard];
    for (; bits != 0; bits &= bits - 1) {
      process_slot(shard * kSlotsPerShard +
                       static_cast<std::uint32_t>(std::countr_zero(bits)),
                   now);
    }
  }
  // 3. Safety-net full sweep: converges slots whose attention bit was lost
  // (raiser killed between its state CAS and the fetch_or). Runs on the
  // first tick, so startup state is serviced immediately.
  if (options_.full_sweep_every_ticks > 0 &&
      stats_.ticks % options_.full_sweep_every_ticks == 0) {
    ++stats_.full_sweeps;
    for (std::uint32_t i = 0; i < kMaxClients; ++i) process_slot(i, now);
  }
  // 4. Liveness over admitted clients, O(active): heartbeat silence is the
  // *absence* of an event — no client-raised bit can signal it, so the
  // daemon polls its own occupancy bitmap instead of the registry. The pass
  // is time-gated: timeouts are seconds while ticks are sub-millisecond, so
  // polling every heartbeat line every tick costs a cache miss per client
  // for detection latency nobody asked for. Gated at timeout/8, a death is
  // still caught within 9/8 of the configured timeout.
  if (now - last_liveness_pass_s_ >=
      options_.heartbeat_timeout_s * options_.liveness_check_fraction) {
    last_liveness_pass_s_ = now;
    for (std::uint32_t shard = 0; shard < kRegistryShards; ++shard) {
      std::uint64_t bits = used_bits_[shard];
      for (; bits != 0; bits &= bits - 1) {
        const std::uint32_t i =
            shard * kSlotsPerShard + static_cast<std::uint32_t>(std::countr_zero(bits));
        if (clients_[i].used) check_liveness(i, now);
      }
    }
  }

  // Foreign arbitration runs before the agent step so the policy prices the
  // freshest opaque-consumer load into this tick's decision.
  if (foreign_ != nullptr && options_.foreign_scan_every_ticks > 0 &&
      stats_.ticks % options_.foreign_scan_every_ticks == 0) {
    foreign_tick(now);
  }

  const std::uint32_t sent = agent_->step(now);
  // The compliance watchdog runs on the views the step just refreshed.
  // Liveness eviction (above) already removed the dead, so everything left
  // is heartbeating — the watchdog's subject is the live-but-noncompliant.
  //
  // Quiet-skip: when nothing the watchdog consumes has changed since the
  // previous pass (no commands sent, no telemetry ingested, same
  // membership) and that pass left every client healthy and caught up, no
  // state machine can transition — every armed deadline requires a client
  // behind or in a degraded health state. Skipping the pass keeps the idle
  // tick free of the bulk snapshot and the per-client walk.
  const bool quiet = sent == 0 && compliance_all_quiet_ &&
                     agent_->generation() == compliance_pass_generation_ &&
                     agent_->telemetry_received() == compliance_pass_telemetry_;
  if (!quiet) {
    // One bulk snapshot serves the whole pass; a compliance-evict mid-pass
    // shifts agent indices (generation bump), so the snapshot refreshes
    // then.
    agent_->snapshot_compliance(compliance_scratch_);
    std::uint64_t scratch_generation = agent_->generation();
    compliance_all_quiet_ = true;
    for (std::uint32_t shard = 0; shard < kRegistryShards; ++shard) {
      std::uint64_t bits = used_bits_[shard];
      for (; bits != 0; bits &= bits - 1) {
        const std::uint32_t i =
            shard * kSlotsPerShard + static_cast<std::uint32_t>(std::countr_zero(bits));
        if (!clients_[i].used) continue;
        if (agent_->generation() != scratch_generation) {
          agent_->snapshot_compliance(compliance_scratch_);
          scratch_generation = agent_->generation();
        }
        check_compliance(i, now);
      }
    }
    compliance_pass_generation_ = agent_->generation();
    compliance_pass_telemetry_ = agent_->telemetry_received();
  }
  ++stats_.ticks;
  registry_->header().tick.fetch_add(1, std::memory_order_release);
  // The liveness word clients actually watch: they look for *change* within
  // a miss window, never comparing cross-process clocks.
  registry_->header().daemon_heartbeat.fetch_add(1, std::memory_order_release);
  if (sent > 0) {
    ++stats_.reallocations;
    journal_allocation(now);
  }
  if (options_.snapshot_every_ticks > 0 &&
      stats_.ticks % options_.snapshot_every_ticks == 0) {
    journal_snapshot(now);
  }
  maybe_checkpoint(now);
  return sent;
}

void Daemon::check_compliance(std::uint32_t index, double now) {
  auto& client = clients_[index];
  // Index-addressed compliance fetch from the tick's bulk snapshot: the
  // cached index survives until any join/leave bumps the agent generation,
  // so the steady-state tick does one vector read per client instead of a
  // mutex acquisition and a name hash.
  if (client.agent_index_generation != agent_->generation()) {
    client.agent_index = agent_->find_app(client.app_name);
    client.agent_index_generation = agent_->generation();
  }
  const auto comp = client.agent_index < compliance_scratch_.size()
                        ? compliance_scratch_[client.agent_index]
                        : agent::Agent::ComplianceState{};
  const ClientHealth health_before = client.health;
  const bool epochs_changed = client.commanded_epoch != comp.commanded_epoch ||
                              client.enacted_epoch != comp.enacted_epoch ||
                              client.stalled_workers != comp.stalled_workers;
  client.commanded_epoch = comp.commanded_epoch;
  client.enacted_epoch = comp.enacted_epoch;
  client.stalled_workers = comp.stalled_workers;
  const bool behind = comp.commanded_epoch > comp.enacted_epoch;
  // A client behind or in any degraded health state has armed deadlines:
  // the watchdog pass must keep running for it even on otherwise-quiet
  // ticks (health may still change below; checked again at the end).
  if (behind) compliance_all_quiet_ = false;
  if (!behind) {
    client.behind_since_s = -1.0;
  } else if (client.behind_since_s < 0.0) {
    client.behind_since_s = now;
  }

  // The client's own scheduler-latency watchdog distinguishes "app ignoring
  // commands" from "OS not scheduling the app": while it reports stalled
  // (commanded-online but unscheduled) workers, being behind is starvation,
  // not defiance — punishing it would only deepen the starvation. Hold the
  // escalation clock; it restarts the moment the stall clears.
  if (behind && comp.stalled_workers > 0 && client.health == ClientHealth::kHealthy) {
    client.behind_since_s = now;
    if (client.stall_journaled_epoch != comp.commanded_epoch) {
      client.stall_journaled_epoch = comp.commanded_epoch;
      NS_LOG_WARN("daemon",
                  "enactment-stalled: '{}' behind (commanded {} enacted {}) with {} "
                  "unscheduled workers; holding escalation",
                  client.app_name, comp.commanded_epoch, comp.enacted_epoch,
                  comp.stalled_workers);
      journal_.record(now, "enactment-stalled",
                      {{"client", jstr(client.app_name)},
                       {"slot", jnum(index)},
                       {"commanded", jnum(comp.commanded_epoch)},
                       {"enacted", jnum(comp.enacted_epoch)},
                       {"stalled_workers", jnum(comp.stalled_workers)}});
    }
  }

  switch (client.health) {
    case ClientHealth::kHealthy:
      if (behind && now - client.behind_since_s >= options_.enactment_deadline_s) {
        // Laggard: administratively reclaim the unenacted cores by capping
        // the client at what it has provably enacted (never below the
        // floor); the policy redistributes the difference on the next step.
        const std::uint32_t cap =
            comp.enacted_target == agent::kUnconstrained
                ? options_.quarantine_floor_threads
                : std::max(options_.quarantine_floor_threads, comp.enacted_target);
        agent_->set_app_thread_cap(client.app_name, cap);
        client.health = ClientHealth::kLaggard;
        ++stats_.laggards;
        NS_LOG_WARN("daemon", "laggard: '{}' behind (commanded {} enacted {}), capped at {}",
                    client.app_name, comp.commanded_epoch, comp.enacted_epoch, cap);
        journal_.record(now, "laggard",
                        {{"client", jstr(client.app_name)},
                         {"slot", jnum(index)},
                         {"commanded", jnum(comp.commanded_epoch)},
                         {"enacted", jnum(comp.enacted_epoch)},
                         {"cap", jnum(cap)}});
      }
      break;

    case ClientHealth::kLaggard:
      if (!behind) {
        // Enacted everything commanded (including the capped command):
        // cooperative after all. Full readmission.
        agent_->set_app_thread_cap(client.app_name, 0xffffffffu);
        client.health = ClientHealth::kHealthy;
        ++stats_.readmissions;
        journal_.record(now, "readmit",
                        {{"client", jstr(client.app_name)},
                         {"slot", jnum(index)},
                         {"from", jstr("laggard")}});
      } else if (now - client.behind_since_s >=
                 options_.enactment_deadline_s + options_.quarantine_grace_s) {
        ++client.offenses;
        if (client.offenses >= options_.max_compliance_offenses) {
          ++stats_.compliance_evictions;
          retire(index, "compliance-evict", now);
          return;
        }
        agent_->set_app_thread_cap(client.app_name, options_.quarantine_floor_threads);
        client.health = ClientHealth::kQuarantined;
        client.backoff_s = options_.readmit_backoff_s;
        client.next_probe_s = now + client.backoff_s;
        client.probing = false;
        ++stats_.quarantines;
        NS_LOG_WARN("daemon", "quarantine: '{}' (offense {}, next probe in {}s)",
                    client.app_name, client.offenses, client.backoff_s);
        journal_.record(now, "quarantine",
                        {{"client", jstr(client.app_name)},
                         {"slot", jnum(index)},
                         {"offenses", jnum(client.offenses)},
                         {"floor", jnum(options_.quarantine_floor_threads)},
                         {"backoff_s", jnum(client.backoff_s)}});
      }
      break;

    case ClientHealth::kQuarantined:
      if (client.probing) {
        if (!behind) {
          // Probe survived: the client enacted a full-share command within
          // the deadline. Readmit; offenses stay on record for the repeat-
          // offender eviction, but the backoff resets.
          client.health = ClientHealth::kHealthy;
          client.probing = false;
          client.probe_deadline_s = -1.0;
          client.backoff_s = 0.0;
          client.next_probe_s = -1.0;
          ++stats_.readmissions;
          journal_.record(now, "readmit",
                          {{"client", jstr(client.app_name)},
                           {"slot", jnum(index)},
                           {"from", jstr("quarantined")},
                           {"offenses", jnum(client.offenses)}});
        } else if (now >= client.probe_deadline_s) {
          ++client.offenses;
          client.probing = false;
          client.probe_deadline_s = -1.0;
          if (client.offenses >= options_.max_compliance_offenses) {
            ++stats_.compliance_evictions;
            retire(index, "compliance-evict", now);
            return;
          }
          // Back to the floor; exponential backoff before the next probe.
          agent_->set_app_thread_cap(client.app_name, options_.quarantine_floor_threads);
          client.backoff_s = std::min(client.backoff_s * 2.0, options_.readmit_backoff_max_s);
          client.next_probe_s = now + client.backoff_s;
          journal_.record(now, "probe-failed",
                          {{"client", jstr(client.app_name)},
                           {"slot", jnum(index)},
                           {"offenses", jnum(client.offenses)},
                           {"backoff_s", jnum(client.backoff_s)}});
        }
      } else if (now >= client.next_probe_s) {
        // Readmission probe: lift the cap so the policy re-grants a full
        // share; the client must enact it before the probe deadline.
        agent_->set_app_thread_cap(client.app_name, 0xffffffffu);
        client.probing = true;
        client.probe_deadline_s = now + options_.enactment_deadline_s;
        client.behind_since_s = -1.0;
        ++stats_.readmission_probes;
        journal_.record(now, "readmission-probe",
                        {{"client", jstr(client.app_name)},
                         {"slot", jnum(index)},
                         {"offenses", jnum(client.offenses)}});
      }
      break;
  }

  if (client.health != ClientHealth::kHealthy) compliance_all_quiet_ = false;

  // Mirror the watchdog's view into the registry slot for daemon-status.
  // Stores are gated on change (admit() seeds the slot with the same
  // defaults the Client reset carries), keeping the quiescent-client tick
  // free of shared-memory writes.
  auto& slot = registry_->slot(index);
  if (client.health != health_before) {
    slot.health.store(static_cast<std::uint32_t>(client.health), std::memory_order_relaxed);
  }
  if (epochs_changed) {
    slot.commanded_epoch.store(client.commanded_epoch, std::memory_order_relaxed);
    slot.enacted_epoch.store(client.enacted_epoch, std::memory_order_relaxed);
    slot.stalled_workers.store(client.stalled_workers, std::memory_order_relaxed);
  }
  // Drop counters feed daemon-status only; refreshing them means two
  // ring-header loads per client, so do it on a cadence rather than every
  // tick (second-scale staleness is fine for an observability mirror).
  if (client.channel != nullptr && stats_.ticks % kDropMirrorEveryTicks == 0) {
    const std::uint64_t cmd_dropped = client.channel->commands_dropped();
    const std::uint64_t tel_dropped = client.channel->telemetry_dropped();
    if (cmd_dropped != client.mirrored_commands_dropped) {
      client.mirrored_commands_dropped = cmd_dropped;
      slot.commands_dropped.store(cmd_dropped, std::memory_order_relaxed);
    }
    if (tel_dropped != client.mirrored_telemetry_dropped) {
      client.mirrored_telemetry_dropped = tel_dropped;
      slot.telemetry_dropped.store(tel_dropped, std::memory_order_relaxed);
    }
  }
}

void Daemon::foreign_tick(double now) {
  // Our own pid and every client's: their CPU time is cooperating load the
  // model already accounts for, never foreign.
  std::unordered_set<std::int32_t> participants;
  participants.insert(static_cast<std::int32_t>(::getpid()));
  for (const auto& client : clients_) {
    if (client.used) participants.insert(static_cast<std::int32_t>(client.pid));
  }
  foreign_->set_participants(participants);
  const auto events = foreign_->tick(now);
  ++stats_.foreign_scans;
  journal_foreign_events(events, now);
  agent_->policy().on_foreign_load(foreign_->load());
  mirror_foreign_shard();
}

void Daemon::journal_foreign_events(const std::vector<foreign::ForeignEvent>& events,
                                    double now) {
  for (const auto& event : events) {
    switch (event.kind) {
      case foreign::ForeignEvent::Kind::kSeen:
        ++stats_.foreign_seen;
        NS_LOG_INFO("daemon", "foreign-seen: '{}' pid {} ({} cores)", event.name,
                    event.pid, event.cpu_cores);
        journal_.record(now, "foreign-seen",
                        {{"pid", jnum(static_cast<std::uint64_t>(event.pid))},
                         {"name", jstr(event.name)},
                         {"cores", jnum(event.cpu_cores)}});
        break;
      case foreign::ForeignEvent::Kind::kGone:
        ++stats_.foreign_gone;
        NS_LOG_INFO("daemon", "foreign-gone: '{}' pid {}", event.name, event.pid);
        journal_.record(now, "foreign-gone",
                        {{"pid", jnum(static_cast<std::uint64_t>(event.pid))},
                         {"name", jstr(event.name)}});
        break;
      case foreign::ForeignEvent::Kind::kFence:
        ++stats_.foreign_fences;
        NS_LOG_INFO("daemon", "foreign-fence: '{}' pid {} -> node {} ({})", event.name,
                    event.pid, event.node, foreign::to_string(event.fence));
        journal_.record(now, "foreign-fence",
                        {{"pid", jnum(static_cast<std::uint64_t>(event.pid))},
                         {"name", jstr(event.name)},
                         {"node", jnum(event.node)},
                         {"state", jstr(foreign::to_string(event.fence))}});
        break;
      case foreign::ForeignEvent::Kind::kRelease:
        ++stats_.foreign_releases;
        NS_LOG_INFO("daemon", "foreign-fence released: '{}' pid {}", event.name, event.pid);
        journal_.record(now, "foreign-fence",
                        {{"pid", jnum(static_cast<std::uint64_t>(event.pid))},
                         {"name", jstr(event.name)},
                         {"state", jstr("released")}});
        break;
    }
  }
}

void Daemon::mirror_foreign_shard() {
  auto& header = registry_->header();
  const auto tracked = foreign_->tracked();
  const auto count =
      std::min<std::uint32_t>(static_cast<std::uint32_t>(tracked.size()), kMaxForeign);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto& info = tracked[i];
    auto& row = header.foreign[i];
    std::memset(row.name, 0, sizeof(row.name));
    std::strncpy(row.name, info.name.c_str(), sizeof(row.name) - 1);
    row.fence.store(static_cast<std::uint32_t>(info.fence), std::memory_order_relaxed);
    row.fence_node.store(info.fence_node == topo::kInvalidNode ? agent::kMaxNodes
                                                               : info.fence_node,
                         std::memory_order_relaxed);
    row.busy_millicores.store(static_cast<std::uint64_t>(info.cpu_cores * 1000.0),
                              std::memory_order_relaxed);
    for (std::uint32_t n = 0; n < agent::kMaxNodes; ++n) {
      const double share = n < info.node_cores.size() ? info.node_cores[n] : 0.0;
      row.node_millicores[n].store(static_cast<std::uint64_t>(share * 1000.0),
                                   std::memory_order_relaxed);
    }
    // pid last: readers treat pid != 0 as "row valid".
    row.pid.store(info.pid, std::memory_order_release);
  }
  for (std::uint32_t i = count; i < kMaxForeign; ++i) {
    header.foreign[i].pid.store(0, std::memory_order_relaxed);
  }
  header.foreign_count.store(count, std::memory_order_release);
}

void Daemon::journal_allocation(double now) {
  if (!journal_.ok()) return;
  // When the (possibly wrapped) policy is model-guided, attach the actual
  // per-node allocation behind the directives; otherwise names only.
  agent::Policy* policy = &agent_->policy();
  if (auto* wrapper = dynamic_cast<AdvertisedAiPolicy*>(policy)) policy = &wrapper->inner();
  const model::Allocation* allocation = nullptr;
  if (auto* model_guided = dynamic_cast<agent::ModelGuidedPolicy*>(policy)) {
    if (model_guided->last_allocation()) allocation = &*model_guided->last_allocation();
  }
  const auto& views = agent_->views();
  std::string apps = "[";
  for (std::size_t a = 0; a < views.size(); ++a) {
    if (a > 0) apps += ",";
    apps += "{\"name\":" + jstr(views[a].name);
    if (allocation != nullptr && a < allocation->app_count()) {
      apps += ",\"node_threads\":[";
      for (topo::NodeId n = 0; n < allocation->node_count(); ++n) {
        if (n > 0) apps += ",";
        apps += jnum(allocation->threads(static_cast<model::AppId>(a), n));
      }
      apps += "]";
    }
    apps += "}";
  }
  apps += "]";
  journal_.record(now, "reallocate",
                  {{"generation", jnum(agent_->generation())},
                   {"apps", std::move(apps)}});
}

void Daemon::journal_snapshot(double now) {
  if (!journal_.ok()) return;
  const auto& views = agent_->views();
  std::string apps = "[";
  for (std::size_t a = 0; a < views.size(); ++a) {
    if (a > 0) apps += ",";
    const auto& view = views[a];
    apps += "{\"name\":" + jstr(view.name) + ",\"task_rate\":" + jnum(view.task_rate) +
            ",\"ai\":" + jnum(view.latest.ai_estimate) +
            ",\"running_threads\":" + jnum(view.latest.running_threads) +
            ",\"telemetry_dropped\":" + jnum(view.telemetry_dropped) + "}";
  }
  apps += "]";
  journal_.record(now, "snapshot",
                  {{"tick", jnum(stats_.ticks)},
                   {"generation", jnum(agent_->generation())},
                   {"clients", jnum(static_cast<std::uint64_t>(client_count()))},
                   {"commands_sent", jnum(agent_->commands_sent())},
                   {"telemetry_received", jnum(agent_->telemetry_received())},
                   {"apps", std::move(apps)}});
}

void Daemon::journal_checkpoint(double now) {
  if (!journal_.ok()) return;
  // Full registry + health snapshot: everything recovery needs to reseed
  // the daemon without replaying history before this line.
  std::string clients = "[";
  bool first = true;
  for (std::uint32_t i = 0; i < kMaxClients; ++i) {
    const auto& client = clients_[i];
    if (!client.used) continue;
    if (!first) clients += ",";
    first = false;
    clients += "{\"slot\":" + jnum(i) + ",\"client\":" + jstr(client.app_name) +
               ",\"pid\":" + jnum(static_cast<std::uint64_t>(client.pid)) +
               ",\"ai\":" + jnum(client.advertised_ai) +
               ",\"channel\":" + jstr(client.channel != nullptr ? client.channel->name() : "") +
               ",\"health\":" + jstr(to_string(client.health)) +
               ",\"commanded\":" + jnum(client.commanded_epoch) +
               ",\"enacted\":" + jnum(client.enacted_epoch) +
               ",\"offenses\":" + jnum(client.offenses) + "}";
  }
  clients += "]";
  // Checksummed: recovery refuses a bit-rotted snapshot and falls back to
  // the previous checkpoint rather than reseeding from corrupt state.
  journal_.record_checksummed(now, "checkpoint",
                              {{"tick", jnum(stats_.ticks)},
                               {"generation", jnum(agent_->generation())},
                               {"arbiter_gen", jnum(arbiter_generation_)},
                               {"join_seq", jnum(join_seq_)},
                               {"clients", std::move(clients)}});
  journal_.sync();
  ++stats_.checkpoints;
  NS_FAULT_DIE("daemon.checkpoint.die", "post_checkpoint", 50);
}

void Daemon::maybe_checkpoint(double now) {
  if (!journal_.ok()) return;
  const bool compact_due = options_.compact_after_lines > 0 &&
                           journal_.lines_written() >= options_.compact_after_lines;
  if (compact_due) {
    // Rotation truncates to the tail: the old file becomes the side-file
    // and the new one opens with a fresh checkpoint so it is self-contained
    // from line one.
    if (journal_.rotate()) {
      ++stats_.compactions;
      journal_checkpoint(now);
    }
    return;
  }
  if (options_.checkpoint_every_ticks > 0 &&
      stats_.ticks % options_.checkpoint_every_ticks == 0) {
    journal_checkpoint(now);
  }
}

void Daemon::recover_from_journal() {
  if (!journal_.ok()) return;
  const auto recovered = nsd::recover_journal(options_.journal_path);
  if (recovered.checkpoint.empty() && recovered.tail.empty()) return;
  std::uint64_t checkpoint_tick = 0;
  if (!recovered.checkpoint.empty()) {
    stats_.recovered_from_checkpoint = true;
    if (auto seq = journal_field(recovered.checkpoint, "join_seq")) {
      join_seq_ = std::strtoull(seq->c_str(), nullptr, 10);
    }
    if (auto tick = journal_field(recovered.checkpoint, "tick")) {
      checkpoint_tick = std::strtoull(tick->c_str(), nullptr, 10);
    }
    // Strictly monotone incarnations: whatever generation the dead daemon
    // checkpointed, this one is its successor. Clients fence on this.
    if (auto gen = journal_field(recovered.checkpoint, "arbiter_gen")) {
      arbiter_generation_ = std::strtoull(gen->c_str(), nullptr, 10) + 1;
    }
  }
  if (recovered.corrupt_checkpoints_skipped > 0) {
    NS_LOG_WARN("daemon", "recovery skipped {} corrupt checkpoint(s)",
                recovered.corrupt_checkpoints_skipped);
  }
  // An incarnation that died before its first checkpoint only left its
  // daemon-start record; its generation must still not be reused, or
  // degraded survivors would never see the failback signal.
  for (const auto& entry : recovered.tail) {
    if (entry.event != "daemon-start") continue;
    if (auto gen = journal_field(entry.raw, "arbiter_gen")) {
      arbiter_generation_ = std::max<std::uint64_t>(
          arbiter_generation_, std::strtoull(gen->c_str(), nullptr, 10) + 1);
    }
  }
  stats_.recovered_tail_entries = recovered.tail.size();
  // Replay only the tail: every join after the checkpoint consumed a join
  // sequence number, and join_seq_ must move past all of them so channel
  // and app names stay unique across incarnations. (Counting every tail
  // entry instead of just joins over-advances harmlessly.)
  join_seq_ += recovered.tail.size();
  NS_LOG_INFO("daemon",
              "recovered journal: checkpoint tick {}, {} tail entries, join_seq {}{}",
              checkpoint_tick, recovered.tail.size(), join_seq_,
              recovered.used_sidefile ? " (from rotation side-file)" : "");
  journal_.record(monotonic_seconds(), "daemon-recover",
                  {{"checkpoint_tick", jnum(checkpoint_tick)},
                   {"tail_entries", jnum(static_cast<std::uint64_t>(recovered.tail.size()))},
                   {"join_seq", jnum(join_seq_)},
                   {"arbiter_gen", jnum(arbiter_generation_)},
                   {"from_checkpoint", jbool(stats_.recovered_from_checkpoint)},
                   {"sidefile", jbool(recovered.used_sidefile)},
                   {"corrupt_checkpoints", jnum(static_cast<std::uint64_t>(
                                               recovered.corrupt_checkpoints_skipped))},
                   {"torn_tail", jbool(recovered.torn_tail)}});
}

std::optional<Daemon::ComplianceView> Daemon::compliance_view(
    const std::string& app_name) const {
  for (const auto& client : clients_) {
    if (!client.used || client.app_name != app_name) continue;
    ComplianceView view;
    view.health = client.health;
    view.commanded_epoch = client.commanded_epoch;
    view.enacted_epoch = client.enacted_epoch;
    view.offenses = client.offenses;
    view.probing = client.probing;
    view.next_probe_s = client.next_probe_s;
    view.backoff_s = client.backoff_s;
    view.stalled_workers = client.stalled_workers;
    return view;
  }
  return std::nullopt;
}

void Daemon::start() {
  NS_REQUIRE(registry_ != nullptr, "Daemon::init() must succeed before start()");
  NS_REQUIRE(!running_.load(), "daemon already running");
  running_.store(true);
  loop_thread_ = std::thread([this] {
    set_current_thread_name("ns-daemon");
    while (running_.load(std::memory_order_acquire)) {
      tick(monotonic_seconds());
      std::this_thread::sleep_for(std::chrono::microseconds(options_.period_us));
    }
  });
}

void Daemon::stop() {
  if (!running_.exchange(false)) return;
  if (loop_thread_.joinable()) loop_thread_.join();
}

std::size_t Daemon::client_count() const {
  std::size_t used = 0;
  for (const auto bits : used_bits_) used += static_cast<std::size_t>(std::popcount(bits));
  return used;
}

}  // namespace numashare::nsd
