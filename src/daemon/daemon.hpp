// ns_daemon: the standalone arbitration service (paper Figure 1, deployed).
//
// The library Agent arbitrates a fixed set of apps wired up in one process.
// The Daemon turns that into a service: it owns the well-known registry
// segment where applications come and go at will, mints a dedicated
// ShmChannel per client, and drives the wrapped Agent so policies keep
// re-partitioning as membership changes.
//
// Robustness is the design center:
//  * per-client heartbeats — the daemon watches the slot counter *change*,
//    never comparing clocks across processes;
//  * crash detection — heartbeat silence plus kill(pid, 0);
//  * eviction — the dead client's app is deregistered, its channel
//    unlinked, its cores redistributed by the policy on the next tick;
//  * crash recovery — on startup the daemon removes every stale segment
//    left under its name prefix by a previous incarnation (only after
//    checking no live daemon still owns the registry);
//  * observability — every membership event and reallocation goes to the
//    JSONL journal (journal.hpp), and `numashare_cli daemon-status` reads
//    live state straight out of the registry segment.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "agent/agent.hpp"
#include "agent/shm_channel.hpp"
#include "daemon/journal.hpp"
#include "daemon/registry.hpp"
#include "foreign/monitor.hpp"

namespace numashare::nsd {

struct DaemonOptions {
  std::string registry_name = kDefaultRegistryName;
  /// Per-client channel segments are named <registry_name>-chan-<slot>-<gen>.
  /// Startup cleanup unlinks everything starting with <registry_name>.
  std::string journal_path;  ///< empty = journaling disabled
  /// Evict a client whose heartbeat counter has not changed for this long.
  double heartbeat_timeout_s = 2.0;
  /// Reclaim a slot stuck in kClaiming for this long: the claimant died (or
  /// stalled) between reserving the slot and publishing its identity, and
  /// nobody else can free it. The nonce in the slot's state word makes a
  /// late publish by a merely-stalled claimant fail harmlessly.
  double claim_timeout_s = 2.0;
  /// Background loop tick period.
  std::int64_t period_us = 10'000;
  /// Journal a full state snapshot every N ticks (0 = never).
  std::uint64_t snapshot_every_ticks = 100;
  /// Scan every slot (not just attention-flagged ones) every N ticks — the
  /// safety net that converges slots whose attention bit was lost (raiser
  /// killed between its state CAS and the fetch_or). 1 = full scan every
  /// tick (the pre-v7 behaviour, and the bench's baseline); 0 = never
  /// (bitmap-only, tests). See docs/DAEMON.md "Scaling the tick path".
  std::uint64_t full_sweep_every_ticks = 16;
  /// Liveness pass cadence as a fraction of heartbeat_timeout_s (the pass
  /// runs when at least timeout*fraction seconds passed since the last one).
  /// Heartbeat silence is measured in seconds while ticks run at
  /// microsecond-to-millisecond cadence — polling every client's heartbeat
  /// line every tick buys nothing but cache misses. Detection latency is
  /// bounded by timeout * (1 + fraction). 0 = check every tick.
  double liveness_check_fraction = 0.125;

  // --- Compliance watchdog (healthy -> laggard -> quarantined -> evicted).
  /// A client behind the commanded epoch for this long becomes a laggard:
  /// its unenacted cores are administratively reclaimed (thread cap at what
  /// it actually enacted) and redistributed by the policy.
  double enactment_deadline_s = 1.0;
  /// A laggard still behind this much longer is quarantined: capped to the
  /// floor allocation, readmission only via probes.
  double quarantine_grace_s = 1.0;
  /// Total threads a quarantined client keeps (its floor allocation).
  std::uint32_t quarantine_floor_threads = 1;
  /// Readmission probe backoff: first probe after this delay, doubling per
  /// failed probe up to the max.
  double readmit_backoff_s = 0.5;
  double readmit_backoff_max_s = 8.0;
  /// Evict ("compliance-evict") after this many offenses (quarantine
  /// entries + failed probes).
  std::uint32_t max_compliance_offenses = 4;

  // --- Checkpointed journal.
  /// Write a full registry+health checkpoint record every N ticks
  /// (0 = never). Recovery loads the newest checkpoint and replays only the
  /// tail after it.
  std::uint64_t checkpoint_every_ticks = 1000;
  /// Rotate (compact) the journal once it exceeds this many lines
  /// (0 = never): the old file moves to <path>.1 and the new file starts
  /// with a fresh checkpoint.
  std::uint64_t compact_after_lines = 4096;
  /// Journal durability (docs/DAEMON.md). The default fsyncs checkpoints
  /// and rotations; every-write fsyncs each record; none only flushes.
  FsyncPolicy fsync_policy = FsyncPolicy::kCheckpoint;

  // --- Foreign-workload arbitration (src/foreign/, docs/FOREIGN.md).
  /// Run the ForeignMonitor: detect non-participant processes, feed their
  /// load to the policy, journal foreign-seen/gone/fence, mirror the
  /// tracked set into the registry's foreign shard.
  bool foreign_enabled = false;
  /// Monitor cadence: one scan every N daemon ticks (procfs reads are not
  /// free; foreign load moves on human timescales).
  std::uint64_t foreign_scan_every_ticks = 10;
  foreign::MonitorOptions foreign;

  agent::AgentOptions agent;
};

struct DaemonStats {
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t evictions = 0;
  std::uint64_t ticks = 0;
  std::uint64_t reallocations = 0;  ///< ticks on which commands were issued
  /// Slots reclaimed from a claimant that died/stalled mid-claim.
  std::uint64_t claims_reclaimed = 0;
  /// Admits rolled back because the claimant abandoned during activation.
  std::uint64_t joins_abandoned = 0;
  std::size_t stale_segments_cleaned = 0;
  // Tick-path scaling counters (registry v7).
  std::uint64_t attention_visits = 0;  ///< slots serviced from the bitmaps
  std::uint64_t full_sweeps = 0;       ///< safety-net full scans run
  // Compliance watchdog counters.
  std::uint64_t laggards = 0;             ///< healthy -> laggard transitions
  std::uint64_t quarantines = 0;          ///< laggard -> quarantined transitions
  std::uint64_t readmission_probes = 0;   ///< probes started
  std::uint64_t readmissions = 0;         ///< returns to healthy
  std::uint64_t compliance_evictions = 0; ///< evicted for repeat offenses
  // Checkpointed journal counters.
  std::uint64_t checkpoints = 0;
  std::uint64_t compactions = 0;
  /// Startup recovery: entries replayed after the recovered checkpoint
  /// (0 when the journal was empty/absent).
  std::uint64_t recovered_tail_entries = 0;
  bool recovered_from_checkpoint = false;
  // Foreign-workload arbitration counters.
  std::uint64_t foreign_scans = 0;     ///< monitor ticks run
  std::uint64_t foreign_seen = 0;      ///< processes admitted
  std::uint64_t foreign_gone = 0;      ///< processes aged out
  std::uint64_t foreign_fences = 0;    ///< fences decided
  std::uint64_t foreign_releases = 0;  ///< fences released
};

class Daemon {
 public:
  Daemon(topo::Machine machine, agent::PolicyPtr policy, DaemonOptions options = {});
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Clean stale segments from a previous incarnation, create the registry,
  /// open the journal. Fails (false + error) when a live daemon already
  /// owns the registry name.
  bool init(std::string* error = nullptr);

  /// One service cycle at the given monotonic timestamp: admit joiners,
  /// process leavers, evict the dead, then run one agent decision step.
  /// Returns the number of commands the agent sent. Manual ticking (tests)
  /// and start()'s background loop are mutually exclusive.
  std::uint32_t tick(double now);

  /// Background service loop at options().period_us.
  void start();
  void stop();

  /// Orderly shutdown: stop the loop, retire every client, flush a final
  /// checkpoint and the `daemon-stop` record, fsync. Idempotent; the
  /// destructor calls it, and ns_daemon_main calls it on SIGTERM/SIGINT.
  void shutdown();

  agent::Agent& arbitration_agent() { return *agent_; }
  const DaemonOptions& options() const { return options_; }
  const DaemonStats& stats() const { return stats_; }
  /// This incarnation's generation: 1 fresh, recovered + 1 after a restart.
  /// Published in the registry header and stamped into every command.
  std::uint64_t arbiter_generation() const { return arbiter_generation_; }
  std::size_t client_count() const;
  bool initialized() const { return registry_ != nullptr; }

  /// Compliance watchdog view of one client, for tests and tooling.
  struct ComplianceView {
    ClientHealth health = ClientHealth::kHealthy;
    std::uint64_t commanded_epoch = 0;
    std::uint64_t enacted_epoch = 0;
    std::uint32_t offenses = 0;
    bool probing = false;
    double next_probe_s = -1.0;
    double backoff_s = 0.0;
    /// Watchdog-reported unscheduled workers (holds escalation when > 0).
    std::uint32_t stalled_workers = 0;
  };
  std::optional<ComplianceView> compliance_view(const std::string& app_name) const;

  /// The foreign monitor (nullptr unless options.foreign_enabled).
  foreign::ForeignMonitor* foreign_monitor() { return foreign_.get(); }

 private:
  struct Client {
    bool used = false;
    std::string app_name;   ///< unique name registered with the agent
    std::uint32_t pid = 0;
    double advertised_ai = 0.0;
    std::unique_ptr<agent::ShmChannel> channel;
    std::uint64_t last_heartbeat = 0;
    double last_heartbeat_change_s = 0.0;
    // Compliance watchdog state.
    ClientHealth health = ClientHealth::kHealthy;
    /// When the client was first observed behind the commanded epoch
    /// (< 0 = caught up). The enactment deadline counts from here.
    double behind_since_s = -1.0;
    std::uint32_t offenses = 0;
    double backoff_s = 0.0;        ///< current readmission backoff
    double next_probe_s = -1.0;    ///< when the next probe may start
    double probe_deadline_s = -1.0;
    bool probing = false;
    /// Last observed epochs, mirrored into the registry slot.
    std::uint64_t commanded_epoch = 0;
    std::uint64_t enacted_epoch = 0;
    /// Latest watchdog report from the client's telemetry: workers the OS
    /// is not scheduling. Nonzero holds compliance escalation (the client
    /// is starved, not defiant).
    std::uint32_t stalled_workers = 0;
    /// Epoch for which an "enactment-stalled" journal entry was last
    /// written, so a long stall journals once per commanded epoch.
    std::uint64_t stall_journaled_epoch = 0;
    /// Cached agent app index for this client, valid while
    /// agent_index_generation matches Agent::generation(); refreshed lazily
    /// so the per-tick watchdog pass skips the name hash (compliance_at).
    std::size_t agent_index = 0;
    std::uint64_t agent_index_generation = ~std::uint64_t{0};
    /// Channel drop counters last mirrored into the registry slot; stores
    /// are gated on change so a quiescent client's tick stays write-free.
    std::uint64_t mirrored_commands_dropped = 0;
    std::uint64_t mirrored_telemetry_dropped = 0;
  };

  /// Service one slot's state machine (admit/retire/recycle/claim-timeout).
  /// Liveness and compliance for admitted clients run separately over
  /// used_bits_ — heartbeat silence is the *absence* of an event, which no
  /// client-raised attention bit can signal.
  void process_slot(std::uint32_t index, double now);
  void admit(std::uint32_t index, std::uint64_t joining_word, double now);
  void retire(std::uint32_t index, const char* reason, double now);
  void check_liveness(std::uint32_t index, double now);
  void check_compliance(std::uint32_t index, double now);
  void foreign_tick(double now);
  void journal_foreign_events(const std::vector<foreign::ForeignEvent>& events, double now);
  void mirror_foreign_shard();
  void journal_allocation(double now);
  void journal_snapshot(double now);
  void journal_checkpoint(double now);
  void maybe_checkpoint(double now);
  void recover_from_journal();

  topo::Machine machine_;
  DaemonOptions options_;
  std::unique_ptr<agent::Agent> agent_;
  std::unique_ptr<foreign::ForeignMonitor> foreign_;
  std::unique_ptr<Registry> registry_;
  JournalWriter journal_;
  // Per-slot bookkeeping, sized off the registry constant (kMaxClients
  // entries each) so a capacity bump can never silently truncate it.
  std::vector<Client> clients_;
  /// When each slot was first seen in kClaiming (< 0 = not claiming);
  /// drives the claim-timeout reclamation.
  std::vector<double> claim_first_seen_s_;
  /// Daemon-local occupancy bitmaps, one word per registry shard: bit set =
  /// clients_[i].used. Liveness, compliance and client_count() iterate set
  /// bits instead of scanning the full capacity.
  std::uint64_t used_bits_[kRegistryShards] = {};
  /// Slots observed in kClaiming whose timeout we are watching (their
  /// attention bit was consumed when first seen).
  std::uint64_t claiming_bits_[kRegistryShards] = {};
  /// Advertised arithmetic intensity by app name, for AdvertisedAiPolicy's
  /// per-view lookup (a linear clients_ scan there is O(n^2) per decide).
  std::unordered_map<std::string, double> advertised_ai_by_name_;
  /// Per-tick bulk compliance snapshot (indexed by agent app index), reused
  /// across ticks so the watchdog pass allocates nothing in steady state.
  std::vector<agent::Agent::ComplianceState> compliance_scratch_;
  /// Quiet-skip state for the watchdog pass: the pass is elided when the
  /// previous one left every client healthy and caught up AND none of its
  /// inputs (commands sent, telemetry ingested, membership) changed since.
  bool compliance_all_quiet_ = false;
  std::uint64_t compliance_pass_generation_ = ~std::uint64_t{0};
  std::uint64_t compliance_pass_telemetry_ = ~std::uint64_t{0};
  /// Timestamp of the last liveness pass; see
  /// DaemonOptions::liveness_check_fraction. Starts at -inf so the first
  /// tick always checks.
  double last_liveness_pass_s_ = -1e300;
  DaemonStats stats_;
  /// Monotonic join counter; makes channel names and app names unique
  /// across slot reuse.
  std::uint64_t join_seq_ = 0;
  /// Daemon incarnation; recover_from_journal() bumps it past the
  /// checkpointed value so it is strictly monotone across restarts.
  std::uint64_t arbiter_generation_ = 1;
  /// shutdown() ran (destructor then skips the final flush).
  bool shut_down_ = false;

  std::atomic<bool> running_{false};
  std::thread loop_thread_;
};

/// Substitutes the registry-advertised arithmetic intensity into views whose
/// telemetry has not (yet) carried one, then delegates. This is what lets
/// the model-guided policy act on a freshly joined client before its
/// RuntimeAdapter publishes the first derived-AI sample.
class AdvertisedAiPolicy final : public agent::Policy {
 public:
  /// `advertised` returns the advertised AI for an app name (0 = none).
  using AiLookup = std::function<double(const std::string&)>;
  /// Cheap "could any lookup succeed?" predicate; when it returns false the
  /// per-view lookups are skipped wholesale (one call instead of N). Absent
  /// = always assume yes.
  using AnyAdvertised = std::function<bool()>;

  AdvertisedAiPolicy(agent::PolicyPtr inner, AiLookup advertised,
                     AnyAdvertised any_advertised = {})
      : inner_(std::move(inner)),
        advertised_(std::move(advertised)),
        any_advertised_(std::move(any_advertised)) {}

  const char* name() const override { return inner_->name(); }
  std::vector<agent::Directive> decide(const topo::Machine& machine,
                                       const std::vector<agent::AppView>& views) override;
  void on_membership_change() override { inner_->on_membership_change(); }
  void on_foreign_load(const model::ForeignLoad& load) override {
    inner_->on_foreign_load(load);
  }

  agent::Policy& inner() { return *inner_; }

 private:
  agent::PolicyPtr inner_;
  AiLookup advertised_;
  AnyAdvertised any_advertised_;
};

}  // namespace numashare::nsd
