#include "daemon/failover.hpp"

#include <signal.h>

#include <algorithm>
#include <cerrno>

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace numashare::nsd {

namespace {

bool pid_alive(std::uint32_t pid) {
  if (pid == 0) return false;
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

}  // namespace

const char* to_string(FailoverState state) {
  switch (state) {
    case FailoverState::kAttached: return "attached";
    case FailoverState::kSuspect: return "suspect";
    case FailoverState::kDegraded: return "degraded";
    case FailoverState::kRejoining: return "rejoining";
  }
  return "?";
}

bool command_is_stale(const agent::Command& command, std::uint64_t known_generation) {
  return command.arbiter_generation != 0 && command.arbiter_generation < known_generation;
}

FailoverClient::FailoverClient(std::string app_name, ClientConnectOptions connect_options,
                               FailoverOptions options)
    : app_name_(std::move(app_name)),
      options_(options),
      client_(app_name_, [&connect_options] {
        // Degraded mode runs over the orphaned segment; the wrapped client
        // must never drop its mappings just because the daemon died.
        connect_options.hold_slot_on_daemon_loss = true;
        return connect_options;
      }()) {}

bool FailoverClient::connect(std::string* error) {
  if (!client_.connect(error)) return false;
  refresh_from_registry();
  state_ = FailoverState::kAttached;
  mirror_state();
  return true;
}

void FailoverClient::disconnect() {
  client_.disconnect();
  state_ = FailoverState::kAttached;
  degraded_allocation_.reset();
  dead_generation_ = 0;
  misses_ = 0;
}

void FailoverClient::refresh_from_registry() {
  machine_ = client_.arbitration_machine();
  const auto& header = client_.registry()->header();
  known_generation_ =
      std::max(known_generation_, header.arbiter_generation.load(std::memory_order_acquire));
  last_heartbeat_seen_ = header.daemon_heartbeat.load(std::memory_order_acquire);
  misses_ = 0;
}

void FailoverClient::mirror_state() {
  if (!client_.connected() || client_.registry() == nullptr) return;
  client_.registry()
      ->slot(client_.slot_index())
      .failover_state.store(static_cast<std::uint32_t>(state_), std::memory_order_relaxed);
}

FailoverState FailoverClient::poll() {
  switch (state_) {
    case FailoverState::kAttached:
    case FailoverState::kSuspect: {
      if (!client_.check_connection()) {
        // Evicted (or the slot was recycled under a restart we missed):
        // nothing to hold on to — go straight to the rejoin path.
        state_ = FailoverState::kRejoining;
        degraded_allocation_.reset();
        try_failback();
        break;
      }
      if (client_.daemon_lost()) {
        // The pid is gone; no point sitting out the miss window.
        enter_degraded();
        break;
      }
      const auto& header = client_.registry()->header();
      const auto hb = header.daemon_heartbeat.load(std::memory_order_acquire);
      if (hb != last_heartbeat_seen_) {
        last_heartbeat_seen_ = hb;
        misses_ = 0;
        known_generation_ = std::max(
            known_generation_, header.arbiter_generation.load(std::memory_order_acquire));
        if (state_ == FailoverState::kSuspect) {
          state_ = FailoverState::kAttached;
          mirror_state();
        }
        break;
      }
      ++misses_;
      if (state_ == FailoverState::kAttached && misses_ >= options_.suspect_after_misses) {
        NS_LOG_WARN("failover", "'{}' daemon heartbeat stalled ({} polls); suspect", app_name_,
                    misses_);
        state_ = FailoverState::kSuspect;
        mirror_state();
      }
      if (misses_ >= options_.degraded_after_misses) enter_degraded();  // wedged, not dead
      break;
    }
    case FailoverState::kDegraded: {
      // A wedged-but-alive daemon may resume ticking; that incarnation is
      // still the authority, so fold back in without a failback.
      if (client_.connected() && !client_.daemon_lost()) {
        const auto hb =
            client_.registry()->header().daemon_heartbeat.load(std::memory_order_acquire);
        if (hb != last_heartbeat_seen_) {
          exit_degraded_resumed();
          break;
        }
      }
      gather_and_arbitrate();
      if (options_.rejoin_probe_every_polls == 0 ||
          (++degraded_polls_ % options_.rejoin_probe_every_polls) == 0) {
        try_failback();
      }
      break;
    }
    case FailoverState::kRejoining:
      try_failback();
      break;
  }
  return state_;
}

void FailoverClient::enter_degraded() {
  if (state_ == FailoverState::kDegraded) return;
  state_ = FailoverState::kDegraded;
  ++stats_.degraded_entries;
  dead_generation_ = known_generation_;
  degraded_polls_ = 0;
  degraded_allocation_.reset();
  NS_LOG_WARN("failover", "'{}' entering degraded mode (dead incarnation {})", app_name_,
              dead_generation_);
  publish_proposal();
  mirror_state();
  gather_and_arbitrate();
}

void FailoverClient::exit_degraded_resumed() {
  NS_LOG_INFO("failover", "'{}' daemon heartbeat resumed; leaving degraded mode", app_name_);
  state_ = FailoverState::kAttached;
  degraded_allocation_.reset();
  misses_ = 0;
  // The stale proposal stays harmlessly in the slot: it is tagged with this
  // (live) incarnation's generation, but nothing arbitrates outside degraded
  // mode, and the next episode re-publishes before gathering.
  mirror_state();
}

void FailoverClient::publish_proposal() {
  auto* registry = client_.registry();
  if (registry == nullptr || client_.slot_index() >= kMaxClients) return;
  // Count the survivors sharing the orphaned segment — every kActive slot
  // with a live pid still wants its share.
  std::uint32_t survivors = 0;
  for (std::uint32_t i = 0; i < kMaxClients; ++i) {
    const auto& other = registry->slot(i);
    if (state_of(other.state_word.load(std::memory_order_acquire)) != SlotState::kActive) continue;
    if (i != client_.slot_index() &&
        !pid_alive(other.pid.load(std::memory_order_relaxed))) {
      continue;
    }
    ++survivors;
  }
  const auto desired =
      agent::conservative_desired(machine_, std::max(1u, survivors), last_granted_);
  auto& slot = registry->slot(client_.slot_index());
  for (std::uint32_t n = 0; n < agent::kMaxNodes; ++n) {
    slot.proposal_desired[n].store(n < desired.size() ? desired[n] : 0,
                                   std::memory_order_relaxed);
  }
  slot.proposal_generation.store(dead_generation_, std::memory_order_relaxed);
  // Release-publish: a gatherer that observes the new seq sees the complete
  // desired vector and its generation tag.
  slot.proposal_seq.fetch_add(1, std::memory_order_release);
  // Proposals arbitrate peer-to-peer while the daemon is dead, but a
  // restarted daemon that fails back mid-episode learns of the slot's
  // activity from the bitmap instead of waiting for its full sweep.
  raise_attention(registry->header(), client_.slot_index());
}

void FailoverClient::gather_and_arbitrate() {
  auto* registry = client_.registry();
  if (registry == nullptr) return;
  std::vector<agent::SlotProposal> proposals;
  for (std::uint32_t i = 0; i < kMaxClients; ++i) {
    const auto& slot = registry->slot(i);
    if (state_of(slot.state_word.load(std::memory_order_acquire)) != SlotState::kActive) continue;
    if (slot.proposal_seq.load(std::memory_order_acquire) == 0) continue;
    // Only this episode's proposals: a leftover from an earlier incarnation
    // (or a survivor that has not noticed the death yet) must not mix in.
    if (slot.proposal_generation.load(std::memory_order_relaxed) != dead_generation_) continue;
    // A survivor that died mid-episode leaves a kActive slot forever (there
    // is no daemon to evict it); drop it from the set once its pid is gone.
    // Survivors converge on the same filtered set as soon as each has seen
    // the death — transient disagreement, stable agreement.
    if (i != client_.slot_index() && !pid_alive(slot.pid.load(std::memory_order_relaxed))) {
      continue;
    }
    agent::SlotProposal p;
    p.slot = i;
    p.desired_per_node.resize(machine_.node_count());
    for (topo::NodeId n = 0; n < machine_.node_count(); ++n) {
      p.desired_per_node[n] = slot.proposal_desired[n].load(std::memory_order_relaxed);
    }
    proposals.push_back(std::move(p));
  }
  if (proposals.empty()) return;
  degraded_allocation_ = agent::arbitrate_slots(machine_, std::move(proposals));
  ++stats_.arbitrations;
}

bool FailoverClient::try_failback() {
  // Probe the well-known name. While the daemon is down this opens the same
  // orphaned segment we already map (daemon_alive() false); after a restart
  // it opens the *new* segment the fresh incarnation created there.
  auto probe = Registry::open(client_.options().registry_name);
  if (probe == nullptr || !probe->daemon_alive()) return false;
  const auto generation = probe->header().arbiter_generation.load(std::memory_order_acquire);
  if (generation <= dead_generation_) return false;  // still the old corpse
  probe.reset();
  if (state_ != FailoverState::kRejoining) {
    state_ = FailoverState::kRejoining;
    mirror_state();  // visible in the orphan segment until we let go of it
  }
  NS_LOG_INFO("failover", "'{}' observed incarnation {}; rejoining", app_name_, generation);
  std::string error;
  if (!client_.reconnect(&error)) {
    NS_LOG_WARN("failover", "'{}' rejoin failed (will retry): {}", app_name_, error);
    return false;  // stay kRejoining; next poll probes again
  }
  // Attached to the new incarnation: the degraded grants die with the old
  // generation, and the fence below known_generation_ drops any pre-crash
  // command still sitting in a ring.
  refresh_from_registry();
  dead_generation_ = 0;
  degraded_allocation_.reset();
  state_ = FailoverState::kAttached;
  ++stats_.rejoins;
  mirror_state();
  NS_LOG_INFO("failover", "'{}' failback complete (incarnation {})", app_name_,
              known_generation_);
  return true;
}

std::vector<std::uint32_t> FailoverClient::degraded_threads() const {
  if (!degraded_allocation_ || !client_.connected()) return {};
  return degraded_allocation_->threads_for(client_.slot_index());
}

std::optional<agent::Command> FailoverClient::pop_command() {
  auto* channel = client_.channel();
  if (channel == nullptr) return std::nullopt;
  while (auto command = channel->pop_command()) {
    if (command_is_stale(*command, known_generation_)) {
      ++stats_.stale_commands_fenced;
      continue;
    }
    known_generation_ = std::max(known_generation_, command->arbiter_generation);
    observe_grant(*command);
    return command;
  }
  return std::nullopt;
}

void FailoverClient::observe_grant(const agent::Command& command) {
  switch (command.type) {
    case agent::CommandType::kSetNodeThreads: {
      last_granted_.assign(machine_.node_count(), 0);
      const auto nodes = std::min<std::uint32_t>(command.node_count, machine_.node_count());
      for (std::uint32_t n = 0; n < nodes; ++n) last_granted_[n] = command.node_threads[n];
      break;
    }
    case agent::CommandType::kSetTotalThreads: {
      // Node-blind grant: remember it spread round-robin (capped per node)
      // so the degraded clamp has a per-node shape to work with.
      last_granted_.assign(machine_.node_count(), 0);
      std::uint32_t remaining = command.total_threads;
      for (std::uint32_t n = 0; remaining > 0; n = (n + 1) % machine_.node_count()) {
        if (last_granted_[n] < machine_.cores_in_node(n)) {
          ++last_granted_[n];
          --remaining;
        } else {
          // All nodes full? stop (the grant exceeds the machine).
          bool any = false;
          for (topo::NodeId m = 0; m < machine_.node_count(); ++m) {
            if (last_granted_[m] < machine_.cores_in_node(m)) any = true;
          }
          if (!any) break;
        }
      }
      break;
    }
    case agent::CommandType::kClearControls:
      last_granted_.clear();  // unconstrained again
      break;
    case agent::CommandType::kBlockCores:
    case agent::CommandType::kSuggestDataHome:
      break;  // no per-node thread shape to learn from
  }
}

}  // namespace numashare::nsd
