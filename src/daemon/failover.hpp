// Daemon-loss survival: the client-side failover tier.
//
// A DaemonClient answers "am I still attached?"; a FailoverClient answers
// "what do I do when the arbiter is gone?". It wraps a DaemonClient and
// runs a four-state machine the app drives from its pump loop:
//
//       attached ──misses──▶ suspect ──pid dead / more misses──▶ degraded
//          ▲                    │ heartbeat resumes                  │
//          └────────────────────┘                                    │
//          ▲                                new incarnation appears  │
//          └──────────── rejoining ◀─────────────────────────────────┘
//
//  * attached  — the registry header's daemon_heartbeat is advancing.
//  * suspect   — the heartbeat stalled for a bounded miss window.
//  * degraded  — the daemon is dead (pid gone) or wedged past the window.
//    Survivors keep their mappings of the now-orphaned registry segment and
//    use their own slots as a proposal bus: each publishes one conservative
//    proposal (fair share clamped to its last daemon-granted allocation),
//    then every survivor independently runs the deterministic
//    consensus::arbitrate() over the same snapshot — identical allocations
//    on every participant, no coordinator, progress never stalls.
//  * rejoining — a fresh daemon incarnation (higher arbiter_generation
//    under the well-known registry name) was observed; the survivor
//    abandons the orphan segment and re-runs the join dance (with
//    decorrelated-jitter backoff, so the herd spreads out).
//
// Generation fencing: every daemon command carries the incarnation that
// issued it. A command stamped with an older generation than the newest
// one this client has observed is dropped by pop_command() — a pre-crash
// grant (or a ring-buffered leftover) can never be enacted after failback,
// and degraded-mode allocations die with the generation they were computed
// under.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "agent/consensus.hpp"
#include "agent/protocol.hpp"
#include "daemon/client.hpp"
#include "topology/machine.hpp"

namespace numashare::nsd {

enum class FailoverState : std::uint32_t {
  kAttached = 0,
  kSuspect = 1,
  kDegraded = 2,
  kRejoining = 3,
};

const char* to_string(FailoverState state);

/// True when `command` was issued by an older daemon incarnation than the
/// newest this client has observed. Generation 0 marks a sender that is not
/// generation-aware (in-process agent) and is always fresh.
bool command_is_stale(const agent::Command& command, std::uint64_t known_generation);

struct FailoverOptions {
  /// poll() calls with an unchanged daemon_heartbeat before kSuspect.
  std::uint32_t suspect_after_misses = 5;
  /// Misses with the daemon pid still *alive* before degrading anyway (a
  /// wedged daemon starves clients exactly like a dead one). A dead pid
  /// short-circuits to degraded as soon as the suspect window expires.
  std::uint32_t degraded_after_misses = 50;
  /// While degraded, probe the well-known registry name for a fresh
  /// incarnation every N polls (shm_open is cheap but not free).
  std::uint32_t rejoin_probe_every_polls = 4;
};

struct FailoverStats {
  std::uint64_t degraded_entries = 0;     ///< transitions into degraded mode
  std::uint64_t rejoins = 0;              ///< successful failbacks
  std::uint64_t arbitrations = 0;         ///< degraded consensus rounds run
  std::uint64_t stale_commands_fenced = 0;///< generation-fenced drops
};

class FailoverClient {
 public:
  explicit FailoverClient(std::string app_name, ClientConnectOptions connect_options = {},
                          FailoverOptions options = {});

  /// Join the daemon (DaemonClient::connect with slot-holding forced on).
  bool connect(std::string* error = nullptr);
  void disconnect();

  /// One pump of the state machine: liveness check, degraded-mode proposal
  /// exchange + arbitration, failback probing. Call from the app's progress
  /// loop (single-threaded; pair with heartbeat()).
  FailoverState poll();

  void heartbeat() { client_.heartbeat(); }

  FailoverState state() const { return state_; }
  bool connected() const { return client_.connected(); }
  /// Newest daemon incarnation observed (registry header / command stamps).
  std::uint64_t known_generation() const { return known_generation_; }
  const FailoverStats& stats() const { return stats_; }

  /// The latest degraded-mode consensus over the surviving participants;
  /// nullopt outside degraded mode (failback clears it — those grants are
  /// fenced by the dead generation) or before any survivor has published.
  const std::optional<agent::SlotAllocation>& degraded_allocation() const {
    return degraded_allocation_;
  }
  /// This client's per-node share of the degraded consensus (empty if none).
  std::vector<std::uint32_t> degraded_threads() const;

  /// Channel pop with the generation fence applied: stale-incarnation
  /// commands are counted and dropped, fresh ones update the last-granted
  /// caps that bound the next degraded episode's proposal.
  std::optional<agent::Command> pop_command();

  /// The wrapped connector (channel access, slot index, options).
  DaemonClient& client() { return client_; }
  const DaemonClient& client() const { return client_; }

 private:
  void enter_degraded();
  void exit_degraded_resumed();
  void publish_proposal();
  void gather_and_arbitrate();
  bool try_failback();
  void mirror_state();
  void refresh_from_registry();
  void observe_grant(const agent::Command& command);

  std::string app_name_;
  FailoverOptions options_;
  DaemonClient client_;
  topo::Machine machine_;
  FailoverState state_ = FailoverState::kAttached;
  /// Newest incarnation observed; commands older than this are fenced.
  std::uint64_t known_generation_ = 0;
  /// The incarnation we outlived — the one this degraded episode's
  /// proposals are tagged with.
  std::uint64_t dead_generation_ = 0;
  std::uint64_t last_heartbeat_seen_ = 0;
  std::uint32_t misses_ = 0;
  std::uint32_t degraded_polls_ = 0;
  /// Per-node threads the daemon last granted us (empty = unconstrained);
  /// the conservative clamp for degraded proposals.
  std::vector<std::uint32_t> last_granted_;
  std::optional<agent::SlotAllocation> degraded_allocation_;
  FailoverStats stats_;
};

}  // namespace numashare::nsd
