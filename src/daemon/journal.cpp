#include "daemon/journal.hpp"

#include <cctype>
#include <fstream>
#include <iterator>

#include "common/format.hpp"

namespace numashare::nsd {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jstr(std::string_view text) { return "\"" + json_escape(text) + "\""; }

std::string jnum(double value) { return fmt_compact(value, 6); }
std::string jnum(std::uint64_t value) { return std::to_string(value); }
std::string jnum(std::int64_t value) { return std::to_string(value); }

JournalWriter::JournalWriter(const std::string& path) { open(path); }

bool JournalWriter::open(const std::string& path) {
  if (file_ != nullptr) std::fclose(file_);
  path_ = path;
  file_ = std::fopen(path.c_str(), "a");
  return file_ != nullptr;
}

JournalWriter::~JournalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void JournalWriter::record(double ts, std::string_view event,
                           const std::vector<std::pair<std::string_view, std::string>>& fields) {
  if (file_ == nullptr) return;
  std::string line = "{\"ts\":" + jnum(ts) + ",\"event\":" + jstr(event);
  for (const auto& [key, value] : fields) {
    line += ",";
    line += jstr(key);
    line += ":";
    line += value;
  }
  line += "}\n";
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
  ++lines_;
}

std::vector<JournalEntry> read_journal(const std::string& path, bool* torn_tail) {
  if (torn_tail != nullptr) *torn_tail = false;
  std::vector<JournalEntry> entries;
  std::ifstream in(path, std::ios::binary);
  if (!in) return entries;
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  // getline() cannot tell "line" from "truncated tail with no newline", so
  // split manually: only '\n'-terminated records count as entries.
  std::size_t start = 0;
  while (start < text.size()) {
    const auto end = text.find('\n', start);
    if (end == std::string::npos) {
      // The writer appends record + '\n' in one buffered write and flushes;
      // a chunk without the terminator is the torn remains of a crash
      // mid-write. Surface the fact, never the partial record.
      if (torn_tail != nullptr) *torn_tail = true;
      break;
    }
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    JournalEntry entry;
    entry.raw = std::move(line);
    if (auto event = journal_field(entry.raw, "event")) {
      // Strip the quotes of the extracted string value.
      if (event->size() >= 2 && event->front() == '"') {
        entry.event = event->substr(1, event->size() - 2);
      }
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::optional<std::string> journal_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + json_escape(key) + "\":";
  // Scan outside of strings only, at nesting depth 1.
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') {
      // Potential key start at depth 1.
      if (depth == 1 && line.compare(i, needle.size(), needle) == 0) {
        std::size_t start = i + needle.size();
        // Value extends to the matching comma/brace at this depth.
        int vdepth = 0;
        bool vstring = false;
        for (std::size_t j = start; j < line.size(); ++j) {
          const char v = line[j];
          if (vstring) {
            if (v == '\\') ++j;
            else if (v == '"') vstring = false;
            continue;
          }
          if (v == '"') vstring = true;
          else if (v == '[' || v == '{') ++vdepth;
          else if (v == ']' || v == '}') {
            if (vdepth == 0) return line.substr(start, j - start);
            --vdepth;
          } else if (v == ',' && vdepth == 0) {
            return line.substr(start, j - start);
          }
        }
        return std::nullopt;  // torn line
      }
      in_string = true;
      continue;
    }
    if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
  }
  return std::nullopt;
}

}  // namespace numashare::nsd
