#include "daemon/journal.hpp"

#include <unistd.h>

#include <array>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>

#include "common/format.hpp"
#include "inject/fault.hpp"

namespace numashare::nsd {

FsyncPolicy parse_fsync_policy(std::string_view text, bool* ok) {
  if (ok != nullptr) *ok = true;
  if (text == "none") return FsyncPolicy::kNone;
  if (text == "checkpoint") return FsyncPolicy::kCheckpoint;
  if (text == "every-write") return FsyncPolicy::kEveryWrite;
  if (ok != nullptr) *ok = false;
  return FsyncPolicy::kNone;
}

const char* to_string(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNone: return "none";
    case FsyncPolicy::kCheckpoint: return "checkpoint";
    case FsyncPolicy::kEveryWrite: return "every-write";
  }
  return "?";
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jstr(std::string_view text) { return "\"" + json_escape(text) + "\""; }

std::uint32_t crc32(std::string_view text) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ (0xedb88320u & (0u - (c & 1u)));
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  for (const char ch : text) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::string jnum(double value) { return fmt_compact(value, 6); }
std::string jnum(std::uint64_t value) { return std::to_string(value); }
std::string jnum(std::int64_t value) { return std::to_string(value); }

JournalWriter::JournalWriter(const std::string& path) { open(path); }

bool JournalWriter::open(const std::string& path) {
  if (file_ != nullptr) std::fclose(file_);
  path_ = path;
  file_ = std::fopen(path.c_str(), "a");
  return file_ != nullptr;
}

JournalWriter::~JournalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

namespace {
std::string build_record(double ts, std::string_view event,
                         const std::vector<std::pair<std::string_view, std::string>>& fields) {
  std::string line = "{\"ts\":" + jnum(ts) + ",\"event\":" + jstr(event);
  for (const auto& [key, value] : fields) {
    line += ",";
    line += jstr(key);
    line += ":";
    line += value;
  }
  line += "}";
  return line;
}
}  // namespace

void JournalWriter::record(double ts, std::string_view event,
                           const std::vector<std::pair<std::string_view, std::string>>& fields) {
  if (file_ == nullptr) return;
  std::string line = build_record(ts, event, fields);
  line += "\n";
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
  if (fsync_policy_ == FsyncPolicy::kEveryWrite) ::fsync(fileno(file_));
  ++lines_;
}

void JournalWriter::record_checksummed(
    double ts, std::string_view event,
    const std::vector<std::pair<std::string_view, std::string>>& fields) {
  if (file_ == nullptr) return;
  // The checksum covers the exact line record() would have written; the crc
  // field then replaces the closing brace, so verification is "strip the
  // trailing crc field, re-hash, compare".
  std::string line = build_record(ts, event, fields);
  const std::uint32_t crc = crc32(line);
  line.pop_back();  // '}'
  line += ",\"crc\":" + jnum(static_cast<std::uint64_t>(crc)) + "}\n";
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
  if (fsync_policy_ == FsyncPolicy::kEveryWrite) ::fsync(fileno(file_));
  ++lines_;
}

bool checkpoint_crc_valid(const std::string& line) {
  if (!journal_field(line, "crc")) return true;  // legacy, pre-checksum record
  // record_checksummed() always appends the crc last: ...,"crc":<digits>}
  const auto pos = line.rfind(",\"crc\":");
  if (pos == std::string::npos) return false;
  const std::size_t digits = pos + 7;
  std::size_t end = digits;
  while (end < line.size() && std::isdigit(static_cast<unsigned char>(line[end]))) ++end;
  if (end == digits || end + 1 != line.size() || line[end] != '}') return false;
  const auto stored = static_cast<std::uint32_t>(
      std::strtoull(line.c_str() + digits, nullptr, 10));
  const std::string original = line.substr(0, pos) + "}";
  return crc32(original) == stored;
}

void JournalWriter::sync(bool force) {
  if (file_ == nullptr) return;
  std::fflush(file_);
  if (force || fsync_policy_ != FsyncPolicy::kNone) ::fsync(fileno(file_));
}

bool JournalWriter::rotate() {
  if (file_ == nullptr) return false;
  // The outgoing file must be durable before the rename swaps it into the
  // side-file slot: recovery may have to read it if we die before the new
  // file gains a checkpoint.
  sync(/*force=*/true);
  std::fclose(file_);
  file_ = nullptr;
  const std::string side = path_ + ".1";
  if (std::rename(path_.c_str(), side.c_str()) != 0) {
    // Rename failed (exotic: EXDEV, permissions). Reopen in append mode and
    // keep going with the un-rotated file rather than losing the journal.
    file_ = std::fopen(path_.c_str(), "a");
    return false;
  }
  NS_FAULT_DIE("journal.rotate.die", "post_rename", 51);
  file_ = std::fopen(path_.c_str(), "w");
  if (file_ == nullptr) return false;
  lines_ = 0;
  ++rotations_;
  return true;
}

std::vector<JournalEntry> read_journal(const std::string& path, bool* torn_tail) {
  if (torn_tail != nullptr) *torn_tail = false;
  std::vector<JournalEntry> entries;
  std::ifstream in(path, std::ios::binary);
  if (!in) return entries;
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  // getline() cannot tell "line" from "truncated tail with no newline", so
  // split manually: only '\n'-terminated records count as entries.
  std::size_t start = 0;
  while (start < text.size()) {
    const auto end = text.find('\n', start);
    if (end == std::string::npos) {
      // The writer appends record + '\n' in one buffered write and flushes;
      // a chunk without the terminator is the torn remains of a crash
      // mid-write. Surface the fact, never the partial record.
      if (torn_tail != nullptr) *torn_tail = true;
      break;
    }
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    JournalEntry entry;
    entry.raw = std::move(line);
    if (auto event = journal_field(entry.raw, "event")) {
      // Strip the quotes of the extracted string value.
      if (event->size() >= 2 && event->front() == '"') {
        entry.event = event->substr(1, event->size() - 2);
      }
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

RecoveredJournal recover_journal(const std::string& path) {
  RecoveredJournal out;
  auto entries = read_journal(path, &out.torn_tail);
  if (entries.empty()) {
    // Primary missing or empty: either a young deployment (side-file also
    // absent -> genuinely nothing) or a crash inside rotate() between the
    // rename and the first checkpoint of the new file.
    entries = read_journal(path + ".1", &out.torn_tail);
    out.used_sidefile = !entries.empty();
  }
  std::size_t tail_start = 0;
  for (std::size_t i = entries.size(); i > 0; --i) {
    if (entries[i - 1].event != "checkpoint") continue;
    // A bit-rotted/torn snapshot must not seed recovery: skip backwards to
    // the newest checkpoint whose checksum still verifies.
    if (!checkpoint_crc_valid(entries[i - 1].raw)) {
      ++out.corrupt_checkpoints_skipped;
      continue;
    }
    out.checkpoint = entries[i - 1].raw;
    tail_start = i;
    break;
  }
  out.tail.assign(entries.begin() + static_cast<std::ptrdiff_t>(tail_start), entries.end());
  return out;
}

std::optional<std::string> journal_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + json_escape(key) + "\":";
  // Scan outside of strings only, at nesting depth 1.
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') {
      // Potential key start at depth 1.
      if (depth == 1 && line.compare(i, needle.size(), needle) == 0) {
        std::size_t start = i + needle.size();
        // Value extends to the matching comma/brace at this depth.
        int vdepth = 0;
        bool vstring = false;
        for (std::size_t j = start; j < line.size(); ++j) {
          const char v = line[j];
          if (vstring) {
            if (v == '\\') ++j;
            else if (v == '"') vstring = false;
            continue;
          }
          if (v == '"') vstring = true;
          else if (v == '[' || v == '{') ++vdepth;
          else if (v == ']' || v == '}') {
            if (vdepth == 0) return line.substr(start, j - start);
            --vdepth;
          } else if (v == ',' && vdepth == 0) {
            return line.substr(start, j - start);
          }
        }
        return std::nullopt;  // torn line
      }
      in_string = true;
      continue;
    }
    if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
  }
  return std::nullopt;
}

}  // namespace numashare::nsd
