// Append-only JSONL event journal: the daemon's flight recorder.
//
// Every membership event (join, leave, evict), every reallocation the
// policy issues, and periodic per-tick snapshots land here as one JSON
// object per line. JSONL keeps the file greppable and tail-able while the
// daemon runs, survives crashes mid-write (at most the last line is torn),
// and needs no closing bracket to stay parseable.
//
// The writer renders values it is handed verbatim, so callers pick the
// type: jstr() quotes-and-escapes, jnum()/jbool() emit bare literals, and
// pre-built arrays/objects pass straight through.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace numashare::nsd {

/// JSON string escaping per RFC 8259 (quotes, backslash, control chars).
std::string json_escape(std::string_view text);

/// CRC-32 (IEEE 802.3 / zlib polynomial, reflected) over `text`. Used to
/// checksum checkpoint records so recovery can reject a bit-rotted or torn
/// snapshot instead of trusting it.
std::uint32_t crc32(std::string_view text);

/// Render helpers for JournalWriter fields.
std::string jstr(std::string_view text);
std::string jnum(double value);
std::string jnum(std::uint64_t value);
std::string jnum(std::int64_t value);
inline std::string jnum(std::uint32_t value) { return jnum(static_cast<std::uint64_t>(value)); }
inline std::string jbool(bool value) { return value ? "true" : "false"; }

/// Durability contract for the journal (see docs/DAEMON.md):
///  * kNone — flush to the OS (fflush) only; a machine crash can lose
///    recent lines, a process crash cannot. The default, matching the
///    journal's flight-recorder role.
///  * kCheckpoint — additionally fsync() checkpoint records and rotations,
///    so recovery always finds a machine-durable checkpoint to start from.
///  * kEveryWrite — fsync() every record; maximum durability, highest cost.
/// Checkpoints and rotations are fsync'd under kCheckpoint AND kEveryWrite;
/// under kNone they are still flushed but not forced to stable storage.
enum class FsyncPolicy : std::uint8_t { kNone, kCheckpoint, kEveryWrite };

FsyncPolicy parse_fsync_policy(std::string_view text, bool* ok = nullptr);
const char* to_string(FsyncPolicy policy);

class JournalWriter {
 public:
  /// Disabled writer: record() is a no-op. Lets the daemon treat "no
  /// journal configured" uniformly.
  JournalWriter() = default;

  /// Opens `path` in append mode; ok() reports whether that worked.
  explicit JournalWriter(const std::string& path);
  ~JournalWriter();

  /// Open (or switch to) a journal file after construction.
  bool open(const std::string& path);

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  bool ok() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Appends {"ts":<ts>,"event":"<event>",<fields...>} and flushes, so a
  /// crash loses at most the line being written. Under
  /// FsyncPolicy::kEveryWrite the line is also fsync'd.
  void record(double ts, std::string_view event,
              const std::vector<std::pair<std::string_view, std::string>>& fields = {});

  /// Like record(), but appends a trailing `"crc"` field holding the CRC-32
  /// of the record text *without* that field (i.e. the exact line record()
  /// would have written). checkpoint_crc_valid() verifies the round trip.
  void record_checksummed(double ts, std::string_view event,
                          const std::vector<std::pair<std::string_view, std::string>>& fields);

  void set_fsync_policy(FsyncPolicy policy) { fsync_policy_ = policy; }
  FsyncPolicy fsync_policy() const { return fsync_policy_; }

  /// Force the file to stable storage (fflush + fsync). Called by the
  /// daemon after checkpoint records regardless of policy kCheckpoint/
  /// kEveryWrite; a no-op under kNone unless `force` is set.
  void sync(bool force = false);

  /// Compaction: fsync + close the current file, rename it to
  /// `path + ".1"` (replacing any previous side-file), and reopen `path`
  /// truncated. The caller is expected to immediately write a fresh
  /// checkpoint record so the new file is self-contained; recovery falls
  /// back to the side-file when a crash lands in the tiny window where the
  /// new file is still empty. Returns false (and keeps writing to the old
  /// file if possible) on failure.
  bool rotate();

  std::uint64_t lines_written() const { return lines_; }
  std::uint64_t rotations() const { return rotations_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t lines_ = 0;
  std::uint64_t rotations_ = 0;
  FsyncPolicy fsync_policy_ = FsyncPolicy::kNone;
};

/// One parsed journal line. `raw` is the full JSON text; `event` is the
/// extracted event type ("" when the line is torn/unparseable).
struct JournalEntry {
  std::string event;
  std::string raw;
};

/// Reads every complete line of a JSONL journal. Missing file -> empty
/// vector. A crash mid-record leaves a final chunk with no trailing
/// newline: it is NOT returned as an entry (it is torn by construction),
/// and `*torn_tail` (when given) is set so recovery tooling can tell
/// "clean shutdown" from "died mid-write".
std::vector<JournalEntry> read_journal(const std::string& path, bool* torn_tail = nullptr);

/// Extracts the raw value text of a top-level key ("123", "\"name\"",
/// "[1,2]") from one JSON line. A deliberately small scanner — enough for
/// tests and the status tool, not a general JSON parser.
std::optional<std::string> journal_field(const std::string& line, const std::string& key);

/// Checkpoint-aware recovery view of a journal: the newest `checkpoint`
/// record plus only the entries after it, so replay cost is O(activity
/// since the last checkpoint) instead of O(history).
struct RecoveredJournal {
  /// Raw JSON line of the newest checkpoint; empty when none exists (young
  /// journal) — then `tail` holds every entry.
  std::string checkpoint;
  /// Entries strictly after the checkpoint, oldest first.
  std::vector<JournalEntry> tail;
  /// The primary file was missing or empty (crash mid-rotation) and the
  /// `path + ".1"` side-file was used instead.
  bool used_sidefile = false;
  bool torn_tail = false;
  /// Checkpoints whose `crc` field failed verification and were skipped in
  /// favor of an earlier (valid) one.
  std::size_t corrupt_checkpoints_skipped = 0;
};

/// True when `line` carries no `crc` field (legacy record, trusted as
/// before) or its CRC-32 matches the line with the trailing crc field
/// stripped. recover_journal() uses this to skip corrupt checkpoints.
bool checkpoint_crc_valid(const std::string& line);

/// Loads `path` (falling back to the `path + ".1"` rotation side-file when
/// the primary is missing/empty) and splits it at the newest checkpoint
/// whose checksum verifies (corrupt ones are counted and skipped).
RecoveredJournal recover_journal(const std::string& path);

}  // namespace numashare::nsd
