// numashared — the standalone arbitration daemon.
//
//   numashared [flags]
//     --registry=/name            registry segment name (default /numashare-registry)
//     --journal=path              JSONL event journal (default: none)
//     --policy=model|model-placement|fair   decision policy (default model)
//     --machine=probe             discover the host topology (default)
//     --machine=NxC:gflops:bw[:link]  symmetric machine, e.g. 4x8:10:32:10
//     --period-ms=N               tick period (default 10)
//     --heartbeat-timeout-ms=N    eviction timeout (default 2000)
//     --snapshot-every=N          journal snapshot cadence in ticks (default 100)
//     --enactment-deadline-ms=N   compliance deadline before laggard (default 1000)
//     --checkpoint-every=N        journal checkpoint cadence in ticks (default 1000)
//     --compact-after=N           rotate the journal past N lines (default 4096)
//     --fsync=none|checkpoint|every-write  journal durability (default checkpoint)
//     --foreign                   arbitrate foreign (non-participant) workloads
//     --foreign-enforce           enforce fences with sched_setaffinity (needs
//                                 ownership/CAP_SYS_NICE; default: advisory)
//     --foreign-scan-ticks=N      foreign scan cadence in daemon ticks (default 10)
//     --foreign-proc-root=path    procfs root for the scanner (default /proc)
//     --duration-s=X              exit after X seconds (default: run until signal)
//     --verbose                   info-level logging
//
// Applications join through nsd::DaemonClient (see examples/daemon_app.cpp)
// and are free to come and go; crashes are detected by heartbeat loss and
// evicted, with cores redistributed to the survivors. SIGTERM/SIGINT shut
// down in order: clients retired, final checkpoint flushed, daemon-stop
// journaled — never dying mid-write.
#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "agent/policies.hpp"
#include "common/logging.hpp"
#include "daemon/daemon.hpp"
#include "topology/discovery.hpp"

using namespace numashare;

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

int usage() {
  std::fprintf(stderr,
               "usage: numashared [--registry=/name] [--journal=path]\n"
               "                  [--policy=model|model-placement|fair]\n"
               "                  [--machine=probe|NxC:gflops:bw[:link]]\n"
               "                  [--period-ms=N] [--heartbeat-timeout-ms=N]\n"
               "                  [--snapshot-every=N] [--enactment-deadline-ms=N]\n"
               "                  [--checkpoint-every=N] [--compact-after=N]\n"
               "                  [--fsync=none|checkpoint|every-write]\n"
               "                  [--foreign] [--foreign-enforce]\n"
               "                  [--foreign-scan-ticks=N] [--foreign-proc-root=path]\n"
               "                  [--duration-s=X] [--verbose]\n");
  return 2;
}

std::string flag_value(int argc, char** argv, const std::string& name,
                       const std::string& fallback) {
  const std::string prefix = name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::string(argv[i]).substr(prefix.size());
    }
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const std::string& name) {
  for (int i = 1; i < argc; ++i) {
    if (name == argv[i]) return true;
  }
  return false;
}

/// "4x8:10:32:10" -> symmetric(4, 8, 10 GFLOPS, 32 GB/s, 10 GB/s).
std::optional<topo::Machine> parse_machine(const std::string& spec) {
  if (spec == "probe") return topo::discover_host_or_flat();
  std::uint32_t nodes = 0, cores = 0;
  double gflops = 0.0, bandwidth = 0.0, link = 0.0;
  const int got = std::sscanf(spec.c_str(), "%ux%u:%lf:%lf:%lf", &nodes, &cores, &gflops,
                              &bandwidth, &link);
  if (got < 4 || nodes == 0 || cores == 0) return std::nullopt;
  return topo::Machine::symmetric(nodes, cores, gflops, bandwidth, link, "cli-machine");
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) return usage();
  }

  Logger::instance().set_level(has_flag(argc, argv, "--verbose") ? LogLevel::kInfo
                                                                 : LogLevel::kWarn);

  const auto machine = parse_machine(flag_value(argc, argv, "--machine", "probe"));
  if (!machine) {
    std::fprintf(stderr, "error: bad --machine spec\n");
    return usage();
  }

  const std::string policy_name = flag_value(argc, argv, "--policy", "model");
  agent::PolicyPtr policy;
  if (policy_name == "model") {
    policy = std::make_unique<agent::ModelGuidedPolicy>();
  } else if (policy_name == "model-placement") {
    policy = std::make_unique<agent::ModelGuidedPolicy>(
        agent::ModelGuidedOptions{.advise_data_placement = true});
  } else if (policy_name == "fair") {
    policy = std::make_unique<agent::FairSharePolicy>();
  } else {
    std::fprintf(stderr, "error: unknown policy '%s'\n", policy_name.c_str());
    return usage();
  }

  nsd::DaemonOptions options;
  options.registry_name = flag_value(argc, argv, "--registry", nsd::kDefaultRegistryName);
  options.journal_path = flag_value(argc, argv, "--journal", "");
  options.period_us =
      std::strtol(flag_value(argc, argv, "--period-ms", "10").c_str(), nullptr, 10) * 1000;
  options.heartbeat_timeout_s =
      std::strtod(flag_value(argc, argv, "--heartbeat-timeout-ms", "2000").c_str(), nullptr) /
      1000.0;
  options.snapshot_every_ticks = static_cast<std::uint64_t>(
      std::strtoul(flag_value(argc, argv, "--snapshot-every", "100").c_str(), nullptr, 10));
  options.enactment_deadline_s =
      std::strtod(flag_value(argc, argv, "--enactment-deadline-ms", "1000").c_str(), nullptr) /
      1000.0;
  options.checkpoint_every_ticks = static_cast<std::uint64_t>(
      std::strtoul(flag_value(argc, argv, "--checkpoint-every", "1000").c_str(), nullptr, 10));
  options.compact_after_lines = static_cast<std::uint64_t>(
      std::strtoul(flag_value(argc, argv, "--compact-after", "4096").c_str(), nullptr, 10));
  bool fsync_ok = false;
  options.fsync_policy =
      nsd::parse_fsync_policy(flag_value(argc, argv, "--fsync", "checkpoint"), &fsync_ok);
  if (!fsync_ok) {
    std::fprintf(stderr, "error: bad --fsync value\n");
    return usage();
  }
  options.foreign_enabled =
      has_flag(argc, argv, "--foreign") || has_flag(argc, argv, "--foreign-enforce");
  options.foreign.enforce_fences = has_flag(argc, argv, "--foreign-enforce");
  options.foreign_scan_every_ticks = static_cast<std::uint64_t>(
      std::strtoul(flag_value(argc, argv, "--foreign-scan-ticks", "10").c_str(), nullptr, 10));
  options.foreign.scanner.proc_root = flag_value(argc, argv, "--foreign-proc-root", "/proc");
  const double duration_s =
      std::strtod(flag_value(argc, argv, "--duration-s", "0").c_str(), nullptr);

  nsd::Daemon daemon(*machine, std::move(policy), options);
  std::string error;
  if (!daemon.init(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  signal(SIGINT, handle_signal);
  signal(SIGTERM, handle_signal);

  std::printf("numashared: registry %s, %u nodes x %u cores, policy %s%s%s\n",
              options.registry_name.c_str(), machine->node_count(),
              machine->core_count() / std::max(1u, machine->node_count()),
              policy_name.c_str(), options.journal_path.empty() ? "" : ", journal ",
              options.journal_path.c_str());
  std::fflush(stdout);

  daemon.start();
  const auto start = std::chrono::steady_clock::now();
  while (!g_stop.load()) {
    if (duration_s > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count() >=
            duration_s) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  // Orderly shutdown: retire clients, flush a final checkpoint, journal
  // daemon-stop, fsync — SIGTERM/SIGINT never leave a half-written tail.
  daemon.shutdown();

  const auto& stats = daemon.stats();
  std::printf("numashared: %llu ticks, %llu joins, %llu leaves, %llu evictions, "
              "%llu reallocations, %zu stale segments cleaned\n",
              static_cast<unsigned long long>(stats.ticks),
              static_cast<unsigned long long>(stats.joins),
              static_cast<unsigned long long>(stats.leaves),
              static_cast<unsigned long long>(stats.evictions),
              static_cast<unsigned long long>(stats.reallocations),
              stats.stale_segments_cleaned);
  return 0;
}
