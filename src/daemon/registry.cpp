#include "daemon/registry.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/format.hpp"
#include "inject/fault.hpp"

namespace numashare::nsd {

namespace {
constexpr std::uint64_t kMagic = 0x6e756d617372656dull;  // "numasrem" (registry member)
// v2: slot state is a packed {nonce, state} word (torn-claim hardening).
// v3: slots mirror compliance state (health, commanded/enacted epochs,
//     channel drop counters) for status tools.
// v4: foreign-workload shard (foreign_count + ForeignSlot rows) appended for
//     daemon-status visibility into non-participant arbitration.
// v5: per-client stalled_workers mirror (scheduler-latency watchdog) so
//     status tools can tell a starved client from a defiant one.
// v6: failover tier — daemon_heartbeat + arbiter_generation header words
//     (client-side liveness detection, generation-fenced failback) and
//     per-slot degraded-mode proposal fields + failover_state mirror.
// v7: scale tier — kMaxClients 32 -> 1024 behind a 16 x 64 shard structure
//     with per-shard attention bitmap words (header.attention[]) so the
//     daemon visits only flagged slots per tick instead of scanning the
//     full capacity (docs/DAEMON.md "Scaling the tick path").
constexpr std::uint32_t kVersion = 7;

RegistryHeader* map_segment(int fd) {
  void* mapped =
      mmap(nullptr, sizeof(RegistryHeader), PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  return mapped == MAP_FAILED ? nullptr : static_cast<RegistryHeader*>(mapped);
}
}  // namespace

Registry::Registry(std::string name, RegistryHeader* header, bool creator)
    : name_(std::move(name)), header_(header), creator_(creator) {}

std::unique_ptr<Registry> Registry::create(const std::string& name, std::string* error) {
  const auto fail = [&](const std::string& what) -> std::unique_ptr<Registry> {
    if (error) *error = ns_format("{}: {}", what, std::strerror(errno));
    return nullptr;
  };
  const int fd = shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) return fail("shm_open(create registry)");
  if (ftruncate(fd, sizeof(RegistryHeader)) != 0) {
    close(fd);
    shm_unlink(name.c_str());
    return fail("ftruncate(registry)");
  }
  auto* header = map_segment(fd);
  close(fd);
  if (header == nullptr) {
    shm_unlink(name.c_str());
    return fail("mmap(registry)");
  }
  new (header) RegistryHeader;
  header->version = kVersion;
  header->daemon_pid.store(static_cast<std::uint32_t>(::getpid()), std::memory_order_relaxed);
  header->generation.store(0, std::memory_order_relaxed);
  header->tick.store(0, std::memory_order_relaxed);
  header->daemon_heartbeat.store(0, std::memory_order_relaxed);
  header->arbiter_generation.store(0, std::memory_order_relaxed);
  header->node_count.store(0, std::memory_order_relaxed);
  for (auto& cores : header->node_cores) cores.store(0, std::memory_order_relaxed);
  for (auto& word : header->attention) word.store(0, std::memory_order_relaxed);
  for (auto& slot : header->slots) {
    slot.state_word.store(pack_state(SlotState::kFree, 0), std::memory_order_relaxed);
    slot.heartbeat.store(0, std::memory_order_relaxed);
    slot.health.store(static_cast<std::uint32_t>(ClientHealth::kHealthy),
                      std::memory_order_relaxed);
    slot.commanded_epoch.store(0, std::memory_order_relaxed);
    slot.enacted_epoch.store(0, std::memory_order_relaxed);
    slot.commands_dropped.store(0, std::memory_order_relaxed);
    slot.telemetry_dropped.store(0, std::memory_order_relaxed);
    slot.proposal_seq.store(0, std::memory_order_relaxed);
    for (auto& d : slot.proposal_desired) d.store(0, std::memory_order_relaxed);
    slot.proposal_generation.store(0, std::memory_order_relaxed);
    slot.failover_state.store(0, std::memory_order_relaxed);
  }
  header->foreign_count.store(0, std::memory_order_relaxed);
  for (auto& row : header->foreign) {
    row.pid.store(0, std::memory_order_relaxed);
    std::memset(row.name, 0, sizeof(row.name));
    row.fence.store(0, std::memory_order_relaxed);
    row.fence_node.store(agent::kMaxNodes, std::memory_order_relaxed);
    row.busy_millicores.store(0, std::memory_order_relaxed);
    for (auto& m : row.node_millicores) m.store(0, std::memory_order_relaxed);
  }
  header->magic.store(kMagic, std::memory_order_release);
  return std::unique_ptr<Registry>(new Registry(name, header, /*creator=*/true));
}

std::unique_ptr<Registry> Registry::open(const std::string& name, std::string* error) {
  const auto fail = [&](const std::string& what,
                        bool use_errno = true) -> std::unique_ptr<Registry> {
    if (error) {
      *error = use_errno ? ns_format("{}: {}", what, std::strerror(errno)) : what;
    }
    return nullptr;
  };
  const int fd = shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) return fail("shm_open(open registry)");
  struct stat st{};
  if (fstat(fd, &st) != 0 || static_cast<std::size_t>(st.st_size) < sizeof(RegistryHeader)) {
    close(fd);
    return fail("registry segment too small", false);
  }
  auto* header = map_segment(fd);
  close(fd);
  if (header == nullptr) return fail("mmap(registry)");
  if (header->magic.load(std::memory_order_acquire) != kMagic ||
      header->version != kVersion) {
    munmap(header, sizeof(RegistryHeader));
    return fail("magic/version mismatch (not a numashare registry?)", false);
  }
  return std::unique_ptr<Registry>(new Registry(name, header, /*creator=*/false));
}

Registry::~Registry() {
  if (header_ != nullptr) munmap(header_, sizeof(RegistryHeader));
  if (creator_) shm_unlink(name_.c_str());
}

std::optional<Registry::Claim> Registry::claim_slot(const std::string& client_name,
                                                    double advertised_ai,
                                                    std::uint32_t data_home) {
  for (std::uint32_t i = 0; i < kMaxClients; ++i) {
    auto& slot = header_->slots[i];
    std::uint64_t word = slot.state_word.load(std::memory_order_relaxed);
    if (state_of(word) != SlotState::kFree) continue;
    if (!slot.try_transition(word, SlotState::kClaiming)) continue;
    // Flag before the fault hooks: a claimant killed at the hook below still
    // gets its stalled claim noticed (and timed out) from the bitmap path.
    raise_attention(*header_, i);
    NS_FAULT_PAUSE("registry.pause", "claiming");
    NS_FAULT_DIE("registry.die", "claiming", 43);
    // We own the slot until the daemon activates it, we abandon it, or —
    // if we stall here past the claim timeout — the daemon reclaims it.
    slot.pid.store(static_cast<std::uint32_t>(::getpid()), std::memory_order_relaxed);
    std::memset(slot.name, 0, sizeof(slot.name));
    std::strncpy(slot.name, client_name.c_str(), sizeof(slot.name) - 1);
    slot.advertised_ai.store(advertised_ai, std::memory_order_relaxed);
    slot.data_home.store(data_home, std::memory_order_relaxed);
    slot.generation.store(0, std::memory_order_relaxed);
    std::memset(slot.channel_name, 0, sizeof(slot.channel_name));
    slot.heartbeat.store(1, std::memory_order_relaxed);
    // A reused slot must not carry the previous occupant's degraded-mode
    // proposal into the next daemon-loss episode.
    slot.proposal_seq.store(0, std::memory_order_relaxed);
    slot.proposal_generation.store(0, std::memory_order_relaxed);
    slot.failover_state.store(0, std::memory_order_relaxed);
    // Identity is complete; only now may the daemon look at it. The CAS
    // fails exactly when the daemon reclaimed our stalled claim — the slot
    // belongs to whoever owns it now, so move on to another one.
    if (!slot.try_transition(word, SlotState::kJoining)) continue;
    raise_attention(*header_, i);
    NS_FAULT_PAUSE("registry.pause", "joining");
    NS_FAULT_DIE("registry.die", "joining", 44);
    return Claim{i, word};
  }
  return std::nullopt;
}

bool Registry::daemon_alive() const {
  const auto pid = header_->daemon_pid.load(std::memory_order_relaxed);
  if (pid == 0) return false;
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH;
}

}  // namespace numashare::nsd
