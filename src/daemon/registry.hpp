// The daemon's well-known shared-memory registry segment.
//
// The library Agent only knows static add_app(); a production host needs a
// rendezvous point where applications come and go while the daemon runs.
// The registry is that point: one shm segment at a well-known name holding
// a fixed array of client slots. A client claims a free slot (CAS), writes
// its identity (name, PID, advertised arithmetic intensity) and publishes
// kJoining; the daemon notices on its next tick, creates a dedicated
// ShmChannel for the pair, writes the channel name back into the slot and
// publishes kActive. From then on the client's only registry duty is to
// bump its heartbeat counter; losing the heartbeat (or the PID) gets the
// slot evicted and recycled.
//
// Everything in the segment is address-free — plain PODs and lock-free
// atomics — exactly like ShmChannel's rings, so the same layout works
// across unrelated processes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "agent/protocol.hpp"

namespace numashare::nsd {

/// Registry capacity (v7): 1024 slots behind a shard structure. Shards are
/// purely an indexing scheme over the flat slot array — slot i lives in
/// shard i / kSlotsPerShard — sized so one shard's attention bitmap is
/// exactly one 64-bit word (see RegistryHeader::attention).
inline constexpr std::uint32_t kRegistryShards = 16;
inline constexpr std::uint32_t kSlotsPerShard = 64;
inline constexpr std::uint32_t kMaxClients = kRegistryShards * kSlotsPerShard;
inline constexpr std::uint32_t kClientNameChars = 48;
inline constexpr std::uint32_t kShmNameChars = 64;
inline constexpr std::uint32_t kMaxForeign = 16;
inline constexpr std::uint32_t kForeignNameChars = 32;
inline constexpr const char* kDefaultRegistryName = "/numashare-registry";

/// Slot lifecycle. Transitions:
///   kFree -> kClaiming  (client CAS; slot reserved, fields not yet valid)
///   kClaiming -> kJoining (client, release-published after identity fields)
///   kClaiming -> kFree  (daemon, claim timeout: claimant died or stalled)
///   kJoining -> kActive (daemon, after creating the pair's channel)
///   kJoining -> kFree   (client, activation timeout / daemon, dead PID)
///   kActive -> kLeaving (client, graceful goodbye)
///   kActive -> kFree    (daemon, eviction: heartbeat loss or dead PID)
///   kLeaving -> kFree   (daemon, after deregistering the app)
/// The daemon never reads identity fields before observing kJoining, which
/// is store-released only after they are complete.
enum class SlotState : std::uint32_t {
  kFree = 0,
  kJoining = 1,
  kActive = 2,
  kLeaving = 3,
  kClaiming = 4,
};
static_assert(std::is_trivially_copyable_v<SlotState>);

/// Compliance health of an active client, daemon-maintained (the watchdog in
/// Daemon::tick). Mirrored into the slot for status tools. A client that is
/// heartbeating but stays behind the commanded epoch past the enactment
/// deadline becomes a laggard (its unenacted cores are administratively
/// reclaimed); one that stays behind through the grace window is quarantined
/// at a floor allocation with exponential-backoff readmission probes; repeat
/// offenders are evicted ("compliance-evict"). Eviction is terminal, so it
/// needs no state here.
enum class ClientHealth : std::uint32_t {
  kHealthy = 0,
  kLaggard = 1,
  kQuarantined = 2,
};

inline const char* to_string(ClientHealth health) {
  switch (health) {
    case ClientHealth::kHealthy: return "healthy";
    case ClientHealth::kLaggard: return "laggard";
    case ClientHealth::kQuarantined: return "quarantined";
  }
  return "?";
}

/// The state machine lives in ONE atomic word per slot: the state in the
/// low 8 bits and an ownership nonce above it. Every transition is a CAS on
/// the full word that bumps the nonce, so each incarnation of a slot is
/// unique and a stale party can never corrupt the machine: a client paused
/// mid-claim whose slot the daemon reclaimed (and someone else re-claimed)
/// fails its publish CAS instead of stomping the new owner; a daemon
/// activating a slot whose claimant just abandoned it fails its activation
/// CAS and rolls the admit back. Nonce wrap needs 2^56 transitions — never.
constexpr std::uint64_t pack_state(SlotState state, std::uint64_t nonce) {
  return (nonce << 8) | static_cast<std::uint64_t>(state);
}
constexpr SlotState state_of(std::uint64_t word) {
  return static_cast<SlotState>(word & 0xffu);
}
constexpr std::uint64_t nonce_of(std::uint64_t word) { return word >> 8; }
/// The word a successful transition out of `word` into `to` produces.
constexpr std::uint64_t next_word(std::uint64_t word, SlotState to) {
  return pack_state(to, nonce_of(word) + 1);
}

struct ClientSlot {
  /// Packed {nonce, SlotState}; see pack_state(). All transitions CAS this.
  std::atomic<std::uint64_t> state_word;

  // Client-written between kClaiming and kJoining. Scalars are atomics
  // (relaxed; the state_word CAS orders them) so a claimant racing a
  // reclaimed slot's new owner tears at most the name, never a scalar.
  std::atomic<std::uint32_t> pid;
  char name[kClientNameChars];
  /// Self-advertised arithmetic intensity (FLOPs/byte), 0 = unknown. Seeds
  /// the model-guided policy until live telemetry takes over.
  std::atomic<double> advertised_ai;
  /// Advertised NUMA-bad data home; agent::kMaxNodes = perfect/unknown.
  std::atomic<std::uint32_t> data_home;

  // Daemon-written before publishing kActive.
  std::atomic<std::uint64_t> generation;
  char channel_name[kShmNameChars];

  // Client-incremented while kActive; the daemon watches for *change*, so
  // no cross-process clock comparison is ever needed.
  std::atomic<std::uint64_t> heartbeat;

  // Compliance mirrors, daemon-written each tick while kActive so status
  // tools see the watchdog's view without touching the channel segments.
  std::atomic<std::uint32_t> health;            ///< ClientHealth
  std::atomic<std::uint64_t> commanded_epoch;   ///< newest epoch commanded
  std::atomic<std::uint64_t> enacted_epoch;     ///< newest epoch acked
  std::atomic<std::uint64_t> commands_dropped;  ///< channel drop counters
  std::atomic<std::uint64_t> telemetry_dropped;
  /// Scheduler-latency watchdog mirror (v5): commanded-online workers the
  /// client's OS is not scheduling (Telemetry::stalled_workers). Nonzero
  /// while the client is behind = "starved, not defiant".
  std::atomic<std::uint32_t> stalled_workers;

  // --- Degraded-mode proposal exchange (v6, docs/DAEMON.md "Failover").
  // When the daemon dies, survivors keep their mappings of this (now
  // orphaned) segment and use their own slots as the proposal bus for the
  // decentralized consensus arbitration. The proposal is published once per
  // degraded episode and then left stable, so every survivor eventually
  // reads the identical snapshot regardless of when it looks.
  /// Bumped (release) after proposal_desired is complete; 0 = no proposal.
  std::atomic<std::uint64_t> proposal_seq;
  /// Threads this survivor proposes for itself on each node, conservatively
  /// clamped so it never exceeds its last daemon-granted allocation.
  std::atomic<std::uint32_t> proposal_desired[agent::kMaxNodes];
  /// The arbiter generation (header word) the proposer last observed alive.
  /// Survivors only arbitrate proposals from the same dead incarnation, so
  /// a stale proposal from an earlier episode can never leak in.
  std::atomic<std::uint64_t> proposal_generation;
  /// Failover state mirror for status tooling: 0 attached, 1 suspect,
  /// 2 degraded, 3 rejoining (nsd::FailoverState).
  std::atomic<std::uint32_t> failover_state;

  SlotState state(std::memory_order order = std::memory_order_acquire) const {
    return state_of(state_word.load(order));
  }

  /// CAS from `expected` to state `to` with the nonce bumped. On success
  /// `expected` holds the slot's new word; on failure, the observed word.
  bool try_transition(std::uint64_t& expected, SlotState to) {
    const std::uint64_t target = next_word(expected, to);
    if (state_word.compare_exchange_strong(expected, target, std::memory_order_acq_rel)) {
      expected = target;
      return true;
    }
    return false;
  }

  /// Walk the slot to `to` no matter who races us (daemon-side recycling).
  void force_state(SlotState to) {
    std::uint64_t word = state_word.load(std::memory_order_acquire);
    while (state_of(word) != to && !try_transition(word, to)) {
    }
  }
};

/// Foreign-workload mirror, daemon-written after each ForeignMonitor tick so
/// `daemon-status` shows the non-participants the model is pricing without
/// any extra IPC. Shares are scaled to millicores (×1000) to stay atomic
/// integers. pid == 0 marks an unused row. The name is plain chars like
/// ClientSlot::name — a reader racing a rewrite can tear it; status tooling
/// tolerates that (one garbled render, next read is fine).
struct ForeignSlot {
  std::atomic<std::int32_t> pid;
  char name[kForeignNameChars];
  std::atomic<std::uint32_t> fence;        ///< foreign::FenceState
  std::atomic<std::uint32_t> fence_node;   ///< agent::kMaxNodes = none
  std::atomic<std::uint64_t> busy_millicores;
  std::atomic<std::uint64_t> node_millicores[agent::kMaxNodes];
};

struct RegistryHeader {
  std::atomic<std::uint64_t> magic;
  std::uint32_t version;
  std::atomic<std::uint32_t> daemon_pid;
  /// Mirrors the agent's membership generation (bumps on join/leave/evict).
  std::atomic<std::uint64_t> generation;
  /// Daemon liveness: incremented every tick. A status reader that sees it
  /// stall (with a dead daemon_pid) knows the segment is stale.
  std::atomic<std::uint64_t> tick;
  /// Daemon heartbeat (v6): stamped monotonically every service tick.
  /// Clients watch it *change* — never comparing clocks across processes —
  /// and declare the daemon dead after a bounded miss window instead of
  /// waiting for channel errors (see nsd::FailoverClient).
  std::atomic<std::uint64_t> daemon_heartbeat;
  /// Daemon incarnation (v6): 1 for a fresh daemon, recovered-from-journal
  /// + 1 on every restart. Strictly monotone across incarnations of one
  /// registry name. Every outgoing Command is stamped with it, which is the
  /// fence that keeps pre-crash grants from ever being mistaken for fresh
  /// ones after failback.
  std::atomic<std::uint64_t> arbiter_generation;
  /// The arbitrated machine's shape, daemon-written at init. Clients build
  /// their runtime over the same shape so per-node thread commands line up
  /// (atomic: a client may open the registry before the daemon fills this).
  std::atomic<std::uint32_t> node_count;
  std::atomic<std::uint32_t> node_cores[agent::kMaxNodes];
  /// Per-shard attention bitmaps (v7): bit (i % kSlotsPerShard) of word
  /// (i / kSlotsPerShard) means "slot i needs daemon action". Clients and
  /// claimants raise a bit with one fetch_or (release) *after* publishing
  /// the state it advertises (kJoining, kLeaving, a proposal_seq bump); the
  /// daemon drains a whole shard with exchange(0) (acquire) and visits only
  /// the flagged slots, so tick cost tracks activity, not capacity. A bit
  /// can be lost when a raiser dies between the state CAS and the fetch_or;
  /// the periodic full sweep (DaemonOptions::full_sweep_every_ticks) is the
  /// safety net that still converges those slots.
  std::atomic<std::uint64_t> attention[kRegistryShards];
  ClientSlot slots[kMaxClients];
  /// Foreign shard (v4): rows [0, foreign_count) are meaningful.
  std::atomic<std::uint32_t> foreign_count;
  ForeignSlot foreign[kMaxForeign];
};

/// Flag slot `index` for daemon attention. Callers publish the state that
/// needs servicing first (release CAS / release store), then raise; the
/// daemon's acquire exchange on the word therefore observes the published
/// state whenever it observes the bit.
inline void raise_attention(RegistryHeader& header, std::uint32_t index) {
  header.attention[index / kSlotsPerShard].fetch_or(
      std::uint64_t{1} << (index % kSlotsPerShard), std::memory_order_release);
}

/// RAII mapping of the registry segment. The daemon create()s (exclusively)
/// and unlinks on destruction; clients and status tools open() an existing
/// one. All slot-protocol helpers live on the mapped header directly.
class Registry {
 public:
  /// A successfully claimed-and-published slot. `joining_word` is the
  /// {kJoining, nonce} word this claimant published; the daemon activates
  /// it by CASing exactly that word to its kActive successor, so the
  /// claimant can wait for next_word(joining_word, kActive) and *know* the
  /// activation is its own.
  struct Claim {
    std::uint32_t index = 0;
    std::uint64_t joining_word = 0;
  };

  static std::unique_ptr<Registry> create(const std::string& name, std::string* error = nullptr);
  static std::unique_ptr<Registry> open(const std::string& name, std::string* error = nullptr);

  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  const std::string& name() const { return name_; }
  bool is_creator() const { return creator_; }

  RegistryHeader& header() { return *header_; }
  const RegistryHeader& header() const { return *header_; }
  ClientSlot& slot(std::uint32_t index) { return header_->slots[index]; }
  const ClientSlot& slot(std::uint32_t index) const { return header_->slots[index]; }

  /// Client side: claim a free slot, fill identity, publish kJoining.
  /// Returns nullopt when the registry is full (or every claimable slot was
  /// reclaimed under us, which only a fault plan can arrange).
  std::optional<Claim> claim_slot(const std::string& client_name, double advertised_ai,
                                  std::uint32_t data_home);

  /// True when the PID recorded as the daemon still exists.
  bool daemon_alive() const;

 private:
  Registry(std::string name, RegistryHeader* header, bool creator);

  std::string name_;
  RegistryHeader* header_ = nullptr;
  bool creator_ = false;
};

}  // namespace numashare::nsd
