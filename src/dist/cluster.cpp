#include "dist/cluster.hpp"

#include <algorithm>
#include <queue>

#include "common/assert.hpp"

namespace numashare::dist {

namespace {

void check(const ClusterWorkload& w) {
  NS_REQUIRE(!w.node_speedups.empty(), "need at least one node");
  NS_REQUIRE(w.barrier_fraction >= 0.0 && w.barrier_fraction <= 1.0,
             "barrier_fraction in [0,1]");
  NS_REQUIRE(w.iterations > 0, "need at least one iteration");
  for (double s : w.node_speedups) NS_REQUIRE(s > 0.0, "speedups must be positive");
}

}  // namespace

double overall_speedup(const ClusterWorkload& workload, Distribution distribution) {
  check(workload);
  const auto& s = workload.node_speedups;
  const double nodes = static_cast<double>(s.size());
  const double b = workload.barrier_fraction;

  // Baseline per-iteration time is 1 (each node does 1 unit of work).
  double slowest = 1e300;
  double throughput = 0.0;
  for (double si : s) {
    slowest = std::min(slowest, si);
    throughput += si;
  }

  double iteration_time = 0.0;
  switch (distribution) {
    case Distribution::kStatic:
      // Statically partitioned: both parts wait for the slowest node.
      iteration_time = 1.0 / slowest;
      break;
    case Distribution::kDynamic:
      // Barriered part still advances at the slowest node's pace; the
      // independent part is a shared pool draining at aggregate speed.
      iteration_time = b / slowest + (1.0 - b) * nodes / throughput;
      break;
  }
  return 1.0 / iteration_time;
}

double baseline_makespan(const ClusterWorkload& workload, std::uint32_t tasks_per_iteration) {
  check(workload);
  NS_REQUIRE(tasks_per_iteration > 0, "need at least one task per iteration");
  // Every node processes tasks_per_iteration unit tasks per iteration at
  // speed 1: each task costs 1/tasks_per_iteration baseline time.
  return static_cast<double>(workload.iterations);
}

double simulate_makespan(const ClusterWorkload& workload, Distribution distribution,
                         std::uint32_t tasks_per_iteration) {
  check(workload);
  NS_REQUIRE(tasks_per_iteration > 0, "need at least one task per iteration");
  const auto& speeds = workload.node_speedups;
  const std::size_t nodes = speeds.size();
  const double task_cost = 1.0 / tasks_per_iteration;  // baseline time per task
  const double b = workload.barrier_fraction;

  double elapsed = 0.0;
  for (std::uint32_t iter = 0; iter < workload.iterations; ++iter) {
    // Tightly synchronized part: lock-step, everyone waits for the slowest.
    double barrier_time = 0.0;
    for (double s : speeds) barrier_time = std::max(barrier_time, b / s);

    // Independent part: nodes x tasks_per_iteration unit tasks, scaled by
    // (1-b). Static pre-partitions per node; dynamic list-schedules.
    double independent_time = 0.0;
    const double part_cost = (1.0 - b) * task_cost;
    if (part_cost > 0.0) {
      if (distribution == Distribution::kStatic) {
        for (double s : speeds) {
          independent_time =
              std::max(independent_time, tasks_per_iteration * part_cost / s);
        }
      } else {
        // Greedy list scheduling: min-heap of node-available times.
        const std::uint64_t total_tasks =
            static_cast<std::uint64_t>(nodes) * tasks_per_iteration;
        // With identical task sizes, assigning each next task to the node
        // that frees up first is optimal among non-preemptive schedules.
        using Slot = std::pair<double, std::size_t>;  // (free time, node)
        std::priority_queue<Slot, std::vector<Slot>, std::greater<>> heap;
        for (std::size_t n = 0; n < nodes; ++n) heap.emplace(0.0, n);
        double finish = 0.0;
        for (std::uint64_t t = 0; t < total_tasks; ++t) {
          auto [free_at, n] = heap.top();
          heap.pop();
          const double done = free_at + part_cost / speeds[n];
          finish = std::max(finish, done);
          heap.emplace(done, n);
        }
        independent_time = finish;
      }
    }
    elapsed += barrier_time + independent_time;
  }
  return elapsed;
}

}  // namespace numashare::dist
