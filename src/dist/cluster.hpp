// Distributed-environment model (paper §V).
//
// The paper's argument, made executable: a composed MPI application runs on
// N compute nodes; dynamic on-node core allocation gives node i a local
// speedup s_i (possibly uneven). How much of that local speedup survives at
// scale depends on how work is distributed:
//
//  * static distribution + per-iteration barrier: every iteration waits for
//    the slowest node, so the overall speedup collapses to min(s_i);
//  * dynamic (work-pool) distribution: nodes pull work at their own pace and
//    the overall speedup approaches mean(s_i);
//  * real codes sit in between — `barrier_fraction` interpolates: that
//    fraction of each iteration is tightly synchronized, the rest is
//    independent-task work.
//
// Both a closed form and a discrete list-scheduling simulation are provided;
// they agree in the limit and the simulation additionally exposes integer-
// granularity imbalance.
#pragma once

#include <cstdint>
#include <vector>

namespace numashare::dist {

enum class Distribution : std::uint8_t { kStatic, kDynamic };

struct ClusterWorkload {
  /// Per-node local speedup factors from on-node dynamic core allocation
  /// (1.0 = no change). Size = node count.
  std::vector<double> node_speedups;
  /// Fraction of each iteration inside the tightly synchronized (barrier)
  /// region; 0 = embarrassingly parallel, 1 = lock-step.
  double barrier_fraction = 0.0;
  std::uint32_t iterations = 1;
};

/// Overall application speedup (vs all-speedups-1.0 baseline), closed form.
double overall_speedup(const ClusterWorkload& workload, Distribution distribution);

/// Discrete simulation: `tasks_per_iteration` equal work units per node per
/// iteration; the independent part is list-scheduled greedily (dynamic) or
/// pre-partitioned (static). Returns the makespan in baseline time units.
double simulate_makespan(const ClusterWorkload& workload, Distribution distribution,
                         std::uint32_t tasks_per_iteration);

/// Baseline makespan (all speedups 1) for the same shape.
double baseline_makespan(const ClusterWorkload& workload, std::uint32_t tasks_per_iteration);

}  // namespace numashare::dist
