#include "foreign/bridge.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace numashare::foreign {

model::ForeignLoad to_foreign_load(const topo::Machine& machine,
                                   const std::vector<ForeignProcess>& processes,
                                   const BridgeOptions& options) {
  model::ForeignLoad load;
  load.busy_cores.assign(machine.node_count(), 0.0);
  load.bandwidth.assign(machine.node_count(), 0.0);
  for (const auto& process : processes) {
    NS_REQUIRE(process.node_cores.size() == machine.node_count(),
               "foreign process node shares must match the machine");
    for (topo::NodeId n = 0; n < machine.node_count(); ++n) {
      load.busy_cores[n] += process.node_cores[n];
    }
  }
  for (topo::NodeId n = 0; n < machine.node_count(); ++n) {
    // More foreign busy than physical cores can appear transiently when EWMA
    // tails overlap pid churn; the solver clamps too, but keep the exported
    // numbers physical so journals and status output stay readable.
    const auto cores = static_cast<double>(machine.cores_in_node(n));
    load.busy_cores[n] = std::min(load.busy_cores[n], cores);
    GBps per_core = options.bandwidth_per_busy_core;
    if (per_core <= 0.0) {
      per_core = cores > 0.0 ? machine.node(n).memory_bandwidth / cores : 0.0;
    }
    load.bandwidth[n] = load.busy_cores[n] * per_core;
  }
  return load;
}

}  // namespace numashare::foreign
