// Scanner output -> solver input: turn detected foreign processes into the
// opaque-consumer ForeignLoad the roofline model prices (core/roofline).
//
// Compute is direct: busy_cores[n] = sum of each process's per-node share.
// Bandwidth cannot be observed from procfs, so it is estimated: each busy
// core is assumed to draw `bandwidth_per_busy_core` GB/s at its node's
// controller. The default (0) derives a fair share per node —
// node_bandwidth / cores_in_node — i.e. a foreign core is assumed to pull
// its proportional slice of the controller, the same baseline guarantee the
// model grants cooperating cores. Callers with measurement infrastructure
// (PMU counters, resctrl) can substitute a calibrated figure.
#pragma once

#include "core/roofline.hpp"
#include "foreign/scanner.hpp"
#include "topology/machine.hpp"

namespace numashare::foreign {

struct BridgeOptions {
  /// GB/s drawn per foreign busy core. 0 = per-node fair share
  /// (node memory_bandwidth / cores_in_node).
  GBps bandwidth_per_busy_core = 0.0;
};

/// Fold the scanned processes into a per-node ForeignLoad. Vectors are sized
/// to machine.node_count(); an empty process list yields a load whose any()
/// is false, which the solver treats as byte-for-byte identical to "no
/// foreign option at all".
model::ForeignLoad to_foreign_load(const topo::Machine& machine,
                                   const std::vector<ForeignProcess>& processes,
                                   const BridgeOptions& options = {});

}  // namespace numashare::foreign
