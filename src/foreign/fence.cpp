#include "foreign/fence.hpp"

#include "topology/affinity.hpp"

namespace numashare::foreign {

const char* to_string(FenceState state) {
  switch (state) {
    case FenceState::kNone: return "none";
    case FenceState::kAdvisory: return "advisory";
    case FenceState::kApplied: return "applied";
    case FenceState::kFailed: return "failed";
  }
  return "?";
}

FenceState apply_fence(const topo::Machine& machine, std::int32_t pid,
                       topo::NodeId node, bool enforce) {
  if (!enforce) return FenceState::kAdvisory;
  const auto set = topo::CpuSet::whole_node(machine, node);
  switch (topo::bind_process(pid, set)) {
    case topo::BindResult::kApplied: return FenceState::kApplied;
    case topo::BindResult::kUnsupported: return FenceState::kAdvisory;
    case topo::BindResult::kFailed: return FenceState::kFailed;
  }
  return FenceState::kFailed;
}

FenceState release_fence(const topo::Machine& machine, std::int32_t pid,
                         FenceState current) {
  if (current != FenceState::kApplied) return FenceState::kNone;
  const auto set = topo::CpuSet::all(machine);
  return topo::bind_process(pid, set) == topo::BindResult::kApplied
             ? FenceState::kNone
             : FenceState::kFailed;
}

}  // namespace numashare::foreign
