// The foreign-workload fence: confine a detected foreign process to one
// NUMA node so the model's per-node attribution becomes true by
// construction rather than an estimate.
//
// Enforcement is sched_setaffinity on the foreign pid (topo::bind_process),
// which requires the daemon to own the process or hold CAP_SYS_NICE. When
// the syscall is denied — the common unprivileged case — the fence degrades
// to *advisory*: the decision is journaled (foreign-fence records) and the
// model still prices the process where it was observed, but nothing is
// moved. The arbiter therefore stays strictly advisory by default, exactly
// like its treatment of cooperating applications.
#pragma once

#include <cstdint>

#include "topology/machine.hpp"

namespace numashare::foreign {

enum class FenceState : std::uint8_t {
  kNone = 0,      // not fenced
  kAdvisory,      // fence decided, not enforced (no permission / disabled)
  kApplied,       // sched_setaffinity succeeded
  kFailed,        // enforcement attempted and the syscall failed
};

const char* to_string(FenceState state);

/// Fence `pid` to every core of `node`. With enforce=false the syscall is
/// skipped and the result is kAdvisory.
FenceState apply_fence(const topo::Machine& machine, std::int32_t pid,
                       topo::NodeId node, bool enforce);

/// Release a fence: restore the full-machine mask. Advisory fences have
/// nothing to undo. Returns the state the fence ends in (kNone on success,
/// kFailed when the restore syscall failed — e.g. the process already died,
/// which callers treat as released anyway).
FenceState release_fence(const topo::Machine& machine, std::int32_t pid,
                         FenceState current);

}  // namespace numashare::foreign
