#include "foreign/monitor.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "inject/fault.hpp"

namespace numashare::foreign {

namespace {

topo::NodeId dominant_node(const std::vector<double>& node_cores) {
  topo::NodeId best = 0;
  for (topo::NodeId n = 1; n < node_cores.size(); ++n) {
    if (node_cores[n] > node_cores[best]) best = n;
  }
  return best;
}

}  // namespace

const char* to_string(ForeignEvent::Kind kind) {
  switch (kind) {
    case ForeignEvent::Kind::kSeen: return "seen";
    case ForeignEvent::Kind::kGone: return "gone";
    case ForeignEvent::Kind::kFence: return "fence";
    case ForeignEvent::Kind::kRelease: return "release";
  }
  return "?";
}

ForeignMonitor::ForeignMonitor(const topo::Machine& machine, MonitorOptions options)
    : machine_(machine), options_(std::move(options)),
      scanner_(machine, options_.scanner) {
  NS_REQUIRE(options_.appear_ticks >= 1, "appear_ticks must be at least 1");
  NS_REQUIRE(options_.gone_ticks >= 1, "gone_ticks must be at least 1");
}

void ForeignMonitor::set_participants(const std::unordered_set<std::int32_t>& pids) {
  scanner_.set_participants(pids);
}

void ForeignMonitor::admit(Tracked& entry, std::vector<ForeignEvent>& events) {
  entry.info.admitted = true;
  events.push_back({ForeignEvent::Kind::kSeen, entry.info.pid, entry.info.name,
                    entry.info.cpu_cores, topo::kInvalidNode, FenceState::kNone});
  if (entry.info.cpu_cores >= options_.fence_min_cores) {
    const auto node = dominant_node(entry.info.node_cores);
    entry.info.fence =
        apply_fence(machine_, entry.info.pid, node, options_.enforce_fences &&
                                                        !entry.info.synthetic);
    entry.info.fence_node = node;
    events.push_back({ForeignEvent::Kind::kFence, entry.info.pid, entry.info.name,
                      entry.info.cpu_cores, node, entry.info.fence});
  }
}

std::vector<ForeignEvent> ForeignMonitor::tick(double now_seconds) {
  auto scan = scanner_.scan(now_seconds);

#if NS_FAULT_ENABLED
  if (NS_FAULT_AT("foreign.appear")) {
    // A synthetic hog materializes on node 0, eating half its cores. It
    // persists (and keeps consuming) until foreign.die removes it.
    SyntheticHog hog;
    hog.name = "synthetic-hog";
    hog.node = 0;
    hog.cores = static_cast<double>(machine_.cores_in_node(0)) / 2.0;
    synthetic_.emplace(next_synthetic_pid_++, std::move(hog));
  }
  std::uint64_t pct = 0;
  if (NS_FAULT_VALUE("foreign.balloon", &pct)) {
    for (auto& [pid, hog] : synthetic_) {
      hog.cores *= 1.0 + static_cast<double>(pct) / 100.0;
      hog.cores = std::min(hog.cores,
                           static_cast<double>(machine_.cores_in_node(hog.node)));
    }
  }
  if (NS_FAULT_AT("foreign.die")) synthetic_.clear();
#endif

  std::vector<ForeignEvent> events;
  if (!scan && synthetic_.empty() && tracked_.empty()) return events;

  // Assemble this tick's observation set: scanned + synthetic.
  std::vector<ForeignProcess> observed;
  if (scan) observed = std::move(scan->processes);
  for (const auto& [pid, hog] : synthetic_) {
    ForeignProcess process;
    process.pid = pid;
    process.name = hog.name;
    process.cpu_cores = hog.cores;
    process.node_cores.assign(machine_.node_count(), 0.0);
    process.node_cores[hog.node] = hog.cores;
    observed.push_back(std::move(process));
  }
  // Deterministic processing order regardless of scan/hash ordering.
  std::sort(observed.begin(), observed.end(),
            [](const ForeignProcess& a, const ForeignProcess& b) { return a.pid < b.pid; });

  for (auto& process : observed) {
    auto [it, inserted] = tracked_.try_emplace(process.pid);
    auto& entry = it->second;
    entry.info.pid = process.pid;
    entry.info.name = std::move(process.name);
    entry.info.cpu_cores = process.cpu_cores;
    entry.info.node_cores = std::move(process.node_cores);
    entry.info.synthetic = synthetic_.find(process.pid) != synthetic_.end();
    entry.miss_streak = 0;
    ++entry.seen_streak;
    if (entry.info.fence == FenceState::kApplied) {
      // The fence made the placement true: charge the whole share there.
      std::fill(entry.info.node_cores.begin(), entry.info.node_cores.end(), 0.0);
      entry.info.node_cores[entry.info.fence_node] = entry.info.cpu_cores;
    }
    if (!entry.info.admitted && entry.seen_streak >= options_.appear_ticks) {
      admit(entry, events);
    }
  }

  // Age out processes missing from this tick's observation set.
  std::vector<std::int32_t> drop;
  for (auto& [pid, entry] : tracked_) {
    const bool seen = std::any_of(
        observed.begin(), observed.end(),
        [pid = pid](const ForeignProcess& p) { return p.pid == pid; });
    if (seen) continue;
    if (!scan && synthetic_.find(pid) == synthetic_.end() && !entry.info.synthetic) {
      continue;  // priming scan: no verdict on real processes this tick
    }
    ++entry.miss_streak;
    entry.seen_streak = 0;
    if (entry.miss_streak < options_.gone_ticks) continue;
    if (entry.info.fence == FenceState::kApplied) {
      release_fence(machine_, pid, entry.info.fence);
      events.push_back({ForeignEvent::Kind::kRelease, pid, entry.info.name,
                        entry.info.cpu_cores, entry.info.fence_node, FenceState::kNone});
    }
    if (entry.info.admitted) {
      events.push_back({ForeignEvent::Kind::kGone, pid, entry.info.name,
                        entry.info.cpu_cores, topo::kInvalidNode, FenceState::kNone});
    }
    drop.push_back(pid);
  }
  for (const auto pid : drop) tracked_.erase(pid);

  std::sort(events.begin(), events.end(), [](const ForeignEvent& a, const ForeignEvent& b) {
    if (a.pid != b.pid) return a.pid < b.pid;
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  });
  rebuild_load();
  return events;
}

std::vector<ForeignEvent> ForeignMonitor::release_all() {
  std::vector<ForeignEvent> events;
  for (auto& [pid, entry] : tracked_) {
    if (entry.info.fence != FenceState::kApplied &&
        entry.info.fence != FenceState::kAdvisory &&
        entry.info.fence != FenceState::kFailed) {
      continue;
    }
    release_fence(machine_, pid, entry.info.fence);
    events.push_back({ForeignEvent::Kind::kRelease, pid, entry.info.name,
                      entry.info.cpu_cores, entry.info.fence_node, FenceState::kNone});
    entry.info.fence = FenceState::kNone;
    entry.info.fence_node = topo::kInvalidNode;
  }
  std::sort(events.begin(), events.end(),
            [](const ForeignEvent& a, const ForeignEvent& b) { return a.pid < b.pid; });
  return events;
}

void ForeignMonitor::rebuild_load() {
  std::vector<ForeignProcess> admitted;
  for (const auto& [pid, entry] : tracked_) {
    if (!entry.info.admitted) continue;
    ForeignProcess process;
    process.pid = pid;
    process.name = entry.info.name;
    process.cpu_cores = entry.info.cpu_cores;
    process.node_cores = entry.info.node_cores;
    admitted.push_back(std::move(process));
  }
  if (admitted.empty()) {
    load_.clear();  // empty vectors: the solver's "no foreign at all" shape
    return;
  }
  load_ = to_foreign_load(machine_, admitted, options_.bridge);
}

std::vector<TrackedForeign> ForeignMonitor::tracked() const {
  std::vector<TrackedForeign> out;
  out.reserve(tracked_.size());
  for (const auto& [pid, entry] : tracked_) out.push_back(entry.info);
  std::sort(out.begin(), out.end(), [](const TrackedForeign& a, const TrackedForeign& b) {
    return a.pid < b.pid;
  });
  return out;
}

}  // namespace numashare::foreign
