// ForeignMonitor: the daemon-facing stateful loop over the scanner.
//
// Raw scans flap — EWMA tails, pid churn, processes that burn CPU for one
// tick. The monitor adds quarantine-style hysteresis (a process must be
// seen `appear_ticks` consecutive scans before it is admitted into the
// model, and missed `gone_ticks` scans before it is dropped), decides and
// tracks fences for the big consumers, maintains the aggregated
// model::ForeignLoad the policy prices, and reports every state change as a
// ForeignEvent the daemon turns into journal records
// (foreign-seen / foreign-gone / foreign-fence).
//
// Fault sites (docs/INJECT.md), hooked here so the 120-seed sweep can script
// foreign churn without real processes:
//   foreign.appear        a synthetic hog materializes on node 0
//   foreign.balloon@pct=N every synthetic hog's load inflates by N percent
//   foreign.die           every synthetic hog exits (hysteresis then ages it out)
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/roofline.hpp"
#include "foreign/bridge.hpp"
#include "foreign/fence.hpp"
#include "foreign/scanner.hpp"
#include "topology/machine.hpp"

namespace numashare::foreign {

struct MonitorOptions {
  ScannerOptions scanner;
  BridgeOptions bridge;
  /// Attempt sched_setaffinity on fenced pids. Off by default: the arbiter
  /// stays advisory unless the operator opts in (--foreign-enforce).
  bool enforce_fences = false;
  /// Consecutive scans a process must appear in before admission.
  std::uint32_t appear_ticks = 2;
  /// Consecutive scans a process must be missing from before removal.
  std::uint32_t gone_ticks = 2;
  /// Processes consuming at least this many cores get fenced to their
  /// dominant node; smaller ones are only priced where observed.
  double fence_min_cores = 0.5;
};

struct ForeignEvent {
  enum class Kind : std::uint8_t { kSeen, kGone, kFence, kRelease };
  Kind kind = Kind::kSeen;
  std::int32_t pid = 0;
  std::string name;
  double cpu_cores = 0.0;
  topo::NodeId node = topo::kInvalidNode;  // fence node (kFence only)
  FenceState fence = FenceState::kNone;
};

const char* to_string(ForeignEvent::Kind kind);

/// Snapshot row for the registry shard and daemon-status.
struct TrackedForeign {
  std::int32_t pid = 0;
  std::string name;
  double cpu_cores = 0.0;
  std::vector<double> node_cores;
  FenceState fence = FenceState::kNone;
  topo::NodeId fence_node = topo::kInvalidNode;
  bool admitted = false;
  bool synthetic = false;
};

class ForeignMonitor {
 public:
  ForeignMonitor(const topo::Machine& machine, MonitorOptions options = {});

  /// Forward to the scanner: pids that are ours, never foreign.
  void set_participants(const std::unordered_set<std::int32_t>& pids);

  /// One monitoring step at `now_seconds`. Scans, applies fault-site
  /// injections, advances hysteresis, (re)decides fences, rebuilds load().
  /// Returns the state changes, in a deterministic (pid-sorted) order.
  std::vector<ForeignEvent> tick(double now_seconds);

  /// Release every applied fence (daemon shutdown). Returns the release
  /// events so the caller can journal them.
  std::vector<ForeignEvent> release_all();

  /// The aggregated opaque-consumer load for the solver. Empty-vector (no
  /// foreign) until something is admitted.
  const model::ForeignLoad& load() const { return load_; }

  /// Admitted + pending processes, pid-sorted, for status surfaces.
  std::vector<TrackedForeign> tracked() const;

  const MonitorOptions& options() const { return options_; }

 private:
  struct Tracked {
    TrackedForeign info;
    std::uint32_t seen_streak = 0;
    std::uint32_t miss_streak = 0;
  };
  struct SyntheticHog {
    std::string name;
    topo::NodeId node = 0;
    double cores = 0.0;
  };

  void admit(Tracked& entry, std::vector<ForeignEvent>& events);
  void rebuild_load();

  const topo::Machine& machine_;
  MonitorOptions options_;
  ForeignScanner scanner_;
  std::unordered_map<std::int32_t, Tracked> tracked_;
  std::unordered_map<std::int32_t, SyntheticHog> synthetic_;
  std::int32_t next_synthetic_pid_ = 990000;
  model::ForeignLoad load_;
};

}  // namespace numashare::foreign
