#include "foreign/procfs_writer.hpp"

#include <unistd.h>

#include <atomic>
#include <fstream>

#include "common/assert.hpp"
#include "common/format.hpp"

namespace numashare::foreign {

namespace fs = std::filesystem;

namespace {
std::atomic<int> g_counter{0};
}  // namespace

ProcfsWriter::ProcfsWriter() {
  root_ = fs::temp_directory_path() /
          ns_format("numashare-proc-{}-{}", ::getpid(),
                    g_counter.fetch_add(1, std::memory_order_relaxed));
  std::error_code ec;
  fs::create_directories(root_, ec);
  NS_REQUIRE(!ec, "failed to create fake procfs root");
}

ProcfsWriter::~ProcfsWriter() {
  std::error_code ec;
  fs::remove_all(root_, ec);
}

void ProcfsWriter::set_cpu_times(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& busy_idle_per_cpu) {
  std::ofstream out(root_ / "stat");
  std::uint64_t busy_sum = 0;
  std::uint64_t idle_sum = 0;
  for (const auto& [busy, idle] : busy_idle_per_cpu) {
    busy_sum += busy;
    idle_sum += idle;
  }
  // user nice system idle iowait irq softirq steal: put all busy in user.
  out << "cpu  " << busy_sum << " 0 0 " << idle_sum << " 0 0 0 0 0 0\n";
  for (std::size_t cpu = 0; cpu < busy_idle_per_cpu.size(); ++cpu) {
    out << "cpu" << cpu << " " << busy_idle_per_cpu[cpu].first << " 0 0 "
        << busy_idle_per_cpu[cpu].second << " 0 0 0 0 0 0\n";
  }
}

void ProcfsWriter::set_process(std::int32_t pid, const std::string& name,
                               std::uint64_t cpu_ticks, std::uint64_t allowed_mask) {
  const fs::path dir = root_ / std::to_string(pid);
  std::error_code ec;
  fs::create_directories(dir, ec);
  NS_REQUIRE(!ec, "failed to create fake process directory");

  const std::uint64_t utime = cpu_ticks / 2;
  const std::uint64_t stime = cpu_ticks - utime;
  {
    // Real field layout; the comm deliberately contains a space and parens
    // to keep the scanner's last-')' parsing honest.
    std::ofstream out(dir / "stat");
    out << pid << " (" << name << ") S 1 1 1 0 -1 4194304 100 0 0 0 " << utime << " "
        << stime << " 0 0 20 0 1 0 100 1000000 100 18446744073709551615\n";
  }
  {
    std::ofstream out(dir / "status");
    out << "Name:\t" << name << "\n";
    out << "State:\tS (sleeping)\n";
    out << "Pid:\t" << pid << "\n";
    if (allowed_mask == 0) {
      out << "Cpus_allowed:\tffffffff,ffffffff\n";
    } else {
      char hex[32];
      std::snprintf(hex, sizeof(hex), "%llx",
                    static_cast<unsigned long long>(allowed_mask));
      out << "Cpus_allowed:\t" << hex << "\n";
    }
  }
}

void ProcfsWriter::remove_process(std::int32_t pid) {
  std::error_code ec;
  fs::remove_all(root_ / std::to_string(pid), ec);
}

}  // namespace numashare::foreign
