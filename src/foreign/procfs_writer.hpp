// Scripted fake procfs trees for tests, the simulator and benchmarks.
//
// The ForeignScanner is pure parsing over a directory tree; this writer
// produces that tree in a temp directory so a test can stage an entire fleet
// of fake processes — names, affinity masks, CPU-time trajectories — and
// step them tick by tick. The files it writes use the exact /proc layouts
// the scanner parses (per-cpu stat lines, <pid>/stat field 14/15,
// <pid>/status Name:/Cpus_allowed:), so the parsing code has no test-only
// branches.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace numashare::foreign {

class ProcfsWriter {
 public:
  /// Creates a fresh temp directory; removed (recursively) on destruction.
  ProcfsWriter();
  ~ProcfsWriter();

  ProcfsWriter(const ProcfsWriter&) = delete;
  ProcfsWriter& operator=(const ProcfsWriter&) = delete;

  std::string root() const { return root_.string(); }

  /// Write <root>/stat with one aggregate line plus one line per cpu.
  /// busy/idle are cumulative clock ticks per cpu.
  void set_cpu_times(const std::vector<std::pair<std::uint64_t, std::uint64_t>>&
                         busy_idle_per_cpu);

  /// Create or update a fake process: <root>/<pid>/stat and /status.
  /// `cpu_ticks` is cumulative utime+stime (split evenly between the two
  /// fields); `allowed_mask` is the Cpus_allowed bitmask (0 = all ff).
  void set_process(std::int32_t pid, const std::string& name, std::uint64_t cpu_ticks,
                   std::uint64_t allowed_mask = 0);

  /// Remove a fake process's directory, as if it exited.
  void remove_process(std::int32_t pid);

 private:
  std::filesystem::path root_;
};

}  // namespace numashare::foreign
