#include "foreign/scanner.hpp"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"

namespace numashare::foreign {

namespace fs = std::filesystem;

namespace {

bool all_digits(const std::string& text) {
  if (text.empty()) return false;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

/// Parse the trailing hex word of a "Cpus_allowed: ff,ffffffff" line into the
/// low 64 bits. Comma-grouped words are concatenated most-significant first.
std::uint64_t parse_allowed_mask(const std::string& text) {
  std::uint64_t mask = 0;
  for (const char c : text) {
    int digit = -1;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else if (c == ',') continue;
    else return 0;  // malformed: treat as unknown, fall back to node-size split
    mask = (mask << 4) | static_cast<std::uint64_t>(digit);
  }
  return mask;
}

}  // namespace

ForeignScanner::ForeignScanner(const topo::Machine& machine, ScannerOptions options)
    : machine_(machine), options_(std::move(options)) {
  NS_REQUIRE(options_.ewma_alpha > 0.0 && options_.ewma_alpha <= 1.0,
             "ewma_alpha must be in (0, 1]");
  if (options_.ticks_per_second != 0) {
    tps_ = options_.ticks_per_second;
  } else {
#if defined(__linux__)
    const long tick = ::sysconf(_SC_CLK_TCK);
    tps_ = tick > 0 ? static_cast<std::uint64_t>(tick) : 100;
#else
    tps_ = 100;
#endif
  }
}

void ForeignScanner::set_participants(const std::unordered_set<std::int32_t>& pids) {
  participants_ = pids;
}

std::vector<ForeignScanner::CpuCounters> ForeignScanner::read_per_cpu() const {
  std::vector<CpuCounters> out;
  std::ifstream in(options_.proc_root + "/stat");
  if (!in) return out;
  std::string line;
  while (std::getline(in, line)) {
    // Per-cpu lines are "cpuN ..."; the aggregate line is "cpu  ..." (no N).
    if (line.rfind("cpu", 0) != 0 || line.size() < 4 || line[3] < '0' || line[3] > '9') {
      continue;
    }
    std::istringstream fields(line);
    std::string label;
    fields >> label;
    const std::string index_text = label.substr(3);
    if (!all_digits(index_text)) continue;
    const auto cpu = static_cast<std::size_t>(std::stoul(index_text));
    if (out.size() <= cpu) out.resize(cpu + 1);
    // user nice system idle iowait irq softirq steal [guest guest_nice]
    std::uint64_t value = 0;
    int index = 0;
    CpuCounters counters;
    while (fields >> value && index < 8) {
      counters.total += value;
      if (index != 3 && index != 4) counters.busy += value;  // not idle/iowait
      ++index;
    }
    if (index >= 4) out[cpu] = counters;
  }
  return out;
}

std::optional<std::uint64_t> ForeignScanner::read_pid_ticks(std::int32_t pid) const {
  std::ifstream in(options_.proc_root + "/" + std::to_string(pid) + "/stat");
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  // comm may contain spaces and parens; fields resume after the LAST ')'.
  const auto close = line.rfind(')');
  if (close == std::string::npos) return std::nullopt;
  std::istringstream fields(line.substr(close + 1));
  // state ppid pgrp session tty tpgid flags minflt cminflt majflt cmajflt
  // utime stime ... -> utime is token 12, stime token 13 after the paren.
  std::string token;
  std::uint64_t utime = 0;
  std::uint64_t stime = 0;
  for (int i = 1; i <= 13 && (fields >> token); ++i) {
    if (i == 12) {
      if (!all_digits(token)) return std::nullopt;
      utime = std::stoull(token);
    } else if (i == 13) {
      if (!all_digits(token)) return std::nullopt;
      stime = std::stoull(token);
      return utime + stime;
    }
  }
  return std::nullopt;
}

bool ForeignScanner::read_pid_status(std::int32_t pid, std::string* name,
                                     std::uint64_t* allowed_mask) const {
  std::ifstream in(options_.proc_root + "/" + std::to_string(pid) + "/status");
  if (!in) return false;
  std::string line;
  bool have_name = false;
  while (std::getline(in, line)) {
    if (line.rfind("Name:", 0) == 0) {
      auto start = line.find_first_not_of(" \t", 5);
      *name = start == std::string::npos ? "" : line.substr(start);
      have_name = true;
    } else if (line.rfind("Cpus_allowed:", 0) == 0) {
      auto start = line.find_first_not_of(" \t", 13);
      if (start != std::string::npos) *allowed_mask = parse_allowed_mask(line.substr(start));
    }
  }
  return have_name;
}

std::vector<double> ForeignScanner::attribute_nodes(double cores,
                                                    std::uint64_t allowed_mask) const {
  std::vector<double> out(machine_.node_count(), 0.0);
  std::vector<double> weight(machine_.node_count(), 0.0);
  double total = 0.0;
  for (topo::NodeId n = 0; n < machine_.node_count(); ++n) {
    double w = 0.0;
    for (const auto core : machine_.node(n).cores) {
      if (allowed_mask == 0 || core >= 64 || ((allowed_mask >> core) & 1u)) w += 1.0;
    }
    weight[n] = w;
    total += w;
  }
  if (total <= 0.0) {
    // Mask admits none of our cores (or the machine is empty): spread by
    // node size so the load is at least priced somewhere.
    for (topo::NodeId n = 0; n < machine_.node_count(); ++n) {
      weight[n] = static_cast<double>(machine_.cores_in_node(n));
      total += weight[n];
    }
  }
  if (total <= 0.0) return out;
  for (topo::NodeId n = 0; n < machine_.node_count(); ++n) {
    out[n] = cores * weight[n] / total;
  }
  return out;
}

std::optional<ScanResult> ForeignScanner::scan(double now_seconds) {
  const auto cpu_now = read_per_cpu();

  // Enumerate candidate pids: numeric directories under the root.
  std::vector<std::int32_t> pids;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.proc_root, ec)) {
    if (ec) break;
    if (!entry.is_directory(ec)) continue;
    const std::string stem = entry.path().filename().string();
    if (!all_digits(stem)) continue;
    const auto pid = static_cast<std::int32_t>(std::stoul(stem));
    if (pid > 0 && participants_.find(pid) == participants_.end()) pids.push_back(pid);
  }

  for (auto& [pid, counters] : prev_pids_) counters.seen_this_scan = false;

  const bool primed = primed_;
  const double elapsed = now_seconds - last_scan_seconds_;

  std::vector<ForeignProcess> processes;
  for (const auto pid : pids) {
    const auto ticks = read_pid_ticks(pid);
    if (!ticks) continue;  // vanished between readdir and open
    auto [it, inserted] = prev_pids_.try_emplace(pid);
    auto& prev = it->second;
    prev.seen_this_scan = true;
    if (inserted || !primed || elapsed <= 0.0 || *ticks < prev.cpu_ticks) {
      // New pid, first scan, or a counter regression (pid reuse): prime only.
      prev.cpu_ticks = *ticks;
      if (inserted) prev.ewma_cores = 0.0;
      continue;
    }
    const double delta_seconds =
        static_cast<double>(*ticks - prev.cpu_ticks) / static_cast<double>(tps_);
    prev.cpu_ticks = *ticks;
    const double raw_cores = delta_seconds / elapsed;
    prev.ewma_cores = options_.ewma_alpha * raw_cores +
                      (1.0 - options_.ewma_alpha) * prev.ewma_cores;
    if (prev.ewma_cores < options_.min_cores) continue;

    ForeignProcess process;
    process.pid = pid;
    if (!read_pid_status(pid, &process.name, &process.allowed_mask)) {
      process.name = "pid-" + std::to_string(pid);
    }
    process.cpu_cores = prev.ewma_cores;
    process.node_cores = attribute_nodes(process.cpu_cores, process.allowed_mask);
    processes.push_back(std::move(process));
  }

  // Forget processes that disappeared — their EWMA must not resurrect them.
  for (auto it = prev_pids_.begin(); it != prev_pids_.end();) {
    if (!it->second.seen_this_scan) it = prev_pids_.erase(it);
    else ++it;
  }

  std::sort(processes.begin(), processes.end(),
            [](const ForeignProcess& a, const ForeignProcess& b) {
              if (a.cpu_cores != b.cpu_cores) return a.cpu_cores > b.cpu_cores;
              return a.pid < b.pid;
            });
  if (processes.size() > options_.max_processes) {
    processes.resize(options_.max_processes);
  }

  // Per-node busy cores from the per-cpu lines (saturating deltas, same
  // regression discipline as agent/os_load).
  std::vector<double> node_busy(machine_.node_count(), 0.0);
  if (primed && elapsed > 0.0) {
    for (const auto& core : machine_.cores()) {
      if (core.id >= cpu_now.size() || core.id >= prev_cpu_.size()) continue;
      const auto& now_c = cpu_now[core.id];
      const auto& prev_c = prev_cpu_[core.id];
      if (now_c.busy < prev_c.busy || now_c.total < prev_c.total) continue;
      const auto busy_delta = now_c.busy - prev_c.busy;
      const auto total_delta = now_c.total - prev_c.total;
      if (total_delta == 0) continue;
      node_busy[core.node] +=
          static_cast<double>(busy_delta) / static_cast<double>(total_delta);
    }
  }

  prev_cpu_ = cpu_now;
  last_scan_seconds_ = now_seconds;
  if (!primed) {
    primed_ = true;
    return std::nullopt;
  }

  ScanResult result;
  result.processes = std::move(processes);
  result.node_busy_cores = std::move(node_busy);
  return result;
}

}  // namespace numashare::foreign
