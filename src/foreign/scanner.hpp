// Foreign-workload detection: find the processes that consume CPU but do
// not link this runtime, and estimate where (which NUMA nodes) they run.
//
// The paper's arbiter only commands cooperating applications; everything
// else on the machine is invisible to it and silently distorts the model's
// predictions. The scanner closes that gap by extending the agent's OS
// polling (agent/os_load) from one machine-wide utilization number to
// per-CPU and per-process granularity:
//
//   <root>/stat            per-cpu "cpuN ..." lines -> busy cores per node
//   <root>/<pid>/stat      utime/stime deltas       -> cores consumed by pid
//   <root>/<pid>/status    Name: / Cpus_allowed:    -> identity + placement
//
// The procfs root is a constructor parameter so tests and the simulator can
// script whole fleets of fake processes through a temp directory
// (foreign/procfs_writer) — the parsing and attribution logic is identical
// against the real /proc.
//
// Node attribution: a pid's measured CPU share is split across NUMA nodes
// proportionally to how many of each node's cores its Cpus_allowed mask
// admits. A process affined to one node is charged entirely there; an
// unrestricted process is spread by node size. This is an estimate (the
// kernel does not export per-node runtime cheaply), but it is exactly the
// quantity the fence (foreign/fence) later makes true by construction.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "topology/machine.hpp"

namespace numashare::foreign {

/// One non-participant process as the scanner sees it after a scan.
struct ForeignProcess {
  std::int32_t pid = 0;
  std::string name;                 // /proc/<pid>/status Name: (comm)
  double cpu_cores = 0.0;           // EWMA-smoothed cores consumed
  std::vector<double> node_cores;   // cpu_cores split per NUMA node
  std::uint64_t allowed_mask = 0;   // low 64 bits of Cpus_allowed (0 = unknown)
};

struct ScannerOptions {
  /// Procfs root. Tests point this at a scripted temp tree.
  std::string proc_root = "/proc";
  /// Processes consuming fewer cores than this are dropped from results —
  /// shells, monitors and the daemon itself should not perturb the model.
  double min_cores = 0.05;
  /// EWMA smoothing factor for per-process CPU shares (1 = raw last delta).
  double ewma_alpha = 0.5;
  /// Hard cap on tracked foreign processes, largest consumers kept first.
  std::uint32_t max_processes = 32;
  /// Clock ticks per second for utime/stime (0 = sysconf(_SC_CLK_TCK)).
  std::uint64_t ticks_per_second = 0;
};

/// Result of one scan pass.
struct ScanResult {
  /// Foreign processes above the min_cores floor, largest first.
  std::vector<ForeignProcess> processes;
  /// Measured busy cores per NUMA node from the per-cpu stat lines. This
  /// includes participants and is the scanner's ground truth for "how hot is
  /// this node" independent of per-process attribution.
  std::vector<double> node_busy_cores;
};

class ForeignScanner {
 public:
  ForeignScanner(const topo::Machine& machine, ScannerOptions options = {});

  /// Mark pids whose CPU time must not be classified as foreign: the daemon
  /// itself plus every registered client. Replaces the previous set.
  void set_participants(const std::unordered_set<std::int32_t>& pids);

  /// Take one sample at `now_seconds` (monotonic, caller-supplied so tests
  /// and the simulator control time). The first call only primes counters
  /// and returns nullopt; later calls return deltas over the elapsed time.
  std::optional<ScanResult> scan(double now_seconds);

  const ScannerOptions& options() const { return options_; }

 private:
  struct CpuCounters {
    std::uint64_t busy = 0;
    std::uint64_t total = 0;
  };
  struct PidCounters {
    std::uint64_t cpu_ticks = 0;   // utime + stime at last scan
    double ewma_cores = 0.0;
    bool seen_this_scan = false;
  };

  std::vector<CpuCounters> read_per_cpu() const;
  /// Parse <root>/<pid>/stat; returns utime+stime, or nullopt when the
  /// process vanished mid-scan (always possible, never an error).
  std::optional<std::uint64_t> read_pid_ticks(std::int32_t pid) const;
  bool read_pid_status(std::int32_t pid, std::string* name,
                       std::uint64_t* allowed_mask) const;
  std::vector<double> attribute_nodes(double cores, std::uint64_t allowed_mask) const;

  const topo::Machine& machine_;
  ScannerOptions options_;
  std::uint64_t tps_ = 100;
  std::unordered_set<std::int32_t> participants_;
  bool primed_ = false;
  double last_scan_seconds_ = 0.0;
  std::vector<CpuCounters> prev_cpu_;
  std::unordered_map<std::int32_t, PidCounters> prev_pids_;
};

}  // namespace numashare::foreign
