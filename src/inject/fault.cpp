#include "inject/fault.hpp"

#include <unistd.h>

#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include "common/format.hpp"

namespace numashare::inject {

namespace {

/// A held message awaiting replay at a *.delay site.
struct HeldMessage {
  std::string site;
  std::vector<unsigned char> bytes;
  std::uint64_t remaining_ticks = 0;
};

/// Mutable per-rule match/fire counters, parallel to the plan's rules.
struct RuleState {
  std::uint64_t matches = 0;
  std::uint64_t fired = 0;
};

struct GlobalState {
  std::mutex mutex;
  FaultPlan plan;
  std::vector<RuleState> rule_states;
  std::vector<std::pair<std::string, std::uint64_t>> fire_counts;
  std::deque<HeldMessage> held;
};

GlobalState& state() {
  static GlobalState instance;
  return instance;
}

void count_fire_locked(GlobalState& g, const char* site) {
  for (auto& [name, n] : g.fire_counts) {
    if (name == site) {
      ++n;
      return;
    }
  }
  g.fire_counts.emplace_back(site, 1);
}

bool rule_matches(const FaultRule& rule, const char* site, std::uint64_t seq,
                  const char* where) {
  if (rule.site != site) return false;
  if (!rule.where.empty() && (where == nullptr || rule.where != where)) return false;
  if (rule.seq != kAnySeq && rule.seq != seq) return false;
  return true;
}

/// Core match-and-consume. Returns the index of the firing rule, or -1.
int fire_locked(GlobalState& g, const char* site, std::uint64_t seq, const char* where) {
  for (std::size_t i = 0; i < g.plan.rules.size(); ++i) {
    const auto& rule = g.plan.rules[i];
    if (!rule_matches(rule, site, seq, where)) continue;
    auto& rs = g.rule_states[i];
    ++rs.matches;
    if (rs.matches <= rule.after) continue;
    if (rule.count != 0 && rs.fired >= rule.count) continue;
    ++rs.fired;
    count_fire_locked(g, site);
    return static_cast<int>(i);
  }
  return -1;
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool valid_name(const std::string& text) {
  if (text.empty()) return false;
  for (const char c : text) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '.' || c == '_';
    if (!ok) return false;
  }
  return true;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto end = text.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

}  // namespace

std::optional<FaultPlan> parse_plan(const std::string& spec, std::string* error) {
  const auto fail = [&](const std::string& what) -> std::optional<FaultPlan> {
    if (error) *error = what;
    return std::nullopt;
  };
  FaultPlan plan;
  plan.spec = spec;
  for (const auto& clause : split(spec, ';')) {
    if (clause.empty()) continue;  // tolerate "a;;b" and trailing ';'
    FaultRule rule;
    const auto at = clause.find('@');
    rule.site = clause.substr(0, at);
    if (!valid_name(rule.site)) {
      return fail(ns_format("bad site name '{}' in clause '{}'", rule.site, clause));
    }
    if (at != std::string::npos) {
      for (const auto& param : split(clause.substr(at + 1), ',')) {
        const auto eq = param.find('=');
        const std::string key = param.substr(0, eq);
        const std::string value = eq == std::string::npos ? "" : param.substr(eq + 1);
        std::uint64_t number = 0;
        if (key == "seq" || key == "count" || key == "after" || key == "us" ||
            key == "ms" || key == "ticks" || key == "exit" || key == "pct") {
          if (!parse_u64(value, &number)) {
            return fail(ns_format("parameter '{}' needs a number in clause '{}'", key, clause));
          }
        }
        if (key == "seq") rule.seq = number;
        else if (key == "count") rule.count = number;
        else if (key == "after") rule.after = number;
        else if (key == "us") rule.delay_us = static_cast<std::int64_t>(number);
        else if (key == "ms") rule.delay_us = static_cast<std::int64_t>(number) * 1000;
        else if (key == "ticks") rule.ticks = number;
        else if (key == "exit") rule.exit_code = static_cast<int>(number);
        else if (key == "pct") rule.pct = number;
        else if (key == "site" || key == "state") {
          if (!valid_name(value)) {
            return fail(ns_format("parameter '{}' needs a name in clause '{}'", key, clause));
          }
          rule.where = value;
        } else {
          return fail(ns_format("unknown parameter '{}' in clause '{}'", key, clause));
        }
      }
    }
    plan.rules.push_back(std::move(rule));
  }
  return plan;
}

void install_plan(const FaultPlan& plan) {
  auto& g = state();
  std::lock_guard lock(g.mutex);
  g.plan = plan;
  g.rule_states.assign(g.plan.rules.size(), RuleState{});
  g.fire_counts.clear();
  g.held.clear();
}

bool install_spec(const std::string& spec, std::string* error) {
  const auto plan = parse_plan(spec, error);
  if (!plan) return false;
  install_plan(*plan);
  return true;
}

void clear_plan() { install_plan(FaultPlan{}); }

bool plan_active() {
  auto& g = state();
  std::lock_guard lock(g.mutex);
  return !g.plan.rules.empty();
}

std::string active_spec() {
  auto& g = state();
  std::lock_guard lock(g.mutex);
  return g.plan.spec;
}

std::uint64_t fires(const std::string& site) {
  auto& g = state();
  std::lock_guard lock(g.mutex);
  for (const auto& [name, n] : g.fire_counts) {
    if (name == site) return n;
  }
  return 0;
}

std::uint64_t total_fires() {
  auto& g = state();
  std::lock_guard lock(g.mutex);
  std::uint64_t total = 0;
  for (const auto& [name, n] : g.fire_counts) total += n;
  return total;
}

bool fire(const char* site, std::uint64_t seq, const char* where) {
  auto& g = state();
  std::lock_guard lock(g.mutex);
  if (g.plan.rules.empty()) return false;
  return fire_locked(g, site, seq, where) >= 0;
}

bool fire_pause(const char* site, const char* where) {
  std::int64_t delay_us = 0;
  {
    auto& g = state();
    std::lock_guard lock(g.mutex);
    if (g.plan.rules.empty()) return false;
    const int index = fire_locked(g, site, kAnySeq, where);
    if (index < 0) return false;
    delay_us = g.plan.rules[static_cast<std::size_t>(index)].delay_us;
  }
  // Sleep outside the lock: other threads' hooks must stay live while this
  // one stalls (that is the whole point of a pause fault).
  if (delay_us > 0) std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  return true;
}

bool fire_value(const char* site, std::uint64_t* pct, const char* where) {
  auto& g = state();
  std::lock_guard lock(g.mutex);
  if (g.plan.rules.empty()) return false;
  const int index = fire_locked(g, site, kAnySeq, where);
  if (index < 0) return false;
  if (pct) *pct = g.plan.rules[static_cast<std::size_t>(index)].pct;
  return true;
}

void fire_die(const char* site, const char* where, int default_exit_code) {
  int code = -1;
  {
    auto& g = state();
    std::lock_guard lock(g.mutex);
    if (g.plan.rules.empty()) return;
    const int index = fire_locked(g, site, kAnySeq, where);
    if (index < 0) return;
    const int override_code = g.plan.rules[static_cast<std::size_t>(index)].exit_code;
    code = override_code >= 0 ? override_code : default_exit_code;
  }
  // _exit, not exit: a simulated crash must not run destructors (a real
  // SIGKILL would not), so shm segments and slots are left exactly as a
  // genuine death would leave them.
  _exit(code);
}

bool hold(const char* site, std::uint64_t seq, const void* bytes, std::size_t len) {
  auto& g = state();
  std::lock_guard lock(g.mutex);
  if (g.plan.rules.empty()) return false;
  const int index = fire_locked(g, site, seq, nullptr);
  if (index < 0) return false;
  HeldMessage held;
  held.site = site;
  held.bytes.assign(static_cast<const unsigned char*>(bytes),
                    static_cast<const unsigned char*>(bytes) + len);
  held.remaining_ticks = g.plan.rules[static_cast<std::size_t>(index)].ticks;
  g.held.push_back(std::move(held));
  return true;
}

void delay_tick(const char* site) {
  auto& g = state();
  std::lock_guard lock(g.mutex);
  for (auto& held : g.held) {
    if (held.site == site && held.remaining_ticks > 0) --held.remaining_ticks;
  }
}

bool take_ready(const char* site, void* out, std::size_t len) {
  auto& g = state();
  std::lock_guard lock(g.mutex);
  for (auto it = g.held.begin(); it != g.held.end(); ++it) {
    if (it->site != site || it->remaining_ticks > 0) continue;
    if (it->bytes.size() != len) continue;  // size mismatch: not ours to pop
    std::memcpy(out, it->bytes.data(), len);
    g.held.erase(it);
    return true;
  }
  return false;
}

}  // namespace numashare::inject
