// Deterministic fault injection for the daemon/agent coordination path.
//
// The paper's architecture only works if the arbiter is strictly advisory:
// applications must degrade, never wedge, when the agent dies, stalls, or
// floods the rings. The happy-path tests cannot reach most failure
// interleavings (a client dying between two slot-claim CAS states, a
// command dropped mid-reallocation, a heartbeat stalling just under the
// eviction threshold) — this subsystem makes them reachable on purpose and
// on schedule.
//
// A FaultPlan is a list of rules parsed from a compact spec string:
//
//   "shm.cmd.drop@seq=7;client.die@site=post_claim"
//
// Each rule names a *site* (a dotted path baked into the coordination code)
// plus match/behaviour parameters. The plan is process-global: tests
// install it (in the parent before forking, or in a forked child for
// client-only faults) and the hooks consult it.
//
// Hooks compile to nothing unless NUMASHARE_INJECT is defined. Production
// libraries (ns_agent, ns_daemon) are built without it; the *_inject twin
// libraries link ns_inject, which defines NUMASHARE_INJECT publicly, and
// are what tests/inject links. The hot path of a production binary
// therefore carries zero overhead — not even a branch.
//
// Site catalog and grammar: docs/INJECT.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace numashare::inject {

/// Sentinel: rule matches any message sequence number.
inline constexpr std::uint64_t kAnySeq = ~0ull;

struct FaultRule {
  std::string site;   ///< dotted site path, e.g. "shm.cmd.drop"
  std::string where;  ///< named sub-site ("post_claim", "claiming"); empty = any
  std::uint64_t seq = kAnySeq;  ///< match one message seq (kAnySeq = all)
  std::uint64_t count = 1;      ///< fire at most this many times (0 = unlimited)
  std::uint64_t after = 0;      ///< skip the first N matching hits
  std::int64_t delay_us = 0;    ///< sleep duration for *.pause sites
  std::uint64_t ticks = 1;      ///< ops to hold a message for *.delay sites
  int exit_code = -1;           ///< _exit code override for *.die sites (< 0 = site default)
  std::uint64_t pct = 100;      ///< magnitude for value sites (foreign.balloon@pct=N)
};

struct FaultPlan {
  std::string spec;  ///< the original text, for failure reproduction messages
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }
};

/// Parse a plan spec: clause (';' clause)*, clause = site ['@' k[=v] (',' k[=v])*].
/// Keys: seq, count, after, us, ticks, exit, pct (numeric); site / state (name).
/// Returns nullopt and sets `error` on malformed input.
std::optional<FaultPlan> parse_plan(const std::string& spec, std::string* error = nullptr);

/// Install (replace) the process-global plan. Rule counters reset.
void install_plan(const FaultPlan& plan);
/// parse_plan + install_plan in one step.
bool install_spec(const std::string& spec, std::string* error = nullptr);
/// Remove the plan; every hook goes quiet.
void clear_plan();
bool plan_active();
/// Spec text of the installed plan ("" when none).
std::string active_spec();

/// Cumulative firings of one site since the last install/clear.
std::uint64_t fires(const std::string& site);
/// Cumulative firings across all sites since the last install/clear.
std::uint64_t total_fires();

// ---- hook queries (wrapped by the NS_FAULT_* macros below) ---------------

/// True when a rule for `site` (matching `where`/`seq`, past its `after`
/// skip, within its `count` budget) fires now. A true return consumes one
/// firing. Thread-safe.
bool fire(const char* site, std::uint64_t seq = kAnySeq, const char* where = nullptr);

/// fire(), and when firing, sleep the rule's delay_us. Returns the firing.
bool fire_pause(const char* site, const char* where = nullptr);

/// fire(), and when firing, _exit() with the rule's exit code (or
/// `default_exit_code` when the rule does not override it).
void fire_die(const char* site, const char* where, int default_exit_code);

/// fire(), and when firing, write the rule's `pct` magnitude into *pct.
/// Returns the firing; *pct is untouched when the site stays quiet. Used by
/// value sites (foreign.balloon@pct=N) where the rule carries how big the
/// injected effect should be, not just whether it happens.
bool fire_value(const char* site, std::uint64_t* pct, const char* where = nullptr);

/// Message hold for *.delay sites: when the rule fires, copy `len` bytes
/// into the pending store and return true (the caller suppresses the send).
bool hold(const char* site, std::uint64_t seq, const void* bytes, std::size_t len);
/// One transport op elapsed at `site`: age every held message by one tick.
void delay_tick(const char* site);
/// Pop one aged-out held message for `site` into `out` (exactly `len`
/// bytes, which must match the held size). False when none is ready.
bool take_ready(const char* site, void* out, std::size_t len);

}  // namespace numashare::inject

// The hook macros. With NUMASHARE_INJECT undefined they expand to inert
// constants — the condition folds away and ns_inject is never referenced,
// so production builds neither branch nor link on the hooks. Blocks that
// need locals (message hold/replay) are gated with #if NS_FAULT_ENABLED.
#if defined(NUMASHARE_INJECT)
#define NS_FAULT_ENABLED 1
#define NS_FAULT(site, seq) (::numashare::inject::fire((site), (seq)))
#define NS_FAULT_AT(site) (::numashare::inject::fire((site)))
#define NS_FAULT_PAUSE(site, where) ((void)::numashare::inject::fire_pause((site), (where)))
#define NS_FAULT_DIE(site, where, code) (::numashare::inject::fire_die((site), (where), (code)))
#define NS_FAULT_VALUE(site, pct_out) (::numashare::inject::fire_value((site), (pct_out)))
#else
#define NS_FAULT_ENABLED 0
#define NS_FAULT(site, seq) false
#define NS_FAULT_AT(site) false
#define NS_FAULT_PAUSE(site, where) ((void)0)
#define NS_FAULT_DIE(site, where, code) ((void)0)
#define NS_FAULT_VALUE(site, pct_out) false
#endif
