#include "obs/histogram.hpp"

#include <algorithm>

namespace numashare::obs {

void LatencyHistogram::snapshot_into(HistogramSnapshot& out) const {
  for (std::uint32_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t c = counts_[i].load(std::memory_order_relaxed);
    out.counts[i] += c;
    out.count += c;
  }
  out.sum_ns += sum_ns_.load(std::memory_order_relaxed);
  out.max_ns = std::max(out.max_ns, max_ns_.load(std::memory_order_relaxed));
}

void LatencyHistogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  count += other.count;
  sum_ns += other.sum_ns;
  max_ns = std::max(max_ns, other.max_ns);
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target event, 1-based; p=100 asks for the last event.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(count) + 0.5));
  std::uint64_t seen = 0;
  for (std::uint32_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
    seen += counts[i];
    if (seen >= rank) {
      const std::uint64_t ceil = LatencyHistogram::bucket_ceil(i);
      return static_cast<double>(std::min(ceil, max_ns));
    }
  }
  return static_cast<double>(max_ns);
}

const char* to_string(LatencyKind kind) {
  switch (kind) {
    case LatencyKind::kHandoff: return "handoff";
    case LatencyKind::kSteal: return "steal";
    case LatencyKind::kWake: return "wake";
    case LatencyKind::kEnact: return "enact_lag";
  }
  return "unknown";
}

}  // namespace numashare::obs
