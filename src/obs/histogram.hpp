// Zero-allocation latency observability: HDR-style log-linear histograms.
//
// The runtime's reallocation loop perturbs exactly the events that means
// hide — a handoff that waits out a park timeout, a steal round stretched by
// a control flip, an enactment that straggles behind its epoch. These
// histograms make the tails first-class: every bucket count is a relaxed
// atomic in a fixed-footprint array, so the record path is wait-free, does
// no heap allocation ever, and the whole instance can live inside a
// cache-line-aligned per-worker shard (the PR 3 sharded-Metrics discipline:
// owners increment their own lines, aggregation happens lazily on the
// consumer's clock).
//
// Bucketing is log-linear (the HdrHistogram family): values below
// kSubBucketCount nanoseconds get exact 1 ns buckets; above that, each
// doubling of magnitude is split into kHalf linear sub-buckets, so the
// relative width of any bucket is bounded by 1/kHalf (3.125%). Values past
// the top tier saturate into the last bucket instead of overflowing —
// `max_ns` still records the exact maximum seen.
//
// Concurrency contract: record() may race record() and snapshot_into() on
// any threads. Counts are monotone per bucket, so a concurrent snapshot sees
// some valid prefix of the recorded history (never torn counts, never a sum
// above what was recorded). Exact totals require quiescence, same as
// rt::Metrics.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <vector>

namespace numashare::obs {

/// Monotonic nanoseconds since an arbitrary epoch (CLOCK_MONOTONIC's boot
/// origin on Linux), comparable across threads and — on one machine —
/// across processes, which is what lets a daemon-stamped command be timed
/// against a client-side enactment.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct HistogramSnapshot;

class alignas(64) LatencyHistogram {
 public:
  /// 2^kSubBucketBits exact 1 ns buckets, then kHalf sub-buckets per
  /// doubling: relative bucket width <= 1/kHalf = 3.125%.
  static constexpr std::uint32_t kSubBucketBits = 6;
  static constexpr std::uint32_t kSubBucketCount = 1u << kSubBucketBits;  // 64
  static constexpr std::uint32_t kHalf = kSubBucketCount / 2;             // 32
  /// Doubling tiers past the linear range. Tier kTiers tops out at
  /// 63 * 2^30 ns (~68 s); anything slower saturates into the last bucket.
  static constexpr std::uint32_t kTiers = 30;
  static constexpr std::uint32_t kBucketCount = kSubBucketCount + kTiers * kHalf;  // 1024

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Bucket for a nanosecond value; the last bucket absorbs everything past
  /// the top tier (saturation, not overflow).
  static constexpr std::uint32_t bucket_index(std::uint64_t ns) {
    if (ns < kSubBucketCount) return static_cast<std::uint32_t>(ns);
    const std::uint32_t exp =
        static_cast<std::uint32_t>(std::bit_width(ns)) - kSubBucketBits;
    if (exp > kTiers) return kBucketCount - 1;
    return kSubBucketCount + (exp - 1) * kHalf +
           static_cast<std::uint32_t>((ns >> exp) - kHalf);
  }

  /// Smallest value mapping to `index`.
  static constexpr std::uint64_t bucket_floor(std::uint32_t index) {
    if (index < kSubBucketCount) return index;
    const std::uint32_t tier = (index - kSubBucketCount) / kHalf;  // exp - 1
    const std::uint32_t sub = (index - kSubBucketCount) % kHalf;
    return static_cast<std::uint64_t>(kHalf + sub) << (tier + 1);
  }

  /// Largest value mapping to `index` (inclusive). The saturation bucket is
  /// unbounded; percentile queries clamp it with the recorded max.
  static constexpr std::uint64_t bucket_ceil(std::uint32_t index) {
    if (index < kSubBucketCount) return index;
    if (index == kBucketCount - 1) return ~0ull;
    const std::uint32_t tier = (index - kSubBucketCount) / kHalf;
    return bucket_floor(index) + ((1ull << (tier + 1)) - 1);
  }

  /// Wait-free, allocation-free; any thread.
  void record(std::uint64_t ns) {
    counts_[bucket_index(ns)].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
    while (ns > seen &&
           !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
    }
  }

  /// Additive merge into `out` (relaxed loads; see the class contract).
  /// Allocation-free: `out` is caller-owned fixed storage.
  void snapshot_into(HistogramSnapshot& out) const;

  /// Recorded events so far (relaxed sum over buckets).
  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
    return total;
  }

  std::uint64_t max_ns() const { return max_ns_.load(std::memory_order_relaxed); }

  /// Zero every bucket (NOT safe against concurrent record; quiesce first).
  void reset();

 private:
  std::atomic<std::uint64_t> counts_[kBucketCount] = {};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// Point-in-time, plain-value copy; mergeable (associative + commutative,
/// bucketwise addition) so per-worker shards, per-runtime aggregates and
/// cross-run unions all compose through the same type.
struct HistogramSnapshot {
  std::array<std::uint64_t, LatencyHistogram::kBucketCount> counts{};
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t max_ns = 0;

  void merge(const HistogramSnapshot& other);

  /// Value at percentile p (0..100], as the conservative upper bound of the
  /// owning bucket, clamped to the recorded max — so p50 <= p99 <= p999 <=
  /// max always holds. 0 when empty.
  double percentile(double p) const;

  double mean_ns() const {
    return count == 0 ? 0.0 : static_cast<double>(sum_ns) / static_cast<double>(count);
  }
};

/// Which latency a runtime records; indexes into a LatencySet shard.
enum class LatencyKind : std::uint8_t {
  kHandoff = 0,  // task ready -> task body running (sampled)
  kSteal = 1,    // empty-handed local pop -> successful steal/poach
  kWake = 2,     // unpark request -> parked worker resumed
  kEnact = 3,    // command epoch issued -> enactment acked
};
inline constexpr std::uint32_t kLatencyKinds = 4;

/// Per-worker histogram shards, one block of kLatencyKinds histograms per
/// shard, cache-line aligned so neighbouring workers never share a line.
/// Allocation happens once, at construction; record paths are index + record.
class LatencySet {
 public:
  explicit LatencySet(std::uint32_t shard_count) : shards_(shard_count) {}

  LatencySet(const LatencySet&) = delete;
  LatencySet& operator=(const LatencySet&) = delete;

  LatencyHistogram& hist(std::uint32_t shard, LatencyKind kind) {
    return shards_[shard].hist[static_cast<std::uint32_t>(kind)];
  }
  const LatencyHistogram& hist(std::uint32_t shard, LatencyKind kind) const {
    return shards_[shard].hist[static_cast<std::uint32_t>(kind)];
  }
  std::uint32_t shard_count() const { return static_cast<std::uint32_t>(shards_.size()); }

  /// Merge every shard's `kind` histogram into `out` (lazy aggregation, the
  /// consumer's clock — the record path never pays for it).
  void aggregate_into(LatencyKind kind, HistogramSnapshot& out) const {
    for (const auto& shard : shards_) {
      shard.hist[static_cast<std::uint32_t>(kind)].snapshot_into(out);
    }
  }

 private:
  struct alignas(64) Shard {
    LatencyHistogram hist[kLatencyKinds];
  };
  std::vector<Shard> shards_;
};

const char* to_string(LatencyKind kind);

}  // namespace numashare::obs
