#include "obs/watchdog.hpp"

#include <chrono>

#include "trace/trace.hpp"

#if defined(__linux__)
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace numashare::obs {

namespace {

std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void lower_current_thread_priority() {
#if defined(__linux__)
  // Best-effort nice +19: the watchdog must never compete with the workers
  // it observes. Failure (e.g. already niced by a parent) is fine.
  const pid_t tid = static_cast<pid_t>(::syscall(SYS_gettid));
  (void)::setpriority(PRIO_PROCESS, static_cast<id_t>(tid), 19);
#endif
}

}  // namespace

Watchdog::Watchdog(std::uint32_t worker_count, WatchdogOptions options, Source source)
    : options_(options),
      source_(std::move(source)),
      workers_(worker_count),
      scratch_(worker_count) {}

Watchdog::~Watchdog() { stop(); }

std::uint32_t Watchdog::poll(std::int64_t now_us) {
  scratch_.assign(scratch_.size(), WatchdogSample{});
  source_(scratch_);

  std::uint32_t stalled = 0;
  for (std::uint32_t i = 0; i < workers_.size() && i < scratch_.size(); ++i) {
    WorkerState& w = workers_[i];
    const WatchdogSample& s = scratch_[i];

    const bool moved = !w.seen || s.heartbeat != w.last_heartbeat;
    if (moved) {
      w.last_heartbeat = s.heartbeat;
      w.last_change_us = now_us;
      w.seen = true;
    }

    // A deliberately-parked worker (policy block) is supposed to be silent:
    // reset its clock so it cannot trip the deadline, and clear any stall
    // carried over from before the command landed.
    const bool now_stalled = s.commanded_online && !moved &&
                             (now_us - w.last_change_us) >= options_.deadline_us;
    if (!s.commanded_online) w.last_change_us = now_us;

    const bool was_stalled = w.stalled.load(std::memory_order_relaxed);
    if (now_stalled && !was_stalled) {
      w.stalled.store(true, std::memory_order_relaxed);
      stall_events_.fetch_add(1, std::memory_order_relaxed);
      if (options_.tracer != nullptr) {
        options_.tracer->instant("worker-stall", "watchdog",
                                 options_.trace_lane_base + i);
      }
    } else if (!now_stalled && was_stalled) {
      w.stalled.store(false, std::memory_order_relaxed);
      if (options_.tracer != nullptr) {
        options_.tracer->instant("worker-recover", "watchdog",
                                 options_.trace_lane_base + i);
      }
    }
    if (now_stalled) ++stalled;
  }

  stalled_count_.store(stalled, std::memory_order_relaxed);
  return stalled;
}

void Watchdog::start() {
  if (options_.deadline_us <= 0 || running_.exchange(true)) return;
  thread_ = std::thread([this] { monitor_main(); });
}

void Watchdog::stop() {
  if (!running_.exchange(false)) return;
  parker_.unpark();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::monitor_main() {
  set_current_thread_name("ns-watchdog");
  lower_current_thread_priority();
  while (running_.load(std::memory_order_acquire)) {
    poll(steady_now_us());
    parker_.park_for_us(options_.poll_period_us);
  }
}

}  // namespace numashare::obs
