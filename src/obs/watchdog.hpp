// Scheduler-latency watchdog: is the OS actually running the workers we
// commanded online?
//
// The daemon's compliance ladder (healthy -> laggard -> quarantined ->
// evicted, PR 4/5) punishes apps whose enacted_epoch trails their commanded
// epoch. But "not enacting" has two very different causes: the app is
// ignoring commands (a protocol bug, punish it), or the OS simply is not
// scheduling the app's threads (a co-tenancy problem the daemon itself may
// have caused — punishing it makes things worse). The watchdog separates the
// two from inside the app: each worker bumps a heartbeat every scheduling
// loop iteration (including idle park timeouts), and a low-priority monitor
// thread checks that every commanded-online worker's heartbeat moved within
// a deadline. A worker that is commanded online but silent past the deadline
// is *stalled* — the OS isn't running it, because the loop bumps the beat on
// every pass regardless of whether there is work. Stall entry/exit emit
// trace::Instant events on the worker's lane and an aggregate stalled count
// is exported for the telemetry path, so the daemon can see "this app is
// behind because it is starved, not defiant" and hold escalation.
//
// The monitor runs at low priority (nice +19 on Linux) deliberately: if the
// machine is so oversubscribed that even the watchdog cannot run, nothing is
// reported — which is the correct degraded behaviour, since a stall report
// that only fires when the system has spare cycles never lies about the
// workers it accuses.
//
// poll() is separated from the thread loop and takes explicit virtual time,
// so tests step it deterministically without real sleeps (the same
// virtual-time discipline as the daemon's compliance tests).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/threading.hpp"

namespace numashare::trace {
class Tracer;
}

namespace numashare::obs {

struct WatchdogOptions {
  /// A commanded-online worker whose heartbeat hasn't moved for this long is
  /// declared stalled. 0 disables the watchdog entirely.
  std::int64_t deadline_us = 100'000;
  /// Background poll cadence (real-time mode only; tests drive poll()).
  std::int64_t poll_period_us = 20'000;
  /// Optional: stall/recover instants are emitted here, one lane per worker.
  trace::Tracer* tracer = nullptr;
  /// Lane offset added to the worker index for trace events (so watchdog
  /// lanes line up with the runtime's worker lanes).
  std::uint32_t trace_lane_base = 0;
};

/// One monitored worker's state, as sampled by the owner runtime.
struct WatchdogSample {
  /// Monotone per-worker counter; any change means the OS ran the worker.
  std::uint64_t heartbeat = 0;
  /// False for workers the policy has deliberately parked (kCoreSet /
  /// kTotalCount blocks): a blocked worker is *supposed* to be silent, so it
  /// can never be stalled. This is exactly the ignoring-vs-starved split.
  bool commanded_online = true;
};

class Watchdog {
 public:
  /// `source` fills one WatchdogSample per worker; it is called from the
  /// monitor thread (or from poll() in tests) and must be thread-safe.
  using Source = std::function<void(std::vector<WatchdogSample>&)>;

  Watchdog(std::uint32_t worker_count, WatchdogOptions options, Source source);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Evaluate one deadline check at virtual time `now_us`. Deterministic:
  /// no clock reads, no sleeps. Returns the number of currently stalled
  /// workers. Not re-entrant (the monitor thread is the only caller in
  /// production; tests call it single-threaded).
  std::uint32_t poll(std::int64_t now_us);

  /// Start/stop the real-time monitor thread. start() is a no-op when the
  /// deadline is 0.
  void start();
  void stop();

  /// Currently stalled workers (atomic; readable from any thread — this is
  /// what the telemetry adapter exports).
  std::uint32_t stalled_count() const {
    return stalled_count_.load(std::memory_order_relaxed);
  }
  /// Total stall episodes detected since construction.
  std::uint64_t stall_events() const {
    return stall_events_.load(std::memory_order_relaxed);
  }
  bool is_stalled(std::uint32_t worker) const {
    return workers_[worker].stalled.load(std::memory_order_relaxed);
  }
  std::uint32_t worker_count() const {
    return static_cast<std::uint32_t>(workers_.size());
  }

 private:
  struct WorkerState {
    std::uint64_t last_heartbeat = 0;
    std::int64_t last_change_us = 0;
    bool seen = false;  // first poll initializes, never accuses
    std::atomic<bool> stalled{false};
  };

  void monitor_main();

  WatchdogOptions options_;
  Source source_;
  std::vector<WorkerState> workers_;
  std::vector<WatchdogSample> scratch_;  // sized once; poll never allocates
  std::atomic<std::uint32_t> stalled_count_{0};
  std::atomic<std::uint64_t> stall_events_{0};
  std::atomic<bool> running_{false};
  Parker parker_;
  std::thread thread_;
};

}  // namespace numashare::obs
