#include "runtime/arena.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace numashare::rt {

Arena::Arena(Runtime& runtime, std::uint32_t max_concurrency)
    : runtime_(runtime), max_concurrency_(max_concurrency) {
  if (max_concurrency_ > 0) runtime_.set_total_thread_target(max_concurrency_);
}

void Arena::set_max_concurrency(std::uint32_t max_concurrency) {
  max_concurrency_ = max_concurrency;
  if (max_concurrency_ == 0) {
    runtime_.clear_thread_controls();
  } else {
    runtime_.set_total_thread_target(max_concurrency_);
  }
}

void Arena::execute(TaskFn fn) {
  auto done = runtime_.spawn(std::move(fn));
  runtime_.wait_and_assist(done);
}

void Arena::parallel_for(std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
                         const std::function<void(std::uint64_t, std::uint64_t)>& body) {
  NS_REQUIRE(grain > 0, "grain must be positive");
  if (begin >= end) return;
  const std::uint64_t chunks = (end - begin + grain - 1) / grain;
  auto latch = runtime_.create_latch(static_cast<std::uint32_t>(chunks));
  for (std::uint64_t c = 0; c < chunks; ++c) {
    const std::uint64_t lo = begin + c * grain;
    const std::uint64_t hi = std::min(end, lo + grain);
    runtime_.spawn([latch, lo, hi, &body](TaskContext&) {
      body(lo, hi);
      latch->count_down();
    });
  }
  runtime_.wait_and_assist(latch);
}

NodeArenaSet::NodeArenaSet(Runtime& runtime)
    : runtime_(runtime), sizes_(runtime.machine().node_count()) {
  for (topo::NodeId n = 0; n < runtime_.machine().node_count(); ++n) {
    sizes_[n] = runtime_.machine().cores_in_node(n);
  }
}

std::uint32_t NodeArenaSet::node_count() const {
  return runtime_.machine().node_count();
}

std::uint32_t NodeArenaSet::size(topo::NodeId node) const {
  NS_REQUIRE(node < sizes_.size(), "node out of range");
  return sizes_[node];
}

void NodeArenaSet::resize(const std::vector<std::uint32_t>& sizes) {
  // Validate against the machine's node count, not sizes_'s current length:
  // the two start equal, but only node_count() is the authoritative shape —
  // a mismatched vector must die here, not mis-index the runtime's targets.
  NS_REQUIRE(sizes.size() == node_count(), "one size per node");
  sizes_ = sizes;
  runtime_.set_node_thread_targets(sizes_);
}

EventPtr NodeArenaSet::submit(topo::NodeId node, TaskFn fn) {
  NS_REQUIRE(node < sizes_.size(), "node out of range");
  return runtime_.spawn(std::move(fn), {}, node);
}

}  // namespace numashare::rt
