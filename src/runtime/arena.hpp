// Arena façade — the paper's TBB argument made concrete (§II):
//
//   "TBB has Resource Management Layer (RML), which can dynamically allocate
//    threads to arenas … by binding all threads in an arena to a NUMA node
//    and using RML to adjust the number of threads in the arenas, we should
//    also be able to get something very similar to option 3 of OCR-Vx."
//
// Arena exposes exactly that surface on top of Runtime: a max-concurrency
// knob (option 1 in arena clothes) and per-node arenas whose sizes map to
// option 3. It also provides TBB-style parallel_for/execute helpers so an
// application written against arenas never touches the task API directly.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/runtime.hpp"

namespace numashare::rt {

class Arena {
 public:
  /// An arena spanning the whole machine; `max_concurrency` caps the worker
  /// count RML-style (0 = unlimited).
  explicit Arena(Runtime& runtime, std::uint32_t max_concurrency = 0);

  /// Adjust the cap at runtime — the RML "dynamically allocate threads to
  /// arenas" operation.
  void set_max_concurrency(std::uint32_t max_concurrency);
  std::uint32_t max_concurrency() const { return max_concurrency_; }

  /// Run `fn` inside the arena and wait for it (and the tasks it spawns
  /// through the passed context) to finish. The calling thread assists,
  /// mirroring TBB's master-thread participation (paper §IV).
  void execute(TaskFn fn);

  /// Blocked-range parallel_for over [begin, end) with a grain size;
  /// the calling thread assists until completion.
  void parallel_for(std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
                    const std::function<void(std::uint64_t, std::uint64_t)>& body);

  Runtime& runtime() { return runtime_; }

 private:
  Runtime& runtime_;
  std::uint32_t max_concurrency_;
};

/// One arena per NUMA node, sized dynamically — the paper's option-3
/// equivalence. resize() maps directly to Runtime per-node targets.
class NodeArenaSet {
 public:
  explicit NodeArenaSet(Runtime& runtime);

  std::uint32_t node_count() const;
  /// Current size (thread target) of a node's arena.
  std::uint32_t size(topo::NodeId node) const;
  /// Set all arena sizes at once (one per node).
  void resize(const std::vector<std::uint32_t>& sizes);

  /// Submit work pinned to a node's arena; completion via returned event.
  EventPtr submit(topo::NodeId node, TaskFn fn);

 private:
  Runtime& runtime_;
  std::vector<std::uint32_t> sizes_;
};

}  // namespace numashare::rt
