#include "runtime/datablock.hpp"

#include <cstring>

#include "common/assert.hpp"

namespace numashare::rt {

Datablock::Datablock(DatablockRegistry* registry, std::uint64_t id, std::size_t size,
                     topo::NodeId node)
    : registry_(registry), id_(id), size_(size), node_(node),
      data_(new std::byte[size]()) {}

Datablock::~Datablock() { registry_->on_destroy(size_, node_.load()); }

std::size_t Datablock::move_to(topo::NodeId target) {
  const topo::NodeId from = node_.load(std::memory_order_acquire);
  if (from == target) return 0;
  // On real hardware: allocate on `target` (mbind / numa_alloc_onnode) and
  // copy; the copy is the honest cost either way.
  std::unique_ptr<std::byte[]> moved(new std::byte[size_]);
  std::memcpy(moved.get(), data_.get(), size_);
  data_ = std::move(moved);
  node_.store(target, std::memory_order_release);
  registry_->on_move(size_, from, target);
  return size_;
}

DatablockRegistry::DatablockRegistry(std::uint32_t nodes) : bytes_per_node_(nodes) {
  NS_REQUIRE(nodes > 0, "registry needs at least one node");
  for (auto& b : bytes_per_node_) b.store(0, std::memory_order_relaxed);
}

DatablockPtr DatablockRegistry::create(std::size_t size_bytes, topo::NodeId node) {
  NS_REQUIRE(node < bytes_per_node_.size(), "placement node out of range");
  NS_REQUIRE(size_bytes > 0, "empty datablocks are not allowed");
  const auto id = next_id_.fetch_add(1, std::memory_order_relaxed);
  live_.fetch_add(1, std::memory_order_relaxed);
  bytes_per_node_[node].fetch_add(size_bytes, std::memory_order_relaxed);
  return DatablockPtr(new Datablock(this, id, size_bytes, node));
}

std::uint64_t DatablockRegistry::bytes_on_node(topo::NodeId node) const {
  NS_REQUIRE(node < bytes_per_node_.size(), "node out of range");
  return bytes_per_node_[node].load(std::memory_order_relaxed);
}

std::uint64_t DatablockRegistry::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& b : bytes_per_node_) total += b.load(std::memory_order_relaxed);
  return total;
}

void DatablockRegistry::on_destroy(std::size_t size, topo::NodeId node) {
  live_.fetch_sub(1, std::memory_order_relaxed);
  bytes_per_node_[node].fetch_sub(size, std::memory_order_relaxed);
}

void DatablockRegistry::on_move(std::size_t size, topo::NodeId from, topo::NodeId to) {
  bytes_per_node_[from].fetch_sub(size, std::memory_order_relaxed);
  bytes_per_node_[to].fetch_add(size, std::memory_order_relaxed);
}

}  // namespace numashare::rt
