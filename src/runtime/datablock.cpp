#include "runtime/datablock.hpp"

#include <algorithm>
#include <cstring>

#include "common/assert.hpp"
#include "inject/fault.hpp"

namespace numashare::rt {

Datablock::Datablock(DatablockRegistry* registry, std::uint64_t id, std::size_t size,
                     topo::NodeId node, std::byte* data)
    : registry_(registry), id_(id), size_(size), node_(node), data_(data) {}

Datablock::~Datablock() { registry_->on_destroy(*this); }

std::size_t Datablock::move_to(topo::NodeId target) {
  // Movers serialize here; readers never take the lock.
  std::scoped_lock lock(move_mutex_);
  const topo::NodeId from = node_.load(std::memory_order_acquire);
  if (from == target) return 0;
  std::byte* fresh = registry_->arena_allocate(size_, target);
  std::byte* old = data_.load(std::memory_order_relaxed);
  // The backend performs (and prices) the copy: memcpy on the system
  // backend, memcpy + modelled link time on the simulated one.
  registry_->backend().migrate(fresh, old, size_, from, target);
  // Publish-then-retire: readers racing this store see either buffer, both
  // fully valid. The old buffer stays alive for stale readers until a
  // quiescent reclaim.
  data_.store(fresh, std::memory_order_release);
  node_.store(target, std::memory_order_release);
  retired_.push_back({old, from});
  retired_bytes_.fetch_add(size_, std::memory_order_relaxed);
  registry_->on_move(size_, from, target);
  return size_;
}

void Datablock::reclaim_retired() {
  std::scoped_lock lock(move_mutex_);
  for (auto& [p, node] : retired_) registry_->arena_deallocate(p, size_, node);
  retired_bytes_.store(0, std::memory_order_relaxed);
  retired_.clear();
}

DatablockRegistry::DatablockRegistry(std::uint32_t nodes, MemoryBackend* backend,
                                     std::size_t slab_bytes)
    : backend_(backend != nullptr ? backend : &SystemBackend::process_default()),
      arenas_(nodes, *backend_, slab_bytes),
      bytes_per_node_(nodes) {
  NS_REQUIRE(nodes > 0, "registry needs at least one node");
  for (auto& b : bytes_per_node_) b.store(0, std::memory_order_relaxed);
}

DatablockPtr DatablockRegistry::create(std::size_t size_bytes, topo::NodeId node) {
  NS_REQUIRE(node < bytes_per_node_.size(), "placement node out of range");
  NS_REQUIRE(size_bytes > 0, "empty datablocks are not allowed");
  const auto id = next_id_.fetch_add(1, std::memory_order_relaxed);
  std::byte* data = arena_allocate(size_bytes, node);
  live_.fetch_add(1, std::memory_order_relaxed);
  bytes_per_node_[node].fetch_add(size_bytes, std::memory_order_relaxed);
  DatablockPtr block(new Datablock(this, id, size_bytes, node, data));
  {
    std::scoped_lock lock(blocks_mutex_);
    blocks_.emplace(id, block);
  }
  return block;
}

std::uint64_t DatablockRegistry::bytes_on_node(topo::NodeId node) const {
  NS_REQUIRE(node < bytes_per_node_.size(), "node out of range");
  return bytes_per_node_[node].load(std::memory_order_relaxed);
}

std::uint64_t DatablockRegistry::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& b : bytes_per_node_) total += b.load(std::memory_order_relaxed);
  return total;
}

void DatablockRegistry::on_destroy(Datablock& block) {
  {
    std::scoped_lock lock(blocks_mutex_);
    blocks_.erase(block.id_);
  }
  // No movers can exist (last reference is being dropped); free the live
  // buffer and anything still retired.
  for (auto& [p, node] : block.retired_) arena_deallocate(p, block.size_, node);
  arena_deallocate(block.data_.load(std::memory_order_relaxed), block.size_,
                   block.node_.load(std::memory_order_relaxed));
  live_.fetch_sub(1, std::memory_order_relaxed);
  bytes_per_node_[block.node_.load(std::memory_order_relaxed)].fetch_sub(
      block.size_, std::memory_order_relaxed);
}

void DatablockRegistry::on_move(std::size_t size, topo::NodeId from, topo::NodeId to) {
  bytes_per_node_[from].fetch_sub(size, std::memory_order_relaxed);
  bytes_per_node_[to].fetch_add(size, std::memory_order_relaxed);
}

std::byte* DatablockRegistry::arena_allocate(std::size_t size, topo::NodeId node) {
  return static_cast<std::byte*>(arenas_.allocate(size, node));
}

void DatablockRegistry::arena_deallocate(std::byte* p, std::size_t size,
                                         topo::NodeId node) {
  arenas_.deallocate(p, size, node);
}

std::uint64_t DatablockRegistry::reclaim_retired() {
  std::vector<DatablockPtr> live;
  {
    std::scoped_lock lock(blocks_mutex_);
    live.reserve(blocks_.size());
    for (auto& [id, weak] : blocks_) {
      if (auto p = weak.lock()) live.push_back(std::move(p));
    }
  }
  std::uint64_t reclaimed = 0;
  for (auto& b : live) {
    reclaimed += b->retired_bytes();
    b->reclaim_retired();
  }
  return reclaimed;
}

std::uint64_t DatablockRegistry::retired_bytes() const {
  std::uint64_t total = 0;
  std::scoped_lock lock(blocks_mutex_);
  for (const auto& [id, weak] : blocks_) {
    if (auto p = weak.lock()) total += p->retired_bytes();
  }
  return total;
}

MigrationReport DatablockRegistry::migrate_toward(
    const std::vector<std::uint32_t>& node_weights, std::uint64_t byte_budget) {
  MigrationReport report;
  const std::uint32_t nodes = node_count();
  NS_REQUIRE(node_weights.size() == nodes, "one weight per NUMA node");
  if (byte_budget == 0) return report;
  std::uint64_t weight_sum = 0;
  for (auto w : node_weights) weight_sum += w;
  const std::uint64_t total = total_bytes();
  if (weight_sum == 0 || total == 0) return report;

  // Residency surplus per node against the weight-proportional target. A
  // positive surplus donates, a negative one receives.
  std::vector<std::int64_t> surplus(nodes);
  for (topo::NodeId n = 0; n < nodes; ++n) {
    const auto desired = static_cast<std::int64_t>(
        static_cast<double>(total) * node_weights[n] / static_cast<double>(weight_sum));
    surplus[n] = static_cast<std::int64_t>(bytes_on_node(n)) - desired;
  }

  // Snapshot the live set (shared_ptrs pin candidates; the lock is not held
  // across the copies), hottest blocks first — migrated bytes should be the
  // bytes the tasks actually stream.
  std::vector<DatablockPtr> candidates;
  {
    std::scoped_lock lock(blocks_mutex_);
    candidates.reserve(blocks_.size());
    for (auto& [id, weak] : blocks_) {
      if (auto p = weak.lock()) candidates.push_back(std::move(p));
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const DatablockPtr& a, const DatablockPtr& b) {
              return a->touches() > b->touches();
            });

  std::uint64_t budget = byte_budget;
  for (auto& block : candidates) {
    if (budget == 0) break;
    // A fault rule can abort the pass between blocks — the "migrator was
    // preempted" case; accounting must already be consistent here.
    if (NS_FAULT_AT("datablock.migrate.abort")) break;
    const topo::NodeId from = block->node();
    if (surplus[from] <= 0) continue;
    const auto to = static_cast<topo::NodeId>(
        std::min_element(surplus.begin(), surplus.end()) - surplus.begin());
    if (surplus[to] >= 0 || to == from) break;  // balanced enough
    const auto size = static_cast<std::int64_t>(block->size_bytes());
    // Strict-improvement guard (bounded churn): moving this block must
    // shrink the donor's surplus by more than it overshoots the receiver.
    if (size >= surplus[from] - surplus[to]) continue;
    if (static_cast<std::uint64_t>(size) > budget) {
      ++report.deferred;
      continue;
    }
    block->move_to(to);
    // Crash point for the fault sweep: a death here — after one block's
    // move+accounting completed atomically, before the next — must leave
    // per-node byte accounting consistent and the daemon un-wedged.
    NS_FAULT_DIE("datablock.migrate.die", nullptr, 49);
    budget -= static_cast<std::uint64_t>(size);
    surplus[from] -= size;
    surplus[to] += size;
    ++report.blocks_moved;
    report.bytes_moved += static_cast<std::uint64_t>(size);
  }
  return report;
}

}  // namespace numashare::rt
