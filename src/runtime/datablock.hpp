// Runtime-managed data blocks — the OCR trait the paper leans on in §III:
// "the application should be able to move the data to a different NUMA node.
// This would easily be possible in OCR, where the runtime system is also in
// charge of managing the data."
//
// A Datablock owns a buffer and carries a NUMA placement. On machines where
// real page placement is controllable the runtime would mbind/first-touch;
// here the placement is tracked intent (what the model and the agent reason
// about) and move_to() physically reallocates+copies so the cost shape is
// right. Per-node byte accounting feeds the agent's placement decisions.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "topology/machine.hpp"

namespace numashare::rt {

class DatablockRegistry;

class Datablock {
 public:
  Datablock(const Datablock&) = delete;
  Datablock& operator=(const Datablock&) = delete;
  ~Datablock();

  std::uint64_t id() const { return id_; }
  std::size_t size_bytes() const { return size_; }
  topo::NodeId node() const { return node_.load(std::memory_order_acquire); }

  /// Raw access. The runtime does not mediate per-task acquire/release (OCR
  /// does; our experiments don't need it) — callers synchronize via events.
  std::byte* data() { return data_.get(); }
  const std::byte* data() const { return data_.get(); }

  template <typename T>
  std::span<T> as_span() {
    return {reinterpret_cast<T*>(data_.get()), size_ / sizeof(T)};
  }

  /// Relocate to another NUMA node: allocate there, copy, retarget. Returns
  /// the bytes copied (0 when already resident). Not thread-safe against
  /// concurrent readers of data() — schedule moves between task phases.
  std::size_t move_to(topo::NodeId node);

 private:
  friend class DatablockRegistry;
  Datablock(DatablockRegistry* registry, std::uint64_t id, std::size_t size,
            topo::NodeId node);

  DatablockRegistry* registry_;
  std::uint64_t id_;
  std::size_t size_;
  std::atomic<topo::NodeId> node_;
  std::unique_ptr<std::byte[]> data_;
};

using DatablockPtr = std::shared_ptr<Datablock>;

/// Tracks every live datablock and the per-node resident byte totals.
class DatablockRegistry {
 public:
  explicit DatablockRegistry(std::uint32_t nodes);

  DatablockPtr create(std::size_t size_bytes, topo::NodeId node);

  std::uint64_t live_blocks() const { return live_.load(std::memory_order_relaxed); }
  std::uint64_t bytes_on_node(topo::NodeId node) const;
  std::uint64_t total_bytes() const;

 private:
  friend class Datablock;
  void on_destroy(std::size_t size, topo::NodeId node);
  void on_move(std::size_t size, topo::NodeId from, topo::NodeId to);

  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> live_{0};
  std::vector<std::atomic<std::uint64_t>> bytes_per_node_;
};

}  // namespace numashare::rt
