// Runtime-managed data blocks — the OCR trait the paper leans on in §III:
// "the application should be able to move the data to a different NUMA node.
// This would easily be possible in OCR, where the runtime system is also in
// charge of managing the data."
//
// A Datablock owns a chunk carved from its node's slab arena
// (runtime/numa_arena.hpp): placement is physical where the host lets the
// SystemBackend mbind pages, and faithfully priced by the SimulatedBackend
// everywhere else. move_to() is reader-safe: the new buffer is filled, then
// *published* with a release store, and the old buffer is *retired* — kept
// alive until a quiescent point — so a task that loaded data() mid-move keeps
// reading consistent (pre-move) bytes instead of racing a reallocation.
// Per-node byte accounting and per-block touch counts feed the agent's
// placement and migration decisions.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "runtime/numa_arena.hpp"
#include "topology/machine.hpp"

namespace numashare::rt {

class DatablockRegistry;

class Datablock {
 public:
  Datablock(const Datablock&) = delete;
  Datablock& operator=(const Datablock&) = delete;
  ~Datablock();

  std::uint64_t id() const { return id_; }
  std::size_t size_bytes() const { return size_; }
  topo::NodeId node() const { return node_.load(std::memory_order_acquire); }

  /// Raw access. The runtime does not mediate per-task acquire/release (OCR
  /// does; our experiments don't need it) — callers synchronize via events.
  /// Safe against a concurrent move_to(): the load is acquire and observes
  /// either the old buffer (still retired-alive) or the fully-copied new one.
  std::byte* data() { return data_.load(std::memory_order_acquire); }
  const std::byte* data() const { return data_.load(std::memory_order_acquire); }

  template <typename T>
  std::span<T> as_span() {
    return {reinterpret_cast<T*>(data()), size_ / sizeof(T)};
  }

  /// Relocate to another NUMA node: allocate there, copy through the memory
  /// backend (which charges the migration cost), publish, retire the old
  /// buffer. Returns the bytes copied (0 when already resident). Safe
  /// against concurrent data() readers and concurrent movers; stale readers
  /// keep the retired buffer until reclaim_retired() or destruction.
  std::size_t move_to(topo::NodeId node);

  /// Free retired buffers. Caller asserts quiescence: no thread still holds
  /// a data() pointer loaded before the corresponding move completed.
  void reclaim_retired();
  std::uint64_t retired_bytes() const {
    return retired_bytes_.load(std::memory_order_relaxed);
  }

  /// Access-frequency signal: spawn_with_data bumps this per declared
  /// access; the migrator moves the hottest blocks first.
  void record_touch(std::uint64_t n = 1) {
    touches_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t touches() const { return touches_.load(std::memory_order_relaxed); }

 private:
  friend class DatablockRegistry;
  Datablock(DatablockRegistry* registry, std::uint64_t id, std::size_t size,
            topo::NodeId node, std::byte* data);

  DatablockRegistry* registry_;
  std::uint64_t id_;
  std::size_t size_;
  std::atomic<topo::NodeId> node_;
  std::atomic<std::byte*> data_;
  std::atomic<std::uint64_t> touches_{0};
  std::atomic<std::uint64_t> retired_bytes_{0};
  /// Serializes movers; also guards retired_.
  std::mutex move_mutex_;
  std::vector<std::pair<std::byte*, topo::NodeId>> retired_;
};

using DatablockPtr = std::shared_ptr<Datablock>;

/// One reallocation tick's migration outcome.
struct MigrationReport {
  std::uint32_t blocks_moved = 0;
  std::uint64_t bytes_moved = 0;
  /// Blocks that wanted to move but did not fit the remaining byte budget.
  std::uint32_t deferred = 0;
};

/// Tracks every live datablock, the per-node resident byte totals, and owns
/// the node-affine arenas all block memory comes from.
class DatablockRegistry {
 public:
  /// `backend` is non-owning and optional: null means the process-wide
  /// SystemBackend. Pass a SimulatedBackend to price placement against the
  /// machine model instead.
  explicit DatablockRegistry(std::uint32_t nodes, MemoryBackend* backend = nullptr,
                             std::size_t slab_bytes = NumaArena::kDefaultSlabBytes);

  DatablockPtr create(std::size_t size_bytes, topo::NodeId node);

  std::uint64_t live_blocks() const { return live_.load(std::memory_order_relaxed); }
  std::uint64_t bytes_on_node(topo::NodeId node) const;
  std::uint64_t total_bytes() const;
  std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(bytes_per_node_.size());
  }

  MemoryBackend& backend() { return *backend_; }
  const NumaArenaSet& arenas() const { return arenas_; }

  /// Migrate the hottest blocks toward the byte distribution implied by
  /// `node_weights` (typically the policy's per-node thread targets),
  /// spending at most `byte_budget` bytes of copy traffic. Bounded churn: a
  /// block moves only when it strictly reduces the residency imbalance.
  /// Safe against concurrent create/destroy/reader traffic.
  MigrationReport migrate_toward(const std::vector<std::uint32_t>& node_weights,
                                 std::uint64_t byte_budget);

  /// Free every live block's retired buffers (see Datablock::reclaim_retired
  /// for the quiescence contract) and report how many bytes were pinned.
  std::uint64_t reclaim_retired();
  /// Bytes currently held alive for stale readers across all live blocks.
  std::uint64_t retired_bytes() const;

 private:
  friend class Datablock;
  void on_destroy(Datablock& block);
  void on_move(std::size_t size, topo::NodeId from, topo::NodeId to);
  std::byte* arena_allocate(std::size_t size, topo::NodeId node);
  void arena_deallocate(std::byte* p, std::size_t size, topo::NodeId node);

  MemoryBackend* backend_;
  NumaArenaSet arenas_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> live_{0};
  std::vector<std::atomic<std::uint64_t>> bytes_per_node_;
  /// Live-block index for the migrator; weak so destruction never blocks on
  /// a migration pass. Guarded create/destroy are off the task hot path.
  mutable std::mutex blocks_mutex_;
  std::unordered_map<std::uint64_t, std::weak_ptr<Datablock>> blocks_;
};

}  // namespace numashare::rt
