#include "runtime/event.hpp"

#include <chrono>

#include "common/assert.hpp"
#include "runtime/runtime.hpp"
#include "runtime/task.hpp"

namespace numashare::rt {

void Event::satisfy() {
  std::vector<std::pair<Runtime*, TaskNode*>> waiters;
  {
    std::scoped_lock lock(mutex_);
    NS_REQUIRE(!satisfied_.load(std::memory_order_relaxed),
               "events have single-assignment semantics");
    satisfied_.store(true, std::memory_order_release);
    waiters.swap(waiters_);
    // Notify while still holding the mutex: a waiter may destroy this event
    // the moment wait() returns, so the cv must not be touched after any
    // waiter can observe satisfied_ and re-acquire the lock.
    cv_.notify_all();
  }
  for (auto [runtime, task] : waiters) runtime->on_dependency_satisfied(task);
}

void Event::wait() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] { return satisfied_.load(std::memory_order_acquire); });
}

bool Event::wait_for_us(std::int64_t timeout_us) {
  std::unique_lock lock(mutex_);
  return cv_.wait_for(lock, std::chrono::microseconds(timeout_us),
                      [&] { return satisfied_.load(std::memory_order_acquire); });
}

void Event::add_waiter(Runtime* runtime, TaskNode* task) {
  {
    std::scoped_lock lock(mutex_);
    if (!satisfied_.load(std::memory_order_acquire)) {
      waiters_.emplace_back(runtime, task);
      return;
    }
  }
  runtime->on_dependency_satisfied(task);
}

void LatchEvent::count_down() {
  const auto before = remaining_.fetch_sub(1, std::memory_order_acq_rel);
  NS_REQUIRE(before > 0, "latch counted below zero");
  if (before == 1) satisfy();
}

}  // namespace numashare::rt
