// OCR-style events: the synchronization objects tasks depend on.
//
// An Event is satisfied exactly once; tasks registered as waiters have one
// pending-dependency slot consumed when it fires. A LatchEvent satisfies
// itself after `count` decrements (OCR's latch). External (non-worker)
// threads can block on an event via wait(), which is how a main thread joins
// a task graph (paper §IV).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace numashare::rt {

class Runtime;
struct TaskNode;

class Event {
 public:
  virtual ~Event() = default;

  /// Fire the event. Idempotence is a caller error (asserted): OCR "once"
  /// events have single-assignment semantics.
  void satisfy();

  bool satisfied() const { return satisfied_.load(std::memory_order_acquire); }

  /// Block the calling thread until satisfied. For external threads; workers
  /// never call this (they would deadlock the pool).
  void wait();

  /// Timed variant; true when satisfied within the budget.
  bool wait_for_us(std::int64_t timeout_us);

 protected:
  friend class Runtime;

  /// Registers `task` (one pending slot). If the event already fired, the
  /// slot is consumed immediately. Called by Runtime during task creation.
  void add_waiter(Runtime* runtime, TaskNode* task);

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<bool> satisfied_{false};
  std::vector<std::pair<Runtime*, TaskNode*>> waiters_;
};

using EventPtr = std::shared_ptr<Event>;

/// Counts down from `count`; the underlying event fires on reaching zero.
class LatchEvent : public Event {
 public:
  explicit LatchEvent(std::uint32_t count) : remaining_(count) {}

  /// Decrement; fires satisfy() on the transition to zero.
  void count_down();

  std::uint32_t remaining() const { return remaining_.load(std::memory_order_acquire); }

 private:
  std::atomic<std::uint32_t> remaining_;
};

using LatchEventPtr = std::shared_ptr<LatchEvent>;

}  // namespace numashare::rt
