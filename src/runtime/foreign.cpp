#include "runtime/foreign.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace numashare::rt {

const char* to_string(ForeignRole role) {
  switch (role) {
    case ForeignRole::kCompute: return "compute";
    case ForeignRole::kIo: return "io";
  }
  return "?";
}

ForeignThreadHandle::ForeignThreadHandle(ForeignThreadRegistry* registry, std::uint64_t id,
                                         std::string name, ForeignRole role)
    : registry_(registry), id_(id), name_(std::move(name)), role_(role) {}

ForeignThreadHandle::~ForeignThreadHandle() { registry_->deregister(id_); }

bool ForeignThreadHandle::poll() {
  const topo::NodeId desired = desired_.load(std::memory_order_acquire);
  if (desired == bound_.load(std::memory_order_acquire)) return false;
  if (desired != topo::kInvalidNode) {
    topo::bind_current_thread(topo::CpuSet::whole_node(registry_->machine_, desired));
  }
  bound_.store(desired, std::memory_order_release);
  return true;
}

ForeignThreadRegistry::ForeignThreadRegistry(const topo::Machine& machine)
    : machine_(machine) {}

ForeignThreadPtr ForeignThreadRegistry::enroll(std::string name, ForeignRole role) {
  const auto id = next_id_.fetch_add(1, std::memory_order_relaxed);
  ForeignThreadPtr handle(new ForeignThreadHandle(this, id, std::move(name), role));
  std::scoped_lock lock(mutex_);
  threads_.push_back(handle.get());
  return handle;
}

void ForeignThreadRegistry::deregister(std::uint64_t id) {
  std::scoped_lock lock(mutex_);
  threads_.erase(std::remove_if(threads_.begin(), threads_.end(),
                                [&](const ForeignThreadHandle* h) { return h->id() == id; }),
                 threads_.end());
}

bool ForeignThreadRegistry::request_bind(std::uint64_t id, topo::NodeId node) {
  NS_REQUIRE(node < machine_.node_count(), "node out of range");
  std::scoped_lock lock(mutex_);
  for (auto* thread : threads_) {
    if (thread->id() == id) {
      thread->desired_.store(node, std::memory_order_release);
      return true;
    }
  }
  return false;
}

std::uint32_t ForeignThreadRegistry::count() const {
  std::scoped_lock lock(mutex_);
  return static_cast<std::uint32_t>(threads_.size());
}

std::uint32_t ForeignThreadRegistry::count(ForeignRole role) const {
  std::scoped_lock lock(mutex_);
  return static_cast<std::uint32_t>(
      std::count_if(threads_.begin(), threads_.end(),
                    [&](const ForeignThreadHandle* h) { return h->role() == role; }));
}

std::vector<std::uint32_t> ForeignThreadRegistry::compute_bound_per_node() const {
  std::vector<std::uint32_t> out(machine_.node_count(), 0);
  std::scoped_lock lock(mutex_);
  for (const auto* thread : threads_) {
    if (thread->role() != ForeignRole::kCompute) continue;
    const auto node = thread->bound_node();
    if (node < machine_.node_count()) ++out[node];
  }
  return out;
}

std::vector<ForeignThreadRegistry::Entry> ForeignThreadRegistry::list() const {
  std::scoped_lock lock(mutex_);
  std::vector<Entry> out;
  out.reserve(threads_.size());
  for (const auto* thread : threads_) {
    out.push_back({thread->id(), thread->name(), thread->role(), thread->bound_node()});
  }
  return out;
}

}  // namespace numashare::rt
