// Non-worker threads (paper §IV).
//
// Real applications have threads the task runtime does not own: a TBB-style
// main thread, I/O threads blocked in syscalls, or compute threads of a
// library that never adopted tasks. The paper's §IV: "We might still be able
// to use thread affinities provided by the operating system to move such
// threads."
//
// ForeignThreadRegistry lets such threads *enroll* with the runtime: they
// declare a role (compute or I/O) and get a handle the arbitration layer can
// steer — re-binding them to a NUMA node's cpuset and counting them in the
// per-node accounting so the agent sees the whole picture, not just workers.
// Enrollment is cooperative: the foreign thread polls its handle at points
// of its choosing (the paper's observation that "we would probably not be
// able to fully stop such threads" — we bound, we do not block).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "topology/affinity.hpp"
#include "topology/machine.hpp"

namespace numashare::rt {

enum class ForeignRole : std::uint8_t {
  kCompute,  // burns CPU; counts against node budgets
  kIo,       // mostly blocked; tracked but not budgeted
};

const char* to_string(ForeignRole role);

class ForeignThreadRegistry;

/// Handle owned by the enrolled thread. The controller writes the desired
/// node; the thread applies it at its next poll() call.
class ForeignThreadHandle {
 public:
  ~ForeignThreadHandle();

  ForeignThreadHandle(const ForeignThreadHandle&) = delete;
  ForeignThreadHandle& operator=(const ForeignThreadHandle&) = delete;

  std::uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  ForeignRole role() const { return role_; }

  /// Node this thread is currently (intended to be) bound to; kInvalidNode
  /// when unbound.
  topo::NodeId bound_node() const { return bound_.load(std::memory_order_acquire); }

  /// Called by the enrolled thread: applies any pending re-bind to the
  /// calling thread's affinity. Returns true when a re-bind was applied.
  bool poll();

 private:
  friend class ForeignThreadRegistry;
  ForeignThreadHandle(ForeignThreadRegistry* registry, std::uint64_t id, std::string name,
                      ForeignRole role);

  ForeignThreadRegistry* registry_;
  std::uint64_t id_;
  std::string name_;
  ForeignRole role_;
  std::atomic<topo::NodeId> desired_{topo::kInvalidNode};
  std::atomic<topo::NodeId> bound_{topo::kInvalidNode};
};

using ForeignThreadPtr = std::shared_ptr<ForeignThreadHandle>;

class ForeignThreadRegistry {
 public:
  explicit ForeignThreadRegistry(const topo::Machine& machine);

  /// Enroll the *calling* thread. Keep the handle alive for the thread's
  /// lifetime; destruction deregisters.
  ForeignThreadPtr enroll(std::string name, ForeignRole role);

  /// Controller side: request that thread `id` run on `node` (applied at the
  /// thread's next poll). Returns false for unknown ids.
  bool request_bind(std::uint64_t id, topo::NodeId node);

  std::uint32_t count() const;
  std::uint32_t count(ForeignRole role) const;
  /// Compute-role threads currently bound to each node (the numbers an agent
  /// must subtract from the node budgets it hands to task runtimes).
  std::vector<std::uint32_t> compute_bound_per_node() const;

  struct Entry {
    std::uint64_t id;
    std::string name;
    ForeignRole role;
    topo::NodeId bound_node;
  };
  std::vector<Entry> list() const;

 private:
  friend class ForeignThreadHandle;
  void deregister(std::uint64_t id);

  const topo::Machine& machine_;
  mutable std::mutex mutex_;
  std::vector<ForeignThreadHandle*> threads_;
  std::atomic<std::uint64_t> next_id_{1};
};

}  // namespace numashare::rt
