// Runtime telemetry counters.
//
// These are the numbers the paper's Figure 1 shows flowing from each runtime
// to the agent ("number of tasks executed, number of running threads,
// etc."). Counters are relaxed atomics: the agent consumes snapshots, never
// exact cross-counter consistency.
//
// The counters are *sharded*: each worker owns a cache-line-aligned block of
// counters and increments only its own, so high-rate events (task retirement,
// steals, app-reported work) never bounce a shared line across sockets —
// Chasparis et al.'s requirement that dynamic pinning decisions ride on
// *cheap* high-rate measurements. One extra shard absorbs increments from
// threads the runtime does not own (external submitters, assist threads).
// Aggregation happens lazily, on the telemetry consumer's clock, in
// Runtime::stats() — the only snapshot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace numashare::rt {

/// One worker's private counter block. alignas keeps neighbouring shards on
/// distinct cache lines; all increments are relaxed and owner-local.
struct alignas(64) MetricsShard {
  std::atomic<std::uint64_t> tasks_spawned{0};
  std::atomic<std::uint64_t> tasks_executed{0};
  std::atomic<std::uint64_t> steals{0};
  /// Locality split of `steals`: victim on the thief's node vs a remote one.
  std::atomic<std::uint64_t> local_steals{0};
  std::atomic<std::uint64_t> remote_steals{0};
  /// Datablock bytes resident on another node than the acquiring worker at
  /// cross-node acquisition time (steal or foreign injection pop) — the
  /// traffic the locality-aware policy exists to avoid.
  std::atomic<std::uint64_t> bytes_pulled_remote{0};
  /// Cross-node acquisitions bounced home by the poach threshold.
  std::atomic<std::uint64_t> steal_vetoes{0};
  /// Reallocation-tick datablock migration activity (Runtime::
  /// migrate_datablocks_toward).
  std::atomic<std::uint64_t> blocks_migrated{0};
  std::atomic<std::uint64_t> bytes_migrated{0};
  std::atomic<std::uint64_t> failed_steal_rounds{0};
  std::atomic<std::uint64_t> idle_parks{0};
  std::atomic<std::uint64_t> blocks{0};    // policy-driven thread blocks
  std::atomic<std::uint64_t> unblocks{0};
  /// Application-reported progress (e.g. iterations completed); the unit is
  /// up to the application, the agent only compares rates.
  std::atomic<std::uint64_t> progress{0};
  /// Application-reported work and memory traffic, in micro-GFLOP /
  /// micro-GB (fixed-point so the counters stay lock-free). Ratio = the
  /// app's *measured* arithmetic intensity — §III.A's "figure out the
  /// access patterns" without the app having to know its own roofline.
  std::atomic<std::uint64_t> micro_gflop{0};
  std::atomic<std::uint64_t> micro_gbytes{0};
};

/// Point-in-time copy handed to the agent. Field-for-field identical to what
/// the pre-sharding Metrics produced: the agent/daemon telemetry path keys
/// on these names and widths.
struct MetricsSnapshot {
  std::uint64_t tasks_spawned = 0;
  std::uint64_t tasks_executed = 0;
  std::uint64_t steals = 0;
  std::uint64_t local_steals = 0;
  std::uint64_t remote_steals = 0;
  std::uint64_t bytes_pulled_remote = 0;
  std::uint64_t steal_vetoes = 0;
  std::uint64_t blocks_migrated = 0;
  std::uint64_t bytes_migrated = 0;
  std::uint64_t failed_steal_rounds = 0;
  std::uint64_t idle_parks = 0;
  std::uint64_t blocks = 0;
  std::uint64_t unblocks = 0;
  std::uint64_t progress = 0;
  double gflop_done = 0.0;
  double gbytes_moved = 0.0;
  std::uint32_t total_workers = 0;
  std::uint32_t running_threads = 0;  // not policy-blocked
  std::uint32_t blocked_threads = 0;
  std::vector<std::uint32_t> running_per_node;
  std::uint64_t outstanding_tasks = 0;
  std::uint64_t ready_queue_depth = 0;  // approximate
  /// Commanded-online workers the scheduler-latency watchdog currently sees
  /// as silent past the deadline (obs::Watchdog); 0 when the watchdog is off.
  std::uint32_t stalled_workers = 0;
};

class Metrics {
 public:
  /// `shard_count` = worker count + 1; the last shard belongs to threads the
  /// runtime does not own.
  explicit Metrics(std::uint32_t shard_count) : shards_(shard_count) {}

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  MetricsShard& shard(std::uint32_t index) { return shards_[index]; }
  std::uint32_t shard_count() const { return static_cast<std::uint32_t>(shards_.size()); }
  std::uint32_t external_shard() const { return shard_count() - 1; }

  /// Sum every shard into the snapshot's counter fields. Relaxed loads: the
  /// result is a consistent-enough sample, same contract as before sharding.
  void aggregate_into(MetricsSnapshot& s) const {
    std::uint64_t micro_gflop = 0;
    std::uint64_t micro_gbytes = 0;
    for (const MetricsShard& m : shards_) {
      s.tasks_spawned += m.tasks_spawned.load(std::memory_order_relaxed);
      s.tasks_executed += m.tasks_executed.load(std::memory_order_relaxed);
      s.steals += m.steals.load(std::memory_order_relaxed);
      s.local_steals += m.local_steals.load(std::memory_order_relaxed);
      s.remote_steals += m.remote_steals.load(std::memory_order_relaxed);
      s.bytes_pulled_remote += m.bytes_pulled_remote.load(std::memory_order_relaxed);
      s.steal_vetoes += m.steal_vetoes.load(std::memory_order_relaxed);
      s.blocks_migrated += m.blocks_migrated.load(std::memory_order_relaxed);
      s.bytes_migrated += m.bytes_migrated.load(std::memory_order_relaxed);
      s.failed_steal_rounds += m.failed_steal_rounds.load(std::memory_order_relaxed);
      s.idle_parks += m.idle_parks.load(std::memory_order_relaxed);
      s.blocks += m.blocks.load(std::memory_order_relaxed);
      s.unblocks += m.unblocks.load(std::memory_order_relaxed);
      s.progress += m.progress.load(std::memory_order_relaxed);
      micro_gflop += m.micro_gflop.load(std::memory_order_relaxed);
      micro_gbytes += m.micro_gbytes.load(std::memory_order_relaxed);
    }
    s.gflop_done = static_cast<double>(micro_gflop) * 1e-6;
    s.gbytes_moved = static_cast<double>(micro_gbytes) * 1e-6;
  }

 private:
  std::vector<MetricsShard> shards_;
};

}  // namespace numashare::rt
