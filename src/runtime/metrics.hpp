// Runtime telemetry counters.
//
// These are the numbers the paper's Figure 1 shows flowing from each runtime
// to the agent ("number of tasks executed, number of running threads,
// etc."). Counters are relaxed atomics: the agent consumes snapshots, never
// exact cross-counter consistency.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace numashare::rt {

struct Metrics {
  std::atomic<std::uint64_t> tasks_spawned{0};
  std::atomic<std::uint64_t> tasks_executed{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> failed_steal_rounds{0};
  std::atomic<std::uint64_t> idle_parks{0};
  std::atomic<std::uint64_t> blocks{0};    // policy-driven thread blocks
  std::atomic<std::uint64_t> unblocks{0};
  /// Application-reported progress (e.g. iterations completed); the unit is
  /// up to the application, the agent only compares rates.
  std::atomic<std::uint64_t> progress{0};
  /// Application-reported work and memory traffic, in micro-GFLOP /
  /// micro-GB (fixed-point so the counters stay lock-free). Ratio = the
  /// app's *measured* arithmetic intensity — §III.A's "figure out the
  /// access patterns" without the app having to know its own roofline.
  std::atomic<std::uint64_t> micro_gflop{0};
  std::atomic<std::uint64_t> micro_gbytes{0};
};

/// Point-in-time copy handed to the agent.
struct MetricsSnapshot {
  std::uint64_t tasks_spawned = 0;
  std::uint64_t tasks_executed = 0;
  std::uint64_t steals = 0;
  std::uint64_t failed_steal_rounds = 0;
  std::uint64_t idle_parks = 0;
  std::uint64_t blocks = 0;
  std::uint64_t unblocks = 0;
  std::uint64_t progress = 0;
  double gflop_done = 0.0;
  double gbytes_moved = 0.0;
  std::uint32_t total_workers = 0;
  std::uint32_t running_threads = 0;  // not policy-blocked
  std::uint32_t blocked_threads = 0;
  std::vector<std::uint32_t> running_per_node;
  std::uint64_t outstanding_tasks = 0;
  std::uint64_t ready_queue_depth = 0;  // approximate
};

inline MetricsSnapshot snapshot(const Metrics& m) {
  MetricsSnapshot s;
  s.tasks_spawned = m.tasks_spawned.load(std::memory_order_relaxed);
  s.tasks_executed = m.tasks_executed.load(std::memory_order_relaxed);
  s.steals = m.steals.load(std::memory_order_relaxed);
  s.failed_steal_rounds = m.failed_steal_rounds.load(std::memory_order_relaxed);
  s.idle_parks = m.idle_parks.load(std::memory_order_relaxed);
  s.blocks = m.blocks.load(std::memory_order_relaxed);
  s.unblocks = m.unblocks.load(std::memory_order_relaxed);
  s.progress = m.progress.load(std::memory_order_relaxed);
  s.gflop_done = static_cast<double>(m.micro_gflop.load(std::memory_order_relaxed)) * 1e-6;
  s.gbytes_moved =
      static_cast<double>(m.micro_gbytes.load(std::memory_order_relaxed)) * 1e-6;
  return s;
}

}  // namespace numashare::rt
