#include "runtime/numa_arena.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/assert.hpp"

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace numashare::rt {

namespace {

constexpr std::size_t kPage = 4096;
constexpr std::size_t kChunkAlign = 64;

std::size_t round_up(std::size_t v, std::size_t align) {
  return (v + align - 1) / align * align;
}

/// Best-effort MPOL_PREFERRED bind of [p, p+len) to `node` via the raw
/// syscall (the toolchain image has no libnuma). Preferred — not strict —
/// policy: under memory pressure or on a machine with fewer real nodes than
/// the virtual description, allocation falls back instead of failing.
bool try_mbind(void* p, std::size_t len, topo::NodeId node) {
#if defined(__linux__) && defined(__NR_mbind)
  constexpr int kMpolPreferred = 1;
  if (node >= 64) return false;
  unsigned long nodemask = 1ul << node;
  // maxnode counts bits and must exceed the highest set bit.
  const long rc = ::syscall(__NR_mbind, p, len, kMpolPreferred, &nodemask,
                            sizeof(nodemask) * 8 + 1, 0u);
  return rc == 0;
#else
  (void)p;
  (void)len;
  (void)node;
  return false;
#endif
}

void* page_aligned_alloc(std::size_t bytes) {
  void* p = std::aligned_alloc(kPage, round_up(bytes, kPage));
  NS_REQUIRE(p != nullptr, "memory backend allocation failed");
  return p;
}

}  // namespace

MemoryBackendStats MemoryBackend::stats() const {
  MemoryBackendStats s;
  s.allocations = allocations_.load(std::memory_order_relaxed);
  s.deallocations = deallocations_.load(std::memory_order_relaxed);
  s.migrations = migrations_.load(std::memory_order_relaxed);
  s.bytes_migrated = bytes_migrated_.load(std::memory_order_relaxed);
  s.bind_attempts = bind_attempts_.load(std::memory_order_relaxed);
  s.bind_successes = bind_successes_.load(std::memory_order_relaxed);
  return s;
}

// --- SystemBackend ---------------------------------------------------------

void* SystemBackend::allocate(std::size_t bytes, topo::NodeId node) {
  void* p = page_aligned_alloc(bytes);
  count_bind(try_mbind(p, round_up(bytes, kPage), node));
  count_allocation();
  return p;
}

void SystemBackend::deallocate(void* p, std::size_t bytes, topo::NodeId node) {
  (void)bytes;
  (void)node;
  std::free(p);
  count_deallocation();
}

void SystemBackend::migrate(void* dst, const void* src, std::size_t bytes,
                            topo::NodeId from, topo::NodeId to) {
  (void)from;
  (void)to;
  std::memcpy(dst, src, bytes);
  count_migration(bytes);
}

SystemBackend& SystemBackend::process_default() {
  static SystemBackend backend;
  return backend;
}

// --- SimulatedBackend ------------------------------------------------------

SimulatedBackend::SimulatedBackend(const topo::Machine& machine, sim::SimEffects effects,
                                   double time_scale)
    : machine_(machine), effects_(effects), time_scale_(time_scale) {
  NS_REQUIRE(machine_.node_count() > 0, "simulated backend needs a machine");
}

void* SimulatedBackend::allocate(std::size_t bytes, topo::NodeId node) {
  NS_REQUIRE(node < machine_.node_count(), "allocation node out of range");
  count_allocation();
  return page_aligned_alloc(bytes);
}

void SimulatedBackend::deallocate(void* p, std::size_t bytes, topo::NodeId node) {
  (void)bytes;
  (void)node;
  std::free(p);
  count_deallocation();
}

double SimulatedBackend::migrate_seconds(std::size_t bytes, topo::NodeId from,
                                         topo::NodeId to) const {
  if (from == to || bytes == 0) return 0.0;
  // Bulk page migration streams across the inter-node link at a fraction of
  // its nominal peak (kernel chunking, TLB shootdowns): the same shape as
  // move_pages(2) on real iron. With no link modelled, fall back to the
  // destination controller's bandwidth.
  double bw = machine_.link_bandwidth(from, to);
  if (bw <= 0.0) bw = machine_.node(to).memory_bandwidth;
  if (bw <= 0.0) return 0.0;
  const double effective =
      bw * effects_.remote_link_efficiency * effects_.migration_efficiency;
  if (effective <= 0.0) return 0.0;
  return static_cast<double>(bytes) / 1e9 / effective;
}

double SimulatedBackend::remote_access_penalty(topo::NodeId resident,
                                               topo::NodeId executing) const {
  if (resident == executing) return 1.0;
  const double local = machine_.node(executing).memory_bandwidth;
  double link = machine_.link_bandwidth(resident, executing);
  if (link <= 0.0) link = local;
  double ratio = 1.0;
  if (local > 0.0 && link > 0.0) {
    ratio = local / (link * effects_.remote_link_efficiency);
  }
  return std::max(1.0, ratio) * effects_.remote_access_latency_penalty;
}

void SimulatedBackend::migrate(void* dst, const void* src, std::size_t bytes,
                               topo::NodeId from, topo::NodeId to) {
  std::memcpy(dst, src, bytes);
  const double seconds = migrate_seconds(bytes, from, to);
  // Relaxed CAS loop: std::atomic<double> has no fetch_add pre-C++20 on all
  // toolchains; contention here is one migrator per tick.
  double cur = virtual_seconds_.load(std::memory_order_relaxed);
  while (!virtual_seconds_.compare_exchange_weak(cur, cur + seconds,
                                                 std::memory_order_relaxed)) {
  }
  if (time_scale_ > 0.0 && seconds > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(seconds * time_scale_));
  }
  count_migration(bytes);
}

// --- NumaArena -------------------------------------------------------------

NumaArena::NumaArena(topo::NodeId node, MemoryBackend& backend, std::size_t slab_bytes)
    : node_(node), backend_(backend), slab_bytes_(std::max(slab_bytes, kPage)) {}

NumaArena::~NumaArena() {
  for (const Slab& s : slabs_) backend_.deallocate(s.base, s.bytes, node_);
}

void* NumaArena::allocate(std::size_t bytes) {
  NS_REQUIRE(bytes > 0, "empty arena allocation");
  const std::size_t chunk = round_up(bytes, kChunkAlign);
  std::scoped_lock lock(mutex_);
  stats_.used_bytes += chunk;

  // Exact-size recycling first: datablock workloads allocate in repeated
  // sizes, so the free map is where most steady-state requests land.
  if (auto it = free_.find(chunk); it != free_.end() && !it->second.empty()) {
    void* p = it->second.back();
    it->second.pop_back();
    ++stats_.recycled_chunks;
    std::memset(p, 0, chunk);
    return p;
  }

  // Big request: dedicated backend allocation, returned to the backend on
  // free (never pinned inside a slab it would dominate).
  if (chunk >= slab_bytes_ / 2) {
    void* p = backend_.allocate(chunk, node_);
    dedicated_.insert(p);
    ++stats_.slab_count;
    stats_.slab_bytes += chunk;
    std::memset(p, 0, chunk);  // first touch on the bound pages
    return p;
  }

  if (bump_left_ < chunk) {
    // Unused bump tail becomes a recyclable chunk rather than leaking.
    if (bump_left_ >= kChunkAlign) free_[bump_left_].push_back(bump_);
    void* base = backend_.allocate(slab_bytes_, node_);
    slabs_.push_back({base, slab_bytes_});
    ++stats_.slab_count;
    stats_.slab_bytes += slab_bytes_;
    bump_ = static_cast<std::byte*>(base);
    bump_left_ = slab_bytes_;
  }
  void* p = bump_;
  bump_ += chunk;
  bump_left_ -= chunk;
  std::memset(p, 0, chunk);  // first touch
  return p;
}

void NumaArena::deallocate(void* p, std::size_t bytes) {
  if (p == nullptr) return;
  const std::size_t chunk = round_up(bytes, kChunkAlign);
  std::scoped_lock lock(mutex_);
  stats_.used_bytes -= std::min<std::uint64_t>(stats_.used_bytes, chunk);
  if (auto it = dedicated_.find(p); it != dedicated_.end()) {
    dedicated_.erase(it);
    stats_.slab_bytes -= std::min<std::uint64_t>(stats_.slab_bytes, chunk);
    --stats_.slab_count;
    backend_.deallocate(p, chunk, node_);
    return;
  }
  free_[chunk].push_back(p);
}

NumaArena::Stats NumaArena::stats() const {
  std::scoped_lock lock(mutex_);
  return stats_;
}

// --- NumaArenaSet ----------------------------------------------------------

NumaArenaSet::NumaArenaSet(std::uint32_t nodes, MemoryBackend& backend,
                           std::size_t slab_bytes)
    : backend_(backend) {
  NS_REQUIRE(nodes > 0, "arena set needs at least one node");
  arenas_.reserve(nodes);
  for (std::uint32_t n = 0; n < nodes; ++n) {
    arenas_.push_back(std::make_unique<NumaArena>(n, backend, slab_bytes));
  }
}

void* NumaArenaSet::allocate(std::size_t bytes, topo::NodeId node) {
  NS_REQUIRE(node < arenas_.size(), "arena node out of range");
  return arenas_[node]->allocate(bytes);
}

void NumaArenaSet::deallocate(void* p, std::size_t bytes, topo::NodeId node) {
  NS_REQUIRE(node < arenas_.size(), "arena node out of range");
  arenas_[node]->deallocate(p, bytes);
}

NumaArena::Stats NumaArenaSet::stats(topo::NodeId node) const {
  NS_REQUIRE(node < arenas_.size(), "arena node out of range");
  return arenas_[node]->stats();
}

}  // namespace numashare::rt
