// Node-affine memory: the placement half of the paper's §III OCR argument.
//
// The roofline solver prices per-node bandwidth, and PR 8 closes the loop so
// something actually *places* bytes: every Datablock allocation now comes out
// of a per-node slab arena, and physical placement / migration goes through a
// MemoryBackend —
//
//  * SystemBackend binds slab pages to their node with a raw mbind(2) syscall
//    where the host supports it (no libnuma dependency; silently best-effort
//    elsewhere) and migrates by allocate-copy-retire, the same cost shape as
//    move_pages(2).
//  * SimulatedBackend reproduces that cost shape from the machine description
//    and sim::SimEffects (link bandwidth x migration efficiency, remote-access
//    latency penalty) so a container with no real NUMA still exercises — and
//    prices — every placement decision deterministically.
//
// Arenas use first-touch semantics: a fresh chunk is zero-filled immediately
// after the backend binds it, so its pages fault in on the intended node.
// Freed chunks recycle inside their node's arena (exact-size free lists);
// slabs return to the backend only when the arena dies.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "sim/effects.hpp"
#include "topology/machine.hpp"

namespace numashare::rt {

/// Cumulative backend activity; all counters relaxed (telemetry only).
struct MemoryBackendStats {
  std::uint64_t allocations = 0;
  std::uint64_t deallocations = 0;
  std::uint64_t migrations = 0;
  std::uint64_t bytes_migrated = 0;
  /// mbind attempts / successes (SystemBackend; both 0 when simulated or
  /// the platform lacks the syscall).
  std::uint64_t bind_attempts = 0;
  std::uint64_t bind_successes = 0;
};

/// Physical placement seam between arenas and the host. allocate() returns
/// page-aligned memory intended for `node`; migrate() copies `bytes` from a
/// `from`-resident buffer into a `to`-resident one, charging whatever that
/// costs on this backend (real copy bandwidth, or simulated link time).
class MemoryBackend {
 public:
  virtual ~MemoryBackend() = default;

  virtual void* allocate(std::size_t bytes, topo::NodeId node) = 0;
  virtual void deallocate(void* p, std::size_t bytes, topo::NodeId node) = 0;
  virtual void migrate(void* dst, const void* src, std::size_t bytes,
                       topo::NodeId from, topo::NodeId to) = 0;
  /// True when placement reaches real kernel policy (mbind succeeded at
  /// least once is observable via stats().bind_successes).
  virtual bool real() const = 0;
  virtual const char* name() const = 0;

  MemoryBackendStats stats() const;

 protected:
  void count_allocation() { allocations_.fetch_add(1, std::memory_order_relaxed); }
  void count_deallocation() { deallocations_.fetch_add(1, std::memory_order_relaxed); }
  void count_migration(std::size_t bytes) {
    migrations_.fetch_add(1, std::memory_order_relaxed);
    bytes_migrated_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void count_bind(bool success) {
    bind_attempts_.fetch_add(1, std::memory_order_relaxed);
    if (success) bind_successes_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> allocations_{0};
  std::atomic<std::uint64_t> deallocations_{0};
  std::atomic<std::uint64_t> migrations_{0};
  std::atomic<std::uint64_t> bytes_migrated_{0};
  std::atomic<std::uint64_t> bind_attempts_{0};
  std::atomic<std::uint64_t> bind_successes_{0};
};

/// Real-host backend: page-aligned heap memory, best-effort MPOL_PREFERRED
/// mbind per allocation (raw syscall — the container bakes no libnuma), and
/// migrate = memcpy (allocate-copy-retire carries the honest cost).
class SystemBackend final : public MemoryBackend {
 public:
  void* allocate(std::size_t bytes, topo::NodeId node) override;
  void deallocate(void* p, std::size_t bytes, topo::NodeId node) override;
  void migrate(void* dst, const void* src, std::size_t bytes, topo::NodeId from,
               topo::NodeId to) override;
  bool real() const override { return true; }
  const char* name() const override { return "system"; }

  /// Process-wide default instance (what a DatablockRegistry uses when the
  /// caller supplies no backend).
  static SystemBackend& process_default();
};

/// Simulated backend: heap memory, but every migration is *priced* against
/// the machine model — bytes / (link bandwidth x remote_link_efficiency x
/// migration_efficiency) — and accumulated as virtual seconds. With
/// time_scale > 0 the price is also paid in real sleep time (scaled), so
/// wall-clock experiments feel the cost shape; tests keep time_scale = 0 and
/// assert on the virtual account instead.
class SimulatedBackend final : public MemoryBackend {
 public:
  SimulatedBackend(const topo::Machine& machine, sim::SimEffects effects = {},
                   double time_scale = 0.0);

  void* allocate(std::size_t bytes, topo::NodeId node) override;
  void deallocate(void* p, std::size_t bytes, topo::NodeId node) override;
  void migrate(void* dst, const void* src, std::size_t bytes, topo::NodeId from,
               topo::NodeId to) override;
  bool real() const override { return false; }
  const char* name() const override { return "simulated"; }

  /// Model price of one hypothetical migration, seconds (no side effects).
  double migrate_seconds(std::size_t bytes, topo::NodeId from, topo::NodeId to) const;
  /// Per-byte cost multiplier a task pays streaming `from` -> executing on
  /// `to` relative to node-local access (1.0 when local): the steal-penalty
  /// formula's bandwidth term (docs/MEMORY.md).
  double remote_access_penalty(topo::NodeId resident, topo::NodeId executing) const;
  /// Cumulative virtual seconds charged by migrate() since construction.
  double virtual_migrate_seconds() const {
    return virtual_seconds_.load(std::memory_order_relaxed);
  }

 private:
  topo::Machine machine_;
  sim::SimEffects effects_;
  double time_scale_;
  std::atomic<double> virtual_seconds_{0.0};
};

/// One node's slab arena. Small chunks bump-carve 64-byte-aligned out of
/// slabs; freed chunks recycle through exact-size free lists; requests of at
/// least half a slab get a dedicated backend allocation. Thread-safe.
class NumaArena {
 public:
  static constexpr std::size_t kDefaultSlabBytes = std::size_t{1} << 20;

  NumaArena(topo::NodeId node, MemoryBackend& backend,
            std::size_t slab_bytes = kDefaultSlabBytes);
  ~NumaArena();

  NumaArena(const NumaArena&) = delete;
  NumaArena& operator=(const NumaArena&) = delete;

  /// Zero-filled (first-touch) chunk of `bytes`, resident on this node.
  void* allocate(std::size_t bytes);
  void deallocate(void* p, std::size_t bytes);

  struct Stats {
    std::uint64_t slab_count = 0;      ///< slabs carved (incl. dedicated)
    std::uint64_t slab_bytes = 0;      ///< backend bytes held
    std::uint64_t used_bytes = 0;      ///< bytes handed out and not freed
    std::uint64_t recycled_chunks = 0; ///< free-list hits
  };
  Stats stats() const;

  topo::NodeId node() const { return node_; }

 private:
  struct Slab {
    void* base = nullptr;
    std::size_t bytes = 0;
  };

  const topo::NodeId node_;
  MemoryBackend& backend_;
  const std::size_t slab_bytes_;

  mutable std::mutex mutex_;
  std::vector<Slab> slabs_;
  std::unordered_set<void*> dedicated_;  ///< big chunks owned 1:1 by backend
  std::byte* bump_ = nullptr;
  std::size_t bump_left_ = 0;
  std::map<std::size_t, std::vector<void*>> free_;  ///< exact-size recycling
  Stats stats_;
};

/// All nodes' arenas behind one façade — what DatablockRegistry allocates
/// from. The backend is shared (non-owning).
class NumaArenaSet {
 public:
  NumaArenaSet(std::uint32_t nodes, MemoryBackend& backend,
               std::size_t slab_bytes = NumaArena::kDefaultSlabBytes);

  void* allocate(std::size_t bytes, topo::NodeId node);
  void deallocate(void* p, std::size_t bytes, topo::NodeId node);

  std::uint32_t node_count() const { return static_cast<std::uint32_t>(arenas_.size()); }
  NumaArena::Stats stats(topo::NodeId node) const;
  MemoryBackend& backend() { return backend_; }

 private:
  MemoryBackend& backend_;
  std::vector<std::unique_ptr<NumaArena>> arenas_;
};

}  // namespace numashare::rt
