#include "runtime/runtime.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/format.hpp"
#include "common/logging.hpp"

namespace numashare::rt {

namespace {
thread_local Runtime* tl_runtime = nullptr;
thread_local std::uint32_t tl_worker_id = kExternalWorker;
}  // namespace

const char* to_string(ControlMode mode) {
  switch (mode) {
    case ControlMode::kNone: return "none";
    case ControlMode::kTotalCount: return "total-count";
    case ControlMode::kCoreSet: return "core-set";
    case ControlMode::kPerNode: return "per-node";
  }
  return "?";
}

Runtime::Runtime(topo::Machine machine, RuntimeOptions options)
    : machine_(std::move(machine)),
      options_(std::move(options)),
      metrics_(machine_.core_count() + 1),
      datablocks_(machine_.node_count(), options_.memory_backend),
      ready_footprint_(machine_.node_count()),
      pool_(machine_.core_count()),
      blocked_per_node_(machine_.node_count()),
      control_rng_(options_.steal_seed ^ 0x3c6ef372fe94f82bull) {
  std::string error;
  NS_REQUIRE(machine_.validate(&error), error.c_str());
  for (auto& b : blocked_per_node_) b.store(0, std::memory_order_relaxed);
  for (auto& f : ready_footprint_) f.store(0, std::memory_order_relaxed);

  node_queues_.reserve(machine_.node_count());
  for (topo::NodeId n = 0; n < machine_.node_count(); ++n) {
    node_queues_.push_back(std::make_unique<NodeQueues>());
  }

  total_target_ = machine_.core_count();
  node_targets_.resize(machine_.node_count());
  for (topo::NodeId n = 0; n < machine_.node_count(); ++n) {
    node_targets_[n] = machine_.cores_in_node(n);
  }

  workers_.reserve(machine_.core_count());
  for (const auto& core : machine_.cores()) {
    auto w = std::make_unique<Worker>();
    w->id = static_cast<std::uint32_t>(workers_.size());
    w->core = core.id;
    w->node = core.node;
    w->rng = Xoshiro256(options_.steal_seed + 0x9e3779b9u * (w->id + 1));
    w->victim_order.reserve(machine_.node_count());
    workers_.push_back(std::move(w));
  }
  for (auto& w : workers_) {
    w->thread = std::thread([this, worker = w.get()] { worker_main(*worker); });
  }

  if (options_.watchdog_deadline_us > 0) {
    obs::WatchdogOptions wd;
    wd.deadline_us = options_.watchdog_deadline_us;
    wd.tracer = options_.tracer;
    watchdog_ = std::make_unique<obs::Watchdog>(
        worker_count(), wd, [this](std::vector<obs::WatchdogSample>& samples) {
          for (std::uint32_t i = 0; i < samples.size(); ++i) {
            Worker& w = *workers_[i];
            samples[i].heartbeat = w.heartbeat.load(std::memory_order_relaxed);
            // A policy-blocked worker is *supposed* to be silent: it is not
            // commanded online, so the watchdog must not accuse it. This is
            // the "app ignoring commands" vs "OS not scheduling" split.
            samples[i].commanded_online =
                !w.policy_blocked.load(std::memory_order_acquire);
          }
        });
    watchdog_->start();
  }
  NS_LOG_DEBUG("rt", "runtime '{}' started with {} workers on {} nodes", options_.name,
               workers_.size(), machine_.node_count());
}

Runtime::~Runtime() {
  // The watchdog samples workers_; stop it before any worker can be joined.
  watchdog_.reset();
  stop_.store(true, std::memory_order_release);
  wake_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  // Tasks whose dependencies never fired or that were still queued are
  // reclaimed by pool_'s destructor sweep (task_pool.hpp).
}

// --- task graph ------------------------------------------------------------

std::uint32_t Runtime::current_shard() const {
  return tl_runtime == this && tl_worker_id != kExternalWorker ? tl_worker_id
                                                              : pool_.external_shard();
}

EventPtr Runtime::spawn(TaskFn fn, const std::vector<EventPtr>& deps, topo::NodeId affinity) {
  return spawn_tagged(std::move(fn), deps, affinity, kAnyNode, 0);
}

EventPtr Runtime::spawn_tagged(TaskFn fn, const std::vector<EventPtr>& deps,
                               topo::NodeId affinity, topo::NodeId footprint_node,
                               std::uint64_t footprint_bytes) {
  NS_REQUIRE(fn != nullptr, "task function must be callable");
  NS_REQUIRE(affinity == kAnyNode || affinity < machine_.node_count(),
             "affinity node out of range");
  const std::uint32_t shard = current_shard();
  TaskNode* task =
      pool_.allocate(shard, std::move(fn), static_cast<std::uint32_t>(deps.size()),
                     affinity, footprint_node, footprint_bytes);
  EventPtr done = task->done;
  // Relaxed is enough: the increment is ordered before the task's retirement
  // decrement through the queue handoff (release push / acquire pop), and
  // same-variable coherence means no waiter can read past its own spawns.
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  metrics_.shard(shard).tasks_spawned.fetch_add(1, std::memory_order_relaxed);
  if (deps.empty()) {
    enqueue_ready(task);
  } else {
    for (const auto& dep : deps) {
      NS_REQUIRE(dep != nullptr, "null dependency event");
      dep->add_waiter(this, task);
    }
  }
  return done;
}

EventPtr Runtime::spawn_with_data(TaskFn fn, const std::vector<DataAccess>& accesses,
                                  const std::vector<EventPtr>& deps,
                                  topo::NodeId affinity) {
  NS_REQUIRE(!accesses.empty(), "spawn_with_data needs at least one access");
  std::vector<EventPtr> all_deps = deps;

  for (const auto& access : accesses) {
    NS_REQUIRE(access.db != nullptr, "null datablock in access list");
  }
  // Derive the affinity hint from the data when the caller gave none: the
  // first written block wins (that is where the new bytes land), else the
  // first read block.
  topo::NodeId hint = affinity;
  if (hint == kAnyNode) {
    for (const auto& access : accesses) {
      if (access.mode == DataAccess::Mode::kWrite) {
        hint = access.db->node();
        break;
      }
    }
    if (hint == kAnyNode) hint = accesses.front().db->node();
  }

  // Residency footprint: sum the declared bytes per node and tag the task
  // with the dominant node + its resident bytes — what a cross-node thief
  // would pull over a link, and what the poach threshold compares against.
  // Touch counts feed the migrator's hotness ordering.
  topo::NodeId footprint_node = kAnyNode;
  std::uint64_t footprint_bytes = 0;
  {
    std::vector<std::uint64_t> per_node(machine_.node_count(), 0);
    for (const auto& access : accesses) {
      access.db->record_touch();
      const topo::NodeId n = access.db->node();
      if (n < per_node.size()) per_node[n] += access.db->size_bytes();
    }
    for (topo::NodeId n = 0; n < per_node.size(); ++n) {
      if (per_node[n] > footprint_bytes) {
        footprint_bytes = per_node[n];
        footprint_node = n;
      }
    }
  }

  // Collect derived dependencies under the chain lock, then spawn, then
  // publish the task's completion into the chains (still under the lock so
  // two spawns touching the same block serialize their chain updates).
  std::scoped_lock lock(data_chain_mutex_);
  for (const auto& access : accesses) {
    auto& chain = data_chains_[access.db->id()];
    if (access.mode == DataAccess::Mode::kRead) {
      if (chain.last_write) all_deps.push_back(chain.last_write);
    } else {
      if (chain.last_write) all_deps.push_back(chain.last_write);
      for (auto& reader : chain.readers_since_write) all_deps.push_back(reader);
    }
  }
  EventPtr done = spawn_tagged(std::move(fn), all_deps, hint, footprint_node, footprint_bytes);
  for (const auto& access : accesses) {
    auto& chain = data_chains_[access.db->id()];
    if (access.mode == DataAccess::Mode::kRead) {
      chain.readers_since_write.push_back(done);
    } else {
      chain.last_write = done;
      chain.readers_since_write.clear();
    }
  }
  return done;
}

EventPtr Runtime::create_event() { return std::make_shared<Event>(); }

LatchEventPtr Runtime::create_latch(std::uint32_t count) {
  NS_REQUIRE(count > 0, "latch needs a positive count");
  return std::make_shared<LatchEvent>(count);
}

void Runtime::on_dependency_satisfied(TaskNode* task) {
  if (task->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    enqueue_ready(task);
  }
}

void Runtime::enqueue_ready(TaskNode* task) {
  // Sampled handoff stamp: one in 2^latency_sample_shift ready tasks (per
  // submitting thread) carries its queue-entry time, so run_task can record
  // the ready->running interval without putting a clock read on every task.
  if (options_.latency_histograms) {
    thread_local std::uint64_t sample_tick = 0;
    const std::uint64_t mask = (1ull << options_.latency_sample_shift) - 1;
    if ((sample_tick++ & mask) == 0) task->submit_ns = obs::now_ns();
  }
  // Residency accounting for the steal-penalty score: these bytes are ready
  // to be pulled from footprint_node until the task actually runs
  // (run_task subtracts). Poach re-injections bypass this path on purpose —
  // the bytes never stopped being ready.
  if (task->footprint_bytes != 0 && task->footprint_node != kAnyNode) {
    ready_footprint_[task->footprint_node].fetch_add(task->footprint_bytes,
                                                     std::memory_order_relaxed);
  }
  // Same-runtime worker thread with compatible affinity: push locally.
  if (tl_runtime == this && tl_worker_id != kExternalWorker) {
    Worker& w = *workers_[tl_worker_id];
    if (task->affinity == kAnyNode || task->affinity == w.node) {
      w.deque.push(task);
      wake_one_idle(w.node);
      return;
    }
  }
  // Unpinned injected tasks round-robin across nodes in bursts of 64, not
  // one by one: consecutive submissions land in the same ring, so a draining
  // worker stays cache-hot and the wake target stays stable, while sustained
  // streams still spread over every node.
  static std::atomic<std::uint32_t> spread{0};
  const topo::NodeId node =
      task->affinity != kAnyNode
          ? task->affinity
          : (spread.fetch_add(1, std::memory_order_relaxed) / 64) % machine_.node_count();
  push_injection(node, task);
  wake_one_idle(node);
}

void Runtime::push_injection(topo::NodeId node, TaskNode* task) {
  auto& q = *node_queues_[node];
  if (q.ring.try_push(task)) return;
  // Ring full — the rare case; spill to the overflow list. A full ring means
  // producers are outrunning consumers, so also yield the producer's
  // timeslice: on an oversubscribed machine this is the backpressure that
  // lets workers drain instead of growing the overflow without bound.
  {
    std::scoped_lock lock(q.overflow_mutex);
    q.overflow.push_back(task);
    q.overflow_size.store(static_cast<std::uint32_t>(q.overflow.size()),
                          std::memory_order_release);
  }
  std::this_thread::yield();
}

TaskNode* Runtime::pop_injection(topo::NodeId node) {
  auto& q = *node_queues_[node];
  // Overflow first whenever it is non-empty, so spilled tasks cannot be
  // starved by a permanently busy ring; the usual cost is one relaxed load
  // of a zero.
  if (q.overflow_size.load(std::memory_order_acquire) != 0) {
    std::scoped_lock lock(q.overflow_mutex);
    if (!q.overflow.empty()) {
      TaskNode* task = q.overflow.back();
      q.overflow.pop_back();
      q.overflow_size.store(static_cast<std::uint32_t>(q.overflow.size()),
                            std::memory_order_release);
      return task;
    }
  }
  return q.ring.try_pop().value_or(nullptr);
}

TaskNode* Runtime::find_task(Worker& w) {
  if (TaskNode* task = w.deque.pop()) return task;
  if (TaskNode* task = pop_injection(w.node)) return task;

  // Empty-handed locally: everything below is a steal/poach. The clock read
  // sits off the throughput path (local pops above return before it), so
  // steal latency is recorded unsampled.
  const std::uint64_t steal_start_ns =
      options_.latency_histograms ? obs::now_ns() : 0;
  const auto record_steal = [&](TaskNode* task) -> TaskNode* {
    if (steal_start_ns != 0) {
      const std::uint64_t now = obs::now_ns();
      latency_.hist(w.id, obs::LatencyKind::kSteal)
          .record(now > steal_start_ns ? now - steal_start_ns : 0);
    }
    return task;
  };

  // Steal: same NUMA node first (locality), then the rest of the machine.
  const auto try_steal_range = [&](const std::vector<topo::CoreId>& victims) -> TaskNode* {
    if (victims.empty()) return nullptr;
    const auto start = static_cast<std::size_t>(w.rng.uniform_u64(victims.size()));
    for (std::size_t k = 0; k < victims.size(); ++k) {
      Worker& victim = *workers_[victims[(start + k) % victims.size()]];
      if (victim.id == w.id) continue;
      if (TaskNode* task = victim.deque.steal()) return task;
    }
    return nullptr;
  };

  if (TaskNode* task = try_steal_range(machine_.node(w.node).cores)) {
    MetricsShard& m = metrics_.shard(w.id);
    m.steals.fetch_add(1, std::memory_order_relaxed);
    m.local_steals.fetch_add(1, std::memory_order_relaxed);
    return record_steal(task);
  }

  // Poach veto: a cross-node acquisition of a task with a heavy resident
  // footprint elsewhere is bounced home — once (the poach_skipped flag keeps
  // liveness: the second acquisition always proceeds, so a policy-blocked
  // home node can still be helped). Returns true when the task was bounced.
  const auto veto_poach = [&](TaskNode* task) -> bool {
    if (!options_.locality_aware_stealing || options_.poach_threshold_bytes == 0) {
      return false;
    }
    if (task->poach_skipped || task->footprint_node == kAnyNode ||
        task->footprint_node == w.node ||
        task->footprint_bytes < options_.poach_threshold_bytes) {
      return false;
    }
    task->poach_skipped = true;
    metrics_.shard(w.id).steal_vetoes.fetch_add(1, std::memory_order_relaxed);
    push_injection(task->footprint_node, task);
    wake_one_idle(task->footprint_node);
    return true;
  };
  // Metrics for a cross-node acquisition that stuck.
  const auto count_remote = [&](TaskNode* task, bool deque_steal) {
    MetricsShard& m = metrics_.shard(w.id);
    if (deque_steal) {
      m.steals.fetch_add(1, std::memory_order_relaxed);
      m.remote_steals.fetch_add(1, std::memory_order_relaxed);
    }
    if (task->footprint_node != kAnyNode && task->footprint_node != w.node &&
        task->footprint_bytes != 0) {
      m.bytes_pulled_remote.fetch_add(task->footprint_bytes, std::memory_order_relaxed);
    }
  };

  // Cross-node work is a last resort, and a *reluctant* one: respect other
  // nodes' affinity hints until this worker has come up dry a few times.
  if (w.dry_rounds >= options_.cross_node_reluctance) {
    // Victim-node order. Locality-aware: cheapest expected pull first — the
    // penalty for helping node n is the ready-task datablock footprint
    // resident there divided by the bandwidth of the link those bytes would
    // cross to reach this worker (docs/MEMORY.md). Blind: index order, the
    // pre-PR8 behavior and the bench's baseline.
    auto& order = w.victim_order;  // pre-reserved: no allocation mid-steal
    order.clear();
    for (topo::NodeId n = 0; n < machine_.node_count(); ++n) {
      if (n == w.node) continue;
      order.emplace_back(0.0, n);
    }
    // Ranking a single candidate is pure steal-path tax (the memory bench
    // gates this path's p99 on a two-node box), so penalties are only
    // computed when there is an order to decide.
    if (options_.locality_aware_stealing && order.size() > 1) {
      for (auto& [penalty, n] : order) {
        const auto resident = static_cast<double>(
            ready_footprint_[n].load(std::memory_order_relaxed));
        const double bw = machine_.link_bandwidth(n, w.node);
        penalty = bw > 0.0 ? resident / bw : resident;
      }
      std::stable_sort(order.begin(), order.end(),
                       [](const auto& a, const auto& b) { return a.first < b.first; });
    }
    // After a veto, move to the next victim node instead of re-popping the
    // same queue — the bounced task must get a chance to be picked up by a
    // home-node worker before this thief sees it again.
    for (const auto& [penalty, n] : order) {
      if (TaskNode* task = pop_injection(n)) {
        if (veto_poach(task)) continue;
        count_remote(task, false);
        return record_steal(task);
      }
    }
    for (const auto& [penalty, n] : order) {
      if (TaskNode* task = try_steal_range(machine_.node(n).cores)) {
        if (veto_poach(task)) continue;
        count_remote(task, true);
        return record_steal(task);
      }
    }
  }

  metrics_.shard(w.id).failed_steal_rounds.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void Runtime::run_task(TaskNode* task, TaskContext& context, std::uint64_t& retired) {
  if (task->footprint_bytes != 0 && task->footprint_node != kAnyNode) {
    ready_footprint_[task->footprint_node].fetch_sub(task->footprint_bytes,
                                                     std::memory_order_relaxed);
  }
  if (task->submit_ns != 0) {
    const std::uint64_t now = obs::now_ns();
    latency_.hist(current_shard(), obs::LatencyKind::kHandoff)
        .record(now > task->submit_ns ? now - task->submit_ns : 0);
  }
  {
    const std::uint32_t lane =
        context.worker_id == kExternalWorker ? worker_count() : context.worker_id;
    trace::Span span(options_.tracer, "task", "rt", lane);
    task->fn(context);
  }
  const std::uint32_t shard = current_shard();
  metrics_.shard(shard).tasks_executed.fetch_add(1, std::memory_order_relaxed);
  task->done->satisfy();
  pool_.release(shard, task);
  ++retired;
}

void Runtime::flush_retired(std::uint64_t& retired) {
  if (retired == 0) return;
  const std::uint64_t n = retired;
  retired = 0;
  if (outstanding_.fetch_sub(n, std::memory_order_acq_rel) == n) {
    // True 0-crossing. Pairing lock: a waiter must not check-and-sleep
    // between our decrement and notify.
    { std::scoped_lock lock(idle_mutex_); }
    idle_cv_.notify_all();
  }
}

void Runtime::wait_idle() {
  NS_REQUIRE(tl_runtime != this || tl_worker_id == kExternalWorker,
             "wait_idle from a worker thread would deadlock the pool");
  std::unique_lock lock(idle_mutex_);
  idle_cv_.wait(lock, [&] { return outstanding_.load(std::memory_order_acquire) == 0; });
}

void Runtime::wait_and_assist(const EventPtr& event) {
  NS_REQUIRE(event != nullptr, "null event");
  NS_REQUIRE(tl_runtime != this || tl_worker_id == kExternalWorker,
             "workers must not wait_and_assist");
  TaskContext context{*this, kExternalWorker, 0};
  std::uint32_t next_node = 0;
  std::uint64_t retired = 0;
  while (!event->satisfied()) {
    TaskNode* task = nullptr;
    for (std::uint32_t i = 0; i < machine_.node_count() && !task; ++i) {
      task = pop_injection((next_node + i) % machine_.node_count());
    }
    next_node = (next_node + 1) % machine_.node_count();
    if (!task) {
      for (auto& w : workers_) {
        if ((task = w->deque.steal()) != nullptr) break;
      }
    }
    if (task) {
      run_task(task, context, retired);
      // Assist threads flush per task: external completion visibility
      // matters more than batching off the pool's critical path.
      flush_retired(retired);
    } else {
      event->wait_for_us(200);
    }
  }
}

DatablockPtr Runtime::create_datablock(std::size_t bytes, topo::NodeId node) {
  return datablocks_.create(bytes, node);
}

MigrationReport Runtime::migrate_datablocks_toward(
    const std::vector<std::uint32_t>& node_weights) {
  if (options_.migration_budget_bytes == 0) return {};
  const MigrationReport report =
      datablocks_.migrate_toward(node_weights, options_.migration_budget_bytes);
  if (report.blocks_moved > 0) {
    MetricsShard& shard = metrics_.shard(current_shard());
    shard.blocks_migrated.fetch_add(report.blocks_moved, std::memory_order_relaxed);
    shard.bytes_migrated.fetch_add(report.bytes_moved, std::memory_order_relaxed);
    if (options_.tracer != nullptr) {
      options_.tracer->instant("datablock-migrate", "rt", worker_count() + 1);
    }
    NS_LOG_DEBUG("rt", "{} migrated {} datablocks / {} bytes toward new node targets",
                 options_.name, report.blocks_moved, report.bytes_moved);
  }
  return report;
}

// --- worker loop -------------------------------------------------------

void Runtime::worker_main(Worker& w) {
  tl_runtime = this;
  tl_worker_id = w.id;
  set_current_thread_name(ns_format("{}/w{}", options_.name.substr(0, 9), w.id));
  switch (options_.bind_mode) {
    case BindMode::kNone:
      break;
    case BindMode::kPerCore:
      topo::bind_current_thread(topo::CpuSet::single(w.core));
      break;
    case BindMode::kPerNode:
      topo::bind_current_thread(topo::CpuSet::whole_node(machine_, w.node));
      break;
  }

  std::uint64_t retired = 0;  // completions not yet published to outstanding_
  while (!stop_.load(std::memory_order_acquire)) {
    // Liveness proof for the watchdog: this line is reached on every pass —
    // busy, stealing, or bouncing off a 500us park timeout — so a heartbeat
    // that stops moving means the OS stopped scheduling this thread.
    w.heartbeat.fetch_add(1, std::memory_order_relaxed);
    if (controls_engaged_.load(std::memory_order_acquire)) {
      flush_retired(retired);  // never carry a batch into a blocking episode
      maybe_block(w);
      if (stop_.load(std::memory_order_acquire)) break;
    }

    TaskContext context{*this, w.id, w.node};
    if (TaskNode* task = find_task(w)) {
      w.dry_rounds = 0;
      run_task(task, context, retired);
      if (retired >= kRetireBatch) flush_retired(retired);
      continue;
    }
    ++w.dry_rounds;
    flush_retired(retired);  // about to go idle: publish completions now

    // Dry spell: yield-spin a few rounds before touching the parker. The
    // yields give producers (and siblings) the CPU to refill the queues, and
    // a worker that stays out of the idle set keeps the submit path on its
    // no-wake fast path — so short gaps in the task stream cost neither side
    // a futex round-trip nor a wakeup preemption. Only a genuinely dry
    // worker falls through to the park below. Skipped while blocking
    // controls are engaged: a yield under CPU load can stall for whole
    // timeslices, postponing this worker's next maybe_block() check, and the
    // paper's near-immediate control enactment outranks idle-path speed.
    TaskNode* spun = nullptr;
    if (!controls_engaged_.load(std::memory_order_acquire)) {
      for (std::uint32_t spin = 0; spin < kIdleSpinRounds && spun == nullptr; ++spin) {
        if (stop_.load(std::memory_order_acquire)) break;
        std::this_thread::yield();
        ++w.dry_rounds;  // spin rounds count toward cross-node reluctance
        spun = find_task(w);
      }
    }
    if (spun != nullptr) {
      w.dry_rounds = 0;
      run_task(spun, context, retired);
      if (retired >= kRetireBatch) flush_retired(retired);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) break;

    // Nothing found: publish idleness, re-check (to close the submit/park
    // race), then park briefly.
    publish_idle(w);
    if (TaskNode* task = find_task(w)) {
      retract_idle(w);
      w.dry_rounds = 0;
      run_task(task, context, retired);
      continue;
    }
    metrics_.shard(w.id).idle_parks.fetch_add(1, std::memory_order_relaxed);
    w.parker.park_for_us(options_.idle_park_us);
    retract_idle(w);
    // A waker stamped obs::now_ns() into wake_ns when it unparked us; the
    // interval to here is the park/unpark wake latency.
    if (const std::uint64_t t = w.wake_ns.exchange(0, std::memory_order_relaxed);
        t != 0) {
      const std::uint64_t now = obs::now_ns();
      latency_.hist(w.id, obs::LatencyKind::kWake).record(now > t ? now - t : 0);
    }
  }
  flush_retired(retired);
  tl_runtime = nullptr;
  tl_worker_id = kExternalWorker;
}

bool Runtime::over_block_budget(const Worker& w) const {
  switch (mode_) {
    case ControlMode::kNone:
      return false;
    case ControlMode::kTotalCount:
      return worker_count() - blocked_count_.load(std::memory_order_relaxed) > total_target_;
    case ControlMode::kCoreSet:
      return blocked_cores_.contains(w.core);
    case ControlMode::kPerNode:
      return machine_.cores_in_node(w.node) -
                 blocked_per_node_[w.node].load(std::memory_order_relaxed) >
             node_targets_[w.node];
  }
  return false;
}

void Runtime::maybe_block(Worker& w) {
  if (!controls_engaged_.load(std::memory_order_acquire)) return;
  {
    std::scoped_lock lock(control_mutex_);
    if (!over_block_budget(w)) return;
    w.block_requested.store(false, std::memory_order_relaxed);
    w.policy_blocked.store(true, std::memory_order_release);
    blocked_count_.fetch_add(1, std::memory_order_relaxed);
    blocked_per_node_[w.node].fetch_add(1, std::memory_order_relaxed);
    metrics_.shard(w.id).blocks.fetch_add(1, std::memory_order_relaxed);
  }
  NS_LOG_TRACE("rt", "{} worker {} blocked", options_.name, w.id);
  {
    trace::Span span(options_.tracer, "blocked", "rt", w.id);
    while (w.policy_blocked.load(std::memory_order_acquire) &&
           !stop_.load(std::memory_order_acquire)) {
      w.parker.park_for_us(10'000);
    }
  }
}

void Runtime::publish_idle(Worker& w) {
  // Drop any wake stamp left from a prior idle episode (the waker raced our
  // retract): only wakes aimed at *this* park should be measured.
  w.wake_ns.store(0, std::memory_order_relaxed);
  idle_count_.fetch_add(1, std::memory_order_relaxed);
  w.idle.store(true, std::memory_order_release);
}

void Runtime::retract_idle(Worker& w) {
  w.idle.store(false, std::memory_order_release);
  idle_count_.fetch_sub(1, std::memory_order_relaxed);
}

void Runtime::wake_one_idle(topo::NodeId preferred_node) {
  // Saturated pool: nobody to wake, skip the scan (the common case on the
  // spawn hot path — one relaxed load of a zero).
  if (idle_count_.load(std::memory_order_relaxed) == 0) return;
  // Same-node idle workers first, then anyone. The idle flag is left for
  // the worker itself to retract: re-unparking an already-permitted parker
  // is cheap, and eager wakes double as producer backpressure when the
  // machine is oversubscribed.
  const auto stamp_and_unpark = [&](Worker& w) {
    // First waker of this idle episode stamps the request time (CAS from 0);
    // the worker measures request -> resume when it comes back. The relaxed
    // pre-check matters: CAS arguments evaluate unconditionally, and an
    // oversubscribed producer re-wakes the same not-yet-scheduled worker on
    // every spawn — without the check that is a clock read per spawn, which
    // alone blows the <2% recording-overhead budget. Losing a stamp to the
    // stale-read race just drops one wake sample, never corrupts one.
    if (options_.latency_histograms &&
        w.wake_ns.load(std::memory_order_relaxed) == 0) {
      std::uint64_t expected = 0;
      w.wake_ns.compare_exchange_strong(expected, obs::now_ns(),
                                        std::memory_order_relaxed);
    }
    w.parker.unpark();
  };
  for (auto core : machine_.node(preferred_node).cores) {
    Worker& w = *workers_[core];
    if (w.idle.load(std::memory_order_acquire)) {
      stamp_and_unpark(w);
      return;
    }
  }
  for (auto& w : workers_) {
    if (w->idle.load(std::memory_order_acquire)) {
      stamp_and_unpark(*w);
      return;
    }
  }
}

void Runtime::wake_all() {
  for (auto& w : workers_) {
    if (stop_.load(std::memory_order_acquire)) {
      w->policy_blocked.store(false, std::memory_order_release);
    }
    w->parker.unpark();
  }
}

// --- agent control surface ----------------------------------------------

void Runtime::set_total_thread_target(std::uint32_t target) {
  std::scoped_lock lock(control_mutex_);
  mode_ = ControlMode::kTotalCount;
  controls_engaged_.store(true, std::memory_order_release);
  total_target_ = std::min(target, worker_count());
  rebalance_blocking_locked();
}

void Runtime::set_blocked_cores(const topo::CpuSet& cores) {
  std::scoped_lock lock(control_mutex_);
  mode_ = ControlMode::kCoreSet;
  controls_engaged_.store(true, std::memory_order_release);
  blocked_cores_ = cores;
  rebalance_blocking_locked();
}

void Runtime::set_node_thread_targets(const std::vector<std::uint32_t>& targets) {
  NS_REQUIRE(targets.size() == machine_.node_count(), "one target per NUMA node");
  std::scoped_lock lock(control_mutex_);
  mode_ = ControlMode::kPerNode;
  controls_engaged_.store(true, std::memory_order_release);
  for (topo::NodeId n = 0; n < machine_.node_count(); ++n) {
    node_targets_[n] = std::min(targets[n], machine_.cores_in_node(n));
  }
  rebalance_blocking_locked();
}

void Runtime::clear_thread_controls() {
  std::scoped_lock lock(control_mutex_);
  mode_ = ControlMode::kNone;
  controls_engaged_.store(false, std::memory_order_release);
  rebalance_blocking_locked();
}

void Runtime::rebalance_blocking_locked() {
  if (options_.tracer != nullptr) {
    options_.tracer->instant("control-change", "rt", worker_count() + 1);
  }
  // Unblock whatever the new policy no longer wants blocked. Blocking in the
  // other direction stays lazy (workers block at task boundaries; nothing is
  // preempted — the paper's option 1 semantics).
  std::vector<Worker*> blocked;
  for (auto& w : workers_) {
    if (w->policy_blocked.load(std::memory_order_acquire)) blocked.push_back(w.get());
  }

  const auto unblock = [&](Worker* w) {
    w->policy_blocked.store(false, std::memory_order_release);
    blocked_count_.fetch_sub(1, std::memory_order_relaxed);
    blocked_per_node_[w->node].fetch_sub(1, std::memory_order_relaxed);
    // Unblocks are granted by the control caller, not the woken worker:
    // account them on the caller's shard (totals are all that matter).
    metrics_.shard(current_shard()).unblocks.fetch_add(1, std::memory_order_relaxed);
    w->parker.unpark();
  };

  switch (mode_) {
    case ControlMode::kNone:
      for (auto* w : blocked) unblock(w);
      break;
    case ControlMode::kTotalCount: {
      // "These threads are selected randomly" — shuffle the blocked list and
      // release from the front until the running count reaches the target.
      for (std::size_t i = blocked.size(); i > 1; --i) {
        std::swap(blocked[i - 1], blocked[control_rng_.uniform_u64(i)]);
      }
      std::size_t k = 0;
      while (k < blocked.size() &&
             worker_count() - blocked_count_.load(std::memory_order_relaxed) < total_target_) {
        unblock(blocked[k++]);
      }
      break;
    }
    case ControlMode::kCoreSet:
      for (auto* w : blocked) {
        if (!blocked_cores_.contains(w->core)) unblock(w);
      }
      break;
    case ControlMode::kPerNode: {
      for (std::size_t i = blocked.size(); i > 1; --i) {
        std::swap(blocked[i - 1], blocked[control_rng_.uniform_u64(i)]);
      }
      for (auto* w : blocked) {
        const auto running = machine_.cores_in_node(w->node) -
                             blocked_per_node_[w->node].load(std::memory_order_relaxed);
        if (running < node_targets_[w->node]) unblock(w);
      }
      break;
    }
  }

  // Kick idle workers so newly-applicable blocks are noticed "almost
  // immediately" even on an idle pool.
  for (auto& w : workers_) {
    if (!w->policy_blocked.load(std::memory_order_acquire)) w->parker.unpark();
  }
}

ControlMode Runtime::control_mode() const {
  std::scoped_lock lock(control_mutex_);
  return mode_;
}

std::uint32_t Runtime::running_threads() const {
  return worker_count() - blocked_count_.load(std::memory_order_acquire);
}

std::uint32_t Runtime::blocked_threads() const {
  return blocked_count_.load(std::memory_order_acquire);
}

std::vector<std::uint32_t> Runtime::running_per_node() const {
  std::vector<std::uint32_t> out(machine_.node_count());
  for (topo::NodeId n = 0; n < machine_.node_count(); ++n) {
    out[n] =
        machine_.cores_in_node(n) - blocked_per_node_[n].load(std::memory_order_acquire);
  }
  return out;
}

void Runtime::report_progress(std::uint64_t amount) {
  metrics_.shard(current_shard()).progress.fetch_add(amount, std::memory_order_relaxed);
}

void Runtime::report_work(double gflop, double gbytes) {
  MetricsShard& shard = metrics_.shard(current_shard());
  if (gflop > 0.0) {
    shard.micro_gflop.fetch_add(static_cast<std::uint64_t>(gflop * 1e6),
                                std::memory_order_relaxed);
  }
  if (gbytes > 0.0) {
    shard.micro_gbytes.fetch_add(static_cast<std::uint64_t>(gbytes * 1e6),
                                 std::memory_order_relaxed);
  }
}

Runtime::LatencySnapshot Runtime::latency_snapshot() const {
  LatencySnapshot s;
  latency_.aggregate_into(obs::LatencyKind::kHandoff, s.handoff);
  latency_.aggregate_into(obs::LatencyKind::kSteal, s.steal);
  latency_.aggregate_into(obs::LatencyKind::kWake, s.wake);
  latency_.aggregate_into(obs::LatencyKind::kEnact, s.enact);
  return s;
}

void Runtime::record_enactment_lag(std::uint64_t ns) {
  latency_.hist(current_shard(), obs::LatencyKind::kEnact).record(ns);
}

MetricsSnapshot Runtime::stats() const {
  MetricsSnapshot s;
  metrics_.aggregate_into(s);
  if (watchdog_) s.stalled_workers = watchdog_->stalled_count();
  s.total_workers = worker_count();
  s.running_threads = running_threads();
  s.blocked_threads = blocked_threads();
  s.running_per_node = running_per_node();
  s.outstanding_tasks = outstanding_.load(std::memory_order_acquire);
  std::uint64_t depth = 0;
  for (const auto& w : workers_) depth += w->deque.size_approx();
  for (topo::NodeId n = 0; n < machine_.node_count(); ++n) {
    depth += node_queues_[n]->ring.size_approx();
    depth += node_queues_[n]->overflow_size.load(std::memory_order_acquire);
  }
  s.ready_queue_depth = depth;
  return s;
}

}  // namespace numashare::rt
