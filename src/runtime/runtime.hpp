// The task-based runtime — an OCR-Vx-style engine built for dynamic CPU core
// allocation (paper §II).
//
// One worker thread per core of the (possibly virtual) machine description.
// Work distribution is NUMA-aware work stealing: each worker owns a
// Chase-Lev deque, each node owns an injection queue for affinity-hinted and
// external submissions, and steal victims are tried same-node first.
//
// The paper's three thread-blocking options are first-class controls:
//
//  * Option 1 — set_total_thread_target(k): workers block on *inactivity*
//    (at a task boundary or while idle) whenever more than k are running;
//    nothing preempts a running task. Raising the target unblocks randomly
//    chosen workers immediately.
//  * Option 2 — set_blocked_cores(set): the worker bound to each named core
//    parks as soon as its current task finishes (or at once if idle).
//  * Option 3 — set_node_thread_targets(counts): option 1 applied per NUMA
//    node, with workers bound to node-wide cpusets rather than single cores.
//
// All controls may be driven externally (the agent) while tasks are running.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mpmc_ring.hpp"
#include "common/rng.hpp"
#include "common/threading.hpp"
#include "obs/histogram.hpp"
#include "obs/watchdog.hpp"
#include "runtime/datablock.hpp"
#include "runtime/event.hpp"
#include "runtime/foreign.hpp"
#include "runtime/metrics.hpp"
#include "runtime/task.hpp"
#include "runtime/task_pool.hpp"
#include "runtime/wsdeque.hpp"
#include "topology/affinity.hpp"
#include "topology/machine.hpp"
#include "trace/trace.hpp"

namespace numashare::rt {

/// How worker threads are pinned (paper §II option descriptions).
enum class BindMode {
  kNone,     // unbound; the OS places threads
  kPerCore,  // one worker hard-bound per core (option 2 style)
  kPerNode,  // workers bound to their node's cpuset (option 3 style)
};

/// Which blocking control is active.
enum class ControlMode : std::uint8_t {
  kNone,        // all workers run
  kTotalCount,  // option 1
  kCoreSet,     // option 2
  kPerNode,     // option 3
};

struct RuntimeOptions {
  std::string name = "app";
  BindMode bind_mode = BindMode::kNone;
  /// Park timeout for idle workers; bounds wakeup latency without busy-wait.
  std::int64_t idle_park_us = 500;
  /// A worker only pulls work homed on *other* NUMA nodes after this many
  /// consecutive empty-handed rounds — locality hints stay sticky while the
  /// home node has runnable workers, yet starvation is impossible (blocked
  /// or overloaded nodes get helped within a few idle periods).
  std::uint32_t cross_node_reluctance = 2;
  std::uint64_t steal_seed = 0x715e;
  /// Optional execution tracer (non-owning; must outlive the runtime).
  /// Records one span per task execution and per blocking episode, plus
  /// instants for control changes — lanes are worker ids.
  trace::Tracer* tracer = nullptr;
  /// Always-on latency histograms (handoff/steal/wake/enactment-lag); the
  /// record paths are wait-free and allocation-free, overhead is bounded by
  /// sampling (below) and gated in bench_spawn at < 2%.
  bool latency_histograms = true;
  /// Handoff latency samples one in 2^latency_sample_shift ready tasks (per
  /// submitting thread); steal/wake/enactment are rare enough to record
  /// unsampled. 0 stamps every task (tests).
  std::uint32_t latency_sample_shift = 6;
  /// Scheduler-latency watchdog deadline: a commanded-online worker whose
  /// heartbeat is silent this long is reported stalled (the OS isn't
  /// scheduling it). 0 (default) = watchdog off.
  std::int64_t watchdog_deadline_us = 0;
  /// Locality-aware stealing (docs/MEMORY.md): rank cross-node victims by
  /// the remote-datablock pull penalty and bounce footprint-heavy tasks back
  /// home once (poach threshold). Off = the locality-blind baseline the
  /// memory bench compares against.
  bool locality_aware_stealing = true;
  /// A cross-node thief bounces a task home (once) when at least this many
  /// of its datablock bytes are resident on another node — a task with
  /// 100 MB on node 0 must not move to node 3 for a microsecond queue win.
  /// 0 disables the veto.
  std::uint64_t poach_threshold_bytes = std::uint64_t{4} << 20;
  /// Per-reallocation-tick byte budget for datablock migration
  /// (migrate_datablocks_toward); bounds churn. 0 disables migration.
  std::uint64_t migration_budget_bytes = std::uint64_t{32} << 20;
  /// Physical placement backend for datablock arenas (non-owning; must
  /// outlive the runtime). Null = the process-wide SystemBackend.
  MemoryBackend* memory_backend = nullptr;
};

class Runtime {
 public:
  Runtime(topo::Machine machine, RuntimeOptions options = {});
  /// Stops workers after their current task; undrained tasks are reclaimed.
  /// Call wait_idle() first for graceful completion.
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  const topo::Machine& machine() const { return machine_; }
  const std::string& name() const { return options_.name; }
  std::uint32_t worker_count() const { return static_cast<std::uint32_t>(workers_.size()); }

  // --- task graph API -------------------------------------------------
  /// Create a task depending on `deps`; runs when all fire. Returns the
  /// task's completion event. `affinity` hints the execution node.
  EventPtr spawn(TaskFn fn, const std::vector<EventPtr>& deps = {},
                 topo::NodeId affinity = kAnyNode);

  /// Declared datablock access for spawn_with_data.
  struct DataAccess {
    DatablockPtr db;
    enum class Mode : std::uint8_t { kRead, kWrite } mode = Mode::kRead;
    static DataAccess read(DatablockPtr block) {
      return {std::move(block), Mode::kRead};
    }
    static DataAccess write(DatablockPtr block) {
      return {std::move(block), Mode::kWrite};
    }
  };

  /// OCR-style data-driven spawn: dependencies are *derived* from the
  /// declared accesses — a reader waits for the block's last writer;
  /// a writer additionally waits for every reader since (anti-dependency).
  /// Reads of the same block run concurrently. Unless `affinity` is given,
  /// the task is hinted to the first written (else first read) block's node.
  /// Extra event dependencies compose via `deps`.
  EventPtr spawn_with_data(TaskFn fn, const std::vector<DataAccess>& accesses,
                           const std::vector<EventPtr>& deps = {},
                           topo::NodeId affinity = kAnyNode);

  /// A user-controlled once event (OCR "once event").
  EventPtr create_event();
  /// A latch firing after `count` count_down() calls.
  LatchEventPtr create_latch(std::uint32_t count);

  /// Block the external caller until every created task has finished.
  void wait_idle();

  /// External-thread assist (paper §IV: a main thread running tasks while it
  /// waits): executes queued tasks until `event` fires.
  void wait_and_assist(const EventPtr& event);

  // --- data API ---------------------------------------------------------
  DatablockPtr create_datablock(std::size_t bytes, topo::NodeId node = 0);
  DatablockRegistry& datablocks() { return datablocks_; }

  /// Reallocation-tick migration: move the hottest datablocks toward the
  /// residency distribution implied by the per-node thread targets, spending
  /// at most options().migration_budget_bytes of copy traffic. Called by the
  /// agent adapter when the policy shifts this app's node targets; safe
  /// while tasks run (Datablock::move_to is reader-safe).
  MigrationReport migrate_datablocks_toward(const std::vector<std::uint32_t>& node_weights);

  const RuntimeOptions& options() const { return options_; }

  // --- non-worker threads (paper §IV) -------------------------------------
  /// Registry for threads the runtime does not own (main/I-O/legacy compute
  /// threads); the agent can steer their NUMA binding through it.
  ForeignThreadRegistry& foreign_threads() { return foreign_; }

  // --- agent control surface (the paper's three options) -----------------
  void set_total_thread_target(std::uint32_t target);                // option 1
  void set_blocked_cores(const topo::CpuSet& cores);                 // option 2
  void set_node_thread_targets(const std::vector<std::uint32_t>& targets);  // option 3
  /// Back to "all threads run".
  void clear_thread_controls();

  ControlMode control_mode() const;
  std::uint32_t running_threads() const;  // workers not policy-blocked
  std::uint32_t blocked_threads() const;
  std::vector<std::uint32_t> running_per_node() const;

  // --- telemetry ----------------------------------------------------------
  Metrics& metrics() { return metrics_; }
  /// Application code calls this to expose domain progress (iterations).
  /// Increments the calling worker's own counter shard (no line bouncing).
  void report_progress(std::uint64_t amount = 1);
  /// Application code accounts its work and memory traffic here; the agent
  /// derives the app's arithmetic intensity from the running ratio (§III.A
  /// access-pattern detection). Negative values are a caller error.
  void report_work(double gflop, double gbytes);
  /// The one snapshot path: aggregates the per-worker counter shards and
  /// fills in pool/queue state.
  MetricsSnapshot stats() const;

  // --- latency observability (src/obs) -----------------------------------
  /// Aggregated latency distributions, one per obs::LatencyKind. Plain-value
  /// copies; safe to take while the runtime runs (relaxed-prefix contract).
  struct LatencySnapshot {
    obs::HistogramSnapshot handoff;
    obs::HistogramSnapshot steal;
    obs::HistogramSnapshot wake;
    obs::HistogramSnapshot enact;
  };
  LatencySnapshot latency_snapshot() const;
  /// Record one command-issue -> enactment-ack interval (called by the
  /// agent channel adapter when a pending epoch is promoted to enacted).
  void record_enactment_lag(std::uint64_t ns);
  /// Scheduler-latency watchdog view (null when watchdog_deadline_us == 0).
  const obs::Watchdog* watchdog() const { return watchdog_.get(); }
  /// Monotone per-worker loop counter sampled by the watchdog; any change
  /// proves the OS ran the worker (bumped even on idle park timeouts).
  std::uint64_t worker_heartbeat(std::uint32_t worker) const {
    return workers_[worker]->heartbeat.load(std::memory_order_relaxed);
  }

 private:
  struct Worker {
    std::uint32_t id = 0;
    topo::CoreId core = 0;
    topo::NodeId node = 0;
    WsDeque<TaskNode> deque;
    Parker parker;
    Xoshiro256 rng{0};
    /// Policy block flag; set under control_mutex_, cleared by the worker.
    std::atomic<bool> block_requested{false};
    std::atomic<bool> policy_blocked{false};
    /// True while published as idle; set/cleared only by the worker itself
    /// (publish_idle/retract_idle keep idle_count_ in step).
    std::atomic<bool> idle{false};
    /// Consecutive find_task failures; gates cross-node poaching.
    std::uint32_t dry_rounds = 0;
    /// Victim-order scratch for the cross-node steal path, sized to the
    /// machine at startup so ranking never allocates mid-steal (the memory
    /// bench gates the steal-path p99 against the locality-blind baseline).
    std::vector<std::pair<double, topo::NodeId>> victim_order;
    /// Bumped every worker_main loop pass (including idle park timeouts);
    /// the watchdog's proof the OS is scheduling this worker.
    std::atomic<std::uint64_t> heartbeat{0};
    /// Wake-latency stamp: a waker CASes obs::now_ns() in when it unparks
    /// this idle worker; the worker consumes (exchanges to 0) it on resume.
    /// 0 = no wake in flight.
    std::atomic<std::uint64_t> wake_ns{0};
    std::thread thread;
  };

  /// Per-node injection queue: a bounded lock-free MPMC ring for the common
  /// case, spilling to a mutex-guarded overflow list when full. Consumers
  /// drain the overflow first whenever it is non-empty (one relaxed load
  /// when it is not), so spilled tasks cannot be starved by ring traffic.
  struct NodeQueues {
    static constexpr std::size_t kRingCapacity = 2048;
    MpmcRing<TaskNode*> ring{kRingCapacity};
    std::atomic<std::uint32_t> overflow_size{0};
    std::mutex overflow_mutex;
    std::vector<TaskNode*> overflow;  // order is not a fairness promise
  };

  // Worker internals.
  void worker_main(Worker& w);
  TaskNode* find_task(Worker& w);
  /// spawn() with the data-residency footprint attached before the task can
  /// be published (spawn_with_data's path; plain spawn passes kAnyNode/0).
  EventPtr spawn_tagged(TaskFn fn, const std::vector<EventPtr>& deps,
                        topo::NodeId affinity, topo::NodeId footprint_node,
                        std::uint64_t footprint_bytes);
  void push_injection(topo::NodeId node, TaskNode* task);
  TaskNode* pop_injection(topo::NodeId node);
  void run_task(TaskNode* task, TaskContext& context, std::uint64_t& retired);
  /// Publish `retired` pending completions to outstanding_, signalling
  /// idle_cv_ only on the true 0-crossing.
  void flush_retired(std::uint64_t& retired);
  /// The calling thread's metrics/pool shard: its worker id on this
  /// runtime's workers, the shared external shard otherwise.
  std::uint32_t current_shard() const;
  void maybe_block(Worker& w);
  bool over_block_budget(const Worker& w) const;  // fast pre-check, racy
  void publish_idle(Worker& w);
  void retract_idle(Worker& w);
  void wake_one_idle(topo::NodeId preferred_node);
  void wake_all();

  // Dependency plumbing (called by Event).
  friend class Event;
  void on_dependency_satisfied(TaskNode* task);
  void enqueue_ready(TaskNode* task);

  // Control plumbing; control_mutex_ held.
  void rebalance_blocking_locked();

  topo::Machine machine_;
  RuntimeOptions options_;
  Metrics metrics_;
  /// Per-worker latency histogram shards (+1 external), same layout
  /// discipline as metrics_; constructed once, record paths never allocate.
  obs::LatencySet latency_{machine_.core_count() + 1};
  DatablockRegistry datablocks_;
  ForeignThreadRegistry foreign_{machine_};
  /// Scheduler-latency watchdog; constructed and started only when
  /// options_.watchdog_deadline_us > 0, stopped before workers join.
  std::unique_ptr<obs::Watchdog> watchdog_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<NodeQueues>> node_queues_;

  /// Ready-task datablock bytes homed per node (enqueue adds, execution
  /// subtracts): the numerator of the steal-penalty score — how much data a
  /// thief helping node n should expect to pull across the link.
  std::vector<std::atomic<std::uint64_t>> ready_footprint_;

  /// Workers currently published as idle; lets the submit path skip the
  /// wake scan entirely (one relaxed load of a zero) while the pool is
  /// saturated. Racy by design — a missed wake is bounded by idle_park_us,
  /// exactly like the pre-existing idle-flag race.
  std::atomic<std::uint32_t> idle_count_{0};

  // Owns every live task (see task_pool.hpp ownership protocol); its
  // destructor sweep reclaims undrained tasks after the workers join.
  TaskPool pool_;

  // Per-datablock access chains for spawn_with_data.
  struct DataChain {
    EventPtr last_write;
    std::vector<EventPtr> readers_since_write;
  };
  std::mutex data_chain_mutex_;
  std::unordered_map<std::uint64_t, DataChain> data_chains_;

  // Outstanding = created but not yet finished. Workers retire tasks in
  // batches of up to kRetireBatch: the counter is decremented per batch at a
  // task boundary, never mid-task, and always flushed before a worker goes
  // idle, parks, or policy-blocks — so wait_idle() can lag a busy worker by
  // at most one batch and can never miss the final 0-crossing.
  static constexpr std::uint64_t kRetireBatch = 64;
  /// Dry-spell yield rounds a worker spends before publishing idle and
  /// parking (see worker_main). Two rounds bridge the gaps of a sustained
  /// task stream (the throughput case) while keeping the spin phase short:
  /// a lone task handed to a mostly-idle pool is still picked up by a
  /// *woken* worker rather than waiting out everyone's spin rotation.
  static constexpr std::uint32_t kIdleSpinRounds = 2;
  std::atomic<std::uint64_t> outstanding_{0};
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;

  // Blocking controls.
  mutable std::mutex control_mutex_;
  /// Lock-free hot-path gate: false means mode_ == kNone and workers skip
  /// the control lock entirely at task boundaries.
  std::atomic<bool> controls_engaged_{false};
  ControlMode mode_ = ControlMode::kNone;
  std::uint32_t total_target_ = 0;
  std::vector<std::uint32_t> node_targets_;
  topo::CpuSet blocked_cores_;
  std::atomic<std::uint32_t> blocked_count_{0};
  std::vector<std::atomic<std::uint32_t>> blocked_per_node_;
  Xoshiro256 control_rng_{0xa9e47};

  std::atomic<bool> stop_{false};
};

const char* to_string(ControlMode mode);

}  // namespace numashare::rt
