// Task node: one unit of work plus its dependency bookkeeping.
//
// Ownership protocol: the Runtime's TaskPool (task_pool.hpp) owns every live
// TaskNode — each node lives in a pool slot carved from a per-worker slab;
// queues and events hold raw pointers. A node becomes ready when its pending
// count hits zero, is executed by exactly one worker, and is released back
// to its owning shard after its completion event fires. The pool's shutdown
// sweep reclaims tasks whose dependencies never fired.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "runtime/event.hpp"
#include "topology/machine.hpp"

namespace numashare::rt {

class Runtime;

inline constexpr topo::NodeId kAnyNode = topo::kInvalidNode;
inline constexpr std::uint32_t kExternalWorker = ~0u;

/// Passed to every task body; identifies where it runs and gives access to
/// the runtime for nested spawns.
struct TaskContext {
  Runtime& runtime;
  std::uint32_t worker_id;  // kExternalWorker when run by an assisting thread
  topo::NodeId node;        // node of the executing worker
};

using TaskFn = std::function<void(TaskContext&)>;

struct TaskSlot;

struct TaskNode {
  TaskNode(TaskFn f, std::uint32_t deps, topo::NodeId affinity_hint, TaskSlot* s,
           topo::NodeId footprint_home = kAnyNode, std::uint64_t footprint = 0)
      : fn(std::move(f)), pending(deps), affinity(affinity_hint),
        footprint_node(footprint_home), footprint_bytes(footprint),
        done(std::make_shared<Event>()), slot(s) {}

  TaskFn fn;
  std::atomic<std::uint32_t> pending;
  /// Preferred execution node (data locality); kAnyNode = no preference.
  topo::NodeId affinity;
  /// Resident-data footprint, derived by spawn_with_data from the declared
  /// accesses: the node holding most of this task's datablock bytes and how
  /// many bytes live there. A thief on another node would pull that much
  /// across a link — the steal-penalty and poach-threshold input.
  /// kAnyNode/0 for tasks spawned without data.
  topo::NodeId footprint_node;
  std::uint64_t footprint_bytes;
  /// One-shot poach veto: set when a cross-node thief bounced this task back
  /// to its footprint node, so the second acquisition always proceeds
  /// (liveness: a task is never re-homed twice).
  bool poach_skipped = false;
  /// Satisfied after fn returns — the task's output event in OCR terms.
  /// The one remaining per-task heap allocation: callers hold the EventPtr
  /// beyond the task's life, so it cannot live in the recycled slot.
  EventPtr done;
  /// Back-pointer to the pool slot this node lives in (see task_pool.hpp).
  TaskSlot* slot;
  /// Ready-queue entry timestamp for sampled handoff-latency measurement
  /// (obs::now_ns at enqueue_ready). 0 = this task was not sampled.
  std::uint64_t submit_ns = 0;
};

}  // namespace numashare::rt
