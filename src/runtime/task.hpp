// Task node: one unit of work plus its dependency bookkeeping.
//
// Ownership protocol: the Runtime's registry owns every live TaskNode; queues
// and events hold raw pointers. A node becomes ready when its pending count
// hits zero, is executed by exactly one worker, and is unregistered (freed)
// after its completion event fires. The registry also lets shutdown reclaim
// tasks whose dependencies never fired.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "runtime/event.hpp"
#include "topology/machine.hpp"

namespace numashare::rt {

class Runtime;

inline constexpr topo::NodeId kAnyNode = topo::kInvalidNode;
inline constexpr std::uint32_t kExternalWorker = ~0u;

/// Passed to every task body; identifies where it runs and gives access to
/// the runtime for nested spawns.
struct TaskContext {
  Runtime& runtime;
  std::uint32_t worker_id;  // kExternalWorker when run by an assisting thread
  topo::NodeId node;        // node of the executing worker
};

using TaskFn = std::function<void(TaskContext&)>;

struct TaskNode {
  TaskNode(TaskFn f, std::uint32_t deps, topo::NodeId affinity_hint)
      : fn(std::move(f)), pending(deps), affinity(affinity_hint),
        done(std::make_shared<Event>()) {}

  TaskFn fn;
  std::atomic<std::uint32_t> pending;
  /// Preferred execution node (data locality); kAnyNode = no preference.
  topo::NodeId affinity;
  /// Satisfied after fn returns — the task's output event in OCR terms.
  EventPtr done;
};

}  // namespace numashare::rt
