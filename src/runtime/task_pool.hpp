// Slab-recycling allocator for TaskNodes — the lifecycle hot path's memory
// half.
//
// One shard per worker plus one shared shard for threads the runtime does
// not own. A shard owns slabs of task slots; slots it has handed out come
// back either to its owner-only free list (task executed by the owning
// worker) or to its lock-free MPSC return stack (executed elsewhere). The
// common case — a worker spawning and retiring its own tasks — therefore
// touches no lock and no global allocator; the cross-worker case costs one
// CAS on the owner's return stack.
//
// Ownership protocol (replaces the old global registry set):
//   * allocate() constructs a TaskNode in a slot and marks the slot live;
//   * exactly one release() destroys the node and marks the slot free,
//     routing the slot back to its owning shard;
//   * ~TaskPool() sweeps every slab and destroys still-live nodes — the
//     "undrained tasks are reclaimed at shutdown" guarantee, now O(slabs)
//     instead of a mutex-guarded unordered_set.
//
// NUMA locality falls out of first-touch: a shard's slabs are only ever
// carved by its owning thread, so a bound worker's task nodes land on its
// own node's memory.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "runtime/task.hpp"

namespace numashare::rt {

struct TaskSlot {
  /// Free-list / return-stack link; dead storage while the slot is live.
  TaskSlot* next = nullptr;
  /// Owning shard, fixed when the slot is first carved from a slab.
  std::uint32_t owner = 0;
  /// True while `storage` holds a constructed TaskNode. Only read
  /// single-threaded (shutdown sweep); writes are ordered by the handoff
  /// that moves the slot between threads.
  bool live = false;
  alignas(alignof(TaskNode)) unsigned char storage[sizeof(TaskNode)];

  TaskNode* node() { return std::launder(reinterpret_cast<TaskNode*>(storage)); }
};

class TaskPool {
 public:
  static constexpr std::size_t kSlabSlots = 256;

  /// Shards 0..worker_count-1 are owner-only (that worker's thread);
  /// shard `worker_count` is shared by external threads and mutex-guarded.
  explicit TaskPool(std::uint32_t worker_count)
      : shards_(worker_count + 1), external_(worker_count) {}

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Shutdown sweep: destroy every task that was never drained. Must run
  /// single-threaded (workers joined, no concurrent spawns).
  ~TaskPool() {
    for (auto& shard : shards_) {
      for (auto& slab : shard.slabs) {
        for (std::size_t i = 0; i < kSlabSlots; ++i) {
          if (slab[i].live) slab[i].node()->~TaskNode();
        }
      }
    }
  }

  std::uint32_t external_shard() const { return external_; }

  /// Construct a TaskNode out of `shard`'s slabs. Callers pass their own
  /// shard index (their worker id, or external_shard()).
  TaskNode* allocate(std::uint32_t shard_index, TaskFn fn, std::uint32_t deps,
                     topo::NodeId affinity, topo::NodeId footprint_node = kAnyNode,
                     std::uint64_t footprint_bytes = 0) {
    Shard& shard = shards_[shard_index];
    TaskSlot* slot;
    if (shard_index == external_) {
      std::scoped_lock lock(shard.mutex);
      slot = acquire_slot(shard, shard_index);
    } else {
      slot = acquire_slot(shard, shard_index);
    }
    slot->live = true;
    return new (slot->storage)
        TaskNode(std::move(fn), deps, affinity, slot, footprint_node, footprint_bytes);
  }

  /// Destroy `node` and recycle its slot. Any thread; `releasing_shard` is
  /// the caller's own shard index.
  void release(std::uint32_t releasing_shard, TaskNode* node) {
    TaskSlot* slot = node->slot;
    node->~TaskNode();
    slot->live = false;
    if (slot->owner == releasing_shard && releasing_shard != external_) {
      // Owner worker retiring its own task: plain free-list push.
      Shard& shard = shards_[releasing_shard];
      slot->next = shard.free;
      shard.free = slot;
      return;
    }
    // Cross-worker (or external-shard) retirement: push onto the owner's
    // return stack. Take-all draining on the owner side makes the plain
    // Treiber push ABA-safe.
    std::atomic<TaskSlot*>& stack = shards_[slot->owner].returns;
    TaskSlot* head = stack.load(std::memory_order_relaxed);
    do {
      slot->next = head;
    } while (!stack.compare_exchange_weak(head, slot, std::memory_order_release,
                                          std::memory_order_relaxed));
  }

  /// Telemetry: slabs ever carved (approximate under concurrency).
  std::uint64_t slabs_allocated() const {
    std::uint64_t n = 0;
    for (const auto& shard : shards_) n += shard.slab_count;
    return n;
  }

 private:
  struct alignas(64) Shard {
    // Owner-only state (the external shard serializes on `mutex`).
    TaskSlot* free = nullptr;
    TaskSlot* bump = nullptr;
    std::size_t bump_left = 0;
    std::vector<std::unique_ptr<TaskSlot[]>> slabs;
    std::uint64_t slab_count = 0;
    std::mutex mutex;  // external shard only
    // Cross-thread side: slots coming home from other shards.
    alignas(64) std::atomic<TaskSlot*> returns{nullptr};
  };

  TaskSlot* acquire_slot(Shard& shard, std::uint32_t shard_index) {
    if (TaskSlot* slot = shard.free) {
      shard.free = slot->next;
      return slot;
    }
    // Local list dry: reclaim everything other shards sent home.
    if (TaskSlot* head = shard.returns.exchange(nullptr, std::memory_order_acquire)) {
      shard.free = head->next;
      return head;
    }
    if (shard.bump_left == 0) {
      shard.slabs.push_back(std::make_unique<TaskSlot[]>(kSlabSlots));
      shard.bump = shard.slabs.back().get();
      shard.bump_left = kSlabSlots;
      ++shard.slab_count;
    }
    TaskSlot* slot = shard.bump++;
    --shard.bump_left;
    slot->owner = shard_index;
    return slot;
  }

  std::vector<Shard> shards_;
  const std::uint32_t external_;
};

}  // namespace numashare::rt
