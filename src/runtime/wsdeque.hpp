// Chase-Lev work-stealing deque (Lê et al., "Correct and Efficient
// Work-Stealing for Weak Memory Models", PPoPP'13 memory orders).
//
// Owner thread pushes/pops at the bottom; thieves steal from the top. The
// buffer grows on demand; retired buffers are kept until destruction so a
// concurrent thief can never touch freed memory (the standard leak-free
// reclamation dodge for this structure).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/assert.hpp"

namespace numashare::rt {

template <typename T>
class WsDeque {
 public:
  explicit WsDeque(std::int64_t initial_capacity = 64) {
    NS_REQUIRE(initial_capacity >= 2 && (initial_capacity & (initial_capacity - 1)) == 0,
               "capacity must be a power of two");
    buffers_.push_back(std::make_unique<Buffer>(initial_capacity));
    buffer_.store(buffers_.back().get(), std::memory_order_relaxed);
  }

  WsDeque(const WsDeque&) = delete;
  WsDeque& operator=(const WsDeque&) = delete;

  /// Owner only.
  void push(T* item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t >= buf->capacity - 1) {
      buf = grow(buf, b, t);
    }
    buf->put(b, item);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only. Returns nullptr when empty.
  T* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      // Deque was already empty; restore.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T* item = buf->get(b);
    if (t == b) {
      // Last element: race against thieves for it.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        item = nullptr;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread. Returns nullptr when empty or when losing a race.
  T* steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    // acquire, not the paper's consume: memory_order_consume is deprecated
    // (P0371R1) and every compiler promotes it to acquire anyway; acquire is
    // also the edge TSan models, and on x86/ARM64 the generated load is
    // identical.
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    T* item = buf->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return item;
  }

  /// Approximate (racy) size; used for telemetry only.
  std::size_t size_approx() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty_approx() const { return size_approx() == 0; }

 private:
  struct Buffer {
    explicit Buffer(std::int64_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<T*>[cap]) {}
    const std::int64_t capacity;
    const std::int64_t mask;
    std::unique_ptr<std::atomic<T*>[]> slots;

    // Release/acquire on the slot itself (the paper uses relaxed + fences):
    // it publishes the item's *payload* to thieves through the slot atomic,
    // an edge tools that do not model standalone fences (TSan) can see, and
    // costs nothing over relaxed on x86/ARM64 loads and stores.
    T* get(std::int64_t i) const { return slots[i & mask].load(std::memory_order_acquire); }
    void put(std::int64_t i, T* v) { slots[i & mask].store(v, std::memory_order_release); }
  };

  Buffer* grow(Buffer* old, std::int64_t b, std::int64_t t) {
    auto grown = std::make_unique<Buffer>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) grown->put(i, old->get(i));
    Buffer* raw = grown.get();
    buffers_.push_back(std::move(grown));  // owner-only mutation
    buffer_.store(raw, std::memory_order_release);
    return raw;
  }

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<Buffer*> buffer_{nullptr};
  std::vector<std::unique_ptr<Buffer>> buffers_;  // owner-only; retired kept alive
};

}  // namespace numashare::rt
