// Second-order hardware effects the analytic model ignores.
//
// The paper's Table III shows its model tracking real hardware within ~1% on
// NUMA-perfect scenarios but overestimating the NUMA-bad scenarios by ~5%.
// The simulator reproduces that gap structure with four physically-motivated
// effects; all are configurable and all default to magnitudes in the range
// reported for Skylake-SP class machines. SimEffects::none() disables
// everything, in which case the simulator must agree with the analytic model
// to solver precision — a cross-validation invariant covered by tests.
#pragma once

namespace numashare::sim {

struct SimEffects {
  /// Sustained per-core compute throughput as a fraction of nominal peak
  /// (pipeline bubbles, AVX frequency effects).
  double compute_efficiency = 0.985;

  /// Achieved fraction of a QPI/UPI link's nominal bandwidth for a
  /// latency-limited remote stream (limited outstanding requests).
  double remote_link_efficiency = 0.85;

  /// Bandwidth fraction achieved by a NUMA-bad application's accesses: one
  /// monolithic far allocation suffers page-crossing/TLB and directory
  /// overheads that NUMA-perfect streaming does not.
  double numa_bad_locality = 0.88;

  /// When a controller is heavily oversubscribed (demand >= saturation_ratio
  /// x capacity) steady full-tilt streaming slightly exceeds the *estimated*
  /// peak (prefetch trains, open-page hits): granted local bandwidth is
  /// scaled by this factor.
  double saturation_boost = 1.01;
  double saturation_ratio = 1.5;

  /// Amplitude of deterministic per-epoch multiplicative bandwidth jitter.
  double bandwidth_jitter = 0.004;

  /// Fraction of a link's (already latency-derated) bandwidth achieved by
  /// bulk page migration — kernel-style chunked copies with TLB shootdowns
  /// run well under a tuned stream. Prices Datablock::move_to in the
  /// simulated MemoryBackend (runtime/numa_arena.hpp).
  double migration_efficiency = 0.70;

  /// Extra latency multiplier a task pays when its resident datablocks live
  /// on a remote node, on top of the local/link bandwidth ratio: limited
  /// outstanding remote requests stall the pipeline even when the link has
  /// headroom. Feeds the steal-penalty formula (docs/MEMORY.md).
  double remote_access_latency_penalty = 1.35;

  static SimEffects none() {
    SimEffects e;
    e.compute_efficiency = 1.0;
    e.remote_link_efficiency = 1.0;
    e.numa_bad_locality = 1.0;
    e.saturation_boost = 1.0;
    e.saturation_ratio = 1e30;
    e.bandwidth_jitter = 0.0;
    e.migration_efficiency = 1.0;
    e.remote_access_latency_penalty = 1.0;
    return e;
  }
};

}  // namespace numashare::sim
