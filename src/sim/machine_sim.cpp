#include "sim/machine_sim.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace numashare::sim {

namespace {
constexpr double kEps = 1e-12;
}

MachineSim::MachineSim(topo::Machine machine, SimEffects effects, std::uint64_t seed)
    : machine_(std::move(machine)), effects_(effects), rng_(seed) {
  std::string error;
  NS_REQUIRE(machine_.validate(&error), error.c_str());
}

std::vector<GroupGrant> MachineSim::epoch(const std::vector<GroupLoad>& loads, double dt) {
  NS_REQUIRE(dt > 0.0, "epoch length must be positive");
  for (const auto& load : loads) {
    NS_REQUIRE(load.exec_node < machine_.node_count(), "exec node out of range");
    NS_REQUIRE(load.memory_node < machine_.node_count(), "memory node out of range");
    NS_REQUIRE(load.ai > 0.0, "arithmetic intensity must be positive");
  }
  ++epochs_;

  std::vector<GBps> granted(loads.size(), 0.0);

  for (topo::NodeId m = 0; m < machine_.node_count(); ++m) {
    const double jitter =
        effects_.bandwidth_jitter > 0.0 ? rng_.jitter(effects_.bandwidth_jitter) : 1.0;
    const GBps capacity = machine_.node(m).memory_bandwidth * jitter;

    std::vector<std::size_t> remote_ids;
    std::vector<std::size_t> local_ids;
    GBps total_demand = 0.0;
    for (std::size_t i = 0; i < loads.size(); ++i) {
      if (loads[i].memory_node != m || loads[i].threads == 0) continue;
      total_demand += loads[i].per_thread_demand * loads[i].threads;
      (loads[i].exec_node == m ? local_ids : remote_ids).push_back(i);
    }

    // Remote flows first: link-capped, latency-derated, then scaled down
    // together if they would oversubscribe the controller.
    GBps remote_total = 0.0;
    std::vector<GBps> flow(remote_ids.size(), 0.0);
    for (std::size_t k = 0; k < remote_ids.size(); ++k) {
      const auto& load = loads[remote_ids[k]];
      const GBps demand = load.per_thread_demand * load.threads;
      const GBps cap =
          machine_.link_bandwidth(load.exec_node, m) * effects_.remote_link_efficiency;
      flow[k] = std::min(demand, cap);
      remote_total += flow[k];
    }
    if (remote_total > capacity + kEps) {
      const double scale = capacity / remote_total;
      for (auto& f : flow) f *= scale;
      remote_total = capacity;
    }

    // Locals: per-core baseline over what remains, then proportional
    // water-filling of the leftover.
    const GBps remaining = std::max(0.0, capacity - remote_total);
    const double cores = machine_.cores_in_node(m);
    const GBps baseline = remaining / cores;
    GBps pool = remaining;
    std::vector<GBps> local_grant(local_ids.size(), 0.0);
    for (std::size_t k = 0; k < local_ids.size(); ++k) {
      const auto& load = loads[local_ids[k]];
      local_grant[k] = std::min(load.per_thread_demand, baseline);
      pool -= local_grant[k] * load.threads;
    }
    for (int round = 0; round < 64 && pool > kEps; ++round) {
      double weighted_deficit = 0.0;
      for (std::size_t k = 0; k < local_ids.size(); ++k) {
        weighted_deficit +=
            (loads[local_ids[k]].per_thread_demand - local_grant[k]) * loads[local_ids[k]].threads;
      }
      if (weighted_deficit <= kEps) break;
      GBps distributed = 0.0;
      for (std::size_t k = 0; k < local_ids.size(); ++k) {
        const auto& load = loads[local_ids[k]];
        const GBps deficit = load.per_thread_demand - local_grant[k];
        if (deficit <= kEps) continue;
        const GBps take = std::min(deficit, pool * deficit / weighted_deficit);
        local_grant[k] += take;
        distributed += take * load.threads;
      }
      pool -= distributed;
      if (distributed <= kEps) break;
    }

    // Saturation: a controller streaming flat-out slightly exceeds the
    // estimated steady-state peak.
    const bool saturated = total_demand >= effects_.saturation_ratio * capacity;
    const double boost = saturated ? effects_.saturation_boost : 1.0;

    for (std::size_t k = 0; k < remote_ids.size(); ++k) {
      granted[remote_ids[k]] = flow[k] / loads[remote_ids[k]].threads;
    }
    for (std::size_t k = 0; k < local_ids.size(); ++k) {
      granted[local_ids[k]] = local_grant[k] * boost;
    }
  }

  std::vector<GroupGrant> grants(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const auto& load = loads[i];
    if (load.threads == 0) continue;
    GBps bw = granted[i];
    if (load.numa_bad) bw *= effects_.numa_bad_locality;
    const auto& node = machine_.node(load.exec_node);
    const GFlops core_peak = machine_.core(node.cores.front()).peak_gflops;
    const GFlops rate =
        std::min(bw * load.ai, core_peak * effects_.compute_efficiency);
    grants[i].per_thread_bandwidth = bw;
    grants[i].per_thread_gflops = rate;
    grants[i].group_gbytes = bw * load.threads * dt;
    grants[i].group_gflop = rate * load.threads * dt;
  }
  return grants;
}

}  // namespace numashare::sim
