// Epoch-level NUMA machine simulation — the memory-arbitration core.
//
// MachineSim answers one question per epoch: given which threads run where
// and what bandwidth each wants, how many bytes does each thread group move
// and how many FLOPs does it retire in `dt` seconds? The arbitration follows
// the same physics as the analytic model (remote-first with link caps,
// per-core baseline, proportional remainder) but is computed independently
// per epoch with the second-order effects of effects.hpp layered on top —
// with SimEffects::none() the two implementations must agree, which tests
// exploit as cross-validation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/effects.hpp"
#include "topology/machine.hpp"

namespace numashare::sim {

/// One homogeneous bundle of threads for arbitration purposes.
struct GroupLoad {
  topo::NodeId exec_node = 0;
  topo::NodeId memory_node = 0;
  std::uint32_t threads = 0;
  GBps per_thread_demand = 0.0;   // what each thread asks for this epoch
  ArithmeticIntensity ai = 1.0;
  bool numa_bad = false;          // triggers the locality penalty
};

struct GroupGrant {
  GBps per_thread_bandwidth = 0.0;    // achieved, after effects
  GFlops per_thread_gflops = 0.0;     // rate during this epoch
  double group_gbytes = 0.0;          // bytes moved by the whole group in dt
  double group_gflop = 0.0;           // work retired by the whole group in dt
};

class MachineSim {
 public:
  MachineSim(topo::Machine machine, SimEffects effects, std::uint64_t seed = 0x5eed);

  const topo::Machine& machine() const { return machine_; }
  const SimEffects& effects() const { return effects_; }

  /// Advance one epoch of `dt` seconds under the given load. Deterministic
  /// for a fixed (seed, call sequence).
  std::vector<GroupGrant> epoch(const std::vector<GroupLoad>& loads, double dt);

  std::uint64_t epochs_simulated() const { return epochs_; }

 private:
  topo::Machine machine_;
  SimEffects effects_;
  Xoshiro256 rng_;
  std::uint64_t epochs_ = 0;
};

}  // namespace numashare::sim
