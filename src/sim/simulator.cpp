#include "sim/simulator.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace numashare::sim {

Simulation::Simulation(MachineSim machine_sim, std::vector<model::AppSpec> apps,
                       model::Allocation allocation, SimulationOptions options)
    : machine_sim_(std::move(machine_sim)),
      apps_(std::move(apps)),
      allocation_(std::move(allocation)),
      options_(options),
      progress_(apps_.size()) {
  std::string error;
  NS_REQUIRE(allocation_.validate(machine_sim_.machine(), &error), error.c_str());
  NS_REQUIRE(apps_.size() == allocation_.app_count(), "apps must index-match allocation");
  NS_REQUIRE(options_.reallocation_penalty_s >= 0.0, "penalty must be non-negative");
  NS_REQUIRE(options_.reallocation_efficiency >= 0.0 &&
                 options_.reallocation_efficiency <= 1.0,
             "efficiency must be in [0,1]");
}

void Simulation::set_allocation(model::Allocation allocation) {
  std::string error;
  NS_REQUIRE(allocation.validate(machine_sim_.machine(), &error), error.c_str());
  NS_REQUIRE(allocation.app_count() == apps_.size(), "apps must index-match allocation");
  if (!(allocation == allocation_)) {
    penalty_until_ = now_ + options_.reallocation_penalty_s;
  }
  allocation_ = std::move(allocation);
}

void Simulation::set_app_ai(model::AppId app, ArithmeticIntensity ai) {
  NS_REQUIRE(app < apps_.size(), "app id out of range");
  NS_REQUIRE(ai > 0.0, "arithmetic intensity must be positive");
  apps_[app].ai = ai;
}

const model::AppSpec& Simulation::app(model::AppId id) const {
  NS_REQUIRE(id < apps_.size(), "app id out of range");
  return apps_[id];
}

std::vector<GroupLoad> Simulation::build_loads() const {
  const auto& machine = machine_sim_.machine();
  std::vector<GroupLoad> loads;
  for (model::AppId a = 0; a < apps_.size(); ++a) {
    for (topo::NodeId n = 0; n < machine.node_count(); ++n) {
      const std::uint32_t t = allocation_.threads(a, n);
      if (t == 0) continue;
      GroupLoad load;
      load.exec_node = n;
      load.memory_node = apps_[a].memory_node(n);
      load.threads = t;
      const GFlops peak = machine.core(machine.node(n).cores.front()).peak_gflops;
      load.per_thread_demand = demand_gbps(peak, apps_[a].ai);
      load.ai = apps_[a].ai;
      load.numa_bad = apps_[a].placement == model::Placement::kNumaBad;
      loads.push_back(load);
    }
  }
  return loads;
}

Measurement Simulation::run(double duration_s, double dt, const Controller& controller,
                            double control_interval_s) {
  NS_REQUIRE(duration_s > 0.0 && dt > 0.0, "positive duration and epoch length required");
  NS_REQUIRE(control_interval_s >= dt, "control interval must cover at least one epoch");

  Measurement m;
  m.app_gflop_total.assign(apps_.size(), 0.0);
  m.app_gflops.assign(apps_.size(), 0.0);

  std::vector<double> since_tick(apps_.size(), 0.0);
  const double end = now_ + duration_s;
  double next_control = now_ + control_interval_s;

  while (now_ < end - 1e-12) {
    const double step = std::min(dt, end - now_);
    // Group order tracks (app, node) iteration order in build_loads; map the
    // grants back by replaying the same iteration.
    const auto loads = build_loads();
    const auto grants = machine_sim_.epoch(loads, step);
    // Post-reallocation transient: threads are mid-unblock / cache-cold.
    const double efficiency =
        now_ < penalty_until_ ? options_.reallocation_efficiency : 1.0;

    // Sub-linear scaling (Amdahl, mirrors the model's §3b step): cap each
    // app's epoch work at peak x effective-threads and derate its groups.
    std::vector<double> amdahl_derate(apps_.size(), 1.0);
    {
      std::size_t gi = 0;
      std::vector<double> raw(apps_.size(), 0.0);
      std::vector<double> peak(apps_.size(), 0.0);
      for (model::AppId a = 0; a < apps_.size(); ++a) {
        for (topo::NodeId n = 0; n < machine_sim_.machine().node_count(); ++n) {
          if (allocation_.threads(a, n) == 0) continue;
          raw[a] += grants[gi].group_gflop;
          const auto& node = machine_sim_.machine().node(n);
          peak[a] =
              std::max(peak[a], machine_sim_.machine().core(node.cores.front()).peak_gflops);
          ++gi;
        }
        if (apps_[a].serial_fraction > 0.0 && raw[a] > 0.0) {
          const double cap =
              peak[a] * apps_[a].effective_threads(allocation_.app_total(a)) * step;
          if (raw[a] > cap) amdahl_derate[a] = cap / raw[a];
        }
      }
    }

    std::size_t g = 0;
    for (model::AppId a = 0; a < apps_.size(); ++a) {
      for (topo::NodeId n = 0; n < machine_sim_.machine().node_count(); ++n) {
        if (allocation_.threads(a, n) == 0) continue;
        const double scale = efficiency * amdahl_derate[a];
        const double gflop = grants[g].group_gflop * scale;
        const double gbytes = grants[g].group_gbytes * efficiency;
        progress_[a].gflop_done += gflop;
        progress_[a].gbytes_moved += gbytes;
        m.app_gflop_total[a] += gflop;
        since_tick[a] += gflop;
        ++g;
      }
    }
    NS_ASSERT(g == grants.size());
    now_ += step;
    ++m.epochs;

    if (now_ >= next_control - 1e-12) {
      for (model::AppId a = 0; a < apps_.size(); ++a) {
        progress_[a].recent_gflops = since_tick[a] / control_interval_s;
        since_tick[a] = 0.0;
        if (options_.tracer != nullptr) {
          // Virtual seconds -> trace microseconds keeps plots readable.
          options_.tracer->span("gflops", "sim", a, (now_ - control_interval_s) * 1e6,
                                control_interval_s * 1e6);
          options_.tracer->counter("gflops", "sim", a, progress_[a].recent_gflops);
        }
      }
      if (controller) {
        if (auto replacement = controller(now_, progress_)) {
          if (!(*replacement == allocation_)) {
            set_allocation(std::move(*replacement));
            ++m.reallocations;
            if (options_.tracer != nullptr) {
              options_.tracer->instant("reallocation", "sim",
                                       static_cast<std::uint32_t>(apps_.size()));
            }
          }
        }
      }
      next_control += control_interval_s;
    }
  }

  m.duration_s = duration_s;
  for (model::AppId a = 0; a < apps_.size(); ++a) {
    m.app_gflops[a] = m.app_gflop_total[a] / duration_s;
    m.total_gflops += m.app_gflops[a];
  }
  return m;
}

Measurement simulate_scenario(const topo::Machine& machine, const std::vector<model::AppSpec>& apps,
                              const model::Allocation& allocation, const SimEffects& effects,
                              double duration_s, std::uint64_t seed) {
  Simulation simulation(MachineSim(machine, effects, seed), apps, allocation);
  return simulation.run(duration_s);
}

}  // namespace numashare::sim
