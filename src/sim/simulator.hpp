// Scenario-level simulation driver.
//
// Runs a set of model::AppSpec applications on a MachineSim for a stretch of
// virtual time, accumulating per-app work. An optional controller callback
// fires at a fixed cadence and may swap the allocation mid-run — this is the
// hook the agent-policy experiments use to study dynamic reallocation (the
// paper's "quickly shifting resources" discussion) without real threads.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/allocation.hpp"
#include "core/app_spec.hpp"
#include "sim/machine_sim.hpp"
#include "trace/trace.hpp"

namespace numashare::sim {

struct AppProgress {
  double gflop_done = 0.0;
  double gbytes_moved = 0.0;
  /// Average rate since the previous controller tick.
  GFlops recent_gflops = 0.0;
};

struct Measurement {
  double duration_s = 0.0;
  std::vector<double> app_gflop_total;   // work done per app
  std::vector<GFlops> app_gflops;        // mean rate per app
  GFlops total_gflops = 0.0;             // mean machine rate
  std::uint64_t epochs = 0;
  std::uint32_t reallocations = 0;       // controller-initiated switches
};

struct SimulationOptions {
  /// Cost of an allocation switch: for this stretch of virtual time after a
  /// reallocation, every thread runs at `reallocation_efficiency` of its
  /// granted rate (threads unblocking, caches re-warming — the price of the
  /// paper's "quickly shifting resources"). 0 = switches are free.
  double reallocation_penalty_s = 0.0;
  double reallocation_efficiency = 0.5;
  /// Optional recorder (non-owning): per-app GFLOPS counters at every
  /// controller tick (lane = app id) plus instants for reallocations.
  /// Timestamps are *virtual* seconds mapped to trace microseconds.
  trace::Tracer* tracer = nullptr;
};

class Simulation {
 public:
  /// now, per-app progress -> replacement allocation (or nullopt to keep).
  using Controller =
      std::function<std::optional<model::Allocation>(double, const std::vector<AppProgress>&)>;

  Simulation(MachineSim machine_sim, std::vector<model::AppSpec> apps,
             model::Allocation allocation, SimulationOptions options = {});

  const model::Allocation& allocation() const { return allocation_; }
  void set_allocation(model::Allocation allocation);

  /// Phase changes: swap an application's arithmetic intensity (and
  /// optionally its placement) mid-run; takes effect next epoch.
  void set_app_ai(model::AppId app, ArithmeticIntensity ai);
  const model::AppSpec& app(model::AppId id) const;

  /// Advance `duration_s` seconds in `dt`-second epochs. The controller (if
  /// any) runs every `control_interval_s` of virtual time. Accumulators
  /// carry across run() calls; the returned Measurement covers this call.
  Measurement run(double duration_s, double dt = 1e-3, const Controller& controller = nullptr,
                  double control_interval_s = 0.01);

  const std::vector<AppProgress>& progress() const { return progress_; }
  double now() const { return now_; }

 private:
  std::vector<GroupLoad> build_loads() const;

  MachineSim machine_sim_;
  std::vector<model::AppSpec> apps_;
  model::Allocation allocation_;
  SimulationOptions options_;
  std::vector<AppProgress> progress_;
  double now_ = 0.0;
  /// Virtual time until which the reallocation penalty applies.
  double penalty_until_ = 0.0;
};

/// One-call helper: simulate `apps` under `allocation` for `duration_s` and
/// return the mean total GFLOPS. Used by the Table III bench.
Measurement simulate_scenario(const topo::Machine& machine, const std::vector<model::AppSpec>& apps,
                              const model::Allocation& allocation, const SimEffects& effects,
                              double duration_s = 1.0, std::uint64_t seed = 0x5eed);

}  // namespace numashare::sim
