#include "synth/calibrate.hpp"

#include "common/assert.hpp"
#include "common/format.hpp"

namespace numashare::synth {

std::optional<Calibration> calibrate_even_scenario(const EvenScenarioMeasurement& m,
                                                   std::string* error) {
  const auto fail = [&](std::string message) -> std::optional<Calibration> {
    if (error) *error = std::move(message);
    return std::nullopt;
  };
  if (m.nodes == 0 || m.cores_per_node == 0) return fail("empty machine shape");
  if (m.mem_instances == 0 || m.mem_threads_per_node == 0 || m.mem_ai <= 0.0) {
    return fail("memory-bound side not described");
  }
  if (m.compute_threads_per_node == 0 || m.compute_ai <= 0.0) {
    return fail("compute-bound side not described");
  }
  if (m.mem_total_gflops <= 0.0 || m.compute_total_gflops <= 0.0) {
    return fail("measurements must be positive");
  }

  Calibration c;
  const double compute_threads =
      static_cast<double>(m.compute_threads_per_node) * m.nodes;
  c.peak_gflops_per_thread = m.compute_total_gflops / compute_threads;

  const GFlops mem_per_node = m.mem_total_gflops / m.nodes;
  const GFlops compute_per_node = m.compute_total_gflops / m.nodes;
  c.node_bandwidth = mem_per_node / m.mem_ai + compute_per_node / m.compute_ai;

  // Precondition checks: the compute app must be compute-limited and the
  // memory side saturated, or the inversion read the wrong regime.
  const GBps mem_demand_per_node = c.peak_gflops_per_thread / m.mem_ai *
                                   m.mem_instances * m.mem_threads_per_node;
  if (mem_demand_per_node <= c.node_bandwidth * 1.05) {
    return fail(
        ns_format("memory-bound side does not saturate the controller "
                  "(demand {} vs capacity {})",
                  fmt_compact(mem_demand_per_node, 3), fmt_compact(c.node_bandwidth, 3)));
  }
  const GFlops mem_per_thread =
      mem_per_node / (m.mem_instances * m.mem_threads_per_node);
  if (mem_per_thread >= c.peak_gflops_per_thread * 0.95) {
    return fail("memory-bound side is running at compute peak; AI too high");
  }
  return c;
}

GBps calibrate_link_bandwidth(GFlops remote_gflops, ArithmeticIntensity remote_ai,
                              std::uint32_t links_used) {
  NS_REQUIRE(remote_ai > 0.0, "arithmetic intensity must be positive");
  NS_REQUIRE(links_used > 0, "at least one link");
  return remote_gflops / remote_ai / links_used;
}

topo::Machine machine_from_calibration(const Calibration& calibration, std::uint32_t nodes,
                                       std::uint32_t cores_per_node, GBps link_bandwidth,
                                       std::string name) {
  return topo::Machine::symmetric(nodes, cores_per_node, calibration.peak_gflops_per_thread,
                                  calibration.node_bandwidth, link_bandwidth,
                                  std::move(name));
}

}  // namespace numashare::synth
